#!/usr/bin/env python3
"""Bring your own kernel: write OR1K assembly, compare all four models.

Defines a small dot-product kernel from scratch (assembly source, golden
Python reference, quality metric), then runs it under fault-injection
models A, B, B+ and C at the same operating point and contrasts their
behavior -- the reproduction of the paper's central argument that only
the statistical, instruction-aware model C exposes a usable transition
region.

Run:
    python examples/custom_kernel_fi.py
"""

import numpy as np

from repro.bench import assemble_kernel, source_header, words_directive
from repro.bench.metrics import relative_difference
from repro.fi import (
    FixedProbabilityInjector,
    StaInjector,
    StaNoiseInjector,
    StatisticalInjector,
)
from repro.mc import run_point
from repro.netlist import calibrated_alu
from repro.timing import (
    VddDelayModel,
    VoltageNoise,
    get_characterization,
)

DOT_PRODUCT_ASM = """\
{header}
.equ N, {n}

start:
    l.movhi r4, hi(vec_a)
    l.ori   r4, r4, lo(vec_a)
    l.movhi r5, hi(vec_b)
    l.ori   r5, r5, lo(vec_b)
    l.addi  r6, r0, N
    l.nop   FI_ON
    l.addi  r7, r0, 0              # acc
    l.addi  r8, r0, 0              # i
loop:
    l.lwz   r9, 0(r4)
    l.lwz   r10, 0(r5)
    l.mul   r11, r9, r10
    l.add   r7, r7, r11
    l.addi  r4, r4, 4
    l.addi  r5, r5, 4
    l.addi  r8, r8, 1
    l.sflts r8, r6
    l.bf    loop
    l.nop
    l.addi  r3, r7, 0
    l.nop   FI_OFF
    l.movhi r12, hi(result)
    l.ori   r12, r12, lo(result)
    l.sw    0(r12), r3
    l.nop   0x1

.org DATA
vec_a:
{a_words}
vec_b:
{b_words}
result:
    .space 4
"""


def build_dot_product(n: int = 64, seed: int = 3):
    """Assemble the kernel and compute its golden reference."""
    rng = np.random.default_rng(seed)
    a = [int(v) for v in rng.integers(0, 1 << 12, n)]
    b = [int(v) for v in rng.integers(0, 1 << 12, n)]
    golden = sum(x * y for x, y in zip(a, b)) & 0xFFFFFFFF

    def error(outputs, reference):
        return relative_difference(outputs[0], reference[0])

    return assemble_kernel(
        name="dot_product",
        source=DOT_PRODUCT_ASM.format(
            header=source_header(), n=n,
            a_words=words_directive(a), b_words=words_directive(b)),
        entry="start",
        output_symbol="result",
        output_count=1,
        golden=[golden],
        metric_name="relative difference",
        error_value=error,
        relative_error=error,
        params={"n": n, "seed": seed},
    )


def main() -> None:
    kernel = build_dot_product()
    alu = calibrated_alu()
    characterization = get_characterization(alu)
    vdd_model = VddDelayModel.from_alu_sta(alu)
    noise = VoltageNoise(0.010)
    sta_mhz = alu.sta_limit_hz(0.7) / 1e6

    factories = {
        "A (p=1e-5)": lambda f, rng: FixedProbabilityInjector(1e-5, rng),
        "B": lambda f, rng: StaInjector(alu, f),
        "B+": lambda f, rng: StaNoiseInjector(
            alu, f, noise, vdd_model=vdd_model, rng=rng),
        "C": lambda f, rng: StatisticalInjector(
            characterization, f, noise, vdd_model=vdd_model, rng=rng),
    }

    print(f"dot-product kernel, STA limit {sta_mhz:.1f} MHz @ 0.7 V\n")
    header = f"{'f [MHz]':>8s}"
    for name in factories:
        header += f" | {name:^22s}"
    print(header)
    print(f"{'':8s}" + " | ".join([f"{'corr':>6s} {'FI/kCyc':>8s} {'err':>6s}"
                                   for _ in factories]).join(["  ", ""]))
    for f_mhz in (640, 660, 680, 700, 720, 750, 800):
        row = f"{f_mhz:8.0f}"
        for name, factory in factories.items():
            point = run_point(
                kernel,
                lambda rng, fn=factory: fn(f_mhz * 1e6, rng),
                n_trials=15, seed=42)
            s = point.summary()
            row += (f" | {s['p_correct']:6.0%} "
                    f"{s['fi_rate_per_kcycle']:8.2f} "
                    f"{s['mean_relative_error']:6.1%}")
        print(row)

    print("\nModel B collapses exactly at the STA limit, B+ collapses at "
          "its noise-shifted onset, while model C degrades gradually and "
          "distinguishes this mul-heavy kernel from control-heavy code.")


if __name__ == "__main__":
    main()
