#!/usr/bin/env python3
"""Frequency-overscaling study: regenerate the paper's Fig. 5 and 6.

Sweeps the proposed statistical fault-injection model (model C) over
clock frequency for the median benchmark at every (Vdd, noise)
operating point of Fig. 5, then compares all benchmarks at 0.7 V with
10 mV noise as in Fig. 6, printing the PoFF and its gain over the STA
limit for each configuration.

Run:
    python examples/frequency_overscaling_study.py [quick|default|paper]

The ``paper`` preset uses the paper's problem sizes and 200 trials per
point -- expect hours.  ``quick`` finishes in about a minute.
"""

import sys

from repro.experiments import ExperimentContext, fig5, fig6


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "quick"
    ctx = ExperimentContext.create(scale)

    print("=" * 72)
    print(f"Fig. 5 -- median benchmark, model C (scale: {scale})")
    print("=" * 72)
    results5 = fig5.run(scale, context=ctx)
    print(fig5.render(results5))
    print("\nPoFF summary (paper: +11.4 % / +3.3 % / none at 0.7 V):")
    for result in results5:
        gain = result.poff_gain
        text = f"{gain:+.1%}" if gain is not None else "beyond sweep"
        print(f"  {result.config.label:26s} PoFF gain over STA: {text}")

    print()
    print("=" * 72)
    print(f"Fig. 6 -- benchmark comparison @ 0.7 V, sigma = 10 mV")
    print("=" * 72)
    results6 = fig6.run(scale, context=ctx)
    print(fig6.render(results6))


if __name__ == "__main__":
    main()
