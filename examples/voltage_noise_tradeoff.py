#!/usr/bin/env python3
"""Voltage-overscaling / power / quality trade-off (the paper's Fig. 7).

Runs the median benchmark at the fixed nominal 707 MHz clock while the
supply voltage scales below 0.7 V, with the CDFs characterized at 0.7 V
rescaled through the fitted Vdd-delay curve.  Each voltage converts to
normalized core power through the quadratic power model, producing the
error-versus-power trade-off curves for three supply-noise levels.

Run:
    python examples/voltage_noise_tradeoff.py [quick|default|paper]
"""

import sys

from repro.experiments import ExperimentContext, fig7
from repro.power import CorePowerModel


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "quick"
    ctx = ExperimentContext.create(scale)

    result = fig7.run(scale, context=ctx)
    print(fig7.render(result))

    print("\nPaper reference points: PoFF ~0 % error at 0.93x power "
          "(0.667 V); 22 % error at 0.88x power (0.657 V); noise "
          "sigma = 25 mV leaves only marginal savings.")

    power_model = CorePowerModel()
    print("\nPower model sanity:")
    for vdd in (0.700, 0.667, 0.657):
        ratio = power_model.normalized_power(vdd, 707.0)
        print(f"  {vdd:.3f} V -> {ratio:.2f}x core power @ 707 MHz")


if __name__ == "__main__":
    main()
