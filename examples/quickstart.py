#!/usr/bin/env python3
"""Quickstart: statistical timing-error fault injection in 40 lines.

Builds the case-study hardware model (gate-level ALU calibrated to the
707 MHz STA limit at 0.7 V), characterizes it with dynamic timing
analysis, and runs the median benchmark under the paper's model C at a
few clock frequencies around the STA limit.

Run:
    python examples/quickstart.py
"""

import numpy as np

from repro.bench import build_kernel
from repro.fi import StatisticalInjector
from repro.mc import run_point
from repro.netlist import calibrated_alu
from repro.timing import (
    CharacterizationConfig,
    VddDelayModel,
    VoltageNoise,
    get_characterization,
)


def main() -> None:
    # 1. The hardware: a gate-level ALU netlist, sized so the
    #    multiplier limits the clock at 707 MHz @ 0.7 V.
    alu = calibrated_alu()
    print(f"STA limit @ 0.7 V: {alu.sta_limit_hz(0.7) / 1e6:.1f} MHz "
          f"({alu.total_gates()} gates)")

    # 2. Offline characterization: per-instruction timing-error CDFs
    #    extracted by dynamic timing analysis of the netlist.
    characterization = get_characterization(
        alu, CharacterizationConfig(n_cycles_per_instr=512))
    for mnemonic in ("l.mul", "l.add", "l.sll", "l.and"):
        poff = characterization.poff_frequency_hz(mnemonic)
        print(f"  {mnemonic:7s} can first fail at {poff / 1e6:7.1f} MHz")

    # 3. The software: the median benchmark (insertion sort of 129
    #    values), hand-written in OR1K assembly.
    kernel = build_kernel("median", "paper")

    # 4. Monte-Carlo fault injection with model C at 0.7 V and 10 mV
    #    supply noise, sweeping the clock across the transition region.
    vdd_model = VddDelayModel.from_alu_sta(alu)
    noise = VoltageNoise(0.010)
    print(f"\n{'f [MHz]':>8s} {'finished':>9s} {'correct':>8s} "
          f"{'FI/kCyc':>8s} {'rel.err':>8s}")
    for frequency in np.array([650, 707, 730, 760, 800, 850]) * 1e6:
        point = run_point(
            kernel,
            lambda rng, f=frequency: StatisticalInjector(
                characterization, f, noise, vdd_model=vdd_model, rng=rng),
            n_trials=20, seed=1,
        )
        summary = point.summary()
        print(f"{frequency / 1e6:8.0f} {summary['p_finished']:9.0%} "
              f"{summary['p_correct']:8.0%} "
              f"{summary['fi_rate_per_kcycle']:8.2f} "
              f"{summary['mean_relative_error']:8.1%}")


if __name__ == "__main__":
    main()
