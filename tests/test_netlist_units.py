"""Property tests: the ALU unit netlists compute exact integer semantics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.netlist.adders import ADDER_KINDS, adder_circuit
from repro.netlist.logic_unit import OP_AND, OP_OR, OP_XOR, logic_circuit
from repro.netlist.multiplier import multiplier_circuit
from repro.netlist.shifter import shifter_circuit

MASK = (1 << 32) - 1

u32 = st.integers(min_value=0, max_value=MASK)

# Build each circuit once per session (construction dominates runtime).
_ADDERS = {kind: adder_circuit(32, kind) for kind in ADDER_KINDS}
_MUL = multiplier_circuit(32)
_SHIFT = shifter_circuit(32)
_LOGIC = logic_circuit(32)


class TestAdders:
    @pytest.mark.parametrize("kind", ADDER_KINDS)
    @given(a=u32, b=u32)
    @settings(max_examples=30)
    def test_addition(self, kind, a, b):
        out = _ADDERS[kind].evaluate(
            {"a": [a], "b": [b], "sub": [0]})
        assert int(out["result"][0]) == (a + b) & MASK
        assert int(out["cout"][0]) == (a + b) >> 32

    @pytest.mark.parametrize("kind", ADDER_KINDS)
    @given(a=u32, b=u32)
    @settings(max_examples=30)
    def test_subtraction(self, kind, a, b):
        out = _ADDERS[kind].evaluate(
            {"a": [a], "b": [b], "sub": [1]})
        assert int(out["result"][0]) == (a - b) & MASK

    @pytest.mark.parametrize("kind", ADDER_KINDS)
    def test_carry_chain_corner_cases(self, kind):
        circuit = _ADDERS[kind]
        cases = [(MASK, 1), (MASK, MASK), (0, 0), (0x80000000, 0x80000000),
                 (0x55555555, 0xAAAAAAAA)]
        a = np.array([x for x, _ in cases], dtype=np.uint64)
        b = np.array([y for _, y in cases], dtype=np.uint64)
        out = circuit.evaluate({"a": a, "b": b,
                                "sub": np.zeros(len(cases), dtype=np.uint64)})
        expected = [(x + y) & MASK for x, y in cases]
        assert out["result"].tolist() == expected

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown adder"):
            adder_circuit(32, "magic")

    def test_gate_counts_are_plausible(self):
        # Ripple is the smallest; Kogge-Stone trades gates for depth.
        assert _ADDERS["ripple"].n_gates < _ADDERS["kogge-stone"].n_gates


class TestMultiplier:
    @given(a=u32, b=u32)
    @settings(max_examples=30)
    def test_low_word_product(self, a, b):
        out = _MUL.evaluate({"a": [a], "b": [b]})
        assert int(out["result"][0]) == (a * b) & MASK

    def test_signed_equivalence_mod_2_32(self):
        # l.mul is signed, but the low word is sign-agnostic.
        a, b = (-3) & MASK, 7
        out = _MUL.evaluate({"a": [a], "b": [b]})
        assert int(out["result"][0]) == (-21) & MASK

    def test_size_grows_quadratically(self):
        small = multiplier_circuit(8)
        assert small.n_gates < _MUL.n_gates / 8


class TestShifter:
    @given(a=u32, amount=st.integers(min_value=0, max_value=31))
    @settings(max_examples=30)
    def test_logical_left(self, a, amount):
        out = _SHIFT.evaluate({"a": [a], "amount": [amount],
                               "right": [0], "arith": [0]})
        assert int(out["result"][0]) == (a << amount) & MASK

    @given(a=u32, amount=st.integers(min_value=0, max_value=31))
    @settings(max_examples=30)
    def test_logical_right(self, a, amount):
        out = _SHIFT.evaluate({"a": [a], "amount": [amount],
                               "right": [1], "arith": [0]})
        assert int(out["result"][0]) == a >> amount

    @given(a=u32, amount=st.integers(min_value=0, max_value=31))
    @settings(max_examples=30)
    def test_arithmetic_right(self, a, amount):
        signed = a - (1 << 32) if a & 0x80000000 else a
        out = _SHIFT.evaluate({"a": [a], "amount": [amount],
                               "right": [1], "arith": [1]})
        assert int(out["result"][0]) == (signed >> amount) & MASK

    def test_bad_amount_bus_width(self):
        from repro.netlist.circuit import Circuit
        from repro.netlist.shifter import build_barrel_shifter
        circuit = Circuit("bad")
        a = circuit.input_bus("a", 32)
        amount = circuit.input_bus("amount", 4)  # 16 != 32
        right = circuit.input_bus("right", 1)[0]
        arith = circuit.input_bus("arith", 1)[0]
        with pytest.raises(ValueError, match="address"):
            build_barrel_shifter(circuit, a, amount, right, arith)


class TestLogicUnit:
    @given(a=u32, b=u32)
    @settings(max_examples=20)
    def test_ops(self, a, b):
        for op, expected in ((OP_AND, a & b), (OP_OR, a | b),
                             (OP_XOR, a ^ b)):
            out = _LOGIC.evaluate({"a": [a], "b": [b], "op": [op]})
            assert int(out["result"][0]) == expected

    def test_op_3_is_also_xor(self):
        out = _LOGIC.evaluate({"a": [0b1100], "b": [0b1010], "op": [3]})
        assert int(out["result"][0]) == 0b0110
