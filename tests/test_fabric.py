"""Tests for the distributed campaign fabric.

Covers the three tentpole layers end to end: the HTTP object service
and its :class:`HttpBackend` client (checksum-verified GETs,
conditional PUT races, retry, spool degradation + flush), the lease
ledger (expiry math, steal races, renew-after-steal rejection), and
the fabric worker dispatch including the kill-resume matrix case
where a worker SIGKILLed mid-lease is healed by its peer with
byte-identical rendered output.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
from pathlib import Path

import numpy as np
import pytest

from repro import faults, obs
from repro.fabric import HttpBackend, LeaseLedger, LeaseLost, serve
from repro.fabric.worker import Batch, dispatch_fabric, plan_batches
from repro.mc.results import MC_POINT_SCHEMA, McPoint, TrialResult
from repro.mc.units import WorkUnit
from repro.store import ResultStore
from repro.store.backend import FsBackend


@pytest.fixture(autouse=True)
def _clean_plane(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_FAULT_LOG", raising=False)
    monkeypatch.delenv("REPRO_STORE_SPOOL", raising=False)
    faults.reset()
    yield
    faults.reset()


@pytest.fixture()
def service(tmp_path):
    """A live store service on a free loopback port."""
    svc = serve(tmp_path / "served")
    thread = threading.Thread(target=svc.serve_forever, daemon=True)
    thread.start()
    host, port = svc.server_address
    try:
        yield svc, f"http://{host}:{port}"
    finally:
        svc.shutdown()
        svc.server_close()


def _backend(url, tmp_path) -> HttpBackend:
    return HttpBackend(url, spool_dir=tmp_path / "spool",
                       timeout_s=5.0)


def _trial(error=0.25):
    return TrialResult(finished=True, correct=True, error_value=error,
                       relative_error=error / 4, fault_count=1,
                       kernel_cycles=1234, alu_cycles=600, cycles=1300,
                       abort_reason=None)


def _point(label="p"):
    point = McPoint(label=label,
                    config={"frequency_hz": np.float64(7.25e8)})
    point.add(_trial())
    return point


def _key(seed=0):
    return {"kind": "mc_point", "schema": MC_POINT_SCHEMA,
            "experiment": "fabric-test", "scale": None, "seed": seed,
            "stream": "serial", "config": {"vdd": 0.7}}


class TestHttpBackend:
    def test_round_trip_and_conditional_put(self, service, tmp_path):
        _svc, url = service
        backend = _backend(url, tmp_path)
        assert backend.read("objects/aa/x.json") is None
        assert backend.write("objects/aa/x.json", b"payload")
        assert backend.read("objects/aa/x.json") == b"payload"
        assert backend.write("leases/b/g000001", b"A", if_absent=True)
        assert not backend.write("leases/b/g000001", b"B",
                                 if_absent=True)
        assert backend.read("leases/b/g000001") == b"A"
        assert backend.delete("objects/aa/x.json")
        assert not backend.delete("objects/aa/x.json")

    def test_concurrent_conditional_puts_one_winner(self, service,
                                                    tmp_path):
        _svc, url = service
        outcomes = {}

        def claim(index):
            backend = _backend(url, tmp_path / f"c{index}")
            outcomes[index] = backend.write(
                "leases/race/g000001", f"owner-{index}".encode(),
                if_absent=True)

        threads = [threading.Thread(target=claim, args=(index,))
                   for index in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        winners = [i for i, won in outcomes.items() if won]
        assert len(winners) == 1
        body = _backend(url, tmp_path).read("leases/race/g000001")
        assert body == f"owner-{winners[0]}".encode()

    def test_torn_get_is_retried_to_success(self, service, tmp_path):
        # fabric.http.get:corrupt tears the first response body; the
        # checksum check catches it and the retry serves clean bytes.
        _svc, url = service
        backend = _backend(url, tmp_path)
        backend.write("objects/aa/x.json", b"precious-bytes")
        faults.configure("fabric.http.get:corrupt@after=1")
        assert backend.read("objects/aa/x.json") == b"precious-bytes"

    def test_transient_unreachable_put_is_retried(self, service,
                                                  tmp_path):
        _svc, url = service
        backend = _backend(url, tmp_path)
        faults.configure("fabric.http.put:oserror@after=1")
        assert backend.write("objects/aa/y.json", b"made-it")
        assert backend.read("objects/aa/y.json") == b"made-it"
        assert not backend._spool_entries()  # retried, not spooled

    def test_unreachable_service_spools_and_flushes(self, service,
                                                    tmp_path,
                                                    monkeypatch):
        svc, url = service
        backend = _backend(url, tmp_path)
        backend.policy = backend.policy.__class__(
            attempts=1, backoff_s=0.0)
        # Point the client at a dead port: writes degrade to the
        # local spool instead of failing the campaign.
        backend.url = "http://127.0.0.1:9"
        assert backend.write("objects/aa/z.json", b"parked")
        assert len(backend._spool_entries()) == 1
        ping = backend.ping()
        assert not ping["ok"] and ping["degraded"]
        # The degraded client still sees its own write.
        assert backend.read("objects/aa/z.json") == b"parked"
        # Conditional writes must lose, never spool: a claim that
        # cannot reach the arbiter has not won anything.
        assert not backend.write("leases/b/g000001", b"A",
                                 if_absent=True)
        assert len(backend._spool_entries()) == 1
        # Reconnect: the next successful round trip flushes the spool
        # oldest-first and the service converges.
        backend.url = url
        assert backend.read("objects/aa/z.json") == b"parked"
        assert not backend._spool_entries()
        ping = backend.ping()
        assert ping["ok"] and not ping["degraded"]
        assert svc.backend.read("objects/aa/z.json") == b"parked"

    def test_ping_reports_latency_and_objects(self, service, tmp_path):
        _svc, url = service
        ping = _backend(url, tmp_path).ping()
        assert ping["ok"] and ping["backend"] == "http"
        assert ping["latency_ms"] >= 0.0
        assert ping["spooled"] == 0 and not ping["degraded"]


class TestRemoteResultStore:
    def test_artifact_round_trip_over_http(self, service, tmp_path):
        _svc, url = service
        store = ResultStore(backend=_backend(url, tmp_path))
        sha = store.put(_key(), _point("remote"), label="remote")
        assert store.contains(_key())
        artifact = store.get(_key())
        assert artifact is not None and artifact.label == "remote"
        assert [entry.sha256 for entry in store.ls()] == [sha]
        assert store.delete(_key())
        assert store.get(_key()) is None

    def test_torn_write_quarantined_on_the_service(self, service,
                                                   tmp_path):
        svc, url = service
        store = ResultStore(backend=_backend(url, tmp_path))
        faults.configure("store.object_write:torn@after=1")
        store.put(_key(), _point())
        assert store.get(_key()) is None  # detected via envelope parse
        quarantine = Path(svc.backend.root) / "quarantine"
        assert list(quarantine.iterdir())

    def test_gc_refuses_to_run_remotely(self, service, tmp_path):
        _svc, url = service
        store = ResultStore(backend=_backend(url, tmp_path))
        with pytest.raises(RuntimeError, match="service host"):
            store.gc()


class TestLeaseLedger:
    def _ledger(self, tmp_path, ttl=5.0, start=100.0):
        clock = {"now": start}
        backend = FsBackend(tmp_path / "shared")
        ledger = LeaseLedger(backend, ttl_s=ttl,
                             clock=lambda: clock["now"])
        return ledger, clock

    def test_expiry_math(self, tmp_path):
        ledger, clock = self._ledger(tmp_path, ttl=5.0, start=100.0)
        lease = ledger.acquire("b0", "w0")
        assert lease.deadline_unix == 105.0
        clock["now"] = 104.999
        assert not ledger.lapsed(lease)
        clock["now"] = 105.0
        assert ledger.lapsed(lease)  # deadline itself is lapsed

    def test_held_lease_cannot_be_acquired(self, tmp_path):
        ledger, _clock = self._ledger(tmp_path)
        assert ledger.acquire("b0", "w0") is not None
        assert ledger.acquire("b0", "w1") is None
        assert ledger.acquire("b0", "w0") is None  # not even by owner

    def test_steal_after_lapse_bumps_generation(self, tmp_path):
        ledger, clock = self._ledger(tmp_path, ttl=5.0)
        first = ledger.acquire("b0", "w0")
        clock["now"] += 10.0
        stolen = ledger.acquire("b0", "w1")
        assert stolen is not None
        assert stolen.generation == first.generation + 1
        assert stolen.owner == "w1"

    def test_steal_race_has_one_put_if_absent_winner(self, tmp_path):
        # Two claimants race for the same lapsed lease: both read
        # generation 1, both PUT-if-absent generation 2 -- the backend
        # guarantees exactly one winner.
        ledger, clock = self._ledger(tmp_path, ttl=5.0)
        ledger.acquire("b0", "dead")
        clock["now"] += 10.0
        won_a = ledger.acquire("b0", "thief-a")
        won_b = ledger.acquire("b0", "thief-b")
        assert (won_a is None) != (won_b is None)
        winner = won_a or won_b
        assert ledger.latest("b0").owner == winner.owner

    def test_renew_extends_deadline(self, tmp_path):
        ledger, clock = self._ledger(tmp_path, ttl=5.0, start=100.0)
        lease = ledger.acquire("b0", "w0")
        clock["now"] = 103.0
        renewed = ledger.renew(lease)
        assert renewed.deadline_unix == 108.0
        assert ledger.latest("b0").deadline_unix == 108.0

    def test_renew_after_steal_is_rejected(self, tmp_path):
        ledger, clock = self._ledger(tmp_path, ttl=5.0)
        stale = ledger.acquire("b0", "w0")
        clock["now"] += 10.0
        assert ledger.acquire("b0", "w1") is not None  # the steal
        with pytest.raises(LeaseLost, match="held by w1"):
            ledger.renew(stale)

    def test_renew_heartbeat_fault_site(self, tmp_path):
        ledger, _clock = self._ledger(tmp_path)
        lease = ledger.acquire("b0", "w0")
        faults.configure("fabric.lease.renew:oserror@after=1")
        with pytest.raises(OSError, match="fabric.lease.renew"):
            ledger.renew(lease)

    def test_release_returns_batch_to_the_pool(self, tmp_path):
        ledger, _clock = self._ledger(tmp_path)
        lease = ledger.acquire("b0", "w0")
        ledger.release(lease)
        again = ledger.acquire("b0", "w1")
        assert again is not None and again.owner == "w1"

    def test_done_tombstone(self, tmp_path):
        ledger, _clock = self._ledger(tmp_path)
        assert not ledger.is_done("b0")
        ledger.mark_done("b0", "w0")
        assert ledger.is_done("b0")


def _fake_units(n):
    """Cheap, deterministic units persisting real mc_point artifacts."""
    units = []
    for seed in range(n):
        key = _key(seed)
        units.append(WorkUnit(
            label=f"u{seed}", key=key,
            compute=(lambda s=seed: _point(f"u{s}"))))
    return units


class TestFabricDispatch:
    def test_batches_are_deterministic_and_content_addressed(self):
        units = _fake_units(5)
        first = plan_batches(units, [0, 1, 2, 3, 4], batch_units=2)
        again = plan_batches(units, [0, 1, 2, 3, 4], batch_units=2)
        assert first == again
        assert [batch.indices for batch in first] == \
            [(0, 1), (2, 3), (4,)]
        assert len({batch.batch_id for batch in first}) == 3
        # A different pending subset replans identical ids for the
        # batches whose members did not change.
        assert isinstance(first[0], Batch)

    def test_dispatch_computes_everything(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEASE_TTL_S", "5")
        monkeypatch.setenv("REPRO_STORE_NO_FSYNC", "1")
        from repro.campaign.orchestrator import _compute_one
        store = ResultStore(tmp_path / "store")
        units = _fake_units(6)
        outcome = dispatch_fabric(units, list(range(6)), store, 2,
                                  _compute_one)
        assert sorted(outcome["computed"]) == list(range(6))
        assert outcome["failed"] == []
        for unit in units:
            assert store.get(unit.key) is not None

    def test_dispatch_reports_crashing_units_as_failed(self, tmp_path,
                                                       monkeypatch):
        monkeypatch.setenv("REPRO_STORE_NO_FSYNC", "1")
        from repro.campaign.orchestrator import _compute_one
        store = ResultStore(tmp_path / "store")
        units = _fake_units(3)

        def explode():
            raise RuntimeError("boom")

        units[1] = WorkUnit(label="u1", key=_key(1), compute=explode)
        outcome = dispatch_fabric(units, [0, 1, 2], store, 2,
                                  _compute_one)
        assert sorted(outcome["computed"]) == [0, 2]
        assert outcome["failed"] == [1]


DRIVER = Path(__file__).parent / "_chaos_driver.py"


def _run_driver(store: Path, extra_args=(), env_extra=None):
    env = dict(os.environ)
    src = str(Path(__file__).parent.parent / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    for name in ("REPRO_FAULTS", "REPRO_FAULT_LOG", "REPRO_TRACE"):
        env.pop(name, None)
    env.update(env_extra or {})
    return subprocess.run(
        [sys.executable, str(DRIVER), str(store), *extra_args],
        capture_output=True, text=True, env=env, timeout=600)


class TestKillResumeFabric:
    """The matrix cell the fabric exists for: a worker dies mid-lease,
    its peer steals the batch, and the rendered output is
    byte-identical to a serial (pool) baseline."""

    def test_worker_killed_mid_lease_is_healed_by_peer(
            self, tmp_path):
        baseline = _run_driver(tmp_path / "store-baseline")
        assert baseline.returncode == 0, baseline.stderr[-2000:]
        assert baseline.stdout

        log = tmp_path / "faults.jsonl"
        trace = tmp_path / "trace.jsonl"
        chaotic = _run_driver(
            tmp_path / "store-fabric", ("--fabric-workers", "2"),
            env_extra={
                # The site fires only while a lease is held, so
                # after=1 SIGKILLs worker 1 mid-lease with one unit
                # of its batch already computed.
                "REPRO_FAULTS": "fabric.worker.kill.w1:kill@after=1",
                "REPRO_FAULT_LOG": str(log),
                "REPRO_TRACE": str(trace),
                "REPRO_LEASE_TTL_S": "1.5",
                "REPRO_FABRIC_POLL_S": "0.05",
                "REPRO_STORE_NO_FSYNC": "1",
            })
        # The parent survives its worker's death and completes.
        assert chaotic.returncode == 0, chaotic.stderr[-2000:]
        assert chaotic.stdout == baseline.stdout

        fired = faults.read_log(log)
        assert [(f["site"], f["mode"]) for f in fired] == \
            [("fabric.worker.kill.w1", "kill")]
        # The dead worker's lease was *stolen*, not merely backstopped:
        # the surviving worker recovered the batch through the ledger.
        totals = obs.counter_totals(obs.read_trace(trace))
        assert totals.get("fabric.lease.steal", 0) >= 1 \
            or totals.get("fabric.backstop", 0) >= 1
        assert totals.get("fabric.worker.died", 0) == 1

    def test_fabric_run_matches_pool_run_on_shared_store(
            self, tmp_path):
        # Same store, fabric first, then a pool resume: everything is
        # cached, output identical -- the two dispatch paths share
        # keys exactly.
        store = tmp_path / "store"
        fabric = _run_driver(store, ("--fabric-workers", "2"),
                             env_extra={
                                 "REPRO_STORE_NO_FSYNC": "1",
                                 "REPRO_FABRIC_POLL_S": "0.05",
                             })
        assert fabric.returncode == 0, fabric.stderr[-2000:]
        pooled = _run_driver(store)
        assert pooled.returncode == 0, pooled.stderr[-2000:]
        assert pooled.stdout == fabric.stdout


class TestFabricStats:
    def test_fabric_split_aggregates_spans_and_counters(self):
        records = [
            {"t": "span", "name": "fabric.batch", "pid": 1, "id": "a",
             "ts": 0.0, "dur": 2000.0, "a": {"stolen": False}},
            {"t": "span", "name": "fabric.batch", "pid": 2, "id": "b",
             "ts": 10.0, "dur": 4000.0, "a": {"stolen": True}},
            {"t": "ctr", "pid": 1, "ts": 20.0,
             "counters": {"fabric.worker.poll": 3,
                          "fabric.http.retry": 2}},
        ]
        split = obs.fabric_split(records)
        assert split["batches"] == 2
        assert split["first_claims"] == 1 and split["steals"] == 1
        assert split["steal_ms"] == 4.0
        assert split["queue_polls"] == 3
        assert split["http_retries"] == 2
        assert obs.fabric_split([]) is None

    def test_render_stats_has_a_fabric_section(self):
        records = [
            {"t": "span", "name": "fabric.batch", "pid": 1, "id": "a",
             "ts": 0.0, "dur": 2000.0, "a": {"stolen": True}},
            {"t": "ctr", "pid": 1, "ts": 5.0,
             "counters": {"fabric.lease.steal": 1}},
        ]
        text = obs.render_stats(records)
        assert "fabric: 1 leased batch(es)" in text
        assert "1 stolen" in text


class TestStorePingCli:
    def test_ping_healthy_and_strict_degraded(self, service, tmp_path,
                                              capsys, monkeypatch):
        from repro.cli import main
        monkeypatch.setenv("REPRO_STORE_SPOOL",
                           str(tmp_path / "spool"))
        _svc, url = service
        assert main(["store", "ping", url]) == 0
        out = capsys.readouterr().out
        assert "healthy" in out and "latency_ms" in out
        # Unreachable service: --strict turns degraded into rc 1.
        assert main(["store", "ping", "http://127.0.0.1:9"]) == 0
        assert main(["store", "ping", "http://127.0.0.1:9",
                     "--strict"]) == 1
        out = capsys.readouterr().out
        assert "DEGRADED" in out
