"""Unit tests for the instruction-set registry."""

import pytest

from repro.isa.instructions import (
    ALU_MNEMONICS,
    INSTRUCTIONS,
    TimingClass,
    alu_mnemonics_for_class,
    spec_for,
)


class TestRegistry:
    def test_registry_is_nonempty_and_keyed_by_mnemonic(self):
        assert len(INSTRUCTIONS) > 40
        for mnemonic, spec in INSTRUCTIONS.items():
            assert spec.mnemonic == mnemonic
            assert mnemonic.startswith("l.")

    def test_opcodes_fit_in_six_bits(self):
        for spec in INSTRUCTIONS.values():
            assert 0 <= spec.opcode < 64

    def test_spec_for_known(self):
        assert spec_for("l.add").timing_class is TimingClass.ADDER

    def test_spec_for_unknown_raises_with_message(self):
        with pytest.raises(KeyError, match="l.bogus"):
            spec_for("l.bogus")

    def test_unique_encodings_per_format_group(self):
        seen = set()
        for spec in INSTRUCTIONS.values():
            key = (spec.opcode, spec.subopcode, spec.fmt)
            assert key not in seen, f"encoding collision for {spec.mnemonic}"
            seen.add(key)


class TestClassification:
    def test_alu_mnemonics_cover_all_four_units(self):
        classes = {spec_for(m).timing_class for m in ALU_MNEMONICS}
        assert classes == {
            TimingClass.ADDER, TimingClass.MULTIPLIER,
            TimingClass.SHIFTER, TimingClass.LOGIC,
        }

    def test_alu_mnemonics_are_fi_eligible(self):
        for mnemonic in ALU_MNEMONICS:
            assert spec_for(mnemonic).is_alu

    def test_non_alu_examples(self):
        for mnemonic in ("l.lwz", "l.sw", "l.bf", "l.j", "l.nop",
                         "l.sfeq", "l.movhi"):
            assert not spec_for(mnemonic).is_alu

    def test_compare_class_is_not_alu(self):
        # Compares drive only the flag endpoint, which the constraint
        # strategy keeps safe -- they must not be FI-eligible.
        for mnemonic, spec in INSTRUCTIONS.items():
            if spec.timing_class is TimingClass.COMPARE:
                assert not spec.is_alu

    def test_branches_flagged(self):
        assert spec_for("l.j").is_branch
        assert spec_for("l.jr").is_branch
        assert spec_for("l.bf").is_branch
        assert not spec_for("l.add").is_branch

    def test_loads_and_stores_flagged(self):
        assert spec_for("l.lwz").is_load
        assert spec_for("l.sw").is_store
        assert not spec_for("l.lwz").is_store

    def test_class_lookup(self):
        adders = alu_mnemonics_for_class(TimingClass.ADDER)
        assert set(adders) == {"l.add", "l.addi", "l.sub"}
        multipliers = alu_mnemonics_for_class(TimingClass.MULTIPLIER)
        assert set(multipliers) == {"l.mul", "l.muli"}

    def test_immediate_signedness_follows_or1k(self):
        assert spec_for("l.addi").signed_imm
        assert spec_for("l.xori").signed_imm
        assert not spec_for("l.andi").signed_imm
        assert not spec_for("l.ori").signed_imm

    def test_compare_variants_complete(self):
        kinds = ("eq", "ne", "gtu", "geu", "ltu", "leu",
                 "gts", "ges", "lts", "les")
        for kind in kinds:
            assert f"l.sf{kind}" in INSTRUCTIONS
            assert f"l.sf{kind}i" in INSTRUCTIONS
