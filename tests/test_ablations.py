"""Tests for the ablation studies of the reproduction's design choices."""

import pytest

from repro.experiments import ablations
from repro.experiments.context import ExperimentContext
from repro.experiments.scale import Scale

TINY = Scale(name="tiny-abl", trials=6, freq_points=5,
             kernel_scale="quick", char_cycles=192, fig4_samples=384,
             voltage_points=5)


@pytest.fixture(scope="module")
def ctx() -> ExperimentContext:
    return ExperimentContext.create(TINY, seed=2016)


class TestGlitchModelAblation:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return ablations.run_glitch_model_ablation(TINY, context=ctx)

    def test_optimistic_model_claims_more_headroom(self, result):
        # Ignoring glitches raises the PoFF of the glitch-dominated
        # arithmetic paths.  (The two event models are incomparable in
        # general: the value-change engine also counts non-sensitized
        # value toggles that the masking engine excludes, which matters
        # for mux-heavy logic paths.)
        for mnemonic in ("l.mul", "l.muli", "l.add", "l.sub"):
            assert (result.poff_value_change_hz[mnemonic]
                    >= result.poff_sensitized_hz[mnemonic] - 1e-6)

    def test_multiplier_inflation_is_substantial(self, result):
        # The XOR-rich multiplier is glitch dominated: the optimistic
        # model inflates its PoFF by a double-digit percentage.
        assert result.headroom_inflation("l.mul") > 0.10


class TestSemanticsAblation:
    def test_both_semantics_inject_similar_rates(self, ctx):
        result = ablations.run_semantics_ablation(TINY, context=ctx)
        flip_rate = result.summary_flip["fi_rate_per_kcycle"]
        stale_rate = result.summary_stale["fi_rate_per_kcycle"]
        # The fault *mask* distribution is identical; only the applied
        # corruption differs.  Rates must be in the same ballpark.
        assert flip_rate > 0 or stale_rate >= 0
        if flip_rate > 0 and stale_rate > 0:
            assert 0.2 < flip_rate / stale_rate < 5.0


class TestAdderTopologyAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablations.run_adder_topology_ablation(TINY)

    def test_artifact_round_trip_is_exact(self, result):
        import json
        back = ablations.AdderTopologyAblation.from_json(
            json.loads(json.dumps(result.to_json())))
        assert back.poffs_hz == result.poffs_hz

    def test_warm_store_rerun_is_dta_free_and_identical(
            self, result, tmp_path, monkeypatch):
        from repro.store import ResultStore
        store = ResultStore(tmp_path / "store")
        cold = ablations.run_adder_topology_ablation(TINY, store=store)
        assert cold.poffs_hz == result.poffs_hz
        monkeypatch.setenv("REPRO_FORBID_DTA", "1")
        warm = ablations.run_adder_topology_ablation(TINY, store=store)
        assert warm.poffs_hz == result.poffs_hz

    def test_all_topologies_measured(self, result):
        assert set(result.poffs_hz) == {"ripple", "carry-select",
                                        "kogge-stone"}

    def test_narrow_operands_never_fail_earlier(self, result):
        for kind in result.poffs_hz:
            assert result.width_spread(kind) >= 1.0 - 1e-9

    def test_ripple_has_largest_width_spread(self, result):
        """Ripple's linear arrival profile makes the 16-bit add PoFF
        much higher; parallel-prefix flattens the profile.  The
        carry-select default sits in between, closest to the paper's
        877/746 = 1.18."""
        assert (result.width_spread("ripple")
                >= result.width_spread("kogge-stone"))

    def test_default_topology_near_paper_spread(self, result):
        assert 1.0 < result.width_spread("carry-select") < 1.8


class TestRender:
    def test_render_all(self, ctx):
        glitch = ablations.run_glitch_model_ablation(TINY, context=ctx)
        semantics = ablations.run_semantics_ablation(TINY, context=ctx)
        adders = ablations.run_adder_topology_ablation(TINY)
        text = ablations.render_all(glitch, semantics, adders)
        assert "glitch model" in text
        assert "carry-select" in text
