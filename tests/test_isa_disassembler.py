"""Unit and property tests for the disassembler."""

from hypothesis import given, strategies as st

from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble, disassemble_range, \
    format_decoded
from repro.isa.encoding import decode, encode, make
from repro.isa.instructions import INSTRUCTIONS


class TestFormat:
    def test_rrr(self):
        assert format_decoded(make("l.add", rd=1, ra=2, rb=3)) == \
            "l.add r1, r2, r3"

    def test_load_store(self):
        assert format_decoded(make("l.lwz", rd=2, ra=3, imm=8)) == \
            "l.lwz r2, 8(r3)"
        assert format_decoded(make("l.sw", ra=5, rb=6, imm=-4)) == \
            "l.sw -4(r5), r6"

    def test_jump_with_address_context(self):
        text = format_decoded(make("l.j", imm=4), address=0x10)
        assert text == "l.j 0x20"

    def test_jump_without_address_context(self):
        assert format_decoded(make("l.j", imm=-2)) == "l.j .-8"

    def test_nop_reason_code(self):
        assert format_decoded(make("l.nop", imm=1)) == "l.nop 0x1"
        assert format_decoded(make("l.nop", imm=0)) == "l.nop"

    def test_illegal_word_renders_as_data(self):
        assert disassemble(0xFC001234) == ".word 0xfc001234"


class TestRoundTrip:
    @given(st.sampled_from(sorted(INSTRUCTIONS)))
    def test_disassembly_reassembles_to_same_word(self, mnemonic):
        decoded = make(mnemonic, rd=5, ra=6, rb=7, imm=4)
        word = encode(decoded)
        # Render at address 0 so jump targets are absolute.
        text = format_decoded(decode(word), address=0)
        program = assemble(text + "\n")
        assert program.words[0] == word

    def test_range_listing(self):
        program = assemble("l.nop\nl.addi r1, r0, 3\n")
        lines = disassemble_range(program.words)
        assert lines[0].startswith("0x0000: l.nop")
        assert "l.addi r1, r0, 3" in lines[1]
