"""Tests for the campaign orchestrator and store-aware drivers.

The invariants under test are the subsystem's reason to exist:

* a store-served (warm) figure run is byte-identical to a fresh one
  and performs **zero** Monte-Carlo simulation;
* a campaign killed mid-run resumes to byte-identical rendered output;
* sharding units over a process pool changes nothing but wall time.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.campaign import campaign_status, plan_campaign, run_campaign
from repro.campaign.orchestrator import _init_worker, _run_shard
from repro.experiments import ablations, fig2, fig4, fig5, fig6, fig7
from repro.experiments.context import ExperimentContext
from repro.experiments.scale import Scale
from repro.store import ResultStore

TINY = Scale(name="tiny", trials=4, freq_points=4, kernel_scale="quick",
             char_cycles=128, fig4_samples=128, voltage_points=3)

SEED = 2016


@pytest.fixture(scope="module")
def ctx() -> ExperimentContext:
    return ExperimentContext.create(TINY, seed=SEED)


@pytest.fixture(scope="module")
def fig7_truth(ctx) -> str:
    """Rendered fig7 with no store involved: the ground truth."""
    return fig7.render(fig7.run(TINY, seed=SEED, context=ctx))


@pytest.fixture()
def store(tmp_path) -> ResultStore:
    return ResultStore(tmp_path / "store")


class _Forbidden(Exception):
    pass


class TestStoreAwareDrivers:
    def test_warm_fig7_is_identical_and_simulation_free(
            self, ctx, fig7_truth, store, monkeypatch):
        cold = fig7.render(fig7.run(TINY, seed=SEED, context=ctx,
                                    store=store))
        assert cold == fig7_truth

        def boom(*args, **kwargs):
            raise _Forbidden("run_point called on a warm store")
        monkeypatch.setattr("repro.experiments.fig7.run_point", boom)
        warm = fig7.render(fig7.run(TINY, seed=SEED, context=ctx,
                                    store=store))
        assert warm == fig7_truth

    def test_driver_n_jobs_is_bit_identical_across_job_counts(self, ctx):
        serial = fig7.run(TINY, seed=SEED, context=ctx, n_jobs=1)
        pooled = fig7.run(TINY, seed=SEED, context=ctx, n_jobs=2)
        assert fig7.render(pooled) == fig7.render(serial)
        for a, b in zip(serial.curves, pooled.curves):
            for pa, pb in zip(a.points, b.points):
                assert pa.point.trials == pb.point.trials

    def test_per_trial_stream_entries_do_not_collide_with_serial(
            self, ctx, store):
        # Same configuration, different stream scheme -> different keys.
        serial_units = fig7.point_units(ctx, seed=SEED)
        pooled_units = fig7.point_units(ctx, seed=SEED, n_jobs=2)
        serial_keys = {store.key_of(unit.key) for unit in serial_units}
        pooled_keys = {store.key_of(unit.key) for unit in pooled_units}
        assert serial_keys.isdisjoint(pooled_keys)

    def test_characterization_persists_across_contexts(self, store):
        first = ExperimentContext.create(TINY, seed=SEED, store=store)
        tables = first.characterization(0.7)
        assert any(entry.kind == "alu_characterization"
                   for entry in store.ls())
        # A fresh context (fresh process in real life) reloads
        # bit-identical tables from the store.
        import numpy as np
        from repro.timing import characterize
        second = ExperimentContext.create(TINY, seed=SEED, store=store)
        characterize.clear_cache()  # drop the in-process cache
        reloaded = second.characterization(0.7)
        assert reloaded is not tables
        assert reloaded.mnemonics == tables.mnemonics
        for mnemonic in tables.mnemonics:
            assert np.array_equal(
                reloaded.cdfs[mnemonic].critical_rows,
                tables.cdfs[mnemonic].critical_rows)


class TestCampaign:
    def test_serial_campaign_matches_direct_driver(self, fig7_truth,
                                                   store):
        report = run_campaign("fig7", TINY, seed=SEED, store=store,
                              jobs=1)
        assert report.rendered == fig7_truth
        assert report.computed == report.total and report.cached == 0

    def test_status_tracks_progress(self, store):
        status = campaign_status("fig7", TINY, SEED, store)
        assert status.done == 0 and len(status.pending) == status.total
        run_campaign("fig7", TINY, seed=SEED, store=store, jobs=1)
        status = campaign_status("fig7", TINY, SEED, store)
        assert status.done == status.total and status.pending == []

    def test_resume_after_kill_is_byte_identical(self, fig7_truth,
                                                 store):
        # Kill the campaign mid-run: abort after 4 persisted units
        # (the store state is then exactly that of a SIGKILLed run,
        # since every unit lands atomically the moment it completes).
        budget = 4

        class _Killed(Exception):
            pass

        original_put = store.put
        calls = {"n": 0}

        def killing_put(key, artifact, label=""):
            if calls["n"] >= budget:
                raise _Killed()
            calls["n"] += 1
            return original_put(key, artifact, label=label)

        store.put = killing_put
        with pytest.raises(_Killed):
            run_campaign("fig7", TINY, seed=SEED, store=store, jobs=1)
        store.put = original_put

        partial = campaign_status("fig7", TINY, SEED, store)
        assert 0 < partial.done < partial.total

        # Resume (same call again): only the missing units execute and
        # the rendered output is byte-identical to an uninterrupted run.
        report = run_campaign("fig7", TINY, seed=SEED, store=store,
                              jobs=1)
        assert report.cached == partial.done
        assert report.computed == partial.total - partial.done
        assert report.rendered == fig7_truth

    def test_pool_vs_serial_equivalence(self, fig7_truth, store,
                                        tmp_path):
        pooled = run_campaign("fig7", TINY, seed=SEED, store=store,
                              jobs=3)
        assert pooled.rendered == fig7_truth
        # And a warm resume over the pooled store renders identically
        # without computing anything.
        resumed = run_campaign("fig7", TINY, seed=SEED, store=store,
                               jobs=1)
        assert resumed.computed == 0
        assert resumed.rendered == fig7_truth

    def test_campaign_rejects_missing_store(self):
        with pytest.raises(ValueError):
            run_campaign("fig7", TINY, seed=SEED, store=None)

    def test_unknown_experiment(self, store):
        with pytest.raises(KeyError):
            run_campaign("nope", TINY, seed=SEED, store=store)


class TestCampaignWarm:
    def test_warm_campaign_is_simulation_free(self, store, fig7_truth):
        run_campaign("fig7", TINY, seed=SEED, store=store, jobs=1)
        # Second run: every unit is a store hit; forbid the simulator.
        import repro.experiments.fig7 as fig7_module

        def boom(*args, **kwargs):
            raise AssertionError("run_point called on a warm campaign")

        original = fig7_module.run_point
        fig7_module.run_point = boom
        try:
            report = run_campaign("fig7", TINY, seed=SEED, store=store,
                                  jobs=1)
        finally:
            fig7_module.run_point = original
        assert report.cached == report.total
        assert report.rendered == fig7_truth


class TestOtherPlans:
    def test_fig5_plan_shape(self, ctx):
        plan = plan_campaign("fig5", ctx, SEED)
        assert len(plan.units) == 6 * TINY.freq_points
        assert len({ResultStore.key_of(unit.key)
                    for unit in plan.units}) == len(plan.units)

    def test_fig6_campaign_small(self, ctx, store):
        # Two benchmarks only, driven through the driver API (the
        # campaign registry runs the full figure; this keeps CI fast).
        benchmarks = ("mat_mult_8bit",)
        truth = fig6.render(fig6.run(TINY, seed=SEED, context=ctx,
                                     benchmarks=benchmarks))
        cold = fig6.render(fig6.run(TINY, seed=SEED, context=ctx,
                                    benchmarks=benchmarks, store=store))
        warm = fig6.render(fig6.run(TINY, seed=SEED, context=ctx,
                                    benchmarks=benchmarks, store=store))
        assert cold == truth and warm == truth

    def test_ablations_semantics_store_round_trip(self, ctx, store):
        truth = ablations.run_semantics_ablation(TINY, seed=SEED,
                                                 context=ctx)
        cold = ablations.run_semantics_ablation(TINY, seed=SEED,
                                                context=ctx, store=store)
        warm = ablations.run_semantics_ablation(TINY, seed=SEED,
                                                context=ctx, store=store)
        assert cold == truth and warm == truth

    def test_fig5_units_label_their_condition(self, ctx):
        plan = plan_campaign("fig5", ctx, SEED)
        assert all(unit.label.startswith("fig5:")
                   for unit in plan.units)


class TestCurveArtifacts:
    """fig2/fig4 curves as first-class store artifacts."""

    def _cdf_curve(self) -> fig2.CdfCurve:
        rng = np.random.default_rng(3)
        return fig2.CdfCurve(
            mnemonic="l.mul", bit=24, vdd=0.7,
            frequencies_hz=np.linspace(8e8, 2e9, 17),
            probabilities=rng.random(17))

    def _mse_curve(self) -> fig4.InstructionMseCurve:
        rng = np.random.default_rng(4)
        return fig4.InstructionMseCurve(
            label="l.add 16-bit", mnemonic="l.add", operand_bits=15,
            frequencies_hz=np.linspace(6.5e8, 1.25e9, 13),
            mse=rng.random(13) * 1e9)

    def test_fig2_curve_round_trip_bit_exact(self):
        curve = self._cdf_curve()
        back = fig2.CdfCurve.from_json(
            json.loads(json.dumps(curve.to_json())))
        assert back.mnemonic == curve.mnemonic
        assert back.bit == curve.bit and back.vdd == curve.vdd
        assert back.frequencies_hz.tobytes() == \
            curve.frequencies_hz.tobytes()
        assert back.probabilities.tobytes() == \
            curve.probabilities.tobytes()
        assert back.frequencies_hz.dtype == curve.frequencies_hz.dtype

    def test_fig4_curve_round_trip_bit_exact(self):
        curve = self._mse_curve()
        back = fig4.InstructionMseCurve.from_json(
            json.loads(json.dumps(curve.to_json())))
        assert back.label == curve.label
        assert back.operand_bits == curve.operand_bits
        assert back.frequencies_hz.tobytes() == \
            curve.frequencies_hz.tobytes()
        assert back.mse.tobytes() == curve.mse.tobytes()
        assert back.poff_hz() == curve.poff_hz()

    def test_schema_guard(self):
        payload = self._cdf_curve().to_json()
        payload["schema"] = fig2.FIG2_CURVE_SCHEMA + 1
        with pytest.raises(ValueError):
            fig2.CdfCurve.from_json(payload)
        payload = self._mse_curve().to_json()
        payload["schema"] = fig4.FIG4_CURVE_SCHEMA + 1
        with pytest.raises(ValueError):
            fig4.InstructionMseCurve.from_json(payload)

    def test_store_round_trip_through_kind_registry(self, store):
        curve = self._cdf_curve()
        from repro.mc.units import work_unit_key
        key = work_unit_key("fig2_curve", "fig2", None, SEED,
                            {"mnemonic": "l.mul", "bit": 24})
        store.put(key, curve, label="curve")
        back = store.get(key)
        assert isinstance(back, fig2.CdfCurve)
        assert back.probabilities.tobytes() == \
            curve.probabilities.tobytes()

    def test_warm_fig2_is_identical_and_dta_free(self, ctx, store,
                                                 monkeypatch):
        # The CLI flow: a store-attached context persists the
        # characterizations, curves land as fig2_curve units.
        truth = fig2.render(fig2.run(TINY, seed=SEED, context=ctx,
                                     points=61))
        cold_ctx = ExperimentContext.create(TINY, seed=SEED,
                                            store=store)
        cold = fig2.render(fig2.run(TINY, seed=SEED, context=cold_ctx,
                                    points=61))
        assert cold == truth
        # A fresh process (fresh context, cold in-memory caches) must
        # serve the rerun entirely from the store: any DTA is a bug.
        from repro.timing import characterize
        characterize.clear_cache()
        monkeypatch.setenv("REPRO_FORBID_DTA", "1")
        warm_ctx = ExperimentContext.create(TINY, seed=SEED,
                                            store=store)
        warm = fig2.render(fig2.run(TINY, seed=SEED, context=warm_ctx,
                                    points=61))
        assert warm == truth

    def test_warm_fig4_is_identical_and_dta_free(self, ctx, store,
                                                 monkeypatch):
        truth = fig4.render(fig4.run(TINY, seed=SEED, context=ctx))
        cold = fig4.render(fig4.run(TINY, seed=SEED, context=ctx,
                                    store=store))
        assert cold == truth
        monkeypatch.setenv("REPRO_FORBID_DTA", "1")
        warm = fig4.render(fig4.run(TINY, seed=SEED, context=ctx,
                                    store=store))
        assert warm == truth

    def test_fig4_variants_are_order_independent(self, ctx):
        # Decomposed units must not share RNG state: computing a
        # variant alone matches computing it after the others.
        units = fig4.curve_units(ctx, seed=SEED)
        alone = units[2].compute()
        in_order = [unit.compute() for unit in units][2]
        assert alone.mse.tobytes() == in_order.mse.tobytes()


class TestCampaignAll:
    @pytest.fixture(scope="class")
    def all_truth(self, store_factory) -> str:
        """Uninterrupted `campaign run all` output: the ground truth."""
        report = run_campaign("all", TINY, seed=SEED,
                              store=store_factory("truth"), jobs=1)
        return report.rendered

    @pytest.fixture(scope="class")
    def store_factory(self, tmp_path_factory):
        def make(name):
            return ResultStore(tmp_path_factory.mktemp(name) / "store")
        return make

    def test_all_covers_every_campaign_experiment(self, all_truth):
        for name in ("fig2", "fig4", "fig5", "fig6", "fig7",
                     "ablations"):
            assert f"\n{name} (scale: tiny)\n" in all_truth

    def test_all_sections_match_direct_drivers(self, all_truth, ctx,
                                               fig7_truth):
        assert fig7_truth in all_truth
        assert fig4.render(fig4.run(TINY, seed=SEED, context=ctx)) \
            in all_truth

    def test_resume_after_kill_is_byte_identical(self, all_truth,
                                                 store_factory):
        store = store_factory("killed")
        budget = 5

        class _Killed(Exception):
            pass

        original_put = store.put
        calls = {"n": 0}

        def killing_put(key, artifact, label=""):
            if calls["n"] >= budget:
                raise _Killed()
            calls["n"] += 1
            return original_put(key, artifact, label=label)

        store.put = killing_put
        with pytest.raises(_Killed):
            run_campaign("all", TINY, seed=SEED, store=store, jobs=1)
        store.put = original_put

        partial = campaign_status("all", TINY, SEED, store)
        assert 0 < partial.done < partial.total

        report = run_campaign("all", TINY, seed=SEED, store=store,
                              jobs=1)
        assert report.rendered == all_truth
        assert report.computed == partial.total - partial.done

    def test_warm_all_is_simulation_free(self, all_truth, store_factory,
                                         monkeypatch):
        store = store_factory("warm")
        run_campaign("all", TINY, seed=SEED, store=store, jobs=1)
        monkeypatch.setenv("REPRO_FORBID_MC", "1")
        monkeypatch.setenv("REPRO_FORBID_DTA", "1")
        report = run_campaign("all", TINY, seed=SEED, store=store,
                              jobs=1)
        assert report.computed == 0
        assert report.rendered == all_truth


class TestReportAccuracy:
    def test_shards_report_only_what_they_computed(self, ctx, store):
        # Pre-store one unit, then hand a shard both indices: the
        # race recheck must skip the stored one and the shard must not
        # count it as computed.
        units = fig7.point_units(ctx, seed=SEED)[:2]
        store.put(units[0].key, units[0].compute(),
                  label=units[0].label)
        _init_worker({"units": units, "store": store})
        outcome = _run_shard([0, 1])
        assert outcome["computed"] == [1]
        assert outcome["failed"] == []


class TestColdStoreDetection:
    def test_foreign_characterization_does_not_suppress_warning(
            self, store):
        # A characterization persisted for a *different* seed must not
        # hide that this campaign's planning will run DTA.
        other = ExperimentContext.create(TINY, seed=SEED + 1,
                                         store=store)
        other.characterization(0.7)
        assert any(entry.kind == "alu_characterization"
                   for entry in store.ls())
        warnings: list[str] = []
        campaign_status("fig7", TINY, SEED, store,
                        log=warnings.append)
        assert any("DTA" in message for message in warnings)

    def test_matching_characterization_silences_warning(self, store):
        mine = ExperimentContext.create(TINY, seed=SEED, store=store)
        mine.characterization(0.7)
        warnings: list[str] = []
        campaign_status("fig7", TINY, SEED, store,
                        log=warnings.append)
        assert warnings == []


class TestFailureIsolation:
    """Crashing units must not abort or poison the campaign."""

    @pytest.fixture(autouse=True)
    def _clean_plane(self, monkeypatch):
        from repro import faults
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        monkeypatch.delenv("REPRO_FAULT_LOG", raising=False)
        faults.reset()
        yield
        faults.reset()

    def test_failed_unit_is_recorded_and_the_rest_complete(self, store):
        from repro import faults
        from repro.campaign.failures import failure_key
        faults.configure("campaign.unit_run:raise@after=1")
        report = run_campaign("fig7", TINY, seed=SEED, store=store,
                              jobs=1)
        assert report.failed == 1
        assert len(report.failures) == 1
        assert report.computed == report.total - 1
        assert "NOT RENDERED" in report.rendered
        assert report.failures[0] in report.rendered
        assert "FAILED" in report.summary()
        # The marker is in the store, with the traceback and count.
        plan = plan_campaign("fig7",
                             ExperimentContext.create(
                                 TINY, seed=SEED, store=store), SEED)
        failed_unit = next(unit for unit in plan.units
                           if unit.label == report.failures[0])
        marker = store.get(failure_key(failed_unit.key))
        assert marker is not None
        assert marker.attempts == 1
        assert "InjectedFault" in marker.error

    def test_status_reports_failed_separately_from_pending(self, store):
        from repro import faults
        faults.configure("campaign.unit_run:raise@after=1")
        run_campaign("fig7", TINY, seed=SEED, store=store, jobs=1)
        faults.reset()
        status = campaign_status("fig7", TINY, SEED, store)
        assert len(status.failed) == 1
        assert "attempts=1" in status.failed[0]
        assert status.pending == []
        assert status.done == status.total - 1
        assert "1 failed" in status.summary()

    def test_max_retries_heals_a_flaky_unit_in_one_run(self, store):
        from repro import faults
        faults.configure("campaign.unit_run:raise@hits=1")
        report = run_campaign("fig7", TINY, seed=SEED, store=store,
                              jobs=1, max_retries=2)
        assert report.failed == 0
        assert report.computed == report.total
        status = campaign_status("fig7", TINY, SEED, store)
        assert status.failed == []  # success cleared the marker

    def test_rerun_clears_the_marker_and_renders(self, store, ctx,
                                                 fig7_truth):
        from repro import faults
        faults.configure("campaign.unit_run:raise@after=1")
        first = run_campaign("fig7", TINY, seed=SEED, store=store,
                             jobs=1)
        assert first.failed == 1
        faults.reset()
        second = run_campaign("fig7", TINY, seed=SEED, store=store,
                              jobs=1)
        assert second.failed == 0
        assert second.computed == 1  # exactly the previously failed unit
        assert second.rendered == fig7_truth
        status = campaign_status("fig7", TINY, SEED, store)
        assert status.failed == []
        assert status.pending == []
