"""Tests for the campaign orchestrator and store-aware drivers.

The invariants under test are the subsystem's reason to exist:

* a store-served (warm) figure run is byte-identical to a fresh one
  and performs **zero** Monte-Carlo simulation;
* a campaign killed mid-run resumes to byte-identical rendered output;
* sharding units over a process pool changes nothing but wall time.
"""

from __future__ import annotations

import pytest

from repro.campaign import campaign_status, plan_campaign, run_campaign
from repro.experiments import ablations, fig5, fig6, fig7
from repro.experiments.context import ExperimentContext
from repro.experiments.scale import Scale
from repro.store import ResultStore

TINY = Scale(name="tiny", trials=4, freq_points=4, kernel_scale="quick",
             char_cycles=128, fig4_samples=128, voltage_points=3)

SEED = 2016


@pytest.fixture(scope="module")
def ctx() -> ExperimentContext:
    return ExperimentContext.create(TINY, seed=SEED)


@pytest.fixture(scope="module")
def fig7_truth(ctx) -> str:
    """Rendered fig7 with no store involved: the ground truth."""
    return fig7.render(fig7.run(TINY, seed=SEED, context=ctx))


@pytest.fixture()
def store(tmp_path) -> ResultStore:
    return ResultStore(tmp_path / "store")


class _Forbidden(Exception):
    pass


class TestStoreAwareDrivers:
    def test_warm_fig7_is_identical_and_simulation_free(
            self, ctx, fig7_truth, store, monkeypatch):
        cold = fig7.render(fig7.run(TINY, seed=SEED, context=ctx,
                                    store=store))
        assert cold == fig7_truth

        def boom(*args, **kwargs):
            raise _Forbidden("run_point called on a warm store")
        monkeypatch.setattr("repro.experiments.fig7.run_point", boom)
        warm = fig7.render(fig7.run(TINY, seed=SEED, context=ctx,
                                    store=store))
        assert warm == fig7_truth

    def test_driver_n_jobs_is_bit_identical_across_job_counts(self, ctx):
        serial = fig7.run(TINY, seed=SEED, context=ctx, n_jobs=1)
        pooled = fig7.run(TINY, seed=SEED, context=ctx, n_jobs=2)
        assert fig7.render(pooled) == fig7.render(serial)
        for a, b in zip(serial.curves, pooled.curves):
            for pa, pb in zip(a.points, b.points):
                assert pa.point.trials == pb.point.trials

    def test_per_trial_stream_entries_do_not_collide_with_serial(
            self, ctx, store):
        # Same configuration, different stream scheme -> different keys.
        serial_units = fig7.point_units(ctx, seed=SEED)
        pooled_units = fig7.point_units(ctx, seed=SEED, n_jobs=2)
        serial_keys = {store.key_of(unit.key) for unit in serial_units}
        pooled_keys = {store.key_of(unit.key) for unit in pooled_units}
        assert serial_keys.isdisjoint(pooled_keys)

    def test_characterization_persists_across_contexts(self, store):
        first = ExperimentContext.create(TINY, seed=SEED, store=store)
        tables = first.characterization(0.7)
        assert any(entry.kind == "alu_characterization"
                   for entry in store.ls())
        # A fresh context (fresh process in real life) reloads
        # bit-identical tables from the store.
        import numpy as np
        from repro.timing import characterize
        second = ExperimentContext.create(TINY, seed=SEED, store=store)
        characterize.clear_cache()  # drop the in-process cache
        reloaded = second.characterization(0.7)
        assert reloaded is not tables
        assert reloaded.mnemonics == tables.mnemonics
        for mnemonic in tables.mnemonics:
            assert np.array_equal(
                reloaded.cdfs[mnemonic].critical_rows,
                tables.cdfs[mnemonic].critical_rows)


class TestCampaign:
    def test_serial_campaign_matches_direct_driver(self, fig7_truth,
                                                   store):
        report = run_campaign("fig7", TINY, seed=SEED, store=store,
                              jobs=1)
        assert report.rendered == fig7_truth
        assert report.computed == report.total and report.cached == 0

    def test_status_tracks_progress(self, store):
        status = campaign_status("fig7", TINY, SEED, store)
        assert status.done == 0 and len(status.pending) == status.total
        run_campaign("fig7", TINY, seed=SEED, store=store, jobs=1)
        status = campaign_status("fig7", TINY, SEED, store)
        assert status.done == status.total and status.pending == []

    def test_resume_after_kill_is_byte_identical(self, fig7_truth,
                                                 store):
        # Kill the campaign mid-run: abort after 4 persisted units
        # (the store state is then exactly that of a SIGKILLed run,
        # since every unit lands atomically the moment it completes).
        budget = 4

        class _Killed(Exception):
            pass

        original_put = store.put
        calls = {"n": 0}

        def killing_put(key, artifact, label=""):
            if calls["n"] >= budget:
                raise _Killed()
            calls["n"] += 1
            return original_put(key, artifact, label=label)

        store.put = killing_put
        with pytest.raises(_Killed):
            run_campaign("fig7", TINY, seed=SEED, store=store, jobs=1)
        store.put = original_put

        partial = campaign_status("fig7", TINY, SEED, store)
        assert 0 < partial.done < partial.total

        # Resume (same call again): only the missing units execute and
        # the rendered output is byte-identical to an uninterrupted run.
        report = run_campaign("fig7", TINY, seed=SEED, store=store,
                              jobs=1)
        assert report.cached == partial.done
        assert report.computed == partial.total - partial.done
        assert report.rendered == fig7_truth

    def test_pool_vs_serial_equivalence(self, fig7_truth, store,
                                        tmp_path):
        pooled = run_campaign("fig7", TINY, seed=SEED, store=store,
                              jobs=3)
        assert pooled.rendered == fig7_truth
        # And a warm resume over the pooled store renders identically
        # without computing anything.
        resumed = run_campaign("fig7", TINY, seed=SEED, store=store,
                               jobs=1)
        assert resumed.computed == 0
        assert resumed.rendered == fig7_truth

    def test_campaign_rejects_missing_store(self):
        with pytest.raises(ValueError):
            run_campaign("fig7", TINY, seed=SEED, store=None)

    def test_unknown_experiment(self, store):
        with pytest.raises(KeyError):
            run_campaign("nope", TINY, seed=SEED, store=store)


class TestCampaignWarm:
    def test_warm_campaign_is_simulation_free(self, store, fig7_truth):
        run_campaign("fig7", TINY, seed=SEED, store=store, jobs=1)
        # Second run: every unit is a store hit; forbid the simulator.
        import repro.experiments.fig7 as fig7_module

        def boom(*args, **kwargs):
            raise AssertionError("run_point called on a warm campaign")

        original = fig7_module.run_point
        fig7_module.run_point = boom
        try:
            report = run_campaign("fig7", TINY, seed=SEED, store=store,
                                  jobs=1)
        finally:
            fig7_module.run_point = original
        assert report.cached == report.total
        assert report.rendered == fig7_truth


class TestOtherPlans:
    def test_fig5_plan_shape(self, ctx):
        plan = plan_campaign("fig5", ctx, SEED)
        assert len(plan.units) == 6 * TINY.freq_points
        assert len({ResultStore.key_of(unit.key)
                    for unit in plan.units}) == len(plan.units)

    def test_fig6_campaign_small(self, ctx, store):
        # Two benchmarks only, driven through the driver API (the
        # campaign registry runs the full figure; this keeps CI fast).
        benchmarks = ("mat_mult_8bit",)
        truth = fig6.render(fig6.run(TINY, seed=SEED, context=ctx,
                                     benchmarks=benchmarks))
        cold = fig6.render(fig6.run(TINY, seed=SEED, context=ctx,
                                    benchmarks=benchmarks, store=store))
        warm = fig6.render(fig6.run(TINY, seed=SEED, context=ctx,
                                    benchmarks=benchmarks, store=store))
        assert cold == truth and warm == truth

    def test_ablations_semantics_store_round_trip(self, ctx, store):
        truth = ablations.run_semantics_ablation(TINY, seed=SEED,
                                                 context=ctx)
        cold = ablations.run_semantics_ablation(TINY, seed=SEED,
                                                context=ctx, store=store)
        warm = ablations.run_semantics_ablation(TINY, seed=SEED,
                                                context=ctx, store=store)
        assert cold == truth and warm == truth

    def test_fig5_units_label_their_condition(self, ctx):
        plan = plan_campaign("fig5", ctx, SEED)
        assert all(unit.label.startswith("fig5:")
                   for unit in plan.units)
