"""Tests for the benchmark kernels and their golden references."""

import numpy as np
import pytest

from repro.bench import dijkstra, kmeans, matmul, median
from repro.bench.suite import BENCHMARK_NAMES, build_kernel
from repro.sim.cpu import Cpu


def execute(kernel):
    cpu = Cpu(kernel.program)
    result = cpu.run(kernel.entry)
    outputs = cpu.dmem.read_words(kernel.output_address,
                                  kernel.output_count)
    return result, outputs


class TestFaultFreeExecution:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_quick_kernels_correct(self, name):
        kernel = build_kernel(name, "quick")
        result, outputs = execute(kernel)
        assert result.finished
        assert kernel.is_correct(outputs)
        assert kernel.error_value(outputs, kernel.golden) == 0.0

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_kernel_cycles_dominate(self, name):
        """FI covers the kernel part, which must dominate the runtime
        (the paper: 99 %+; small problem sizes still exceed 95 %)."""
        kernel = build_kernel(name, "quick")
        result, _ = execute(kernel)
        assert result.kernel_cycles / result.cycles > 0.95

    def test_deterministic_given_seed(self):
        a = build_kernel("median", "quick", seed=5)
        b = build_kernel("median", "quick", seed=5)
        assert a.program.words == b.program.words
        assert a.golden == b.golden

    def test_different_seeds_differ(self):
        a = build_kernel("median", "quick", seed=5)
        b = build_kernel("median", "quick", seed=6)
        assert a.program.words != b.program.words

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            build_kernel("quicksort", "quick")

    def test_unknown_scale(self):
        with pytest.raises(ValueError, match="scale"):
            build_kernel("median", "huge")


class TestMedian:
    def test_golden_matches_numpy(self):
        values = median.generate_inputs(33, seed=9)
        assert median.golden_median(values) == int(np.median(values))

    def test_even_size_takes_upper_middle(self):
        assert median.golden_median([1, 2, 3, 4]) == 3

    def test_asm_matches_golden_for_various_sizes(self):
        for size in (5, 17, 33):
            kernel = median.build(size, seed=size)
            result, outputs = execute(kernel)
            assert result.finished
            assert outputs == kernel.golden

    def test_validation(self):
        with pytest.raises(ValueError):
            median.build(0)


class TestMatmul:
    def test_golden_matches_numpy(self):
        size = 8
        a, b = matmul.generate_inputs(size, 16, seed=3)
        golden = matmul.golden_matmul(a, b, size)
        mat_a = np.array(a, dtype=np.uint64).reshape(size, size)
        mat_b = np.array(b, dtype=np.uint64).reshape(size, size)
        product = (mat_a @ mat_b) & np.uint64(0xFFFFFFFF)
        assert golden == [int(v) for v in product.ravel()]

    def test_8bit_values_smaller_than_16bit(self):
        a8, _ = matmul.generate_inputs(8, 8, seed=1)
        a16, _ = matmul.generate_inputs(8, 16, seed=1)
        assert max(a8) < 256
        assert max(a16) >= 256

    def test_asm_matches_golden(self):
        kernel = matmul.build(4, width_bits=16, seed=2)
        result, outputs = execute(kernel)
        assert result.finished and outputs == kernel.golden

    def test_validation(self):
        with pytest.raises(ValueError, match="power of two"):
            matmul.build(6)
        with pytest.raises(ValueError, match="width_bits"):
            matmul.build(8, width_bits=12)


class TestKmeans:
    def test_two_blobs_separate(self):
        px, py = kmeans.generate_inputs(8, seed=4)
        assign = kmeans.golden_kmeans(px, py, iters=15)
        # Both clusters must be populated for a sane instance.
        assert 0 < sum(assign) < len(assign)

    def test_asm_matches_golden(self):
        for seed in (1, 2, 3):
            kernel = kmeans.build(8, iters=5, seed=seed)
            result, outputs = execute(kernel)
            assert result.finished, kernel.params
            assert outputs == kernel.golden, kernel.params

    def test_iteration_count_matters(self):
        px, py = kmeans.generate_inputs(8, seed=4)
        one = kmeans.golden_kmeans(px, py, iters=1)
        many = kmeans.golden_kmeans(px, py, iters=15)
        assert len(one) == len(many) == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            kmeans.build(1)
        with pytest.raises(ValueError):
            kmeans.build(8, iters=0)


class TestDijkstra:
    def test_golden_matches_networkx(self):
        networkx = pytest.importorskip("networkx")
        nodes = 8
        adj = dijkstra.generate_inputs(nodes, seed=5)
        golden = dijkstra.golden_dijkstra(adj, nodes)
        graph = networkx.Graph()
        graph.add_nodes_from(range(nodes))
        for i in range(nodes):
            for j in range(nodes):
                w = adj[i * nodes + j]
                if i != j and w != dijkstra.INF:
                    graph.add_edge(i, j, weight=w)
        lengths = dict(networkx.all_pairs_dijkstra_path_length(graph))
        for src in range(nodes):
            for dst in range(nodes):
                expected = lengths.get(src, {}).get(dst, dijkstra.INF)
                assert golden[src * nodes + dst] == expected

    def test_asm_matches_golden(self):
        for seed in (1, 7):
            kernel = dijkstra.build(6, seed=seed)
            result, outputs = execute(kernel)
            assert result.finished
            assert outputs == kernel.golden

    def test_unreachable_nodes_stay_inf(self):
        adj = dijkstra.generate_inputs(6, seed=1, density=0.0)
        golden = dijkstra.golden_dijkstra(adj, 6)
        assert golden[1] == dijkstra.INF  # off-diagonal unreachable
        assert golden[0] == 0             # self distance

    def test_symmetric_weights(self):
        nodes = 6
        adj = dijkstra.generate_inputs(nodes, seed=2)
        for i in range(nodes):
            for j in range(nodes):
                assert adj[i * nodes + j] == adj[j * nodes + i]

    def test_validation(self):
        with pytest.raises(ValueError):
            dijkstra.build(1)
