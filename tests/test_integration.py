"""Cross-module integration tests: the full model-C pipeline."""

import numpy as np
import pytest

from repro.bench.suite import BENCHMARK_NAMES, build_kernel
from repro.fi.model_b import endpoint_worst_sta
from repro.fi.model_c import StatisticalInjector
from repro.mc.runner import run_trial
from repro.timing.noise import VoltageNoise


def make_injector(characterization, vdd_model, frequency_hz, sigma, rng,
                  **kwargs):
    return StatisticalInjector(characterization, frequency_hz,
                               VoltageNoise(sigma), vdd_model=vdd_model,
                               rng=rng, **kwargs)


class TestSafeOperation:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_all_benchmarks_clean_below_onset(self, name, characterization,
                                              vdd_model, rng):
        """Far below the STA limit model C must be fully transparent."""
        kernel = build_kernel(name, "quick")
        injector = make_injector(characterization, vdd_model, 500e6,
                                 0.010, rng)
        trial = run_trial(kernel, injector)
        assert trial.finished and trial.correct
        assert trial.fault_count == 0
        assert trial.alu_cycles > 0  # the hook did run


class TestOverscaledOperation:
    def test_deep_overscaling_kills_every_benchmark(self, characterization,
                                                    vdd_model, rng):
        for name in BENCHMARK_NAMES:
            kernel = build_kernel(name, "quick")
            injector = make_injector(characterization, vdd_model, 1000e6,
                                     0.010, rng)
            trial = run_trial(kernel, injector)
            assert not trial.correct, name
            assert trial.fault_count > 0, name

    def test_transition_region_is_graded(self, characterization,
                                         vdd_model, rng):
        """Unlike models B/B+, model C produces intermediate FI rates:
        a run in the transition region injects some but not hundreds of
        faults per kCycle."""
        kernel = build_kernel("mat_mult_8bit", "quick")
        injector = make_injector(characterization, vdd_model, 715e6,
                                 0.010, rng)
        rates = []
        for _ in range(10):
            trial = run_trial(kernel, injector)
            rates.append(trial.fi_rate_per_kcycle)
        assert max(rates) > 0.0
        assert max(rates) < 100.0


class TestDeterminism:
    def test_full_pipeline_reproducible(self, characterization, vdd_model):
        kernel = build_kernel("median", "quick")
        outcomes = []
        for _ in range(2):
            rng = np.random.default_rng(77)
            injector = make_injector(characterization, vdd_model, 760e6,
                                     0.010, rng)
            trial = run_trial(kernel, injector)
            outcomes.append((trial.finished, trial.correct,
                             trial.fault_count, trial.cycles))
        assert outcomes[0] == outcomes[1]


class TestModelRelationships:
    def test_bplus_onset_bounds_model_c_onset(self, alu, characterization):
        """Model B+ uses per-endpoint worst-case STA, so its onset can
        never be above model C's DTA-based onset."""
        sta_worst = float(endpoint_worst_sta(alu, 0.7).max())
        dta_worst = max(float(c.row_max_sorted[-1])
                        for c in characterization.cdfs.values())
        assert dta_worst <= sta_worst + 1e-9

    def test_joint_and_independent_agree_on_marginals(self, characterization,
                                                      vdd_model):
        """Both correlation modes must reproduce the same per-endpoint
        fault rates (they share the CDF marginals)."""
        frequency = 760e6
        counts = {}
        for mode in ("independent", "joint"):
            rng = np.random.default_rng(5)
            injector = make_injector(characterization, vdd_model,
                                     frequency, 0.0, rng,
                                     correlation=mode)
            injector.begin_run()
            total = np.zeros(32)
            for _ in range(20000):
                mask = injector.fault_mask("l.mul")
                for bit in range(32):
                    total[bit] += (mask >> bit) & 1
            counts[mode] = total / 20000
        assert np.allclose(counts["independent"], counts["joint"],
                           atol=0.01)


class TestFaultSemanticsEndToEnd:
    @pytest.mark.parametrize("semantics", ["flip", "stale"])
    def test_both_semantics_run(self, characterization, vdd_model, rng,
                                semantics):
        kernel = build_kernel("median", "quick")
        injector = make_injector(characterization, vdd_model, 800e6,
                                 0.010, rng, semantics=semantics)
        trial = run_trial(kernel, injector)
        assert trial.fault_count > 0
