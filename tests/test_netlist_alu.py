"""Tests for the assembled ALU: semantics, STA views, DTA bounds."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.netlist.alu import AluConfig, AluNetlist, N_ENDPOINTS

MASK = (1 << 32) - 1
u32 = st.integers(min_value=0, max_value=MASK)


def _signed(x):
    return x - (1 << 32) if x & 0x80000000 else x


def _expected(mnemonic: str, a: int, b: int) -> int:
    shift = b & 31
    table = {
        "l.add": (a + b) & MASK,
        "l.addi": (a + b) & MASK,
        "l.sub": (a - b) & MASK,
        "l.mul": (a * b) & MASK,
        "l.muli": (a * b) & MASK,
        "l.and": a & b, "l.andi": a & b,
        "l.or": a | b, "l.ori": a | b,
        "l.xor": a ^ b, "l.xori": a ^ b,
        "l.sll": (a << shift) & MASK, "l.slli": (a << shift) & MASK,
        "l.srl": a >> shift, "l.srli": a >> shift,
        "l.sra": (_signed(a) >> shift) & MASK,
        "l.srai": (_signed(a) >> shift) & MASK,
    }
    return table[mnemonic]


class TestSemantics:
    @given(a=u32, b=u32)
    @settings(max_examples=10)
    def test_all_mnemonics_match_reference(self, alu, a, b):
        for mnemonic in alu.mnemonics:
            result = int(alu.compute(mnemonic, [a], [b])[0])
            assert result == _expected(mnemonic, a, b), mnemonic

    def test_unit_of_mapping(self, alu):
        assert alu.unit_of("l.add") == "adder"
        assert alu.unit_of("l.muli") == "multiplier"
        assert alu.unit_of("l.srai") == "shifter"
        assert alu.unit_of("l.xori") == "logic"

    def test_unit_of_rejects_non_alu(self, alu):
        with pytest.raises(KeyError, match="l.lwz"):
            alu.unit_of("l.lwz")

    def test_total_gates(self, alu):
        assert alu.total_gates() > 3000


class TestStaViews:
    def test_calibrated_sta_limit(self, alu):
        assert alu.sta_limit_hz(0.7) / 1e6 == pytest.approx(707.1, abs=0.5)

    def test_higher_vdd_is_faster(self, alu):
        assert alu.sta_limit_hz(0.8) > alu.sta_limit_hz(0.7)
        assert alu.sta_limit_hz(0.6) < alu.sta_limit_hz(0.7)

    def test_endpoint_sta_shape_and_order(self, alu):
        per_unit = alu.endpoint_sta(0.7)
        assert set(per_unit) == set(alu.UNIT_NAMES)
        for arrivals in per_unit.values():
            assert arrivals.shape == (N_ENDPOINTS,)
            assert np.all(arrivals > 0)
        # The multiplier owns the overall critical path by calibration.
        assert per_unit["multiplier"].max() == max(
            a.max() for a in per_unit.values())

    def test_multiplier_profile_grows_with_significance(self, alu):
        arrivals = alu.endpoint_sta(0.7)["multiplier"]
        # Linear-ish profile: bit 31 much later than bit 3.
        assert arrivals[31] > 2 * arrivals[3]

    def test_voltage_scales_all_arrivals_uniformly(self, alu):
        low = alu.endpoint_sta(0.7)["adder"]
        high = alu.endpoint_sta(0.8)["adder"]
        # One global scale factor (alpha-power library).
        mux7 = alu.mux_delay_ps(0.7)
        mux8 = alu.mux_delay_ps(0.8)
        ratio = (high - mux8) / (low - mux7)
        assert np.allclose(ratio, ratio[0])
        assert ratio[0] < 1.0


class TestPropagateBounds:
    @pytest.mark.parametrize("mnemonic", ["l.add", "l.mul", "l.sll",
                                          "l.xor"])
    def test_dta_never_exceeds_sta(self, alu, rng, mnemonic):
        n = 64
        a = rng.integers(0, 1 << 32, n + 1, dtype=np.uint64)
        b = rng.integers(0, 1 << 32, n + 1, dtype=np.uint64)
        values, arrivals = alu.propagate(
            mnemonic, (a[:-1], b[:-1]), (a[1:], b[1:]), 0.7)
        sta = alu.endpoint_sta(0.7)[alu.unit_of(mnemonic)]
        assert np.all(arrivals <= sta[:, None] + 1e-9)
        expected = np.array([_expected(mnemonic, int(x), int(y))
                             for x, y in zip(a[1:], b[1:])],
                            dtype=np.uint64)
        assert np.array_equal(values, expected)

    def test_identical_operands_produce_no_events(self, alu, rng):
        a = rng.integers(0, 1 << 32, 8, dtype=np.uint64)
        b = rng.integers(0, 1 << 32, 8, dtype=np.uint64)
        _, arrivals = alu.propagate("l.add", (a, b), (a, b), 0.7)
        assert np.all(arrivals == 0.0)

    def test_glitch_model_is_more_pessimistic(self, alu, rng):
        n = 128
        a = rng.integers(0, 1 << 32, n + 1, dtype=np.uint64)
        b = rng.integers(0, 1 << 32, n + 1, dtype=np.uint64)
        ops = ((a[:-1], b[:-1]), (a[1:], b[1:]))
        _, sensitized = alu.propagate("l.mul", *ops, 0.7,
                                      glitch_model="sensitized")
        _, value_change = alu.propagate("l.mul", *ops, 0.7,
                                        glitch_model="value-change")
        assert sensitized.max() >= value_change.max()
        assert sensitized.mean() > value_change.mean()


class TestConfig:
    def test_bad_adder_kind(self):
        with pytest.raises(ValueError, match="adder"):
            AluConfig(adder_kind="magic")

    def test_alternative_adder_builds(self):
        alu = AluNetlist(AluConfig(adder_kind="kogge-stone"))
        assert int(alu.compute("l.add", [5], [7])[0]) == 12
