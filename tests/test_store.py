"""Tests for the content-addressed result store and its serializers."""

import json

import numpy as np
import pytest

from repro.mc.results import MC_POINT_SCHEMA, McPoint, TrialResult
from repro.mc.sweep import FrequencySweep
from repro.store import ResultStore, canonical_json, decode, encode, \
    key_hash
from repro.timing.cdf import CdfGrid, EndpointCdfs
from repro.timing.characterize import (
    ALU_CHARACTERIZATION_SCHEMA,
    AluCharacterization,
    CharacterizationConfig,
)


def _trial(finished=True, correct=True, error=0.25, faults=2):
    return TrialResult(finished=finished, correct=correct,
                       error_value=error, relative_error=error / 4,
                       fault_count=faults, kernel_cycles=1234,
                       alu_cycles=600, cycles=1300,
                       abort_reason=None if finished else "budget")


def _point(label="p", n=3):
    point = McPoint(label=label,
                    config={"frequency_hz": np.float64(7.25e8)})
    for index in range(n):
        point.add(_trial(finished=index % 2 == 0, error=0.1 * index,
                         faults=index))
    return point


def _key(seed=0, **extra):
    key = {"kind": "mc_point", "schema": MC_POINT_SCHEMA,
           "experiment": "test", "scale": None, "seed": seed,
           "stream": "serial", "config": {"vdd": 0.7}}
    key.update(extra)
    return key


class TestEncoding:
    def test_array_round_trip_preserves_dtype(self):
        for dtype in (np.float64, np.float32, np.uint64, np.int32,
                      np.bool_):
            array = np.array([[0, 1], [2, 3]], dtype=dtype)
            back = decode(encode(array))
            assert np.array_equal(back, array)
            assert back.dtype == array.dtype

    def test_float_bits_survive(self):
        array = np.array([0.1, 1e-308, np.pi, np.inf], dtype=np.float64)
        back = decode(encode(array))
        assert back.tobytes() == array.tobytes()

    def test_numpy_scalars_keep_their_type(self):
        back = decode(encode({"f": np.float32(1.5), "i": np.int64(-7)}))
        assert type(back["f"]) is np.float32 and back["f"] == 1.5
        assert type(back["i"]) is np.int64 and back["i"] == -7

    def test_tuples_become_lists(self):
        assert decode(encode((1, (2, 3)))) == [1, [2, 3]]

    def test_rejects_unserializable(self):
        with pytest.raises(TypeError):
            encode(object())
        with pytest.raises(TypeError):
            encode({1: "non-string key"})

    def test_canonical_json_is_order_independent(self):
        a = {"x": 1, "y": [1, 2], "z": {"a": 0.5}}
        b = {"z": {"a": 0.5}, "y": [1, 2], "x": 1}
        assert canonical_json(a) == canonical_json(b)
        assert key_hash(a) == key_hash(b)

    def test_hash_differs_on_content(self):
        assert key_hash({"x": 1}) != key_hash({"x": 2})


class TestMcJsonRoundTrip:
    def test_trial_result(self):
        trial = _trial(finished=False)
        assert TrialResult.from_json(trial.to_json()) == trial

    def test_trial_rejects_unknown_fields(self):
        payload = _trial().to_json()
        payload["bogus"] = 1
        with pytest.raises(ValueError):
            TrialResult.from_json(payload)

    def test_mc_point_lossless(self):
        point = _point()
        back = McPoint.from_json(point.to_json())
        assert back == point
        assert back.summary() == point.summary()

    def test_mc_point_schema_guard(self):
        payload = _point().to_json()
        payload["schema"] = MC_POINT_SCHEMA + 1
        with pytest.raises(ValueError):
            McPoint.from_json(payload)

    def test_mc_point_json_native(self):
        # The body must survive a real JSON text round-trip.
        payload = json.loads(json.dumps(_point().to_json()))
        assert McPoint.from_json(payload) == _point()

    def test_frequency_sweep_lossless(self):
        sweep = FrequencySweep(
            kernel_name="median",
            frequencies_hz=[7.0e8, 7.1e8],
            points=[_point("a"), _point("b")],
            sta_limit_hz=7.071e8,
            config={"vdd": 0.7, "sigma_v": 0.01})
        back = FrequencySweep.from_json(
            json.loads(json.dumps(sweep.to_json())))
        assert back == sweep
        assert back.rows() == sweep.rows()


class TestCharacterizationJson:
    def _characterization(self, seed=5):
        rng = np.random.default_rng(seed)
        config = CharacterizationConfig(n_cycles_per_instr=16,
                                        grid_points=64)
        cdfs = {}
        worst = 1400.0
        for mnemonic in ("l.add", "l.mul"):
            critical = rng.uniform(600.0, 1500.0, size=(16, 32))
            cdfs[mnemonic] = EndpointCdfs.from_critical(
                mnemonic, config.vdd, critical)
        max_critical = max(float(t.critical_rows.max())
                           for t in cdfs.values())
        grids = {
            m: CdfGrid.compile(t, 0.35 * worst,
                               1.05 * max(max_critical, worst),
                               config.grid_points)
            for m, t in cdfs.items()
        }
        return AluCharacterization(config=config, cdfs=cdfs, grids=grids,
                                   worst_sta_period_ps=worst)

    def test_round_trip_bit_identical(self):
        char = self._characterization()
        back = AluCharacterization.from_json(
            json.loads(json.dumps(char.to_json())))
        assert back.config == char.config
        assert back.worst_sta_period_ps == char.worst_sta_period_ps
        assert back.mnemonics == char.mnemonics
        for mnemonic in char.mnemonics:
            original, rebuilt = char.cdfs[mnemonic], back.cdfs[mnemonic]
            assert np.array_equal(rebuilt.critical_rows,
                                  original.critical_rows)
            assert np.array_equal(rebuilt.critical_sorted,
                                  original.critical_sorted)
            assert np.array_equal(rebuilt.row_max_sorted,
                                  original.row_max_sorted)
            assert np.array_equal(back.grids[mnemonic].probs,
                                  char.grids[mnemonic].probs)
            assert np.array_equal(back.grids[mnemonic].tail_products,
                                  char.grids[mnemonic].tail_products)

    def test_schema_guard(self):
        payload = self._characterization().to_json()
        payload["schema"] = ALU_CHARACTERIZATION_SCHEMA + 1
        with pytest.raises(ValueError):
            AluCharacterization.from_json(payload)


class TestResultStore:
    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        point = _point()
        sha = store.put(_key(), point, label="unit-a")
        assert store.get(_key()) == point
        assert store.contains(_key())
        assert sha == store.key_of(_key())

    def test_miss_on_unknown_key(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        assert store.get(_key()) is None
        assert not store.contains(_key())

    def test_distinct_keys_distinct_entries(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(_key(seed=1), _point("a"))
        store.put(_key(seed=2), _point("b", n=5))
        assert store.get(_key(seed=1)).label == "a"
        assert store.get(_key(seed=2)).label == "b"

    def test_put_is_idempotent_overwrite(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(_key(), _point("old"))
        store.put(_key(), _point("new"))
        assert store.get(_key()).label == "new"
        assert len(store.ls()) == 1

    def test_corrupted_entry_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(_key(), _point())
        path = store._object_path(store.key_of(_key()))
        path.write_text("{ not json")
        assert store.get(_key()) is None
        # The poison was moved to quarantine (young → kept as
        # forensic evidence across a default gc); the live index is
        # already clean.
        assert list(store.quarantine_dir.iterdir())
        removed, _ = store.gc()
        assert removed == 0
        assert store.ls() == []

    def test_truncated_entry_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(_key(), _point())
        path = store._object_path(store.key_of(_key()))
        path.write_text(path.read_text()[:40])
        assert store.get(_key()) is None

    def test_tampered_key_reads_as_miss(self, tmp_path):
        # An entry whose embedded key no longer matches its address
        # (e.g. edited on disk) must never be returned.
        store = ResultStore(tmp_path / "store")
        store.put(_key(), _point())
        path = store._object_path(store.key_of(_key()))
        envelope = json.loads(path.read_text())
        envelope["key"]["seed"] = 999
        path.write_text(json.dumps(envelope))
        assert store.get(_key()) is None

    def test_stale_schema_never_served_and_gc_reclaims(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        old_key = _key(schema=MC_POINT_SCHEMA - 1)
        # Simulate an entry written by an older code version: the
        # envelope is self-consistent under the old schema key.
        store.put(_key(), _point())
        path = store._object_path(store.key_of(_key()))
        envelope = json.loads(path.read_text())
        envelope["key"]["schema"] = MC_POINT_SCHEMA - 1
        envelope["sha256"] = store.key_of(old_key)
        old_path = store._object_path(store.key_of(old_key))
        old_path.parent.mkdir(parents=True, exist_ok=True)
        old_path.write_text(json.dumps(envelope))
        path.unlink()
        # Current-schema lookups miss it; the artifact body also
        # refuses to decode under the stale version.
        assert store.get(_key()) is None
        assert store.get(old_key) is None
        removed, _ = store.gc()
        assert removed >= 1
        assert not old_path.exists()

    def test_ls_and_manifest_rebuild(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(_key(seed=1), _point("a"), label="one")
        store.put(_key(seed=2), _point("b"), label="two")
        entries = store.ls()
        assert {entry.label for entry in entries} == {"one", "two"}
        assert all(entry.kind == "mc_point" for entry in entries)
        # A lost manifest is rebuilt from the objects directory.
        store.manifest_path.unlink()
        rebuilt = ResultStore(tmp_path / "store").ls()
        assert {entry.sha256 for entry in rebuilt} == \
            {entry.sha256 for entry in entries}

    def test_gc_all_wipes(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(_key(seed=1), _point())
        store.put(_key(seed=2), _point())
        removed, freed = store.gc(remove_all=True)
        assert removed == 2 and freed > 0
        assert store.ls() == []

    def test_gc_reclaims_abandoned_temp_files_only(self, tmp_path):
        import os
        import time as time_module
        store = ResultStore(tmp_path / "store")
        store.put(_key(), _point())
        stray = store.objects / "ab"
        stray.mkdir(exist_ok=True)
        fresh = stray / ".tmp-inflight"
        fresh.write_text("a live writer owns me")
        abandoned = stray / ".tmp-killed"
        abandoned.write_text("partial")
        old = time_module.time() - 2 * ResultStore.TEMP_GRACE_S
        os.utime(abandoned, (old, old))
        removed, _ = store.gc()
        assert removed == 1
        assert fresh.exists() and not abandoned.exists()
        assert store.get(_key()) is not None

    def test_gc_by_kind(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(_key(seed=1), _point())
        char = TestCharacterizationJson()._characterization()
        char_key = {"kind": "alu_characterization",
                    "schema": ALU_CHARACTERIZATION_SCHEMA,
                    "alu": ["test"], "config": {"n": 16}}
        store.put(char_key, char)
        removed, _ = store.gc(remove_all=True, kinds=("mc_point",))
        assert removed == 1
        assert store.get(_key(seed=1)) is None
        assert store.get(char_key) is not None

    def test_contains_is_envelope_level(self, tmp_path):
        # contains() validates the envelope without decoding the
        # artifact body; a corrupted body is caught by get().
        store = ResultStore(tmp_path / "store")
        store.put(_key(), _point())
        path = store._object_path(store.key_of(_key()))
        envelope = json.loads(path.read_text())
        envelope["artifact"]["trials"] = "garbage"
        path.write_text(json.dumps(envelope))
        assert store.contains(_key())
        assert store.get(_key()) is None

    def test_manifest_tolerates_torn_line(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(_key(seed=1), _point(), label="kept")
        with open(store.manifest_path, "a") as handle:
            handle.write('{"sha256": "torn entr')  # killed mid-append
        store.put(_key(seed=2), _point(), label="after")
        labels = {entry.label for entry in store.ls()}
        assert "kept" in labels
        # The entry appended after the torn line may share its line;
        # a rebuild recovers the full truth from the objects dir.
        store.rebuild_manifest()
        labels = {entry.label for entry in store.ls()}
        assert labels == {"kept", "after"}

    def test_characterization_artifact_kind(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        char = TestCharacterizationJson()._characterization()
        key = {"kind": "alu_characterization",
               "schema": ALU_CHARACTERIZATION_SCHEMA,
               "alu": ["test"], "config": {"n": 16}}
        store.put(key, char, label="char")
        back = store.get(key)
        assert back is not None
        assert np.array_equal(back.cdfs["l.mul"].critical_rows,
                              char.cdfs["l.mul"].critical_rows)


class TestManifestReconcile:
    def test_ls_recovers_entry_lost_in_the_kill_window(self, tmp_path,
                                                       monkeypatch):
        # A writer killed between the object os.replace and the
        # manifest append leaves an object that get() serves but the
        # manifest never saw; ls must reconcile against the objects
        # directory instead of under-reporting.
        store = ResultStore(tmp_path / "store")
        store.put(_key(seed=1), _point("a"), label="seen")
        monkeypatch.setattr(ResultStore, "_manifest_add",
                            lambda self, entry: None)
        store.put(_key(seed=2), _point("b"), label="lost")
        monkeypatch.undo()
        assert store.get(_key(seed=2)) is not None
        labels = {entry.label for entry in store.ls()}
        assert labels == {"seen", "lost"}
        # The reconcile rewrote the manifest: a fresh handle reads the
        # recovered entry without rescanning.
        labels = {entry.label
                  for entry in ResultStore(tmp_path / "store").ls()}
        assert labels == {"seen", "lost"}

    def test_ls_without_mismatch_trusts_the_manifest(self, tmp_path,
                                                     monkeypatch):
        store = ResultStore(tmp_path / "store")
        store.put(_key(seed=1), _point("a"), label="one")
        calls = {"n": 0}
        original = ResultStore.rebuild_manifest

        def counting(self):
            calls["n"] += 1
            return original(self)

        monkeypatch.setattr(ResultStore, "rebuild_manifest", counting)
        assert len(store.ls()) == 1
        assert calls["n"] == 0

    def test_ls_recovers_truncated_final_manifest_line(self, tmp_path):
        # A crash mid-append can leave the *last* manifest line torn
        # with no trailing newline; the entry it described must still
        # surface via the objects-directory reconcile.
        store = ResultStore(tmp_path / "store")
        store.put(_key(seed=1), _point("a"), label="one")
        store.put(_key(seed=2), _point("b"), label="two")
        lines = store.manifest_path.read_text().splitlines(keepends=True)
        torn = lines[-1][:len(lines[-1]) // 2]
        store.manifest_path.write_text("".join(lines[:-1]) + torn)
        assert {entry.label for entry in store.ls()} == {"one", "two"}
        # The reconcile persisted the recovery: a fresh handle agrees.
        fresh = ResultStore(tmp_path / "store")
        assert {entry.label for entry in fresh.ls()} == {"one", "two"}


class TestFaultHardening:
    """Injected store faults: retry, quarantine, and reconciliation."""

    @pytest.fixture(autouse=True)
    def _clean_plane(self, monkeypatch):
        from repro import faults
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        monkeypatch.delenv("REPRO_FAULT_LOG", raising=False)
        faults.reset()
        yield
        faults.reset()

    def test_transient_object_write_oserror_is_retried(self, tmp_path,
                                                       caplog):
        from repro import faults
        import logging
        faults.configure("store.object_write:oserror@after=1")
        store = ResultStore(tmp_path / "store")
        with caplog.at_level(logging.WARNING, "repro.store"):
            store.put(_key(), _point(), label="retried")
        assert any("retrying" in record.message
                   for record in caplog.records)
        assert store.get(_key()) is not None

    def test_transient_manifest_oserror_is_retried(self, tmp_path):
        from repro import faults
        faults.configure("store.manifest_append:oserror@after=1")
        store = ResultStore(tmp_path / "store")
        store.put(_key(), _point(), label="kept")
        assert {entry.label for entry in store.ls()} == {"kept"}

    def test_persistent_oserror_exhausts_the_retry_budget(self,
                                                          tmp_path):
        from repro import faults
        faults.configure("store.object_write:oserror")  # every hit
        store = ResultStore(tmp_path / "store")
        with pytest.raises(OSError, match="injected"):
            store.put(_key(), _point())

    def test_torn_object_write_quarantines_and_heals(self, tmp_path,
                                                     caplog):
        from repro import faults
        import logging
        faults.configure("store.object_write:torn@after=1")
        store = ResultStore(tmp_path / "store")
        store.put(_key(), _point(), label="torn")
        with caplog.at_level(logging.WARNING, "repro.store"):
            assert store.get(_key()) is None  # detected, not served
        assert any("quarantined" in record.message
                   for record in caplog.records)
        assert list(store.quarantine_dir.iterdir())  # evidence kept
        store.put(_key(), _point(), label="healed")  # hit 2: clean
        assert store.get(_key()) is not None

    def test_torn_manifest_append_is_reconciled(self, tmp_path):
        from repro import faults
        faults.configure("store.manifest_append:torn@after=1")
        store = ResultStore(tmp_path / "store")
        store.put(_key(), _point(), label="recovered")
        assert {entry.label for entry in store.ls()} == {"recovered"}

    def test_body_checksum_mismatch_quarantines(self, tmp_path, caplog):
        import logging
        store = ResultStore(tmp_path / "store")
        store.put(_key(), _point())
        path = store._object_path(store.key_of(_key()))
        envelope = json.loads(path.read_text())
        envelope["artifact"]["__rot__"] = 1  # silent bit-rot
        path.write_text(json.dumps(envelope, separators=(",", ":")))
        with caplog.at_level(logging.WARNING, "repro.store"):
            assert store.get(_key()) is None
        assert any("checksum" in record.message
                   for record in caplog.records)

    def test_gc_reclaims_quarantined_objects(self, tmp_path):
        import os
        import time as time_module
        from repro import faults
        faults.configure("store.object_write:torn@after=1")
        store = ResultStore(tmp_path / "store")
        store.put(_key(), _point())
        assert store.get(_key()) is None  # quarantined
        faults.reset()
        # Young quarantine is forensic evidence: the default pass
        # keeps it until it outlives the grace period.
        removed, _ = store.gc()
        assert removed == 0
        assert list(store.quarantine_dir.iterdir())
        old = time_module.time() - 2 * ResultStore.TEMP_GRACE_S
        for path in store.quarantine_dir.iterdir():
            os.utime(path, (old, old))
        removed, freed = store.gc()
        assert removed == 1
        assert freed > 0
        assert not list(store.quarantine_dir.iterdir())

    def test_gc_all_empties_quarantine_regardless_of_age(self,
                                                         tmp_path):
        from repro import faults
        faults.configure("store.object_write:torn@after=1")
        store = ResultStore(tmp_path / "store")
        store.put(_key(), _point())
        assert store.get(_key()) is None  # quarantined, still young
        faults.reset()
        removed, _ = store.gc(remove_all=True)
        assert removed == 1
        assert not list(store.quarantine_dir.iterdir())

    def test_delete_removes_entry_and_index_line(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(_key(seed=1), _point(), label="doomed")
        store.put(_key(seed=2), _point(), label="kept")
        assert store.delete(_key(seed=1))
        assert store.get(_key(seed=1)) is None
        assert not store.contains(_key(seed=1))
        assert {entry.label for entry in store.ls()} == {"kept"}
        assert not store.delete(_key(seed=1))  # already gone

    def test_no_fsync_escape_hatch(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_NO_FSYNC", "1")
        store = ResultStore(tmp_path / "store")
        store.put(_key(), _point(), label="fast")
        assert store.get(_key()) is not None


def _aged_put(store, key, artifact, label, created_unix):
    """put() an entry, then pin its created_unix deterministically."""
    sha = store.put(key, artifact, label=label)
    path = store._object_path(sha)
    envelope = json.loads(path.read_text())
    envelope["created_unix"] = created_unix
    path.write_text(json.dumps(envelope, separators=(",", ":")))
    return sha


class TestLruEviction:
    def test_evicts_oldest_first_and_stops_at_the_cap(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        for index in range(6):
            _aged_put(store, _key(seed=index), _point(f"p{index}"),
                      f"p{index}", 1000.0 + index)
        entries = store.ls()
        total = sum(entry.n_bytes for entry in entries)
        per_entry = total // 6
        cap = total - per_entry  # one entry must go
        removed, freed = store.gc(max_bytes=cap)
        assert removed == 1 and freed > 0
        survivors = {entry.label for entry in store.ls()}
        # Exactly the oldest entry was evicted -- never below the cap.
        assert survivors == {f"p{index}" for index in range(1, 6)}
        assert sum(entry.n_bytes for entry in store.ls()) <= cap
        # Evicted entries read as misses; survivors stay hits.
        assert store.get(_key(seed=0)) is None
        assert store.get(_key(seed=5)) is not None

    def test_cap_smaller_than_everything_empties_the_store(self,
                                                           tmp_path):
        store = ResultStore(tmp_path / "store")
        for index in range(3):
            _aged_put(store, _key(seed=index), _point(f"p{index}"),
                      f"p{index}", 1000.0 + index)
        removed, _ = store.gc(max_bytes=0)
        assert removed == 3
        assert store.ls() == []

    def test_generous_cap_evicts_nothing(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        for index in range(3):
            store.put(_key(seed=index), _point(f"p{index}"))
        removed, freed = store.gc(max_bytes=1 << 40)
        assert removed == 0 and freed == 0
        assert len(store.ls()) == 3

    def test_dead_data_reclaim_runs_before_the_lru_pass(self, tmp_path):
        # A corrupted entry's bytes count toward nothing: reclaiming it
        # must happen first so live entries are not evicted in its
        # stead.
        store = ResultStore(tmp_path / "store")
        for index in range(3):
            _aged_put(store, _key(seed=index), _point(f"p{index}"),
                      f"p{index}", 1000.0 + index)
        live_total = sum(entry.n_bytes for entry in store.ls())
        dead = _aged_put(store, _key(seed=99), _point("dead"), "dead",
                         999.0)
        store._object_path(dead).write_text("{ not json")
        removed, _ = store.gc(max_bytes=live_total)
        assert removed == 1  # the corrupted entry only
        assert {entry.label for entry in store.ls()} == \
            {"p0", "p1", "p2"}

    def test_cap_enforced_under_concurrent_put(self, tmp_path):
        # Entries put while gc runs may or may not be seen by its scan;
        # either way gc must not crash, must enforce the cap over what
        # it saw, and late writes must stay retrievable.
        import threading
        store = ResultStore(tmp_path / "store")
        for index in range(8):
            _aged_put(store, _key(seed=index), _point(f"p{index}"),
                      f"p{index}", 1000.0 + index)
        base_total = sum(entry.n_bytes for entry in store.ls())
        stop = threading.Event()
        written = []

        def writer():
            seed = 100
            while not stop.is_set():
                written.append(seed)
                store.put(_key(seed=seed), _point(f"w{seed}"),
                          label=f"w{seed}")
                seed += 1

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            removed, _ = store.gc(max_bytes=base_total // 2)
        finally:
            stop.set()
            thread.join()
        assert removed >= 4  # at least half the aged entries went
        # The newest aged entry survived every older one.
        survivors = {entry.label for entry in store.ls()
                     if entry.label.startswith("p")}
        if survivors:
            assert "p7" in survivors
        # Concurrent writes were never corrupted: each is either fully
        # present or fully evicted, and the last one is retrievable.
        last = written[-1]
        final = store.put(_key(seed=last), _point(f"w{last}"),
                          label=f"w{last}")
        assert store.get(_key(seed=last)) is not None
        assert store._object_path(final).exists()


def _char_key(seed=0):
    return {"kind": "alu_characterization",
            "schema": ALU_CHARACTERIZATION_SCHEMA,
            "experiment": "test", "scale": None, "seed": seed,
            "stream": "dta", "config": {"vdd": 0.7}}


class TestPinnedEviction:
    """gc --max-bytes with pin_kinds: recompute-cost-weighted LRU."""

    PINS = ("alu_characterization",)

    def _mixed_store(self, tmp_path):
        """Two old pinned characterizations + four newer cheap points."""
        store = ResultStore(tmp_path / "store")
        char = TestCharacterizationJson()._characterization()
        for index in range(2):
            _aged_put(store, _char_key(seed=index), char,
                      f"char{index}", 500.0 + index)
        for index in range(4):
            _aged_put(store, _key(seed=index), _point(f"p{index}"),
                      f"p{index}", 1000.0 + index)
        return store

    def test_pinned_kind_evicted_last_despite_age(self, tmp_path):
        # The pinned entries are the *oldest* in the store; a plain
        # LRU pass would evict them first.  Pinning must sacrifice
        # every cheap point before touching a characterization.
        store = self._mixed_store(tmp_path)
        pinned_total = sum(entry.n_bytes for entry in store.ls()
                           if entry.label.startswith("char"))
        removed, _ = store.gc(max_bytes=pinned_total,
                              pin_kinds=self.PINS)
        assert removed == 4  # all points, no characterization
        assert {entry.label for entry in store.ls()} == \
            {"char0", "char1"}
        assert store.get(_char_key(seed=0)) is not None

    def test_cap_stays_hard_over_pinned_entries(self, tmp_path):
        # When the pinned entries alone exceed the cap, they are
        # evicted too -- oldest first -- until the store fits.
        store = self._mixed_store(tmp_path)
        entries = {entry.label: entry.n_bytes for entry in store.ls()}
        cap = entries["char1"]  # room for exactly one characterization
        removed, _ = store.gc(max_bytes=cap, pin_kinds=self.PINS)
        assert removed == 5  # four points + the older characterization
        assert {entry.label for entry in store.ls()} == {"char1"}

    def test_cap_smaller_than_largest_pinned_entry(self, tmp_path):
        # The edge the CLI documents: a cap below the size of a single
        # pinned entry empties the store rather than overshooting it.
        store = ResultStore(tmp_path / "store")
        char = TestCharacterizationJson()._characterization()
        sha = _aged_put(store, _char_key(seed=0), char, "char", 500.0)
        size = store._object_path(sha).stat().st_size
        removed, freed = store.gc(max_bytes=size - 1,
                                  pin_kinds=self.PINS)
        assert removed == 1 and freed >= size
        assert store.ls() == []
        assert store.get(_char_key(seed=0)) is None

    def test_unpinned_default_keeps_plain_lru_order(self, tmp_path):
        # Without pin_kinds the characterizations are ordinary LRU
        # fodder: oldest goes first even though it is pinned-kind.
        store = self._mixed_store(tmp_path)
        # On-disk sizes, not manifest ones: _aged_put rewrote the
        # envelopes, so the manifest's n_bytes are slightly stale.
        total = sum(path.stat().st_size
                    for path in store.objects.glob("*/*.json"))
        oldest = min(store.ls(), key=lambda entry: entry.created_unix)
        removed, _ = store.gc(max_bytes=total - 1)
        assert removed == 1
        assert oldest.label == "char0"
        assert "char0" not in {entry.label for entry in store.ls()}


class TestQuarantineByteCap:
    """Quarantine bytes count toward --max-bytes and go first."""

    def _poisoned_store(self, tmp_path):
        """Three live aged entries + one quarantined object."""
        from repro import faults
        store = ResultStore(tmp_path / "store")
        for index in range(3):
            _aged_put(store, _key(seed=index), _point(f"p{index}"),
                      f"p{index}", 1000.0 + index)
        faults.configure("store.object_write:torn@times=1")
        store.put(_key(seed=99), _point("poison"))
        faults.reset()
        assert store.get(_key(seed=99)) is None  # quarantined
        quarantined = list(store.quarantine_dir.iterdir())
        assert len(quarantined) == 1
        return store, quarantined[0]

    def test_quarantine_counts_toward_the_cap_and_goes_first(
            self, tmp_path):
        store, poison = self._poisoned_store(tmp_path)
        live_total = sum(path.stat().st_size
                         for path in store.objects.glob("*/*.json"))
        # The cap fits every live entry but not the quarantine bytes
        # on top: the quarantined object is sacrificed, no live entry
        # is evicted in its stead.
        removed, freed = store.gc(max_bytes=live_total)
        assert removed == 1
        assert freed >= poison.stat().st_size if poison.exists() \
            else freed > 0
        assert not list(store.quarantine_dir.iterdir())
        assert {entry.label for entry in store.ls()} == \
            {"p0", "p1", "p2"}

    def test_quarantine_evicted_oldest_first(self, tmp_path):
        import os
        import time as time_module
        from repro import faults
        store = ResultStore(tmp_path / "store")
        faults.configure("store.object_write:torn")
        for index in range(2):
            store.put(_key(seed=index), _point())
            assert store.get(_key(seed=index)) is None
        faults.reset()
        old, new = sorted(store.quarantine_dir.iterdir(),
                          key=lambda p: p.name)
        # Both inside the forensic grace window -- only the byte-cap
        # pass may touch them, oldest mtime first.
        now = time_module.time()
        os.utime(old, (now - 20.0, now - 20.0))
        os.utime(new, (now - 10.0, now - 10.0))
        total = sum(p.stat().st_size for p in (old, new))
        removed, _ = store.gc(max_bytes=total - 1)
        assert removed == 1
        assert not old.exists() and new.exists()

    def test_generous_cap_keeps_young_quarantine(self, tmp_path):
        store, poison = self._poisoned_store(tmp_path)
        removed, _ = store.gc(max_bytes=1 << 40)
        assert removed == 0
        assert poison.exists()


class TestRetryPolicy:
    """Exponential backoff with deterministic seeded jitter."""

    def test_defaults(self, monkeypatch):
        from repro.store.retry import RetryPolicy
        monkeypatch.delenv("REPRO_STORE_RETRIES", raising=False)
        monkeypatch.delenv("REPRO_STORE_BACKOFF_S", raising=False)
        policy = RetryPolicy.from_env()
        assert policy.attempts == 3
        assert policy.backoff_s == 0.02

    def test_env_overrides_and_bad_values_ignored(self, monkeypatch):
        from repro.store.retry import RetryPolicy
        monkeypatch.setenv("REPRO_STORE_RETRIES", "7")
        monkeypatch.setenv("REPRO_STORE_BACKOFF_S", "0.5")
        policy = RetryPolicy.from_env()
        assert policy.attempts == 7 and policy.backoff_s == 0.5
        monkeypatch.setenv("REPRO_STORE_RETRIES", "banana")
        monkeypatch.setenv("REPRO_STORE_BACKOFF_S", "-3")
        policy = RetryPolicy.from_env()
        assert policy.attempts == 3      # unparsable -> default
        assert policy.backoff_s == 0.0   # negative -> clamped

    def test_backoff_is_exponential_and_jittered(self):
        from repro.store.retry import RetryPolicy
        policy = RetryPolicy(attempts=5, backoff_s=0.01, seed=0)
        delays = [policy.delay_s("op", attempt) for attempt in range(4)]
        for attempt, delay in enumerate(delays):
            slot = 0.01 * (1 << attempt)
            assert 0.5 * slot <= delay < 1.5 * slot
        # Deterministic: the same (seed, key, attempt) sleeps
        # identically; a different key de-correlates.
        assert delays == [policy.delay_s("op", attempt)
                          for attempt in range(4)]
        assert policy.delay_s("other", 0) != delays[0]

    def test_run_retries_then_reraises(self):
        from repro.store.retry import RetryPolicy
        policy = RetryPolicy(attempts=3, backoff_s=0.0)
        calls = []

        def flaky():
            calls.append(1)
            raise OSError("always")

        with pytest.raises(OSError, match="always"):
            policy.run("flaky", flaky, sleep=lambda _s: None)
        assert len(calls) == 3

    def test_run_succeeds_after_transient_failure(self):
        from repro.store.retry import RetryPolicy
        policy = RetryPolicy(attempts=3, backoff_s=0.0)
        state = {"n": 0}

        def once():
            state["n"] += 1
            if state["n"] == 1:
                raise OSError("transient")
            return "ok"

        slept = []
        assert policy.run("once", once,
                          sleep=slept.append) == "ok"
        assert len(slept) == 1

    def test_store_respects_env_budget(self, tmp_path, monkeypatch):
        # REPRO_STORE_RETRIES=1 -> a single transient failure is fatal.
        from repro import faults
        monkeypatch.setenv("REPRO_STORE_RETRIES", "1")
        faults.reset()
        faults.configure("store.object_write:oserror@times=1")
        store = ResultStore(tmp_path / "store")
        try:
            with pytest.raises(OSError, match="injected"):
                store.put(_key(), _point())
        finally:
            faults.reset()


class TestFsBackend:
    """Byte-level backend primitives, incl. conditional PUT."""

    def test_round_trip_and_delete(self, tmp_path):
        from repro.store.backend import FsBackend
        backend = FsBackend(tmp_path / "b")
        assert backend.read("objects/ab/x.json") is None
        assert backend.write("objects/ab/x.json", b"payload")
        assert backend.read("objects/ab/x.json") == b"payload"
        assert backend.delete("objects/ab/x.json")
        assert not backend.delete("objects/ab/x.json")

    def test_put_if_absent_exactly_one_winner(self, tmp_path):
        from repro.store.backend import FsBackend
        backend = FsBackend(tmp_path / "b")
        first = backend.write("leases/b0/g000001", b"owner-a",
                              if_absent=True)
        second = backend.write("leases/b0/g000001", b"owner-b",
                               if_absent=True)
        assert first and not second
        assert backend.read("leases/b0/g000001") == b"owner-a"

    def test_put_if_absent_race_across_processes(self, tmp_path):
        # N concurrent claimants, one name: exactly one os.link wins.
        import multiprocessing
        from repro.store.backend import FsBackend
        root = tmp_path / "b"
        FsBackend(root)

        def claim(index, results):
            backend = FsBackend(root)
            won = backend.write("leases/b0/g000001",
                                f"owner-{index}".encode(),
                                if_absent=True)
            results.put((index, won))

        ctx = multiprocessing.get_context("fork")
        results = ctx.Queue()
        procs = [ctx.Process(target=claim, args=(index, results))
                 for index in range(4)]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join()
        outcomes = dict(results.get() for _ in procs)
        winners = [index for index, won in outcomes.items() if won]
        assert len(winners) == 1
        body = FsBackend(root).read("leases/b0/g000001")
        assert body == f"owner-{winners[0]}".encode()

    def test_list_by_prefix_skips_temp_files(self, tmp_path):
        from repro.store.backend import FsBackend
        backend = FsBackend(tmp_path / "b")
        backend.write("objects/aa/1.json", b"x")
        backend.write("leases/b0/g000001", b"y")
        (tmp_path / "b" / "objects" / "aa" / ".tmp-zzz").write_text("t")
        names = {stat.name for stat in backend.list("objects/")}
        assert names == {"objects/aa/1.json"}
        assert {stat.name for stat in backend.list()} == \
            {"objects/aa/1.json", "leases/b0/g000001"}

    def test_bad_names_rejected(self, tmp_path):
        from repro.store.backend import FsBackend, validate_name
        backend = FsBackend(tmp_path / "b")
        for bad in ("", "/abs", "../escape", "a/../../b"):
            with pytest.raises(ValueError):
                backend.write(bad, b"x")
        assert validate_name("objects/ab/x.json") == "objects/ab/x.json"

    def test_ping_reports_object_count(self, tmp_path):
        from repro.store.backend import FsBackend
        backend = FsBackend(tmp_path / "b")
        ping = backend.ping()
        assert ping["ok"] and ping["backend"] == "fs"
        assert ping["objects"] == 0
