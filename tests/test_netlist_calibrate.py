"""Unit tests for ALU timing calibration."""

import pytest

from repro.netlist.alu import AluNetlist
from repro.netlist.calibrate import (
    CalibrationError,
    DEFAULT_TARGETS_PS,
    calibrate_alu,
    calibrated_alu,
    verify_calibration,
)


class TestCalibration:
    def test_targets_met_exactly(self, alu):
        measured = verify_calibration(alu)
        for unit, target in DEFAULT_TARGETS_PS.items():
            assert measured[unit] == pytest.approx(target, rel=1e-9)

    def test_multiplier_is_critical(self, alu):
        assert alu.worst_sta_period_ps(0.7) == pytest.approx(
            DEFAULT_TARGETS_PS["multiplier"], rel=1e-9)

    def test_custom_targets(self):
        alu = AluNetlist()
        calibrate_alu(alu, {"adder": 1200.0})
        measured = verify_calibration(alu, {"adder": 1200.0})
        assert measured["adder"] == pytest.approx(1200.0, rel=1e-9)

    def test_infeasible_target_rejected(self):
        alu = AluNetlist()
        with pytest.raises(CalibrationError, match="budget"):
            calibrate_alu(alu, {"adder": 50.0})

    def test_verify_detects_drift(self):
        alu = calibrated_alu()
        alu.unit_scales["adder"] *= 1.5
        with pytest.raises(CalibrationError, match="adder"):
            verify_calibration(alu)

    def test_scales_are_positive(self, alu):
        assert all(s > 0 for s in alu.unit_scales.values())

    def test_calibrated_alu_convenience(self):
        alu = calibrated_alu()
        assert alu.sta_limit_hz(0.7) / 1e6 == pytest.approx(707.1, abs=0.5)
