"""Tests for STA, the voltage-delay fit, the noise model, the library."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.netlist.circuit import Circuit
from repro.netlist.library import CHARACTERIZED_VDDS, CellLibrary, VDD_REF
from repro.timing.noise import NoiseStream, VoltageNoise
from repro.timing.sta import max_frequency_hz, static_arrivals, worst_arrival
from repro.timing.voltage import VddDelayModel


class TestLibrary:
    def test_voltage_factor_reference_is_unity(self):
        library = CellLibrary()
        assert library.voltage_factor(VDD_REF) == pytest.approx(1.0)

    def test_voltage_factor_monotone(self):
        library = CellLibrary()
        factors = [library.voltage_factor(v) for v in CHARACTERIZED_VDDS]
        assert factors == sorted(factors, reverse=True)

    def test_below_threshold_rejected(self):
        library = CellLibrary()
        with pytest.raises(ValueError, match="threshold"):
            library.voltage_factor(0.3)

    def test_unknown_cell_kind(self):
        library = CellLibrary()
        with pytest.raises(KeyError, match="NAND9"):
            library.delay_ps("NAND9")

    def test_scale_is_linear(self):
        library = CellLibrary()
        assert library.delay_ps("INV", scale=2.0) == pytest.approx(
            2.0 * library.delay_ps("INV"))

    def test_sequential_overheads_scale_with_voltage(self):
        library = CellLibrary()
        assert library.clk_to_q(0.6) > library.clk_to_q(0.7)
        assert library.setup(0.8) < library.setup(0.7)


class TestSta:
    def _chain(self, n: int) -> Circuit:
        circuit = Circuit("chain")
        a = circuit.input_bus("a", 1)[0]
        net = a
        for _ in range(n):
            net = circuit.gate("INV", net)
        circuit.output_bus("y", [net])
        return circuit

    def test_chain_arrival(self):
        library = CellLibrary()
        circuit = self._chain(5)
        arrivals = static_arrivals(circuit, library, 0.7)
        expected = library.clk_to_q(0.7) + 5 * library.delay_ps("INV", 0.7)
        assert arrivals["y"][0] == pytest.approx(expected)

    def test_without_clk_to_q(self):
        library = CellLibrary()
        circuit = self._chain(3)
        arrivals = static_arrivals(circuit, library, 0.7,
                                   include_clk_to_q=False)
        assert arrivals["y"][0] == pytest.approx(
            3 * library.delay_ps("INV", 0.7))

    def test_worst_takes_max_over_outputs(self):
        library = CellLibrary()
        circuit = Circuit("two")
        a = circuit.input_bus("a", 1)[0]
        short = circuit.gate("INV", a)
        long = circuit.gate("INV", circuit.gate("INV", short))
        circuit.output_bus("s", [short])
        circuit.output_bus("l", [long])
        assert worst_arrival(circuit, library) == pytest.approx(
            static_arrivals(circuit, library)["l"][0])

    def test_max_frequency(self):
        assert max_frequency_hz(960.0, 40.0) == pytest.approx(1e9)
        with pytest.raises(ValueError):
            max_frequency_hz(-50.0, 40.0)


class TestVddDelayModel:
    def test_fit_recovers_polynomial(self):
        vdds = np.array([0.6, 0.7, 0.8, 0.9, 1.0])
        delays = 3000 - 2000 * vdds + 500 * vdds ** 2
        model = VddDelayModel.fit(vdds, delays, degree=2)
        assert model.delay_ps(0.75) == pytest.approx(
            3000 - 2000 * 0.75 + 500 * 0.75 ** 2, rel=1e-9)

    def test_fit_needs_enough_points(self):
        with pytest.raises(ValueError, match="at least"):
            VddDelayModel.fit(np.array([0.6, 0.7]), np.array([1.0, 2.0]),
                              degree=3)

    def test_from_alu_sta_monotone(self, alu, vdd_model):
        delays = [vdd_model.delay_ps(v) for v in CHARACTERIZED_VDDS]
        assert delays == sorted(delays, reverse=True)

    def test_fit_matches_sta_at_corners(self, alu, vdd_model):
        for vdd in CHARACTERIZED_VDDS:
            assert vdd_model.delay_ps(vdd) == pytest.approx(
                alu.worst_sta_period_ps(vdd), rel=0.02)

    def test_droop_scale_factor_above_one(self, vdd_model):
        factor = vdd_model.scale_factor(0.68, 0.7)
        assert factor > 1.0

    def test_overdrive_scale_factor_below_one(self, vdd_model):
        assert vdd_model.scale_factor(0.72, 0.7) < 1.0

    def test_clamped_outside_fit_range(self, vdd_model):
        assert vdd_model.delay_ps(0.1) == vdd_model.delay_ps(0.6)
        assert vdd_model.delay_ps(2.0) == vdd_model.delay_ps(1.0)

    def test_sensitivity_matches_paper_band(self, vdd_model):
        """A 20 mV droop costs roughly 5-9 % delay (paper: B+ onset at
        661 MHz from a 707 MHz limit, i.e. ~7 %)."""
        factor = float(vdd_model.scale_factor(0.68, 0.7))
        assert 1.04 < factor < 1.10

    def test_against_scipy_interpolation(self, alu, vdd_model):
        scipy = pytest.importorskip("scipy.interpolate")
        vdds = np.array(CHARACTERIZED_VDDS)
        delays = np.array([alu.worst_sta_period_ps(v) for v in vdds])
        spline = scipy.CubicSpline(vdds, delays)
        for v in (0.65, 0.72, 0.85):
            assert vdd_model.delay_ps(v) == pytest.approx(
                float(spline(v)), rel=0.025)


class TestVoltageNoise:
    def test_zero_sigma_is_silent(self, rng):
        noise = VoltageNoise(0.0)
        assert np.all(noise.sample(100, rng) == 0.0)

    def test_clipping_at_two_sigma(self, rng):
        noise = VoltageNoise(0.010)
        samples = noise.sample(20000, rng)
        assert samples.max() <= 0.020 + 1e-12
        assert samples.min() >= -0.020 - 1e-12
        # The clip boundary actually accumulates probability mass.
        assert np.mean(np.isclose(np.abs(samples), 0.020)) > 0.02

    def test_distribution_moments(self, rng):
        noise = VoltageNoise(0.010)
        samples = noise.sample(50000, rng)
        assert abs(samples.mean()) < 5e-4
        assert 0.008 < samples.std() < 0.011

    def test_validation(self):
        with pytest.raises(ValueError):
            VoltageNoise(-0.01)
        with pytest.raises(ValueError):
            VoltageNoise(0.01, clip_sigmas=0)

    def test_max_droop(self):
        assert VoltageNoise(0.025).max_droop_v == pytest.approx(0.05)

    def test_stream_refills(self, rng):
        stream = NoiseStream(VoltageNoise(0.010), rng, block=16)
        values = [stream.next() for _ in range(50)]
        assert len(set(values)) > 20  # fresh randomness across refills

    def test_stream_block_validation(self, rng):
        with pytest.raises(ValueError):
            NoiseStream(VoltageNoise(0.01), rng, block=0)


class TestStatisticalClipBehavior:
    @given(sigma=st.floats(min_value=1e-4, max_value=0.05))
    @settings(max_examples=10)
    def test_bounds_hold_for_any_sigma(self, sigma):
        rng = np.random.default_rng(0)
        noise = VoltageNoise(sigma)
        samples = noise.sample(1000, rng)
        assert np.all(np.abs(samples) <= noise.max_droop_v + 1e-15)
