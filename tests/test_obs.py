"""Unit tests for the telemetry plane (spans, sinks, export, stats)."""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro import faults, obs
from repro.obs import plane as obs_plane


@pytest.fixture(autouse=True)
def clean_plane():
    obs.reset()
    yield
    obs.reset()


def read_lines(path):
    return [json.loads(line)
            for line in path.read_text().splitlines()]


class TestDisabledPath:
    def test_off_by_default(self):
        assert not obs.enabled()
        assert obs.current_span_id() is None

    def test_span_is_shared_noop(self):
        first = obs.span("a", x=1)
        second = obs.span("b")
        assert first is second  # one shared null object, no allocation
        with first as rec:
            assert rec.set(outcome="ok") is rec
        assert obs.current_span_id() is None

    def test_counter_and_flush_are_noops(self, tmp_path):
        obs.counter("n", 3)
        obs.flush()  # no sink configured: must not raise or write
        assert list(tmp_path.iterdir()) == []


class TestRecording:
    def test_span_records_and_nests(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        obs.configure(trace)
        with obs.span("outer", kind="x") as outer:
            outer_id = obs.current_span_id()
            assert outer_id is not None
            with obs.span("inner"):
                inner_id = obs.current_span_id()
                assert inner_id != outer_id
            outer.set(late=True)
        assert obs.current_span_id() is None
        obs.shutdown()
        records = obs.read_trace(trace)
        spans = {r["name"]: r for r in obs.spans(records)}
        assert spans["inner"]["parent"] == spans["outer"]["id"]
        assert "parent" not in spans["outer"]
        assert spans["outer"]["a"] == {"kind": "x", "late": True}
        assert spans["outer"]["dur"] >= spans["inner"]["dur"] >= 0
        assert spans["outer"]["pid"] == os.getpid()

    def test_exception_annotates_and_propagates(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        obs.configure(trace)
        with pytest.raises(ValueError):
            with obs.span("boom"):
                raise ValueError("nope")
        assert obs.current_span_id() is None  # stack unwound
        obs.shutdown()
        (record,) = obs.spans(obs.read_trace(trace))
        assert record["a"]["error"] == "ValueError"

    def test_counters_snapshot_cumulatively(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        obs.configure(trace)
        obs.counter("hits")
        obs.counter("hits")
        obs.counter("bytes", 100.0)
        obs.flush()
        obs.counter("hits")
        obs.flush()
        obs.flush()  # clean: no third snapshot
        obs.shutdown()
        snapshots = [r for r in obs.read_trace(trace)
                     if r["t"] == "ctr"]
        assert len(snapshots) == 2
        assert snapshots[0]["counters"] == {"hits": 2, "bytes": 100.0}
        assert snapshots[1]["counters"] == {"hits": 3, "bytes": 100.0}
        # Totals keep only the latest snapshot per pid.
        assert obs.counter_totals(obs.read_trace(trace)) == {
            "hits": 3, "bytes": 100.0}

    def test_meta_record_anchors_timebase(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        obs.configure(trace)
        with obs.span("x"):
            pass
        obs.shutdown()
        meta = [r for r in obs.read_trace(trace) if r["t"] == "meta"]
        assert len(meta) == 1
        assert meta[0]["pid"] == os.getpid()
        assert meta[0]["unix"] > 0 and meta[0]["mono"] > 0

    def test_configure_clears_stale_run(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        trace.write_text("stale\n")
        (tmp_path / "t.jsonl.pid-99999").write_text("stale part\n")
        obs.configure(trace)
        with obs.span("fresh"):
            pass
        obs.shutdown()
        names = {r["name"] for r in obs.spans(obs.read_trace(trace))}
        assert names == {"fresh"}

    def test_configure_none_disables(self, tmp_path):
        obs.configure(tmp_path / "t.jsonl")
        assert obs.enabled()
        obs.configure(None)
        assert not obs.enabled()


class TestRobustness:
    def test_unwritable_sink_disables_not_raises(self, tmp_path):
        # Configuring under a path whose parent cannot be created must
        # leave the plane off and the program running.
        target = tmp_path / "block"
        target.write_text("a file, not a directory")
        obs.configure(target / "t.jsonl")
        assert not obs.enabled()
        with obs.span("still fine"):
            pass

    def test_write_failure_mid_run_degrades(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        obs.configure(trace)
        with obs.span("before"):
            pass
        handle = obs_plane._HANDLE
        assert handle is not None
        handle.close()  # simulate the sink dying under the plane
        with obs.span("after"):
            pass  # swallowed: telemetry never changes exit codes
        assert not obs.enabled()

    def test_torn_last_line_is_skipped(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        obs.configure(trace)
        with obs.span("whole"):
            pass
        obs.shutdown()
        with open(trace, "a") as f:
            f.write('{"t":"span","name":"torn","pid":1,')  # killed
        records = obs.read_trace(trace)
        assert {r["name"] for r in obs.spans(records)} == {"whole"}

    def test_unmerged_parts_are_read(self, tmp_path):
        # A SIGKILLed owner never merges; readers pick up the parts.
        trace = tmp_path / "t.jsonl"
        part = tmp_path / "t.jsonl.pid-4242"
        part.write_text(json.dumps(
            {"t": "span", "name": "orphan", "pid": 4242, "tid": 0,
             "id": "4242-1", "ts": 1.0, "dur": 2.0}) + "\n")
        names = {r["name"] for r in obs.spans(obs.read_trace(trace))}
        assert names == {"orphan"}


class TestMultiProcess:
    def test_forked_child_writes_own_part_with_parent_link(
            self, tmp_path):
        trace = tmp_path / "t.jsonl"
        obs.configure(trace)
        context = multiprocessing.get_context("fork")

        def child():
            with obs.span("child.work"):
                pass
            obs.counter("child.events", 2)
            obs.flush()
            os._exit(0)

        with obs.span("parent.dispatch") as rec:
            proc = context.Process(target=child)
            proc.start()
            proc.join()
        assert proc.exitcode == 0
        obs.shutdown()
        records = obs.read_trace(trace)
        assert not list(tmp_path.glob("t.jsonl.pid-*"))  # merged
        spans = {r["name"]: r for r in obs.spans(records)}
        parent = spans["parent.dispatch"]
        child_span = spans["child.work"]
        assert child_span["pid"] != parent["pid"]
        # Fork keeps the open-span stack: the child's first span links
        # to the span that was live at fork time, across processes.
        assert child_span["parent"] == parent["id"]
        assert obs.counter_totals(records) == {"child.events": 2}

    def test_span_ids_unique_across_pids(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        obs.configure(trace)
        context = multiprocessing.get_context("fork")

        def child():
            with obs.span("c"):
                pass
            os._exit(0)

        with obs.span("p"):
            procs = [context.Process(target=child) for _ in range(2)]
            for proc in procs:
                proc.start()
            for proc in procs:
                proc.join()
        obs.shutdown()
        ids = [r["id"] for r in obs.spans(obs.read_trace(trace))]
        assert len(ids) == len(set(ids)) == 3


class TestExport:
    def make_trace(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        obs.configure(trace)
        with obs.span("campaign.dispatch", mode="serial"):
            with obs.span("store.get", kind="mc_point"):
                pass
        obs.counter("store.hit", 3)
        obs.counter("store.miss", 1)
        obs.shutdown()
        return obs.read_trace(trace)

    def test_to_chrome_shape(self, tmp_path):
        chrome = obs.to_chrome(self.make_trace(tmp_path))
        assert chrome["displayTimeUnit"] == "ms"
        events = chrome["traceEvents"]
        complete = {e["name"]: e for e in events if e["ph"] == "X"}
        assert set(complete) == {"campaign.dispatch", "store.get"}
        assert complete["store.get"]["cat"] == "store"
        assert complete["campaign.dispatch"]["cat"] == "campaign"
        # Timestamps rebase to zero at the earliest span.
        assert min(e["ts"] for e in complete.values()) == 0.0
        assert complete["store.get"]["args"]["parent_span"] \
            == complete["campaign.dispatch"]["args"]["span_id"]
        assert any(e["ph"] == "M" for e in events)
        counters = {e["name"]: e["args"]["value"]
                    for e in events if e["ph"] == "C"}
        assert counters == {"store.hit": 3, "store.miss": 1}

    def test_span_aggregates_self_time(self, tmp_path):
        rows = {row["name"]: row
                for row in obs.span_aggregates(self.make_trace(tmp_path))}
        outer = rows["campaign.dispatch"]
        inner = rows["store.get"]
        assert outer["count"] == inner["count"] == 1
        # Self time excludes the nested child's duration.
        assert outer["self_ms"] \
            == pytest.approx(outer["total_ms"] - inner["total_ms"])
        assert inner["self_ms"] == pytest.approx(inner["total_ms"])

    def test_render_stats_table(self, tmp_path):
        text = obs.render_stats(self.make_trace(tmp_path))
        assert "campaign.dispatch" in text
        assert "store.hit" in text
        assert "store hit rate" in text and "75.0%" in text

    def test_unit_times_accumulate_attempts(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        obs.configure(trace)
        for _ in range(2):  # a retried unit costs both attempts
            with obs.span("campaign.unit", label="fig5:p1"):
                pass
        with obs.span("campaign.unit", label="fig5:p2"):
            pass
        with obs.span("campaign.other", label="ignored"):
            pass
        obs.shutdown()
        times = obs.unit_times(obs.read_trace(trace))
        assert set(times) == {"fig5:p1", "fig5:p2"}
        assert times["fig5:p1"] >= times["fig5:p2"] >= 0

    def test_pool_split(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        obs.configure(trace)
        with obs.span("pool.task", queue_wait_us=500.0):
            pass
        with obs.span("pool.task", queue_wait_us=1500.0):
            pass
        obs.shutdown()
        split = obs.pool_split(obs.read_trace(trace))
        assert split["tasks"] == 2
        assert split["queue_wait_ms"] == pytest.approx(2.0)
        assert obs.pool_split([]) is None

    def test_thread_split(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        obs.configure(trace)
        with obs.span("threads.shard", lo=0, hi=64):
            pass
        with obs.span("threads.shard", lo=64, hi=128, healed=True):
            pass
        obs.shutdown()
        split = obs.thread_split(obs.read_trace(trace))
        assert split["shards"] == 2
        assert split["healed"] == 1
        assert split["threads"] >= 1
        assert split["window_ms"] >= 0
        assert sum(split["busy_ms"].values()) >= 0
        assert obs.thread_split([]) is None

    def test_adopted_parent_links_worker_spans(self, tmp_path):
        """A worker-thread span adopts the dispatcher's span as parent."""
        import threading

        trace = tmp_path / "t.jsonl"
        obs.configure(trace)
        with obs.span("circuit.propagate"):
            parent = obs.current_span_id()

            def worker():
                with obs.adopted_parent(parent):
                    with obs.span("threads.shard", lo=0, hi=8):
                        pass

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            # Adoption is confined to the worker's own stack.
            assert obs.current_span_id() == parent
        obs.shutdown()
        spans = {r["name"]: r for r in obs.spans(obs.read_trace(trace))}
        assert spans["threads.shard"]["parent"] \
            == spans["circuit.propagate"]["id"]
        # Disabled or parentless adoption is a no-op.
        obs.reset()
        with obs.adopted_parent(None):
            assert obs.current_span_id() is None


class TestFaultCrossRef:
    def test_fired_faults_carry_mono_and_span(self, tmp_path):
        faults.reset()
        try:
            faults.configure("seed=1;store.object_write:oserror@hits=1",
                             log_path=tmp_path / "faults.jsonl")
            obs.configure(tmp_path / "t.jsonl")
            with obs.span("store.put") as rec:
                span_id = obs.current_span_id()
                assert faults.fire("store.object_write") == "oserror"
            obs.shutdown()
            (record,) = faults.read_log(tmp_path / "faults.jsonl")
            assert record["pid"] == os.getpid()
            assert record["mono"] > 0
            assert record["span"] == span_id
        finally:
            faults.reset()

    def test_fired_faults_span_is_null_untraced(self, tmp_path):
        faults.reset()
        try:
            faults.configure("seed=1;store.object_write:oserror@hits=1",
                             log_path=tmp_path / "faults.jsonl")
            assert faults.fire("store.object_write") == "oserror"
            (record,) = faults.read_log(tmp_path / "faults.jsonl")
            assert record["span"] is None
            assert record["mono"] > 0
        finally:
            faults.reset()
