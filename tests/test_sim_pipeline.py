"""Unit tests for the pipeline-stage model."""

import pytest

from repro.sim.pipeline import (
    DEPTH,
    EX_INDEX,
    STAGES,
    ex_cycle_of,
    occupancy_at,
    retired_at,
)


class TestStructure:
    def test_six_stages(self):
        assert DEPTH == 6
        assert STAGES[0] == "IF1"
        assert STAGES[-1] == "WB"

    def test_ex_is_fourth_stage(self):
        assert STAGES[EX_INDEX] == "EX"
        assert EX_INDEX == 3


class TestOccupancy:
    def test_fill_phase_has_bubbles(self):
        occupancy = occupancy_at(0)
        assert occupancy.in_stage("IF1") == 0
        assert occupancy.in_stage("WB") is None

    def test_steady_state(self):
        occupancy = occupancy_at(10)
        assert occupancy.in_stage("IF1") == 10
        assert occupancy.in_stage("EX") == 10 - EX_INDEX
        assert occupancy.in_stage("WB") == 10 - (DEPTH - 1)

    def test_ex_cycle_inverse(self):
        for retire_index in (0, 1, 17, 1000):
            cycle = ex_cycle_of(retire_index)
            assert occupancy_at(cycle).in_stage("EX") == retire_index

    def test_ex_cycle_negative_rejected(self):
        with pytest.raises(ValueError):
            ex_cycle_of(-1)

    def test_retired_at(self):
        assert retired_at(DEPTH - 1) == 0
        assert retired_at(0) is None
        assert retired_at(100) == 100 - (DEPTH - 1)
