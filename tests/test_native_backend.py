"""Native backend unit tests: build cache, availability, lowering.

Everything that actually invokes the compiler is marked with
``needs_native`` and auto-skips -- with the probe's reason -- where no
working C compiler exists or ``REPRO_NO_CC`` masks it; the
availability/fallback tests themselves run everywhere.
"""

import numpy as np
import pytest

from repro import native
from repro.cli import main
from repro.native import build as build_mod
from repro.netlist.circuit import Circuit

# Defined per file, not imported from conftest: the module name
# ``conftest`` is ambiguous under whole-repo collection (benchmarks/
# owns one too); the condition/reason delegate to repro.native.
needs_native = pytest.mark.skipif(
    not native.native_available(),
    reason=f"native backend unavailable "
           f"({native.unavailable_reason()})")


# ---------------------------------------------------------------------------
# Build cache
# ---------------------------------------------------------------------------

@needs_native
def test_build_cache_hit_and_source_hash_rebuild(tmp_path, monkeypatch):
    """Second build is a cache hit; a source change keys a rebuild."""
    first = build_mod.ensure_library("float64", tmp_path)
    assert first.built and first.path.exists()
    count = build_mod.build_count

    again = build_mod.ensure_library("float64", tmp_path)
    assert not again.built  # served from the cache ...
    assert again.path == first.path and again.sha256 == first.sha256
    assert build_mod.build_count == count  # ... without a compile

    # A template change (here: an extra trailing comment) must hash to
    # a different key and rebuild next to the cached library.
    original = build_mod.render_source
    monkeypatch.setattr(
        build_mod, "render_source",
        lambda dtype: original(dtype) + "\n/* edited */\n")
    changed = build_mod.ensure_library("float64", tmp_path)
    assert changed.built
    assert changed.sha256 != first.sha256
    assert changed.path != first.path
    assert first.path.exists()  # the old library is not clobbered
    assert build_mod.build_count == count + 1


@needs_native
def test_second_circuit_reuses_cached_library(tmp_path, monkeypatch):
    """A fresh Circuit (fresh plan) never re-invokes the compiler."""
    monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path))

    def one_run(name):
        circuit = Circuit(name)
        a = circuit.input_bus("a", 2)
        b = circuit.input_bus("b", 2)
        circuit.output_bus("y", [circuit.gate("XOR2", x, y)
                                 for x, y in zip(a, b)])
        return circuit.propagate({"a": [1], "b": [2]},
                                 {"a": [3], "b": [1]},
                                 np.full(2, 2.0), 1.0,
                                 engine="compiled-native")

    one_run("first")
    count = build_mod.build_count
    out, arr = one_run("second")
    assert build_mod.build_count == count  # cached .so reused
    assert out["y"].tolist() == [2]


@needs_native
def test_f32_and_f64_libraries_are_distinct(tmp_path):
    f64 = build_mod.ensure_library("float64", tmp_path)
    f32 = build_mod.ensure_library("float32", tmp_path)
    assert f64.path != f32.path
    assert f64.path.exists() and f32.path.exists()


def test_unknown_dtype_rejected(tmp_path):
    with pytest.raises(ValueError, match="timing dtype"):
        native.render_source("float16")


# ---------------------------------------------------------------------------
# Availability and fallback
# ---------------------------------------------------------------------------

def test_no_cc_masks_the_whole_backend(monkeypatch):
    monkeypatch.setenv("REPRO_NO_CC", "1")
    assert not native.native_available()
    assert "REPRO_NO_CC" in native.unavailable_reason()
    with pytest.raises(native.NativeBuildError, match="REPRO_NO_CC"):
        build_mod.ensure_library("float64")
    status = native.native_status("float64")
    assert status["available"] is False
    assert "REPRO_NO_CC" in status["reason"]
    # Selection helpers resolve to the numpy engines.
    assert native.engine_for("float64", "native") == "compiled"
    assert native.engine_for("float32", "native") == "compiled-f32"


def test_engine_for_backend_resolution():
    assert native.engine_for("float64", "numpy") == "compiled"
    assert native.engine_for("float32", "numpy") == "compiled-f32"
    with pytest.raises(ValueError, match="backend"):
        native.engine_for("float64", "turbo")
    with pytest.raises(ValueError, match="timing_dtype"):
        native.engine_for("float16", "numpy")
    if native.native_available():
        assert native.engine_for("float64", "native") == "compiled-native"
        assert native.engine_for("float32", "native") == "native-f32"


def test_backend_default_is_numpy_and_settable():
    assert native.get_backend() == "numpy"
    try:
        native.set_backend("native")
        expected = "compiled-native" if native.native_available() \
            else "compiled"
        assert native.engine_for("float64") == expected
    finally:
        native.set_backend("numpy")
    with pytest.raises(ValueError, match="backend"):
        native.set_backend("turbo")


def test_engines_cli_lists_every_engine(capsys):
    assert main(["engines"]) == 0
    out = capsys.readouterr().out
    for engine in ("reference", "compiled", "compiled-f32",
                   "compiled-native", "native-f32"):
        assert engine in out
    # Whatever the machine has, the native rows say *why*.
    assert ("available" in out)
    if not native.native_available():
        assert "UNAVAILABLE" in out


def test_engines_cli_reports_masked_toolchain(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_NO_CC", "1")
    assert main(["engines"]) == 0
    out = capsys.readouterr().out
    assert out.count("UNAVAILABLE") == 2
    assert "REPRO_NO_CC" in out


def test_characterized_engine_follows_config_dtype(monkeypatch):
    """An explicit config's dtype, not the context's, picks the engine.

    A float32 context asked to characterize a float64 config (the
    glitch-model ablation does exactly this) must run the float64
    pipeline: its result is cached and persisted under the float64
    key, so computing it with a tolerance-level engine would file
    relaxed-identity data under a bit-exact key.
    """
    from repro.experiments.context import ExperimentContext
    from repro.timing import characterize as char_mod

    ctx = ExperimentContext.create("quick", seed=1,
                                   timing_dtype="float32")
    seen = {}

    def fake_get(alu, config, engine=None):
        seen[config.timing_dtype] = engine
        return object()

    monkeypatch.setattr("repro.experiments.context.get_characterization",
                        fake_get)
    ctx.characterized(char_mod.CharacterizationConfig(
        n_cycles_per_instr=8, seed=1))  # dtype defaults to float64
    ctx.characterized(char_mod.CharacterizationConfig(
        n_cycles_per_instr=8, seed=1, timing_dtype="float32"))
    assert seen["float64"] == native.engine_for("float64", "numpy")
    assert seen["float32"] == native.engine_for("float32", "numpy")


# ---------------------------------------------------------------------------
# Lowering edge cases
# ---------------------------------------------------------------------------

def test_descriptor_single_gate_records():
    """The flat descriptor must not assume >= 2 ops (or gates) per level."""
    circuit = Circuit("one")
    s = circuit.input_bus("s", 1)[0]
    a = circuit.input_bus("a", 1)[0]
    b = circuit.input_bus("b", 1)[0]
    circuit.output_bus("y", [circuit.gate("MUX2", s, a, b)])
    desc = native.native_desc(circuit.plan)
    assert desc.n_ops == 1
    assert desc.family.tolist() == [2]
    assert (desc.hi - desc.lo).tolist() == [1]
    assert len(desc.ins) == 3  # one stacked [a, b, s] triple
    assert desc.flags.tolist() == [0]
    assert desc.gidx.tolist() == [0]


def test_descriptor_flags_encode_inversion_masks():
    circuit = Circuit("masks")
    a = circuit.input_bus("a", 1)[0]
    b = circuit.input_bus("b", 1)[0]
    nor = circuit.gate("NOR2", a, b)   # pa=T, pb=T, po=F -> 0b011
    inv = circuit.gate("INV", nor)     # pa=F, pb=F, po=T -> 0b100
    circuit.output_bus("y", [nor, inv])
    desc = native.native_desc(circuit.plan)
    rows = circuit.plan.rows
    flag_of = lambda net: int(  # noqa: E731
        desc.flags[int(rows[net]) - desc.gate_row0])
    assert flag_of(nor) == 0b011  # pa, pb set; po clear
    assert flag_of(inv) == 0b100  # phantom const-1 leg, po set


def test_descriptor_cached_on_plan():
    circuit = Circuit("cache")
    a = circuit.input_bus("a", 1)[0]
    circuit.output_bus("y", [circuit.gate("BUF", a)])
    plan = circuit.plan
    assert native.native_desc(plan) is native.native_desc(plan)
    # A netlist edit rebuilds the plan and thereby drops the stale desc.
    circuit.gate("INV", a)
    assert circuit.plan is not plan


@needs_native
def test_native_zero_gate_circuit(tmp_path, monkeypatch):
    """A circuit with no gates runs the native engine as a no-op."""
    monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path))
    circuit = Circuit("empty")
    a = circuit.input_bus("a", 2)
    circuit.output_bus("y", a)
    out, arr = circuit.propagate({"a": [1]}, {"a": [2]},
                                 np.empty(0), 1.5,
                                 engine="compiled-native")
    ref, ref_arr = circuit.propagate({"a": [1]}, {"a": [2]},
                                     np.empty(0), 1.5,
                                     engine="compiled")
    assert np.array_equal(out["y"], ref["y"])
    assert np.array_equal(arr["y"], ref_arr["y"])


# ---------------------------------------------------------------------------
# Fault injection and runtime degradation
# ---------------------------------------------------------------------------

@pytest.fixture()
def clean_faults(monkeypatch):
    from repro import faults
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_FAULT_LOG", raising=False)
    faults.reset()
    yield faults
    faults.reset()


def test_compile_timeout_is_configurable(monkeypatch):
    assert build_mod.compile_timeout() == build_mod.DEFAULT_CC_TIMEOUT_S
    monkeypatch.setenv("REPRO_CC_TIMEOUT_S", "7.5")
    assert build_mod.compile_timeout() == 7.5
    monkeypatch.setenv("REPRO_CC_TIMEOUT_S", "junk")
    assert build_mod.compile_timeout() == build_mod.DEFAULT_CC_TIMEOUT_S


@needs_native
def test_injected_compile_fault_surfaces_as_build_error(tmp_path,
                                                        clean_faults):
    clean_faults.configure("native.compile:fail@after=1")
    with pytest.raises(native.NativeBuildError, match="injected"):
        build_mod.ensure_library("float64", tmp_path)
    # The fault fired once; the next attempt compiles normally.
    result = build_mod.ensure_library("float64", tmp_path)
    assert result.path.exists()


@needs_native
def test_corrupt_cached_library_rebuilds_once(tmp_path, clean_faults):
    clean_faults.configure("native.dlopen:corrupt@after=1")
    count = build_mod.build_count
    kernels = build_mod.load_kernels("float64", tmp_path)
    # dlopen hit the injected garbage, moved it aside and rebuilt.
    assert kernels.path.exists()
    assert build_mod.build_count == count + 2  # first build + rebuild
    corpses = list(tmp_path.glob("*.corrupt"))
    assert len(corpses) == 1
    assert corpses[0].read_bytes().startswith(b"injected corruption")


def test_runtime_failure_latch_degrades_engine_selection():
    native.clear_runtime_failure()
    try:
        native.record_runtime_failure("kernel exploded mid-run")
        assert native.runtime_failure() == "kernel exploded mid-run"
        # Even an available toolchain must not be re-selected.
        assert native.engine_for("float64", "native") == "compiled"
        assert native.engine_for("float32", "native") == "compiled-f32"
        status = native.native_status("float64")
        assert status["runtime_failure"] == "kernel exploded mid-run"
        # First reason wins; later failures do not overwrite it.
        native.record_runtime_failure("second reason")
        assert native.runtime_failure() == "kernel exploded mid-run"
    finally:
        native.clear_runtime_failure()
    assert native.runtime_failure() is None


def test_engines_cli_strict_exit_codes(capsys, monkeypatch):
    native.clear_runtime_failure()
    if native.native_available():
        assert main(["engines", "--strict"]) == 0
        capsys.readouterr()
        try:
            native.record_runtime_failure("injected degrade")
            assert main(["engines", "--strict"]) == 2
            out = capsys.readouterr().out
            assert "DEGRADED" in out
            assert "injected degrade" in out
        finally:
            native.clear_runtime_failure()
    monkeypatch.setenv("REPRO_NO_CC", "1")
    assert main(["engines", "--strict"]) == 2
    out = capsys.readouterr().out
    assert "UNAVAILABLE" in out
    # Without --strict the same situation stays informational.
    assert main(["engines"]) == 0
