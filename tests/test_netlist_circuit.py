"""Unit and property tests for the circuit graph and its engines."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.netlist.circuit import (
    Circuit,
    CircuitError,
    bits_from_ints,
    ints_from_bits,
)
from repro.netlist.library import CellLibrary


class TestBitPlanes:
    @given(st.lists(st.integers(min_value=0, max_value=(1 << 32) - 1),
                    min_size=1, max_size=20))
    def test_roundtrip(self, values):
        array = np.array(values, dtype=np.uint64)
        assert np.array_equal(ints_from_bits(bits_from_ints(array, 32)),
                              array)

    def test_bit_order_lsb_first(self):
        planes = bits_from_ints(np.array([0b101]), 3)
        assert planes[:, 0].tolist() == [True, False, True]


class TestConstruction:
    def test_topological_order_enforced(self):
        circuit = Circuit("t")
        with pytest.raises(CircuitError, match="not driven"):
            circuit.gate("INV", 99)

    def test_arity_checked(self):
        circuit = Circuit("t")
        a = circuit.input_bus("a", 1)[0]
        with pytest.raises(CircuitError, match="expects 2"):
            circuit.gate("AND2", a)

    def test_duplicate_bus_name(self):
        circuit = Circuit("t")
        circuit.input_bus("a", 1)
        with pytest.raises(CircuitError, match="duplicate"):
            circuit.input_bus("a", 2)

    def test_output_over_undriven_net(self):
        circuit = Circuit("t")
        with pytest.raises(CircuitError, match="not driven"):
            circuit.output_bus("y", [55])

    def test_cell_histogram(self):
        circuit = Circuit("t")
        a = circuit.input_bus("a", 2)
        circuit.gate("AND2", a[0], a[1])
        circuit.gate("AND2", a[0], a[1])
        circuit.gate("INV", a[0])
        assert circuit.cell_histogram() == {"AND2": 2, "INV": 1}


def _mux_circuit() -> Circuit:
    circuit = Circuit("mux")
    s = circuit.input_bus("s", 1)[0]
    a = circuit.input_bus("a", 1)[0]
    b = circuit.input_bus("b", 1)[0]
    circuit.output_bus("y", [circuit.gate("MUX2", s, a, b)])
    return circuit


class TestEvaluate:
    def test_mux_semantics(self):
        circuit = _mux_circuit()
        out = circuit.evaluate({
            "s": np.array([0, 0, 1, 1]),
            "a": np.array([0, 1, 0, 1]),
            "b": np.array([1, 0, 1, 0]),
        })
        assert out["y"].tolist() == [0, 1, 1, 0]

    def test_full_adder_truth_table(self):
        circuit = Circuit("fa")
        a = circuit.input_bus("a", 1)[0]
        b = circuit.input_bus("b", 1)[0]
        c = circuit.input_bus("c", 1)[0]
        s, cout = circuit.full_adder(a, b, c)
        circuit.output_bus("s", [s])
        circuit.output_bus("cout", [cout])
        stim = {
            "a": np.array([0, 0, 0, 0, 1, 1, 1, 1]),
            "b": np.array([0, 0, 1, 1, 0, 0, 1, 1]),
            "c": np.array([0, 1, 0, 1, 0, 1, 0, 1]),
        }
        out = circuit.evaluate(stim)
        total = stim["a"] + stim["b"] + stim["c"]
        assert np.array_equal(out["s"], total & 1)
        assert np.array_equal(out["cout"], total >> 1)

    def test_missing_stimulus(self):
        circuit = _mux_circuit()
        with pytest.raises(CircuitError, match="missing"):
            circuit.evaluate({"s": np.array([0])})

    def test_unknown_stimulus(self):
        circuit = _mux_circuit()
        with pytest.raises(CircuitError, match="unknown"):
            circuit.evaluate({"s": [0], "a": [0], "b": [0], "z": [0]})

    def test_length_mismatch(self):
        circuit = _mux_circuit()
        with pytest.raises(CircuitError, match="differ"):
            circuit.evaluate({"s": [0, 1], "a": [0], "b": [0]})


class TestPropagateEvents:
    """Event/masking rules of the sensitized glitch model."""

    def _single_gate(self, kind: str, n_inputs: int):
        circuit = Circuit("g")
        buses = [circuit.input_bus(f"i{k}", 1)[0] for k in range(n_inputs)]
        circuit.output_bus("y", [circuit.gate(kind, *buses)])
        delays = circuit.gate_delays(CellLibrary(), 0.7)
        return circuit, delays

    def _arrival(self, circuit, delays, prev, new):
        _, arrivals = circuit.propagate(
            {f"i{k}": np.array([v]) for k, v in enumerate(prev)},
            {f"i{k}": np.array([v]) for k, v in enumerate(new)},
            delays, input_arrival=10.0)
        return float(arrivals["y"][0, 0])

    def test_and_stable_zero_masks(self):
        circuit, delays = self._single_gate("AND2", 2)
        # Input 0 toggles, input 1 is stable 0 -> no output event.
        assert self._arrival(circuit, delays, (0, 0), (1, 0)) == 0.0

    def test_and_stable_one_passes(self):
        circuit, delays = self._single_gate("AND2", 2)
        arrival = self._arrival(circuit, delays, (0, 1), (1, 1))
        assert arrival > 10.0

    def test_or_stable_one_masks(self):
        circuit, delays = self._single_gate("OR2", 2)
        assert self._arrival(circuit, delays, (0, 1), (1, 1)) == 0.0

    def test_xor_never_masks(self):
        circuit, delays = self._single_gate("XOR2", 2)
        # Both inputs toggle; the value is unchanged but the node may
        # glitch, so an event must propagate.
        arrival = self._arrival(circuit, delays, (0, 0), (1, 1))
        assert arrival > 10.0

    def test_mux_select_masked_leg(self):
        circuit, delays = self._single_gate("MUX2", 3)
        # Select stable at 1 (chooses leg b = input 2); a toggles.
        assert self._arrival(circuit, delays, (1, 0, 0), (1, 1, 0)) == 0.0

    def test_mux_select_toggle_equal_legs_masked(self):
        circuit, delays = self._single_gate("MUX2", 3)
        assert self._arrival(circuit, delays, (0, 1, 1), (1, 1, 1)) == 0.0

    def test_mux_select_toggle_different_legs_event(self):
        circuit, delays = self._single_gate("MUX2", 3)
        arrival = self._arrival(circuit, delays, (0, 0, 1), (1, 0, 1))
        assert arrival > 10.0

    def test_value_change_model_ignores_glitches(self):
        circuit, delays = self._single_gate("XOR2", 2)
        _, arrivals = circuit.propagate(
            {"i0": np.array([0]), "i1": np.array([0])},
            {"i0": np.array([1]), "i1": np.array([1])},
            delays, input_arrival=10.0, glitch_model="value-change")
        assert float(arrivals["y"][0, 0]) == 0.0

    def test_unknown_glitch_model(self):
        circuit, delays = self._single_gate("INV", 1)
        with pytest.raises(CircuitError, match="glitch"):
            circuit.propagate({"i0": [0]}, {"i0": [1]}, delays,
                              glitch_model="bogus")

    def test_delay_vector_length_checked(self):
        circuit, _ = self._single_gate("INV", 1)
        with pytest.raises(CircuitError, match="delay vector"):
            circuit.propagate({"i0": [0]}, {"i0": [1]},
                              np.array([1.0, 2.0]))

    def test_values_still_correct_under_propagate(self):
        circuit, delays = self._single_gate("AND2", 2)
        outputs, _ = circuit.propagate(
            {"i0": np.array([0, 1]), "i1": np.array([1, 1])},
            {"i0": np.array([1, 0]), "i1": np.array([1, 1])},
            delays)
        assert outputs["y"].tolist() == [1, 0]

    def test_arrival_chains_accumulate(self):
        circuit = Circuit("chain")
        a = circuit.input_bus("a", 1)[0]
        x = circuit.gate("INV", a)
        y = circuit.gate("INV", x)
        circuit.output_bus("y", [y])
        library = CellLibrary()
        delays = circuit.gate_delays(library, 0.7)
        _, arrivals = circuit.propagate({"a": [0]}, {"a": [1]}, delays,
                                        input_arrival=5.0)
        expected = 5.0 + 2 * library.delay_ps("INV", 0.7)
        assert arrivals["y"][0, 0] == pytest.approx(expected)
