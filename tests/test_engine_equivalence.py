"""Equivalence of the compiled bucketed engine with the per-gate reference.

The compiled structure-of-arrays plan (`repro.netlist.plan`) must be a
pure performance transformation: on any feed-forward circuit, both
glitch models, it has to produce bit-identical output values and
arrival times to the retained per-gate reference engine.  The property
test below builds random circuits (random kinds, random wiring depths,
shared fan-out, constants as inputs) and cross-checks every observable.

The Monte-Carlo layer rides on the same guarantee: CPU reuse via
``Cpu.reset()`` and process-parallel ``run_point`` must both be
invisible in the results.
"""

import contextlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import faults, native, parallel
from repro.bench.suite import build_kernel
from repro.fi.base import FaultInjector
from repro.mc.runner import run_point, run_trial, trial_seeds
from repro.netlist.circuit import Circuit, CircuitError
from repro.netlist.gates import GATE_KINDS, arity_of
from repro.netlist.plan import (
    F32_ATOL,
    F32_RTOL,
    ShardView,
    propagate_sensitized,
)
from repro.sim.cpu import Cpu
from repro.sim.machine import MachineConfig

#: Marker of every test that executes the native C backend: skipped
#: (never failed) where no working compiler exists or REPRO_NO_CC
#: masks it -- the toolchain is optional by contract.  Deliberately
#: defined per file: ``from conftest import ...`` is ambiguous under
#: whole-repo collection (tests/ and benchmarks/ both own a conftest
#: module named ``conftest``), and the condition/reason already
#: delegate to the one implementation in :mod:`repro.native`.
needs_native = pytest.mark.skipif(
    not native.native_available(),
    reason=f"native backend unavailable "
           f"({native.unavailable_reason()})")


@pytest.fixture(autouse=True)
def _bounds_oracle(monkeypatch):
    """Arm the static bounds oracle for every equivalence test.

    With ``REPRO_CHECK_BOUNDS=1`` each propagate in this file -- five
    engines, both glitch models, serial and pool-sharded (workers
    inherit the environment) -- is additionally checked against the
    independent STA envelope, so the suite cross-checks engines
    against each other *and* against the static bounds at once.
    """
    monkeypatch.setenv("REPRO_CHECK_BOUNDS", "1")


@contextlib.contextmanager
def _pool(workers: int, min_shard_vectors: int = 1):
    """Process-global pool for one test body, always torn down.

    ``workers=1`` intentionally configures *no* pool (the serial
    path): the worker-count sweeps below include it so "1 worker"
    means exactly what a user gets from ``--pool-workers 1``.
    """
    try:
        yield parallel.configure_pool(
            workers, min_shard_vectors=min_shard_vectors)
    finally:
        parallel.shutdown_pool()


@contextlib.contextmanager
def _thread_pool(workers: int, min_shard_vectors: int = 1):
    """Process-global thread-shard pool for one test body.

    Unlike :func:`_pool`, ``workers=1`` *does* install a (degenerate,
    serial) pool -- that is the thread pool's documented contract, and
    the sweeps below include it so the routing code runs even when no
    sharding happens.
    """
    try:
        yield parallel.configure_thread_pool(
            workers, min_shard_vectors=min_shard_vectors)
    finally:
        parallel.shutdown_thread_pool()


# ---------------------------------------------------------------------------
# Random-circuit property tests
# ---------------------------------------------------------------------------

@st.composite
def random_circuits(draw):
    """A random feed-forward circuit plus matched stimulus blocks."""
    n_inputs = draw(st.integers(min_value=1, max_value=3))
    widths = [draw(st.integers(min_value=1, max_value=6))
              for _ in range(n_inputs)]
    n_gates = draw(st.integers(min_value=1, max_value=40))
    circuit = Circuit("random")
    nets = [0, 1]
    for index, width in enumerate(widths):
        nets.extend(circuit.input_bus(f"i{index}", width))
    kinds = sorted(GATE_KINDS)
    outputs = []
    for _ in range(n_gates):
        kind = draw(st.sampled_from(kinds))
        ins = [nets[draw(st.integers(0, len(nets) - 1))]
               for _ in range(arity_of(kind))]
        out = circuit.gate(kind, *ins)
        nets.append(out)
        outputs.append(out)
    # Expose a random selection of internal nets (plus the last gate).
    n_out = draw(st.integers(min_value=1, max_value=min(6, len(outputs))))
    chosen = [outputs[draw(st.integers(0, len(outputs) - 1))]
              for _ in range(n_out - 1)] + [outputs[-1]]
    circuit.output_bus("y", chosen)
    n_vectors = draw(st.integers(min_value=1, max_value=16))
    stim = {}
    for index, width in enumerate(widths):
        limit = (1 << width) - 1
        stim[f"i{index}"] = np.array(
            [draw(st.integers(0, limit)) for _ in range(2 * n_vectors)],
            dtype=np.uint64)
    prev = {k: v[:n_vectors] for k, v in stim.items()}
    new = {k: v[n_vectors:] for k, v in stim.items()}
    delays = np.array([draw(st.floats(0.5, 40.0, allow_nan=False))
                       for _ in range(n_gates)])
    arrival = draw(st.floats(0.0, 25.0, allow_nan=False))
    return circuit, prev, new, delays, arrival


@given(random_circuits())
@settings(max_examples=60, deadline=None)
def test_compiled_engine_bit_identical(case):
    circuit, prev, new, delays, arrival = case
    evaluated = {}
    for engine in ("compiled", "reference"):
        evaluated[engine] = circuit.evaluate(new, engine=engine)
    assert np.array_equal(evaluated["compiled"]["y"],
                          evaluated["reference"]["y"])
    for glitch_model in ("sensitized", "value-change"):
        out_c, arr_c = circuit.propagate(prev, new, delays, arrival,
                                         glitch_model, engine="compiled")
        out_r, arr_r = circuit.propagate(prev, new, delays, arrival,
                                         glitch_model, engine="reference")
        assert np.array_equal(out_c["y"], out_r["y"]), glitch_model
        assert np.array_equal(arr_c["y"], arr_r["y"]), glitch_model


@given(random_circuits())
@settings(max_examples=40, deadline=None)
def test_f32_engine_within_documented_tolerance(case):
    """compiled-f32 vs compiled: values/events exact, arrivals close.

    The value/event network is boolean, so outputs must stay
    bit-identical; arrivals follow the relaxed-identity contract
    (F32_RTOL/F32_ATOL) on both glitch models.
    """
    circuit, prev, new, delays, arrival = case
    for glitch_model in ("sensitized", "value-change"):
        out64, arr64 = circuit.propagate(prev, new, delays, arrival,
                                         glitch_model, engine="compiled")
        out32, arr32 = circuit.propagate(prev, new, delays, arrival,
                                         glitch_model,
                                         engine="compiled-f32")
        assert np.array_equal(out32["y"], out64["y"]), glitch_model
        np.testing.assert_allclose(arr32["y"], arr64["y"],
                                   rtol=F32_RTOL, atol=F32_ATOL,
                                   err_msg=glitch_model)


@given(random_circuits(), st.sampled_from([1, 2, 4]))
@settings(max_examples=25, deadline=None)
def test_sharded_propagate_identical_to_serial(case, workers):
    """Pool-sharded propagate must be invisible at any worker count.

    f64 shards are bit-identical to the single-core engine; f32
    shards are bit-identical to the *serial f32* engine (sharding
    never changes results, only the dtype contract does).
    """
    circuit, prev, new, delays, arrival = case
    serial = {
        (glitch_model, engine): circuit.propagate(
            prev, new, delays, arrival, glitch_model, engine=engine)
        for glitch_model in ("sensitized", "value-change")
        for engine in ("compiled", "compiled-f32")
    }
    with _pool(workers):
        for (glitch_model, engine), (out_s, arr_s) in serial.items():
            out_p, arr_p = circuit.propagate(prev, new, delays, arrival,
                                             glitch_model, engine=engine)
            assert np.array_equal(out_p["y"], out_s["y"]), \
                (glitch_model, engine, workers)
            assert np.array_equal(arr_p["y"], arr_s["y"]), \
                (glitch_model, engine, workers)


@needs_native
@given(random_circuits())
@settings(max_examples=40, deadline=None)
def test_native_engine_bit_identical(case):
    """compiled-native must be a pure backend swap of compiled-f64.

    Same ops, same order, select-vs-multiply masking equivalent for
    the non-negative settles both engines produce: values, events and
    arrivals are bit-identical on random circuits, both glitch models.
    """
    circuit, prev, new, delays, arrival = case
    for glitch_model in ("sensitized", "value-change"):
        out_c, arr_c = circuit.propagate(prev, new, delays, arrival,
                                         glitch_model, engine="compiled")
        out_n, arr_n = circuit.propagate(prev, new, delays, arrival,
                                         glitch_model,
                                         engine="compiled-native")
        assert np.array_equal(out_n["y"], out_c["y"]), glitch_model
        assert np.array_equal(arr_n["y"], arr_c["y"]), glitch_model


@needs_native
@given(random_circuits())
@settings(max_examples=25, deadline=None)
def test_native_f32_within_documented_tolerance(case):
    """native-f32 inherits the PR 4 relaxed-identity contract.

    Values/events bit-identical to float64; arrivals within
    F32_RTOL/F32_ATOL -- the same contract (and the same store-key
    class) as compiled-f32.
    """
    circuit, prev, new, delays, arrival = case
    for glitch_model in ("sensitized", "value-change"):
        out64, arr64 = circuit.propagate(prev, new, delays, arrival,
                                         glitch_model, engine="compiled")
        out32, arr32 = circuit.propagate(prev, new, delays, arrival,
                                         glitch_model,
                                         engine="native-f32")
        assert np.array_equal(out32["y"], out64["y"]), glitch_model
        np.testing.assert_allclose(arr32["y"], arr64["y"],
                                   rtol=F32_RTOL, atol=F32_ATOL,
                                   err_msg=glitch_model)


@needs_native
@given(random_circuits(), st.sampled_from([1, 2]))
@settings(max_examples=15, deadline=None)
def test_native_sharded_identical_to_serial(case, workers):
    """Pool-sharded native kernels over shared mappings: invisible.

    Workers run the fused C kernels on their column ranges of the
    MAP_SHARED workspaces; results must be bit-identical to the serial
    native engine at any worker count (and native-f64 therefore to
    compiled-f64 too).
    """
    circuit, prev, new, delays, arrival = case
    serial = {
        (glitch_model, engine): circuit.propagate(
            prev, new, delays, arrival, glitch_model, engine=engine)
        for glitch_model in ("sensitized", "value-change")
        for engine in ("compiled-native", "native-f32")
    }
    with _pool(workers):
        for (glitch_model, engine), (out_s, arr_s) in serial.items():
            out_p, arr_p = circuit.propagate(prev, new, delays, arrival,
                                             glitch_model, engine=engine)
            assert np.array_equal(out_p["y"], out_s["y"]), \
                (glitch_model, engine, workers)
            assert np.array_equal(arr_p["y"], arr_s["y"]), \
                (glitch_model, engine, workers)


def test_native_engine_unavailable_is_a_clean_error(monkeypatch):
    """Explicit native selection without a toolchain: clear error."""
    monkeypatch.setenv("REPRO_NO_CC", "1")
    assert not native.native_available()
    circuit = Circuit("masked")
    a = circuit.input_bus("a", 1)[0]
    circuit.output_bus("y", [circuit.gate("INV", a)])
    with pytest.raises(CircuitError, match="REPRO_NO_CC"):
        circuit.propagate({"a": [0]}, {"a": [1]}, np.array([1.0]),
                          engine="compiled-native")
    # Selection-level resolution falls back instead of raising.
    assert native.engine_for("float64", "native") == "compiled"
    assert native.engine_for("float32", "native") == "compiled-f32"


# ---------------------------------------------------------------------------
# Width-1 levels and single-gate circuits (flat-descriptor regressions)
# ---------------------------------------------------------------------------

def _engines_under_test():
    engines = ["compiled"]
    if native.native_available():
        engines.append("compiled-native")
    return engines


@pytest.mark.parametrize("kind", sorted(GATE_KINDS))
def test_single_gate_circuit_all_engines(kind):
    """One gate, width-1 buses: every level path at its minimum size.

    Locks in the in-place XOR mask path and the MUX three-leg split of
    the compiled plan -- and the native lowering's per-level records --
    at n=1, where a ``>= 2 ops per level`` assumption would break.
    """
    circuit = Circuit(f"single-{kind}")
    inputs = [circuit.input_bus(f"i{index}", 1)[0]
              for index in range(arity_of(kind))]
    circuit.output_bus("y", [circuit.gate(kind, *inputs)])
    delays = np.array([3.0])
    combos = 2 ** arity_of(kind)
    stim = lambda values: {  # noqa: E731
        f"i{index}": np.array(values, dtype=np.uint64) >> index & 1
        for index in range(arity_of(kind))
    }
    prev = stim(np.arange(combos).repeat(combos))
    new = stim(np.tile(np.arange(combos), combos))
    for glitch_model in ("sensitized", "value-change"):
        out_r, arr_r = circuit.propagate(prev, new, delays, 1.5,
                                         glitch_model, engine="reference")
        for engine in _engines_under_test():
            out_e, arr_e = circuit.propagate(prev, new, delays, 1.5,
                                             glitch_model, engine=engine)
            assert np.array_equal(out_e["y"], out_r["y"]), \
                (kind, glitch_model, engine)
            assert np.array_equal(arr_e["y"], arr_r["y"]), \
                (kind, glitch_model, engine)


def test_width_one_levels_chain_all_engines():
    """A chain whose every level holds exactly one op of one family.

    XNOR exercises the xor-family output mask at width 1, the MUX the
    three-leg stacked gather at width 1, and the INV/BUF pair the
    phantom constant-1 leg -- all with exactly one gate per level.
    """
    circuit = Circuit("width1-chain")
    a = circuit.input_bus("a", 1)[0]
    b = circuit.input_bus("b", 1)[0]
    s = circuit.input_bus("s", 1)[0]
    x1 = circuit.gate("XNOR2", a, b)
    x2 = circuit.gate("MUX2", s, x1, b)
    x3 = circuit.gate("INV", x2)
    x4 = circuit.gate("NOR2", x3, a)
    x5 = circuit.gate("BUF", x4)
    circuit.output_bus("y", [x1, x2, x3, x4, x5])
    rng = np.random.default_rng(5)
    draw = lambda: {name: rng.integers(0, 2, 64, dtype=np.uint64)  # noqa: E731
                    for name in ("a", "b", "s")}
    prev, new = draw(), draw()
    delays = rng.uniform(0.5, 9.0, circuit.n_gates)
    for glitch_model in ("sensitized", "value-change"):
        out_r, arr_r = circuit.propagate(prev, new, delays, 2.0,
                                         glitch_model, engine="reference")
        for engine in _engines_under_test():
            out_e, arr_e = circuit.propagate(prev, new, delays, 2.0,
                                             glitch_model, engine=engine)
            assert np.array_equal(out_e["y"], out_r["y"]), \
                (glitch_model, engine)
            assert np.array_equal(arr_e["y"], arr_r["y"]), \
                (glitch_model, engine)


def _wide_xor_chain(n_vectors=160):
    """A small circuit plus a block wide enough to shard at 2 workers."""
    circuit = Circuit("wide")
    a = circuit.input_bus("a", 4)
    b = circuit.input_bus("b", 4)
    row = [circuit.gate("XOR2", x, y) for x, y in zip(a, b)]
    for _ in range(3):
        row = [circuit.gate("AND2", row[i], row[(i + 1) % 4])
               for i in range(4)]
    circuit.output_bus("y", row)
    rng = np.random.default_rng(7)
    prev = {"a": rng.integers(0, 16, n_vectors, dtype=np.uint64),
            "b": rng.integers(0, 16, n_vectors, dtype=np.uint64)}
    new = {"a": rng.integers(0, 16, n_vectors, dtype=np.uint64),
           "b": rng.integers(0, 16, n_vectors, dtype=np.uint64)}
    return circuit, prev, new


def test_pooled_workspace_buffers_are_shared_mappings():
    """Sharded runs write shared mappings; serial runs stay private."""
    circuit, prev, new = _wide_xor_chain()
    delays = np.full(circuit.n_gates, 2.0)
    with _pool(2):
        circuit.propagate(prev, new, delays, 1.0, engine="compiled")
    shared_ws = circuit._workspaces[(160, "<f8", True)]
    for matrix in (shared_ws.new, shared_ws.events, shared_ws.settles):
        assert parallel.is_shared(matrix)
    circuit.propagate(prev, new, delays, 1.0, engine="compiled")
    serial_ws = circuit._workspaces[(160, "<f8", False)]
    assert not parallel.is_shared(serial_ws.new)


def test_pooled_propagate_sees_in_place_delay_mutation():
    """Mutating a pushed delay array must reach the workers.

    The pooled path compares delays by value against its last pushed
    snapshot (like the serial delay-tile cache); keying by object
    identity alone would serve stale delays after an in-place `*=`.
    """
    circuit, prev, new = _wide_xor_chain()
    delays = np.full(circuit.n_gates, 2.0)
    with _pool(2):
        circuit.propagate(prev, new, delays, 1.0, engine="compiled")
        delays *= 3.0  # same object, new values
        _, pooled = circuit.propagate(prev, new, delays, 1.0,
                                      engine="compiled")
    _, serial = circuit.propagate(prev, new, delays, 1.0,
                                  engine="compiled")
    assert np.array_equal(pooled["y"], serial["y"])


def test_pooled_propagate_survives_pool_reconfiguration():
    """A reconfigured pool starts empty; the delays must be re-pushed.

    The circuit-side snapshot guard keys on the pool instance: with
    equal delay values but a fresh pool, skipping the push would leave
    the new workers without the delay vector (KeyError -> PoolError).
    """
    circuit, prev, new = _wide_xor_chain()
    delays = np.full(circuit.n_gates, 2.0)
    _, serial = circuit.propagate(prev, new, delays, 1.0,
                                  engine="compiled")
    with _pool(2):
        circuit.propagate(prev, new, delays, 1.0, engine="compiled")
    with _pool(2):  # fresh pool, same circuit, same delay values
        _, again = circuit.propagate(prev, new, delays, 1.0,
                                     engine="compiled")
    assert np.array_equal(again["y"], serial["y"])


# ---------------------------------------------------------------------------
# Thread-sharded native engine (zero-IPC block-axis sharding)
# ---------------------------------------------------------------------------

@needs_native
@given(random_circuits(), st.sampled_from([1, 2, 4]))
@settings(max_examples=15, deadline=None)
def test_native_thread_sharded_identical_to_serial(case, workers):
    """Thread-sharded native propagate: invisible at any worker count.

    f64 shards must be bit-identical to the serial native engine (and
    native-f64 is bit-identical to compiled-f64, so transitively to
    the numpy engine too); f32 shards are bit-identical to the serial
    f32 engine and stay within the relaxed-identity contract against
    float64 -- sharding never changes results, only the dtype
    contract does.
    """
    circuit, prev, new, delays, arrival = case
    serial = {
        (glitch_model, engine): circuit.propagate(
            prev, new, delays, arrival, glitch_model, engine=engine)
        for glitch_model in ("sensitized", "value-change")
        for engine in ("compiled", "compiled-native", "native-f32")
    }
    with _thread_pool(workers):
        for glitch_model in ("sensitized", "value-change"):
            for engine in ("compiled-native", "native-f32"):
                out_t, arr_t = circuit.propagate(
                    prev, new, delays, arrival, glitch_model,
                    engine=engine)
                out_s, arr_s = serial[(glitch_model, engine)]
                assert np.array_equal(out_t["y"], out_s["y"]), \
                    (glitch_model, engine, workers)
                assert np.array_equal(arr_t["y"], arr_s["y"]), \
                    (glitch_model, engine, workers)
            # Cross-dtype anchors (so bit-identity above transitively
            # pins the sharded runs): native-f64 bit-identical to the
            # numpy engine, f32 within F32_RTOL/F32_ATOL of it.
            _, arr64 = serial[(glitch_model, "compiled")]
            assert np.array_equal(
                serial[(glitch_model, "compiled-native")][1]["y"],
                arr64["y"])
            np.testing.assert_allclose(
                serial[(glitch_model, "native-f32")][1]["y"],
                arr64["y"], rtol=F32_RTOL, atol=F32_ATOL,
                err_msg=str((glitch_model, workers)))


@needs_native
def test_thread_sharded_edge_shapes():
    """Width-1 buses, single gates and single vectors under threads.

    Four workers with ``min_shard_vectors=1`` force real sharding on
    tiny blocks (and degenerate one-column shards); a single-vector
    block must fall back to serial via ``shard_columns -> None``.
    """
    single = Circuit("thread-single")
    a = single.input_bus("a", 1)[0]
    b = single.input_bus("b", 1)[0]
    single.output_bus("y", [single.gate("XOR2", a, b)])
    one_delay = np.array([3.0])
    rng = np.random.default_rng(13)
    cases = []
    for n_vectors in (1, 4, 7):
        blocks = [{name: rng.integers(0, 2, n_vectors, dtype=np.uint64)
                   for name in ("a", "b")} for _ in range(2)]
        cases.append((single, blocks[0], blocks[1], one_delay))
    wide, prev, new = _wide_xor_chain()
    cases.append((wide, prev, new, np.full(wide.n_gates, 2.0)))
    for circuit, prev, new, delays in cases:
        for glitch_model in ("sensitized", "value-change"):
            out_s, arr_s = circuit.propagate(prev, new, delays, 1.5,
                                             glitch_model,
                                             engine="compiled-native")
            with _thread_pool(4):
                out_t, arr_t = circuit.propagate(
                    prev, new, delays, 1.5, glitch_model,
                    engine="compiled-native")
            assert np.array_equal(out_t["y"], out_s["y"]), \
                (circuit.name, glitch_model)
            assert np.array_equal(arr_t["y"], arr_s["y"]), \
                (circuit.name, glitch_model)


@needs_native
def test_thread_shard_fault_heals_byte_identical():
    """An injected ``threads.shard`` fault heals serially, invisibly.

    The first shard dispatch trips; the pool re-runs that column
    range in the dispatching thread.  Column writes are idempotent
    and disjoint, so the healed call must be byte-identical to both
    the unfaulted sharded run and the serial engine.
    """
    circuit, prev, new = _wide_xor_chain()
    delays = np.full(circuit.n_gates, 2.0)
    out_s, arr_s = circuit.propagate(prev, new, delays, 1.0,
                                     engine="compiled-native")
    try:
        plane = faults.configure("threads.shard:raise@after=1")
        with _thread_pool(4):
            out_h, arr_h = circuit.propagate(prev, new, delays, 1.0,
                                             engine="compiled-native")
        assert [(r["site"], r["mode"]) for r in plane.fired] \
            == [("threads.shard", "raise")]
    finally:
        faults.reset()
    assert np.array_equal(out_h["y"], out_s["y"])
    assert np.array_equal(arr_h["y"], arr_s["y"])


@needs_native
def test_thread_routed_native_skips_fork_pool():
    """Native engines never engage the fork pool when threads exist.

    With both pools configured, a native propagate must leave the
    fork pool unspawned and its registry free of netlist keys (no
    stale shared-workspace registrations to leak); a numpy-engine
    propagate in the same process still routes to the fork pool.
    """
    circuit, prev, new = _wide_xor_chain()
    delays = np.full(circuit.n_gates, 2.0)
    out_s, arr_s = circuit.propagate(prev, new, delays, 1.0,
                                     engine="compiled-native")
    with _pool(2) as pool, _thread_pool(2):
        out_t, arr_t = circuit.propagate(prev, new, delays, 1.0,
                                         engine="compiled-native")
        assert pool.spawn_count == 0
        assert not any(str(key[0]).startswith("netlist")
                       for key in pool._registry)
        circuit.propagate(prev, new, delays, 1.0, engine="compiled")
        assert any(key[0] == "netlist-ws" for key in pool._registry)
    assert np.array_equal(out_t["y"], out_s["y"])
    assert np.array_equal(arr_t["y"], arr_s["y"])


def test_pool_reconfigure_drops_workspace_registrations():
    """A fresh fork pool starts with an empty registry.

    Shared-workspace registrations belong to one pool generation;
    reconfiguring must not leak them into the next pool (the circuit
    re-registers lazily on the next pooled propagate).
    """
    circuit, prev, new = _wide_xor_chain()
    delays = np.full(circuit.n_gates, 2.0)
    with _pool(2) as pool:
        circuit.propagate(prev, new, delays, 1.0, engine="compiled")
        assert any(key[0] == "netlist-ws" for key in pool._registry)
    with _pool(2) as fresh:
        assert fresh._registry == {}
        circuit.propagate(prev, new, delays, 1.0, engine="compiled")
        assert any(key[0] == "netlist-ws" for key in fresh._registry)


def test_gather_scratch_fast_path_contiguity(monkeypatch):
    """The ``np.take(out=)`` gather fast path stays contiguous.

    numpy silently buffers (copies the whole source, measured ~90x)
    when either side of ``np.take(out=)`` is non-contiguous.  A
    full-width serial propagate must hit the fast path with both
    sides C-contiguous; a column-sliced shard view must never reach
    ``out=`` at all (it keeps the fancy-index gather).
    """
    circuit, prev, new = _wide_xor_chain()
    delays = np.full(circuit.n_gates, 2.0)
    real_take = np.take
    out_calls = []

    def spy(a, indices, axis=None, out=None, mode="raise"):
        if out is not None:
            out_calls.append((a.flags.c_contiguous,
                              out.flags.c_contiguous))
        return real_take(a, indices, axis=axis, out=out, mode=mode)

    monkeypatch.setattr(np, "take", spy)
    circuit.propagate(prev, new, delays, 1.0, engine="compiled")
    assert out_calls, "serial propagate no longer uses np.take(out=)"
    assert all(src and dst for src, dst in out_calls)
    out_calls.clear()
    ws = circuit._workspaces[(160, "<f8", False)]
    propagate_sensitized(circuit.plan, ShardView(ws, 0, 80),
                         np.asarray(delays, dtype=float))
    assert not out_calls, \
        "a column-sliced shard view reached the np.take(out=) path"


def test_plan_invalidated_by_gate_add():
    circuit = Circuit("grow")
    a, b = circuit.input_bus("a", 1)[0], circuit.input_bus("b", 1)[0]
    x = circuit.gate("AND2", a, b)
    circuit.output_bus("x", [x])
    first = circuit.plan
    assert first.n_nets == circuit.n_nets
    assert circuit.evaluate({"a": [1], "b": [1]})["x"].tolist() == [1]
    y = circuit.gate("XOR2", a, x)
    assert circuit.plan is not first
    assert circuit.plan.n_nets == circuit.n_nets
    circuit._output_buses["x"].nets.append(y)  # widen for the check
    out = circuit.evaluate({"a": [1], "b": [1]})
    assert out["x"].tolist() == [1]  # and2=1, xor=0 -> bits 0b01


def test_plan_invalidated_by_input_bus_add():
    circuit = Circuit("grow-in")
    a = circuit.input_bus("a", 1)[0]
    circuit.output_bus("na", [circuit.gate("INV", a)])
    assert circuit.plan.n_nets == circuit.n_nets
    # A new input bus adds matrix rows too, so it must rebuild the plan.
    b = circuit.input_bus("b", 1)[0]
    circuit.output_bus("y", [circuit.gate("AND2", a, b)])
    assert circuit.plan.n_nets == circuit.n_nets
    out = circuit.evaluate({"a": np.array([0, 1, 1]),
                            "b": np.array([1, 0, 1])})
    assert out["na"].tolist() == [1, 0, 0]
    assert out["y"].tolist() == [0, 0, 1]


def test_delay_cache_cleared_lazily():
    from repro.netlist.library import CellLibrary
    library = CellLibrary()
    circuit = Circuit("lazy")
    a, b = circuit.input_bus("a", 1)[0], circuit.input_bus("b", 1)[0]
    circuit.gate("AND2", a, b)
    first = circuit.gate_delays(library, 0.7)
    assert len(first) == 1
    # Adding a gate only marks dirty; the next gate_delays() rebuilds.
    circuit.gate("OR2", a, b)
    assert circuit._dirty
    second = circuit.gate_delays(library, 0.7)
    assert len(second) == 2
    assert not circuit._dirty


def test_engine_argument_validated():
    circuit = Circuit("bad")
    a = circuit.input_bus("a", 1)[0]
    circuit.output_bus("y", [circuit.gate("BUF", a)])
    with pytest.raises(CircuitError, match="engine"):
        circuit.evaluate({"a": [0]}, engine="turbo")
    with pytest.raises(CircuitError, match="engine"):
        circuit.propagate({"a": [0]}, {"a": [1]}, np.array([1.0]),
                          engine="turbo")


# ---------------------------------------------------------------------------
# Monte-Carlo reuse and parallel equivalence
# ---------------------------------------------------------------------------

class _RareInjector(FaultInjector):
    """One single-bit fault roughly every ``period`` ALU cycles."""

    def __init__(self, rng, period=60):
        super().__init__()
        self._rng = rng
        self._period = period

    def fault_mask(self, mnemonic):
        return 1 if self._rng.random() < 1.0 / self._period else 0


@pytest.fixture(scope="module")
def kernel():
    return build_kernel("median", "quick")


def test_cpu_reuse_matches_fresh_cpu(kernel):
    """run_trial(cpu=...) must be bit-identical to a fresh CPU."""
    fresh = run_trial(kernel, _RareInjector(np.random.default_rng(11)))
    cpu = Cpu(kernel.program, injector=None)
    cpu.run(kernel.entry)  # dirty the architectural state first
    reused = run_trial(kernel, _RareInjector(np.random.default_rng(11)),
                       cpu=cpu)
    assert fresh == reused


def test_cpu_reuse_rejects_config_mismatch(kernel):
    """A reused CPU built under a different memory map must not run."""
    cpu = Cpu(kernel.program, injector=None)
    other = MachineConfig(dmem_size=2 * cpu.config.dmem_size)
    with pytest.raises(ValueError, match="MachineConfig"):
        run_trial(kernel, _RareInjector(np.random.default_rng(3)),
                  config=other, cpu=cpu)


def test_reset_restores_dmem_snapshot(kernel):
    cpu = Cpu(kernel.program, injector=None)
    before = cpu.dmem.snapshot()
    cpu.run(kernel.entry)
    assert cpu.dmem.snapshot() != before  # the kernel writes outputs
    cpu.reset()
    assert cpu.dmem.snapshot() == before
    assert cpu.regs == [0] * 32 and cpu.cycles == 0


def test_parallel_run_point_equals_serial(kernel):
    serial = run_point(kernel, lambda rng: _RareInjector(rng),
                       n_trials=8, seed=5, n_jobs=1)
    parallel = run_point(kernel, lambda rng: _RareInjector(rng),
                         n_trials=8, seed=5, n_jobs=2)
    assert serial.trials == parallel.trials
    assert serial.summary() == parallel.summary()


def test_pooled_run_point_equals_serial(kernel):
    """Persistent-pool run_point: bit-identical, one spawn for many."""
    factory = lambda rng: _RareInjector(rng)  # noqa: E731
    serial = run_point(kernel, factory, n_trials=8, seed=5, n_jobs=1)
    with _pool(2) as pool:
        first = run_point(kernel, factory, n_trials=8, seed=5, n_jobs=2)
        second = run_point(kernel, factory, n_trials=8, seed=5, n_jobs=2)
        assert pool.spawn_count == 1  # spawn cost amortized
    assert serial.trials == first.trials == second.trials
    assert serial.summary() == first.summary()


def test_pooled_run_point_worker_count_invisible(kernel):
    """Trial outcomes must not depend on the pool's worker count."""
    factory = lambda rng: _RareInjector(rng)  # noqa: E731
    points = []
    for workers in (1, 2, 4):
        with _pool(workers):
            points.append(run_point(kernel, factory, n_trials=8,
                                    seed=9, n_jobs=2))
    assert points[0].trials == points[1].trials == points[2].trials


def test_trial_seeds_are_deterministic():
    first = [s.generate_state(2).tolist() for s in trial_seeds(42, 4)]
    second = [s.generate_state(2).tolist() for s in trial_seeds(42, 4)]
    assert first == second


def test_run_point_validates_n_jobs(kernel):
    with pytest.raises(ValueError, match="n_jobs"):
        run_point(kernel, lambda rng: _RareInjector(rng),
                  n_trials=2, n_jobs=0)
