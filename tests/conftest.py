"""Shared fixtures: the calibrated hardware model and its timing data.

Everything expensive is session-scoped -- the gate-level ALU, the DTA
characterization and the fitted voltage model are immutable once built,
so all tests can share one instance.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.netlist.alu import AluNetlist
from repro.netlist.calibrate import calibrate_alu
from repro.timing.characterize import (
    CharacterizationConfig,
    get_characterization,
)
from repro.timing.voltage import VddDelayModel


@pytest.fixture(scope="session", autouse=True)
def _isolated_result_store(tmp_path_factory):
    """Point the CLI's default result store at a throwaway directory.

    CLI tests run experiment commands whose store defaults to the user
    cache dir; tests must never read (warm hits would mask bugs) or
    pollute it.
    """
    os.environ["REPRO_STORE"] = str(tmp_path_factory.mktemp("store"))
    yield


@pytest.fixture(scope="session")
def alu() -> AluNetlist:
    """The calibrated case-study ALU (707 MHz STA limit at 0.7 V)."""
    instance = AluNetlist()
    calibrate_alu(instance)
    return instance


@pytest.fixture(scope="session")
def characterization(alu):
    """Small but real DTA characterization at 0.7 V."""
    return get_characterization(
        alu, CharacterizationConfig(n_cycles_per_instr=256, seed=7))


@pytest.fixture(scope="session")
def vdd_model(alu) -> VddDelayModel:
    """Fitted Vdd-delay curve of the calibrated ALU."""
    return VddDelayModel.from_alu_sta(alu)


@pytest.fixture()
def rng() -> np.random.Generator:
    """Fresh deterministic RNG per test."""
    return np.random.default_rng(1234)
