"""Tests for the injector base class and conditional mask sampling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fi.base import FaultInjector, NullInjector
from repro.fi.sampling import BitSampler


class _ScriptedInjector(FaultInjector):
    """Test double replaying a fixed sequence of masks."""

    def __init__(self, masks, semantics="flip"):
        super().__init__(semantics)
        self._masks = list(masks)
        self._cursor = 0

    def fault_mask(self, mnemonic):
        mask = self._masks[self._cursor % len(self._masks)]
        self._cursor += 1
        return mask


class TestFaultSemantics:
    def test_flip_inverts_masked_bits(self):
        injector = _ScriptedInjector([0b101])
        assert injector.on_alu("l.add", 0b111) == 0b010

    def test_stale_relatches_previous_value(self):
        injector = _ScriptedInjector([0, 0xF], semantics="stale")
        first = injector.on_alu("l.add", 0x12345678)   # clean, latched
        assert first == 0x12345678
        second = injector.on_alu("l.add", 0xABCDEF00)
        # Low nibble re-latches the previous value's low nibble (0x8).
        assert second == 0xABCDEF08

    def test_stale_initial_latch_is_zero(self):
        injector = _ScriptedInjector([0xFF], semantics="stale")
        assert injector.on_alu("l.add", 0x12345678) == 0x12345600

    def test_counters(self):
        injector = _ScriptedInjector([0b11, 0, 0b1])
        for value in (1, 2, 3):
            injector.on_alu("l.add", value)
        assert injector.alu_cycles == 3
        assert injector.faulty_cycles == 2
        assert injector.fault_count == 3

    def test_begin_run_resets(self):
        injector = _ScriptedInjector([1])
        injector.on_alu("l.add", 0)
        injector.begin_run()
        assert injector.fault_count == 0
        assert injector.alu_cycles == 0

    def test_unknown_semantics_rejected(self):
        with pytest.raises(ValueError, match="semantics"):
            NullInjector(semantics="quantum")

    def test_null_injector_is_transparent(self):
        injector = NullInjector()
        assert injector.on_alu("l.mul", 42) == 42
        assert injector.fault_count == 0


class TestBitSampler:
    def test_p_any_formula(self):
        p = np.array([0.5, 0.5])
        sampler = BitSampler.from_probs(p)
        assert sampler.p_any == pytest.approx(0.75)

    def test_zero_probs(self):
        sampler = BitSampler.from_probs(np.zeros(4))
        assert sampler.p_any == 0.0
        with pytest.raises(ValueError, match="p_any"):
            sampler.sample_mask(np.random.default_rng(0))

    def test_mask_always_nonzero(self, rng):
        sampler = BitSampler.from_probs(np.full(8, 0.01))
        for _ in range(200):
            assert sampler.sample_mask(rng) != 0

    def test_validation(self):
        with pytest.raises(ValueError):
            BitSampler.from_probs(np.array([1.5]))
        with pytest.raises(ValueError):
            BitSampler.from_probs(np.array([[0.1]]))

    def test_conditional_marginals_match(self, rng):
        """Gated sampling reproduces the unconditional marginals."""
        p = np.array([0.02, 0.0, 0.10, 0.05])
        sampler = BitSampler.from_probs(p)
        trials = 40000
        counts = np.zeros(4)
        for _ in range(trials):
            if rng.random() < sampler.p_any:
                mask = sampler.sample_mask(rng)
                for bit in range(4):
                    counts[bit] += (mask >> bit) & 1
        observed = counts / trials
        assert np.allclose(observed, p, atol=0.005)
        assert counts[1] == 0  # zero-probability bit never fires

    @given(st.lists(st.floats(min_value=0.0, max_value=0.9), min_size=1,
                    max_size=16))
    @settings(max_examples=30)
    def test_first_cdf_is_monotone_and_bounded(self, probs):
        sampler = BitSampler.from_probs(np.array(probs))
        cdf = sampler.first_cdf
        assert np.all(np.diff(cdf) >= -1e-12)
        if sampler.p_any > 0:
            assert cdf[-1] == pytest.approx(1.0)
