"""Unit and property tests for instruction encoding/decoding."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.encoding import (
    Decoded,
    EncodingError,
    decode,
    encode,
    make,
    sign_extend,
)
from repro.isa.instructions import Format, INSTRUCTIONS, spec_for


class TestSignExtend:
    @pytest.mark.parametrize("value,bits,expected", [
        (0x7FFF, 16, 0x7FFF),
        (0x8000, 16, -0x8000),
        (0xFFFF, 16, -1),
        (0, 16, 0),
        (0x2000000, 26, -0x2000000),
        (0x1FFFFFF, 26, 0x1FFFFFF),
    ])
    def test_known_values(self, value, bits, expected):
        assert sign_extend(value, bits) == expected

    @given(st.integers(min_value=0, max_value=0xFFFF))
    def test_roundtrip_16(self, value):
        assert sign_extend(value, 16) & 0xFFFF == value


def _decoded_strategy():
    """Random valid Decoded instances for round-trip testing."""
    regs = st.integers(min_value=0, max_value=31)

    def build(mnemonic):
        spec = spec_for(mnemonic)
        fmt = spec.fmt
        if fmt is Format.RRR:
            return st.builds(Decoded, st.just(spec), rd=regs, ra=regs,
                             rb=regs)
        if fmt is Format.RRI:
            if spec.signed_imm:
                imm = st.integers(min_value=-(1 << 15),
                                  max_value=(1 << 15) - 1)
            else:
                imm = st.integers(min_value=0, max_value=(1 << 16) - 1)
            return st.builds(Decoded, st.just(spec), rd=regs, ra=regs,
                             imm=imm)
        if fmt is Format.RRL:
            return st.builds(Decoded, st.just(spec), rd=regs, ra=regs,
                             imm=st.integers(min_value=0, max_value=63))
        if fmt is Format.RI_HI:
            return st.builds(Decoded, st.just(spec), rd=regs,
                             imm=st.integers(min_value=0,
                                             max_value=(1 << 16) - 1))
        if fmt in (Format.LOAD, Format.STORE):
            imm = st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1)
            if fmt is Format.LOAD:
                return st.builds(Decoded, st.just(spec), rd=regs, ra=regs,
                                 imm=imm)
            return st.builds(Decoded, st.just(spec), ra=regs, rb=regs,
                             imm=imm)
        if fmt is Format.SF_RR:
            return st.builds(Decoded, st.just(spec), ra=regs, rb=regs)
        if fmt is Format.SF_RI:
            return st.builds(Decoded, st.just(spec), ra=regs,
                             imm=st.integers(min_value=-(1 << 15),
                                             max_value=(1 << 15) - 1))
        if fmt is Format.JUMP:
            return st.builds(Decoded, st.just(spec),
                             imm=st.integers(min_value=-(1 << 25),
                                             max_value=(1 << 25) - 1))
        if fmt is Format.JUMP_REG:
            return st.builds(Decoded, st.just(spec), rb=regs)
        return st.builds(Decoded, st.just(spec),
                         imm=st.integers(min_value=0,
                                         max_value=(1 << 16) - 1))

    return st.sampled_from(sorted(INSTRUCTIONS)).flatmap(build)


class TestRoundTrip:
    @given(_decoded_strategy())
    def test_encode_decode_roundtrip(self, decoded):
        word = encode(decoded)
        assert 0 <= word < (1 << 32)
        again = decode(word)
        assert again.spec.mnemonic == decoded.spec.mnemonic
        fmt = decoded.spec.fmt
        if fmt in (Format.RRR, Format.RRI, Format.RRL, Format.RI_HI,
                   Format.LOAD):
            assert again.rd == decoded.rd
        if fmt not in (Format.JUMP, Format.JUMP_REG, Format.NOP,
                       Format.RI_HI):
            assert again.ra == decoded.ra
        if fmt in (Format.RRR, Format.STORE, Format.SF_RR,
                   Format.JUMP_REG):
            assert again.rb == decoded.rb
        if fmt not in (Format.RRR, Format.SF_RR, Format.JUMP_REG):
            assert again.imm == decoded.imm

    def test_every_mnemonic_roundtrips_once(self):
        for mnemonic in INSTRUCTIONS:
            decoded = make(mnemonic, rd=1, ra=2, rb=3, imm=4)
            assert decode(encode(decoded)).mnemonic == mnemonic


class TestValidation:
    def test_register_out_of_range(self):
        with pytest.raises(EncodingError, match="register"):
            encode(make("l.add", rd=32, ra=0, rb=0))

    def test_signed_immediate_overflow(self):
        with pytest.raises(EncodingError, match="immediate"):
            encode(make("l.addi", rd=1, ra=1, imm=40000))

    def test_unsigned_immediate_negative(self):
        with pytest.raises(EncodingError, match="immediate"):
            encode(make("l.ori", rd=1, ra=1, imm=-1))

    def test_jump_offset_overflow(self):
        with pytest.raises(EncodingError, match="immediate"):
            encode(make("l.j", imm=1 << 26))

    def test_illegal_word_raises(self):
        with pytest.raises(EncodingError, match="illegal"):
            decode(0xFC000000)  # opcode 0x3F is unassigned

    def test_bad_alu_subopcode(self):
        word = encode(make("l.add", rd=1, ra=2, rb=3)) | 0xF
        with pytest.raises(EncodingError):
            decode(word)

    def test_bad_setflag_subopcode(self):
        # rd field carries the compare kind; 0x1F is unassigned.
        word = (0x39 << 26) | (0x1F << 21)
        with pytest.raises(EncodingError):
            decode(word)


class TestFieldPlacement:
    def test_major_opcode_position(self):
        assert encode(make("l.j", imm=0)) >> 26 == 0x00
        assert encode(make("l.sw", ra=0, rb=0, imm=0)) >> 26 == 0x35

    def test_store_immediate_split(self):
        # Store immediates split across bits [25:21] and [10:0].
        decoded = make("l.sw", ra=3, rb=4, imm=-4)
        word = encode(decoded)
        assert decode(word).imm == -4
        assert decode(word).ra == 3
        assert decode(word).rb == 4

    def test_mul_group_marker_bits(self):
        word = encode(make("l.mul", rd=1, ra=2, rb=3))
        assert (word >> 8) & 0b11 == 0b11
