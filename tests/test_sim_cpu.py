"""Unit tests for the cycle-accurate CPU: semantics, control, faults."""

import pytest

from repro.fi.base import FaultInjector
from repro.isa.assembler import assemble
from repro.sim.cpu import Cpu
from repro.sim.machine import DATA_BASE, MachineConfig


def run_program(source: str, entry: str = "start", **cpu_kwargs):
    cpu = Cpu(assemble(source), **cpu_kwargs)
    result = cpu.run(entry)
    return cpu, result


def run_and_report(body: str, **cpu_kwargs):
    """Run a snippet ending with the value to report in r3."""
    source = f"""
    start:
    {body}
        l.nop 0x2
        l.nop 0x1
    """
    cpu, result = run_program(source, **cpu_kwargs)
    assert result.finished, result.abort_reason
    return result.reports[-1]


class TestArithmetic:
    def test_add_and_addi(self):
        assert run_and_report("""
        l.addi r1, r0, 1000
        l.addi r2, r0, -7
        l.add  r3, r1, r2
        """) == 993

    def test_add_wraps_32_bits(self):
        assert run_and_report("""
        l.movhi r1, 0xffff
        l.ori   r1, r1, 0xffff
        l.addi  r3, r1, 1
        """) == 0

    def test_sub(self):
        assert run_and_report("""
        l.addi r1, r0, 5
        l.addi r2, r0, 9
        l.sub  r3, r1, r2
        """) == 0xFFFFFFFC  # -4

    def test_mul_signed_low_word(self):
        assert run_and_report("""
        l.addi r1, r0, -3
        l.addi r2, r0, 7
        l.mul  r3, r1, r2
        """) == (-21) & 0xFFFFFFFF

    def test_muli(self):
        assert run_and_report("""
        l.addi r1, r0, 1000
        l.muli r3, r1, -2
        """) == (-2000) & 0xFFFFFFFF

    def test_logic_ops(self):
        assert run_and_report("""
        l.addi r1, r0, 0x0ff0
        l.addi r2, r0, 0x00ff
        l.and  r3, r1, r2
        """) == 0x00F0
        assert run_and_report("""
        l.addi r1, r0, 0x0f00
        l.ori  r3, r1, 0x00ff
        """) == 0x0FFF
        assert run_and_report("""
        l.addi r1, r0, 0x0ff0
        l.addi r2, r0, 0x00ff
        l.xor  r3, r1, r2
        """) == 0x0F0F

    def test_xori_sign_extends(self):
        assert run_and_report("""
        l.addi r1, r0, 0
        l.xori r3, r1, -1
        """) == 0xFFFFFFFF

    def test_andi_zero_extends(self):
        assert run_and_report("""
        l.movhi r1, 0xffff
        l.ori   r1, r1, 0xffff
        l.andi  r3, r1, 0xffff
        """) == 0x0000FFFF

    def test_shifts(self):
        assert run_and_report("""
        l.addi r1, r0, 1
        l.slli r3, r1, 31
        """) == 0x80000000
        assert run_and_report("""
        l.movhi r1, 0x8000
        l.srli  r3, r1, 31
        """) == 1
        assert run_and_report("""
        l.movhi r1, 0x8000
        l.srai  r3, r1, 31
        """) == 0xFFFFFFFF
        assert run_and_report("""
        l.addi r1, r0, 4
        l.addi r2, r0, 2
        l.sll  r3, r1, r2
        """) == 16

    def test_shift_amount_masked_to_five_bits(self):
        assert run_and_report("""
        l.addi r1, r0, 1
        l.addi r2, r0, 33
        l.sll  r3, r1, r2
        """) == 2

    def test_movhi(self):
        assert run_and_report("l.movhi r3, 0x1234\n") == 0x12340000

    def test_r0_writes_ignored(self):
        assert run_and_report("""
        l.addi r0, r0, 55
        l.addi r3, r0, 0
        """) == 0


class TestCompares:
    @pytest.mark.parametrize("op,a,b,taken", [
        ("l.sfeq", 5, 5, True),
        ("l.sfne", 5, 5, False),
        ("l.sfgtu", 1, -1, False),           # -1 is 0xFFFFFFFF unsigned
        ("l.sfgts", 1, -1, True),            # signed
        ("l.sflts", -1, 1, True),
        ("l.sfltu", -1, 1, False),           # 0xFFFFFFFF unsigned
        ("l.sfges", -2, -2, True),
        ("l.sfleu", 3, 7, True),
    ])
    def test_flag_semantics(self, op, a, b, taken):
        value = run_and_report(f"""
        l.addi r1, r0, {a}
        l.addi r2, r0, {b}
        {op}   r1, r2
        l.addi r3, r0, 0
        l.bf   set_one
        l.nop
        l.j    done
        l.nop
    set_one:
        l.addi r3, r0, 1
    done:
        """)
        assert value == (1 if taken else 0)

    def test_immediate_compare(self):
        assert run_and_report("""
        l.addi  r1, r0, -5
        l.sfltsi r1, 0
        l.addi  r3, r0, 0
        l.bf    neg
        l.nop
        l.j     fin
        l.nop
    neg:
        l.addi  r3, r0, 1
    fin:
        """) == 1


class TestControlFlow:
    def test_delay_slot_executes(self):
        assert run_and_report("""
        l.addi r3, r0, 0
        l.j    over
        l.addi r3, r3, 1      # delay slot runs
        l.addi r3, r3, 100    # skipped
    over:
        """) == 1

    def test_jal_links_past_delay_slot(self):
        assert run_and_report("""
        l.jal  sub
        l.nop
        l.j    done
        l.nop
    sub:
        l.addi r3, r9, 0
        l.jr   r9
        l.nop
    done:
        """) == 8  # l.jal at byte 0, link = 0 + 8

    def test_jr_returns(self):
        assert run_and_report("""
        l.addi r3, r0, 0
        l.jal  helper
        l.nop
        l.j    end
        l.addi r3, r3, 10
    helper:
        l.jr   r9
        l.addi r3, r3, 1
    end:
        """) == 11

    def test_bnf(self):
        assert run_and_report("""
        l.sfeqi r0, 1         # false
        l.addi  r3, r0, 0
        l.bnf   skip
        l.nop
        l.addi  r3, r0, 99
    skip:
        """) == 0

    def test_branch_in_delay_slot_is_fatal(self):
        cpu, result = run_program("""
        start:
            l.j target
            l.j target        # branch in delay slot: undefined
        target:
            l.nop 0x1
        """)
        assert not result.finished
        assert result.abort_reason == "illegal-instruction"


class TestMemoryInstructions:
    def test_store_load_word(self):
        assert run_and_report(f"""
        l.movhi r4, hi({DATA_BASE})
        l.ori   r4, r4, lo({DATA_BASE})
        l.addi  r1, r0, 1234
        l.sw    0(r4), r1
        l.lwz   r3, 0(r4)
        """) == 1234

    def test_byte_and_half_access(self):
        assert run_and_report(f"""
        l.movhi r4, hi({DATA_BASE})
        l.ori   r4, r4, lo({DATA_BASE})
        l.movhi r1, 0x1122
        l.ori   r1, r1, 0x3344
        l.sw    0(r4), r1
        l.lbz   r2, 0(r4)
        l.lhz   r3, 2(r4)
        l.add   r3, r3, r2
        """) == 0x3344 + 0x11

    def test_store_outside_memory_aborts(self):
        cpu, result = run_program("""
        start:
            l.addi r1, r0, 0
            l.sw   0(r1), r0      # address 0 is not data memory
            l.nop 0x1
        """)
        assert not result.finished
        assert result.abort_reason == "memory-fault"


class TestFatalConditions:
    def test_infinite_loop_budget(self):
        cpu, result = run_program("""
        start:
            l.sfeq r0, r0
            l.bf start
            l.nop
        """, config=MachineConfig(max_cycles=500))
        assert not result.finished
        assert result.abort_reason == "infinite-loop"
        assert result.cycles == 500

    def test_self_jump_detected(self):
        cpu, result = run_program("""
        start:
            loop: l.j loop
            l.nop
        """)
        assert not result.finished
        assert result.abort_reason == "infinite-loop"

    def test_pc_out_of_range(self):
        # Fall off the end of the program (no exit hook).
        cpu, result = run_program("start:\n    l.nop\n")
        assert not result.finished
        assert result.abort_reason == "pc-out-of-range"

    def test_illegal_instruction_in_data(self):
        cpu, result = run_program("""
        start:
            l.j data
            l.nop
        data:
            .word 0xfc000000
        """)
        assert not result.finished
        assert result.abort_reason == "illegal-instruction"


class TestHooksAndWindows:
    def test_exit_code_is_r3(self):
        cpu, result = run_program("""
        start:
            l.addi r3, r0, 77
            l.nop 0x1
        """)
        assert result.finished and result.exit_code == 77

    def test_reports_accumulate(self):
        cpu, result = run_program("""
        start:
            l.addi r3, r0, 1
            l.nop 0x2
            l.addi r3, r0, 2
            l.nop 0x2
            l.nop 0x1
        """)
        assert result.reports == [1, 2]

    def test_kernel_cycles_counts_fi_window(self):
        cpu, result = run_program("""
        start:
            l.addi r1, r0, 0
            l.nop 0x10
            l.addi r1, r1, 1
            l.addi r1, r1, 1
            l.addi r1, r1, 1
            l.nop 0x11
            l.nop 0x1
        """)
        # The FI_ON marker itself counts (the window opens during its
        # cycle), plus three adds; the FI_OFF cycle closes the window
        # before being counted, and the exit hook consumes no cycle.
        assert result.kernel_cycles == 4
        assert result.cycles == 6


class _EveryCycleFlipper(FaultInjector):
    """Test double: flips bit 0 of every ALU result in the window."""

    def fault_mask(self, mnemonic):
        return 0x1


class TestInjectorIntegration:
    def test_alu_results_pass_through_injector(self):
        source = """
        start:
            l.nop 0x10
            l.addi r3, r0, 4      # 4 ^ 1 = 5
            l.nop 0x11
            l.nop 0x2
            l.nop 0x1
        """
        cpu = Cpu(assemble(source), injector=_EveryCycleFlipper())
        result = cpu.run("start")
        assert result.reports == [5]
        assert result.fault_count == 1
        assert result.alu_cycles == 1

    def test_no_injection_outside_window(self):
        source = """
        start:
            l.addi r3, r0, 4      # outside FI window: unaffected
            l.nop 0x2
            l.nop 0x1
        """
        cpu = Cpu(assemble(source), injector=_EveryCycleFlipper())
        result = cpu.run("start")
        assert result.reports == [4]
        assert result.fault_count == 0

    def test_non_alu_not_hooked(self):
        source = f"""
        start:
            l.movhi r4, hi({DATA_BASE})
            l.ori   r4, r4, lo({DATA_BASE})
            l.addi  r1, r0, 8
            l.sw    0(r4), r1
            l.nop 0x10
            l.lwz   r3, 0(r4)     # load is not FI-eligible
            l.nop 0x11
            l.nop 0x2
            l.nop 0x1
        """
        cpu = Cpu(assemble(source), injector=_EveryCycleFlipper())
        result = cpu.run("start")
        assert result.reports == [8]


class TestProfiling:
    def test_class_counts(self):
        source = """
        start:
            l.addi r1, r0, 3
            l.mul  r2, r1, r1
            l.sfeq r1, r1
            l.bf   next
            l.nop
        next:
            l.nop 0x1
        """
        cpu = Cpu(assemble(source), profile=True)
        result = cpu.run("start")
        counts = result.class_counts
        assert counts["adder"] == 1
        assert counts["multiplier"] == 1
        assert counts["compare"] == 1
        assert counts["control"] == 1

    def test_reset_restores_state(self):
        source = """
        start:
            l.addi r3, r0, 9
            l.nop 0x1
        """
        cpu = Cpu(assemble(source))
        first = cpu.run("start")
        cpu.reset()
        second = cpu.run("start")
        assert first.exit_code == second.exit_code == 9
        assert second.cycles == first.cycles
