"""SharedPool failure semantics: loss, respawn, fallback, cleanup."""

from __future__ import annotations

import logging
import os
import subprocess
import sys
import textwrap
import time

import pytest

from repro import faults
from repro.parallel.pool import SharedPool, _LIVE_POOLS, fork_available, \
    pool_task

pytestmark = pytest.mark.skipif(not fork_available(),
                                reason="needs the fork start method")


@pool_task("faults_echo")
def _echo(registry, value):
    return ("echo", value)


@pool_task("faults_read_registry")
def _read_registry(registry, key):
    return registry.get(key)


@pytest.fixture(autouse=True)
def _clean_plane(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_FAULT_LOG", raising=False)
    faults.reset()
    yield
    faults.reset()


def _pid_gone(pid: int, timeout_s: float = 5.0) -> bool:
    """True once a pid no longer exists (reaped, not just zombified)."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True
        time.sleep(0.05)
    return False


CALLS = [(value,) for value in range(8)]
WANT = [("echo", value) for value in range(8)]


class TestWorkerLoss:
    def test_killed_worker_respawns_and_results_are_complete(self):
        with SharedPool(2, heartbeat_s=10.0) as pool:
            assert pool.run("faults_echo", CALLS) == WANT
            spawned = pool.spawn_count
            pool._procs[0].kill()
            pool._procs[0].join(timeout=2.0)
            assert pool.run("faults_echo", CALLS) == WANT
            assert pool.spawn_count == spawned + 1

    def test_push_to_a_dying_worker_survives_the_broken_pipe(self):
        # A worker SIGKILLed *concurrently* with a push_if_new
        # broadcast (it still looks alive, but its pipe tears under
        # the send) must not crash the parent: the broadcast absorbs
        # the BrokenPipeError, marks the pool stale, and the respawned
        # workers still see the pushed object (it rides the registry
        # through the re-fork).  A worker already reaped is covered by
        # the _alive() guard; this is the mid-send race the chaos
        # schedules hit.
        class _TornPipe:
            def send(self, message):
                raise BrokenPipeError(32, "Broken pipe")

            def close(self):
                pass

        with SharedPool(2, heartbeat_s=10.0) as pool:
            assert pool.run("faults_echo", CALLS) == WANT
            # Keep the real conn referenced: dropping it would close
            # the pipe, the worker would exit on EOF, and the
            # _alive() guard would skip the broadcast entirely.
            real = pool._conns[0]
            pool._conns[0] = _TornPipe()
            pool.push_if_new("pushed-key", {"value": 41})
            assert pool._stale
            real.close()  # let the bypassed worker exit on EOF
            assert pool.run("faults_read_registry",
                            [("pushed-key",)] * 2) == \
                [{"value": 41}] * 2

    def test_persistent_kills_fall_back_to_serial(self, caplog):
        # Every worker SIGKILLs itself on its first message; the
        # respawned generation inherits the same schedule and dies
        # too, so the pool must log a fallback and compute the calls
        # serially in the parent -- with identical results.
        faults.configure("pool.worker_heartbeat:kill@after=1")
        with SharedPool(2, heartbeat_s=10.0) as pool:
            with caplog.at_level(logging.WARNING, "repro.parallel"):
                assert pool.run("faults_echo", CALLS) == WANT
        assert any("respawning" in record.message
                   for record in caplog.records)
        assert any("serially in the parent" in record.message
                   for record in caplog.records)

    def test_hung_worker_is_detected_and_killed(self, caplog):
        # Workers hang (stop beating, stop replying) on their first
        # message; a short heartbeat timeout must detect them, kill
        # them, and still deliver full results via the fallback.
        faults.configure("pool.worker_heartbeat:hang@after=1")
        with SharedPool(2, heartbeat_s=0.5) as pool:
            with caplog.at_level(logging.WARNING, "repro.parallel"):
                assert pool.run("faults_echo", CALLS) == WANT
            hung_pids = [proc.pid for proc in pool._procs]
        assert any("hung" in record.message
                   for record in caplog.records)
        for pid in hung_pids:
            assert _pid_gone(pid), f"hung worker {pid} still running"

    def test_injected_dispatch_fault_raises_before_spawn(self):
        faults.configure("pool.shard_dispatch:raise@after=1")
        pool = SharedPool(2)
        with pytest.raises(faults.InjectedFault, match="shard_dispatch"):
            pool.run("faults_echo", CALLS)
        assert pool.spawn_count == 0  # tripped before any fork


class TestCleanup:
    def test_context_manager_reaps_children_on_parent_exception(self):
        with pytest.raises(RuntimeError, match="boom"):
            with SharedPool(2, heartbeat_s=10.0) as pool:
                pool.run("faults_echo", CALLS)
                pids = [proc.pid for proc in pool._procs]
                assert pids
                raise RuntimeError("boom")
        for pid in pids:
            assert _pid_gone(pid), f"worker {pid} outlived the parent"

    def test_shutdown_is_idempotent_and_pool_respawns_after(self):
        pool = SharedPool(2, heartbeat_s=10.0)
        assert pool.run("faults_echo", CALLS) == WANT
        pool.shutdown()
        pool.shutdown()  # second shutdown must be a no-op
        assert not pool._procs
        assert pool.run("faults_echo", CALLS) == WANT  # respawns
        pool.shutdown()

    def test_live_pools_are_tracked_for_atexit(self):
        with SharedPool(2, heartbeat_s=10.0) as pool:
            pool.run("faults_echo", CALLS)
            assert pool in _LIVE_POOLS

    def test_atexit_reaps_workers_of_a_crashing_parent(self, tmp_path):
        # A parent that raises without ever calling shutdown() must
        # still leave no worker processes behind: the atexit hook (and
        # daemon teardown) reaps them on interpreter exit.
        script = textwrap.dedent("""\
            from repro.parallel.pool import SharedPool, pool_task

            @pool_task("crash_echo")
            def echo(registry, value):
                return value

            pool = SharedPool(2)
            assert pool.run("crash_echo", [(1,), (2,)]) == [1, 2]
            print(" ".join(str(proc.pid) for proc in pool._procs),
                  flush=True)
            raise RuntimeError("parent crashed before shutdown")
        """)
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH") else "")
        result = subprocess.run([sys.executable, "-c", script],
                                capture_output=True, text=True, env=env,
                                timeout=60)
        assert result.returncode != 0  # the crash must propagate
        pids = [int(word) for word in result.stdout.split()]
        assert len(pids) == 2
        for pid in pids:
            assert _pid_gone(pid), \
                f"worker {pid} survived the parent crash"
