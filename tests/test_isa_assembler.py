"""Unit tests for the two-pass assembler."""

import pytest

from repro.isa.assembler import AssemblerError, assemble
from repro.isa.encoding import decode


class TestBasics:
    def test_single_instruction(self):
        program = assemble("l.addi r1, r0, 5\n")
        assert len(program.words) == 1
        decoded = decode(program.words[0])
        assert decoded.mnemonic == "l.addi"
        assert decoded.rd == 1 and decoded.imm == 5

    def test_comments_and_blank_lines(self):
        program = assemble("""
        # full comment line
        l.nop          ; trailing comment
        l.nop 0x1      # another
        """)
        assert len(program.words) == 2

    def test_labels_resolve_forward_and_backward(self):
        program = assemble("""
        start:
            l.j end
            l.nop
        mid:
            l.j start
            l.nop
        end:
            l.nop 0x1
        """)
        assert program.symbol("start") == 0
        assert program.symbol("mid") == 8
        assert program.symbol("end") == 16
        assert decode(program.words[0]).imm == 4  # (16 - 0) / 4
        assert decode(program.words[2]).imm == -2

    def test_label_on_same_line_as_instruction(self):
        program = assemble("loop: l.j loop2\nloop2: l.nop 0x1\n")
        assert program.symbol("loop") == 0
        assert program.symbol("loop2") == 4

    def test_negative_immediates(self):
        program = assemble("l.addi r1, r1, -1\n")
        assert decode(program.words[0]).imm == -1

    def test_memory_operands(self):
        program = assemble("l.lwz r2, 8(r3)\nl.sw -4(r5), r6\n")
        load = decode(program.words[0])
        assert (load.rd, load.ra, load.imm) == (2, 3, 8)
        store = decode(program.words[1])
        assert (store.ra, store.rb, store.imm) == (5, 6, -4)


class TestDirectives:
    def test_word_and_space(self):
        program = assemble("""
        .org 0x0
        l.nop 0x1
        data:
            .word 1, 2, 3
        buf:
            .space 8
        """)
        assert program.symbol("data") == 4
        assert program.symbol("buf") == 16
        assert program.words[1:4] == [1, 2, 3]
        assert program.words[4:6] == [0, 0]

    def test_equ_constants(self):
        program = assemble("""
        .equ BASE, 0x100
        .equ OFF, 8
        l.addi r1, r0, BASE + OFF
        """)
        assert decode(program.words[0]).imm == 0x108

    def test_hi_lo_split(self):
        program = assemble("""
        .equ ADDR, 0x12345678
        l.movhi r4, hi(ADDR)
        l.ori   r4, r4, lo(ADDR)
        """)
        assert decode(program.words[0]).imm == 0x1234
        assert decode(program.words[1]).imm == 0x5678

    def test_org_gap_zero_filled(self):
        program = assemble("l.nop 0x1\n.org 0x10\n.word 7\n")
        assert program.words[1:4] == [0, 0, 0]
        assert program.words[4] == 7

    def test_org_backwards_rejected(self):
        with pytest.raises(AssemblerError, match="backwards"):
            assemble(".org 0x10\nl.nop\n.org 0x0\nl.nop\n")

    def test_word_expression_with_label(self):
        program = assemble("""
        a: .word 1
        b: .word a + 4
        """)
        assert program.words[1] == 4


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError, match="unknown instruction"):
            assemble("l.frobnicate r1, r2, r3\n")

    def test_duplicate_label(self):
        with pytest.raises(AssemblerError, match="duplicate"):
            assemble("x:\nl.nop\nx:\nl.nop\n")

    def test_undefined_symbol(self):
        with pytest.raises(AssemblerError, match="undefined symbol"):
            assemble("l.addi r1, r0, nowhere\n")

    def test_bad_register(self):
        with pytest.raises(AssemblerError, match="bad register"):
            assemble("l.add r1, r40, r2\n")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError, match="expects 3"):
            assemble("l.add r1, r2\n")

    def test_bad_memory_operand(self):
        with pytest.raises(AssemblerError, match="memory operand"):
            assemble("l.lwz r1, r2\n")

    def test_immediate_out_of_range_reports_line(self):
        with pytest.raises(AssemblerError, match="line 1"):
            assemble("l.addi r1, r0, 100000\n")

    def test_unknown_directive(self):
        with pytest.raises(AssemblerError, match="directive"):
            assemble(".bogus 1\n")

    def test_misaligned_branch_target(self):
        with pytest.raises(AssemblerError, match="aligned"):
            assemble(".equ T, 2\nl.j T\nl.nop\n")


class TestProgramMetadata:
    def test_line_map_points_at_instructions(self):
        program = assemble("l.nop\nl.nop 0x1\n")
        assert program.line_map[0] == 1
        assert program.line_map[4] == 2

    def test_symbol_lookup_error_lists_known(self):
        program = assemble("here:\nl.nop\n")
        with pytest.raises(KeyError, match="here"):
            program.symbol("missing")

    def test_word_at(self):
        program = assemble(".word 42, 43\n")
        assert program.word_at(0) == 42
        assert program.word_at(4) == 43
        with pytest.raises(IndexError):
            program.word_at(8)

    def test_base_address_offsets_symbols(self):
        program = assemble("x:\nl.nop\n", base_address=0x100)
        assert program.symbol("x") == 0x100
        assert program.end_address == 0x104
