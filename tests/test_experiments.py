"""Tests for the experiment drivers (paper tables and figures).

Each driver runs at a tiny custom scale so the full suite stays fast;
assertions target the paper's *qualitative* claims, which must hold at
any scale.
"""

import numpy as np
import pytest

from repro.experiments import fig1, fig2, fig4, fig5, fig6, fig7
from repro.experiments import table1, table2
from repro.experiments.context import ExperimentContext, NOMINAL_VDD
from repro.experiments.scale import PAPER, Scale, get_scale

TINY = Scale(name="tiny", trials=6, freq_points=6, kernel_scale="quick",
             char_cycles=192, fig4_samples=384, voltage_points=5)


@pytest.fixture(scope="module")
def ctx() -> ExperimentContext:
    return ExperimentContext.create(TINY, seed=2016)


class TestScalePresets:
    def test_lookup(self):
        assert get_scale("paper") is PAPER
        assert get_scale(TINY) is TINY
        with pytest.raises(KeyError):
            get_scale("gigantic")


class TestContext:
    def test_sta_limit_is_calibrated(self, ctx):
        assert ctx.sta_limit_hz(0.7) / 1e6 == pytest.approx(707.1, abs=0.5)

    def test_characterization_cached_per_vdd(self, ctx):
        assert ctx.characterization(0.7) is ctx.characterization(0.7)
        assert ctx.characterization(0.7) is not ctx.characterization(0.8)

    def test_bplus_onset_ordering(self, ctx):
        sta = ctx.sta_limit_hz(0.7)
        onset_0 = ctx.bplus_onset_hz(0.7, 0.0)
        onset_10 = ctx.bplus_onset_hz(0.7, 0.010)
        onset_25 = ctx.bplus_onset_hz(0.7, 0.025)
        assert onset_0 == pytest.approx(sta, rel=1e-6)
        assert onset_25 < onset_10 < onset_0


class TestTable1:
    def test_paper_scale_rows(self):
        rows = table1.run("paper")
        by_name = {row.name: row for row in rows}
        assert by_name["median"].size == "129 values"
        assert by_name["mat_mult_16bit"].size == "16x16 matr."
        assert by_name["dijkstra"].size == "10 nodes"
        # Matmul is the compute-heavy kernel; median has none.
        assert by_name["mat_mult_8bit"].compute_rating == "++"
        assert by_name["median"].compute_rating == "-"
        assert by_name["median"].compute_fraction == 0.0
        # Control-oriented kernels rank above matmul.
        assert (by_name["dijkstra"].control_fraction
                > by_name["mat_mult_8bit"].control_fraction)

    def test_render(self):
        rows = table1.run("quick")
        text = table1.render(rows)
        assert "median" in text and "output error" in text


class TestTable2:
    def test_matches_paper_matrix(self):
        by_model = {row.model: row for row in table2.rows()}
        assert set(by_model) == {"A", "B", "B+", "C"}
        assert by_model["A"].timing_data == "none"
        assert by_model["B"].timing_data == "STA"
        assert by_model["C"].timing_data == "DTA"
        assert not by_model["A"].multi_vdd
        assert by_model["B+"].vdd_noise and not by_model["B"].vdd_noise
        assert by_model["C"].instruction_aware
        assert not any(by_model[m].instruction_aware
                       for m in ("A", "B", "B+"))

    def test_render(self):
        assert "probabilistic period violation" in table2.render()


class TestFig2:
    def test_qualitative_claims(self, ctx):
        result = fig2.run(TINY, context=ctx, points=121)
        # Every CDF is monotone non-decreasing in frequency.
        for curve in result.curves:
            assert np.all(np.diff(curve.probabilities) >= -1e-12)
        # Higher Vdd shifts the mul bit-24 CDF right (lower probability
        # at equal frequency).
        low = result.curve("l.mul", 24, 0.7)
        high = result.curve("l.mul", 24, 0.8)
        assert np.all(high.probabilities <= low.probabilities + 1e-12)
        assert high.probabilities.sum() < low.probabilities.sum()
        # High-significance bits fail no later than low bits.
        bit24 = result.curve("l.mul", 24, 0.7)
        bit3 = result.curve("l.mul", 3, 0.7)
        onset24 = bit24.first_failure_hz() or np.inf
        onset3 = bit3.first_failure_hz() or np.inf
        assert onset24 <= onset3

    def test_render(self, ctx):
        assert "l.mul" in fig2.render(fig2.run(TINY, context=ctx,
                                               points=61))


class TestFig4:
    def test_poff_ordering_matches_paper(self, ctx):
        result = fig4.run(TINY, context=ctx)
        mul = result.curve("l.mul 32-bit").poff_hz()
        add32 = result.curve("l.add 32-bit").poff_hz()
        add16 = result.curve("l.add 16-bit").poff_hz()
        assert mul is not None and add32 is not None and add16 is not None
        # Paper: 685 MHz < 746 MHz < 877 MHz.
        assert mul < add32 < add16

    def test_mse_saturates(self, ctx):
        result = fig4.run(TINY, context=ctx)
        for curve in result.curves:
            assert curve.mse[-1] > 0
            # Saturation: the top of the sweep is within 10x of the max.
            assert curve.mse[-1] > curve.mse.max() / 10

    def test_add16_mse_is_orders_below_add32(self, ctx):
        result = fig4.run(TINY, context=ctx)
        assert (result.curve("l.add 16-bit").mse.max()
                < result.curve("l.add 32-bit").mse.max() / 1e3)


class TestFig1:
    def test_model_b_cliff_and_bplus_shift(self, ctx):
        results = fig1.run(TINY, context=ctx)
        by_sigma = {r.sigma_v: r for r in results}
        # Model B onset sits at the STA limit.
        assert by_sigma[0.0].onset_hz == pytest.approx(
            ctx.sta_limit_hz(NOMINAL_VDD), rel=1e-6)
        # Noise moves the onset down, more for larger sigma.
        assert by_sigma[0.025].onset_hz < by_sigma[0.010].onset_hz \
            < by_sigma[0.0].onset_hz
        # Below the onset everything is correct and no faults inject;
        # above it, correctness collapses (hard threshold).
        for result in results:
            rows = result.rows()
            below = [r for r in rows
                     if r["frequency_mhz"] * 1e6 < result.onset_hz - 1e5]
            above = [r for r in rows
                     if r["frequency_mhz"] * 1e6 > result.onset_hz + 1e6]
            assert all(r["p_correct"] == 1.0 for r in below)
            assert all(r["fi_rate_per_kcycle"] == 0.0 for r in below)
            assert all(r["p_correct"] == 0.0 for r in above)
            assert all(r["fi_rate_per_kcycle"] > 0.0 for r in above)


class TestFig5:
    @pytest.fixture(scope="class")
    def results(self, ctx):
        return fig5.run(TINY, context=ctx)

    def test_six_configurations(self, results):
        assert len(results) == 6
        labels = {r.config.label for r in results}
        assert len(labels) == 6

    def test_correctness_collapses_across_sweep(self, results):
        for result in results:
            series = result.sweep.metric_series("p_correct")
            assert series[0] == 1.0, result.config.label
            assert series[-1] == 0.0, result.config.label

    def test_fi_rate_grows_with_frequency(self, results):
        for result in results:
            rates = result.sweep.metric_series("fi_rate_per_kcycle")
            assert rates[-1] > rates[0]

    def test_zero_noise_poff_beats_sta(self, results):
        no_noise = [r for r in results
                    if r.config.sigma_v == 0.0 and r.config.vdd == 0.7]
        gain = no_noise[0].poff_gain
        assert gain is not None and gain > 0.0

    def test_noise_reduces_poff_gain(self, results):
        at_07 = {r.config.sigma_v: r for r in results
                 if r.config.vdd == 0.7}
        gain_0 = at_07[0.0].poff_gain
        gain_25 = at_07[0.025].poff_gain
        assert gain_0 is not None
        if gain_25 is not None:
            assert gain_25 < gain_0


class TestFig6:
    def test_two_benchmark_smoke(self, ctx):
        results = fig6.run(TINY, context=ctx,
                           benchmarks=("mat_mult_8bit", "kmeans"))
        by_name = {r.benchmark: r for r in results}
        # Model B+'s hard threshold sits below the model-C PoFF of
        # every benchmark.
        for result in results:
            poff = result.poff_hz
            assert poff is None or poff > result.bplus_threshold_hz
        # Both benchmarks eventually fail completely.
        for result in results:
            assert result.sweep.metric_series("p_correct")[-1] == 0.0
        # Matmul carries an MSE metric that saturates high.
        assert max(by_name["mat_mult_8bit"].error_series()) >= 0.0


class TestFig7:
    def test_voltage_overscaling_tradeoff(self, ctx):
        result = fig7.run(TINY, context=ctx)
        assert {c.sigma_v for c in result.curves} == {0.0, 0.010, 0.025}
        no_noise = result.curve(0.0)
        # Power is monotone in voltage and normalized at the top.
        powers = [p.normalized_power for p in no_noise.points]
        assert powers == sorted(powers)
        assert powers[-1] == pytest.approx(1.0)
        # Without noise there is an error-free voltage-reduction window.
        poff = no_noise.poff_vdd()
        assert poff is not None and poff < 0.70
        assert no_noise.power_at_poff() < 1.0
        # The nominal point itself is error free without noise.
        top = no_noise.points[-1]
        assert top.point.p_correct == 1.0
