"""Unit tests for the core power model."""

import pytest

from repro.power.model import CorePowerModel


@pytest.fixture()
def model() -> CorePowerModel:
    return CorePowerModel()


class TestReferencePoints:
    def test_reference_coefficients_met(self, model):
        # The paper's pair is within ~1 % of a pure quadratic.
        assert model.active_uw_per_mhz(0.6) == pytest.approx(10.9, rel=0.01)
        assert model.active_uw_per_mhz(0.7) == pytest.approx(15.0, rel=0.01)

    def test_leakage_interpolation(self, model):
        assert model.leakage_fraction(0.6) == pytest.approx(0.02)
        assert model.leakage_fraction(0.7) == pytest.approx(0.03)
        assert model.leakage_fraction(0.65) == pytest.approx(0.025)


class TestScaling:
    def test_monotone_in_voltage(self, model):
        assert model.core_power_uw(0.65, 707) < model.core_power_uw(0.7, 707)

    def test_linear_in_frequency(self, model):
        assert model.core_power_uw(0.7, 1400) == pytest.approx(
            2 * model.core_power_uw(0.7, 700), rel=1e-9)

    def test_normalized_power_reference_is_one(self, model):
        assert model.normalized_power(0.7, 707.0) == pytest.approx(1.0)

    def test_paper_savings_band(self, model):
        """The paper reports ~0.93x power at 0.667 V and ~0.88x at
        0.657 V (both at the fixed 707 MHz nominal frequency)."""
        assert model.normalized_power(0.667, 707.0) == pytest.approx(
            0.93, abs=0.03)
        assert model.normalized_power(0.657, 707.0) == pytest.approx(
            0.88, abs=0.03)

    def test_validation(self, model):
        with pytest.raises(ValueError):
            model.active_uw_per_mhz(0.0)
        with pytest.raises(ValueError):
            model.core_power_uw(0.7, 0.0)
