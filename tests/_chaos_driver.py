"""Subprocess driver for the kill-resume matrix test.

Runs a tiny pool-backed fig7 campaign against the store directory
given as ``argv[1]`` and writes the rendered output to stdout.  The
test harness sets ``REPRO_FAULTS`` to SIGKILL this process (or its
pool workers) at one injection site per matrix cell, then reruns the
driver fault-free and requires byte-identical rendered output.

Not a test module (the leading underscore keeps pytest away).
"""

from __future__ import annotations

import sys

from repro import parallel
from repro.campaign import run_campaign
from repro.experiments.scale import Scale
from repro.store import ResultStore

TINY = Scale(name="tiny", trials=4, freq_points=4, kernel_scale="quick",
             char_cycles=128, fig4_samples=128, voltage_points=3)

SEED = 2016


def main() -> int:
    store_dir = sys.argv[1]
    if "--fabric-workers" in sys.argv:
        # Lease-fabric dispatch: forked workers race for unit batches
        # on the shared store (a directory here -- PUT-if-absent is
        # os.link-atomic, so the ledger needs no HTTP service).
        workers = int(sys.argv[sys.argv.index("--fabric-workers") + 1])
        report = run_campaign("fig7", TINY, seed=SEED,
                              store=ResultStore(store_dir),
                              fabric_workers=workers)
    else:
        parallel.configure_pool(2)
        report = run_campaign("fig7", TINY, seed=SEED,
                              store=ResultStore(store_dir), jobs=2)
    sys.stdout.write(report.rendered)
    return 1 if report.failed else 0


if __name__ == "__main__":
    sys.exit(main())
