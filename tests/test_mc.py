"""Tests for the Monte-Carlo runner, aggregation and sweeps."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.suite import build_kernel
from repro.fi.base import FaultInjector, NullInjector
from repro.mc.results import McPoint, TrialResult
from repro.mc.runner import golden_cycles, run_point, run_trial
from repro.mc.stats import geometric_mean, mean, std, wilson_interval
from repro.mc.sweep import FrequencySweep, frequency_grid, \
    sweep_frequencies


class _AggressiveInjector(FaultInjector):
    """Flips the low 4 bits of every ALU result: kills any kernel."""

    def fault_mask(self, mnemonic):
        return 0xF


class _RareInjector(FaultInjector):
    """One single-bit fault roughly every `period` ALU cycles."""

    def __init__(self, rng, period=997):
        super().__init__()
        self._rng = rng
        self._period = period

    def fault_mask(self, mnemonic):
        return 1 if self._rng.random() < 1.0 / self._period else 0


class TestStats:
    def test_wilson_basics(self):
        low, high = wilson_interval(50, 100)
        assert low < 0.5 < high

    def test_wilson_edges(self):
        low, high = wilson_interval(0, 50)
        assert low == 0.0 and high > 0.0
        low, high = wilson_interval(50, 50)
        assert high == 1.0 and low < 1.0

    def test_wilson_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 2)

    @given(st.integers(min_value=0, max_value=200),
           st.integers(min_value=1, max_value=200))
    @settings(max_examples=50)
    def test_wilson_contains_point_estimate(self, successes, trials):
        successes = min(successes, trials)
        low, high = wilson_interval(successes, trials)
        assert low - 1e-12 <= successes / trials <= high + 1e-12

    def test_mean_std(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0
        assert std([2.0, 2.0]) == 0.0
        assert std([1.0]) == 0.0
        assert std([1.0, 3.0]) == pytest.approx(np.std([1, 3], ddof=1))

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0
        with pytest.raises(ValueError):
            geometric_mean([0.0, 1.0])


class TestRunner:
    def test_null_injector_run_is_golden(self):
        kernel = build_kernel("median", "quick")
        trial = run_trial(kernel, NullInjector())
        assert trial.finished and trial.correct
        assert trial.fault_count == 0
        assert trial.error_value == 0.0

    def test_aggressive_injector_breaks_run(self):
        kernel = build_kernel("median", "quick")
        trial = run_trial(kernel, _AggressiveInjector())
        assert not trial.correct
        assert trial.fault_count > 0

    def test_golden_cycles_cached(self):
        kernel = build_kernel("median", "quick")
        first = golden_cycles(kernel)
        assert kernel._golden_cycles == first
        assert golden_cycles(kernel) == first

    def test_budget_bounds_runaway_runs(self):
        kernel = build_kernel("median", "quick")
        budget = 4 * golden_cycles(kernel) + 1000
        trial = run_trial(kernel, _AggressiveInjector())
        assert trial.cycles <= budget

    def test_run_point_aggregates(self, rng):
        kernel = build_kernel("median", "quick")
        point = run_point(kernel, lambda r: _RareInjector(r, period=50),
                          n_trials=8, seed=3)
        assert point.n_trials == 8
        assert 0.0 <= point.p_finished <= 1.0
        assert point.p_correct <= point.p_finished

    def test_run_point_reproducible(self):
        kernel = build_kernel("median", "quick")
        a = run_point(kernel, lambda r: _RareInjector(r), n_trials=6,
                      seed=9)
        b = run_point(kernel, lambda r: _RareInjector(r), n_trials=6,
                      seed=9)
        assert [t.fault_count for t in a.trials] == \
            [t.fault_count for t in b.trials]

    def test_run_point_validation(self):
        kernel = build_kernel("median", "quick")
        with pytest.raises(ValueError):
            run_point(kernel, lambda r: NullInjector(), n_trials=0)


def _trial(finished, correct, error=0.0, faults=0, kcycles=1000):
    return TrialResult(finished=finished, correct=correct,
                       error_value=error, relative_error=error,
                       fault_count=faults, kernel_cycles=kcycles,
                       alu_cycles=500, cycles=kcycles + 10,
                       abort_reason=None if finished else "infinite-loop")


class TestMcPoint:
    def test_probabilities(self):
        point = McPoint(label="x")
        point.add(_trial(True, True))
        point.add(_trial(True, False, error=0.5))
        point.add(_trial(False, False))
        assert point.p_finished == pytest.approx(2 / 3)
        assert point.p_correct == pytest.approx(1 / 3)

    def test_error_only_over_finished(self):
        point = McPoint(label="x")
        point.add(_trial(True, False, error=0.4))
        point.add(_trial(False, False, error=0.0))
        assert point.mean_error_of_finished == pytest.approx(0.4)

    def test_fi_rate(self):
        point = McPoint(label="x")
        point.add(_trial(True, True, faults=10, kcycles=1000))
        point.add(_trial(True, True, faults=30, kcycles=1000))
        assert point.fi_rate_per_kcycle == pytest.approx(20.0)

    def test_abort_histogram(self):
        point = McPoint(label="x")
        point.add(_trial(False, False))
        point.add(_trial(False, False))
        point.add(_trial(True, True))
        assert point.abort_histogram() == {"infinite-loop": 2}

    def test_intervals(self):
        point = McPoint(label="x")
        for _ in range(10):
            point.add(_trial(True, True))
        low, high = point.correct_interval()
        assert low > 0.5 and high == 1.0

    def test_empty_point(self):
        point = McPoint(label="x")
        assert point.p_finished == 0.0
        assert point.finished_interval() == (0.0, 0.0)

    def test_summary_keys(self):
        point = McPoint(label="x")
        point.add(_trial(True, True))
        summary = point.summary()
        assert set(summary) == {"n_trials", "p_finished", "p_correct",
                                "fi_rate_per_kcycle", "mean_error",
                                "mean_relative_error"}


class TestSweep:
    def _synthetic_sweep(self, correctness):
        points = []
        for p in correctness:
            point = McPoint(label="p")
            n_ok = round(p * 10)
            for _ in range(n_ok):
                point.add(_trial(True, True))
            for _ in range(10 - n_ok):
                point.add(_trial(False, False))
            points.append(point)
        return FrequencySweep(
            kernel_name="synthetic",
            frequencies_hz=[700e6 + i * 1e6 for i in range(len(points))],
            points=points,
            sta_limit_hz=700e6)

    def test_poff_detection(self):
        sweep = self._synthetic_sweep([1.0, 1.0, 0.9, 0.0])
        assert sweep.poff_hz() == 702e6
        assert sweep.poff_gain_over_sta() == pytest.approx(2 / 700)

    def test_poff_beyond_sweep(self):
        sweep = self._synthetic_sweep([1.0, 1.0])
        assert sweep.poff_hz() is None
        assert sweep.poff_gain_over_sta() is None

    def test_metric_series_and_rows(self):
        sweep = self._synthetic_sweep([1.0, 0.5])
        series = sweep.metric_series("p_correct")
        assert series == [1.0, 0.5]
        rows = sweep.rows()
        assert rows[0]["frequency_mhz"] == pytest.approx(700.0)

    def test_frequency_grid(self):
        grid = frequency_grid(700e6, 0.1, 5)
        assert len(grid) == 5
        assert grid[0] == pytest.approx(630e6)
        assert grid[-1] == pytest.approx(770e6)
        with pytest.raises(ValueError):
            frequency_grid(700e6, 0.1, 1)

    def test_frequency_grid_rejects_nonphysical_spans(self):
        # span_rel >= 1 emits zero/negative frequencies, which poison
        # every downstream period computation (1e12 / f).
        for span in (1.0, 1.5, -0.1):
            with pytest.raises(ValueError, match="span_rel"):
                frequency_grid(700e6, span, 5)
        # The degenerate but physical extremes still work.
        assert frequency_grid(700e6, 0.0, 2) == [700e6, 700e6]
        assert min(frequency_grid(700e6, 0.999, 3)) > 0

    def test_end_to_end_sweep_orders_frequencies(self):
        kernel = build_kernel("median", "quick")
        sweep = sweep_frequencies(
            kernel,
            lambda f, rng: _RareInjector(rng, period=10**9),
            frequencies_hz=[800e6, 700e6],
            n_trials=2,
            sta_limit_hz=707e6,
            seed=1)
        assert sweep.frequencies_hz == [700e6, 800e6]
        assert all(point.n_trials == 2 for point in sweep.points)
