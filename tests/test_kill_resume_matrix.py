"""Kill-resume matrix: SIGKILL at every injection site, then resume.

Satellite of the fault-injection harness: a real campaign process
(tests/_chaos_driver.py) is SIGKILLed -- by the fault plane itself --
at each stage of the unit pipeline (pool dispatch, mid-shard compute,
result return, manifest append).  Whatever the kill leaves behind
(half-written shards, workers dead mid-unit, a torn store), a
fault-free rerun of the driver must render byte-identical output to a
never-killed baseline.

Sites that kill only *workers* are allowed to complete in one go (the
pool respawns or falls back to serial); their output must then match
the baseline directly.  Either way the fired-fault log must show the
site actually fired -- a cell whose fault never triggers is vacuous
and fails.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import faults

DRIVER = Path(__file__).parent / "_chaos_driver.py"

#: site -> fault clause; each clause SIGKILLs the process that reaches
#: the site (parent or pool worker -- whichever hits it first).
MATRIX = {
    "dispatch": "pool.shard_dispatch:kill@after=1",
    "mid-shard": "campaign.unit_run:kill@after=3",
    "result-return": "pool.result_return:kill@after=1",
    "manifest-append": "store.manifest_append:kill@after=2",
}


def run_driver(store: Path, env_extra: dict | None = None
               ) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(Path(__file__).parent.parent / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    env.pop("REPRO_FAULTS", None)
    env.pop("REPRO_FAULT_LOG", None)
    env.update(env_extra or {})
    return subprocess.run([sys.executable, str(DRIVER), str(store)],
                          capture_output=True, text=True, env=env,
                          timeout=600)


@pytest.fixture(scope="module")
def baseline(tmp_path_factory) -> str:
    """Rendered output of a never-killed driver run."""
    store = tmp_path_factory.mktemp("kill-matrix") / "store-clean"
    result = run_driver(store)
    assert result.returncode == 0, result.stderr
    assert result.stdout
    return result.stdout


@pytest.mark.parametrize("site", sorted(MATRIX))
def test_kill_at_site_then_resume_is_byte_identical(
        site, baseline, tmp_path):
    store = tmp_path / "store"
    log = tmp_path / "faults.jsonl"
    chaotic = run_driver(store, env_extra={
        "REPRO_FAULTS": MATRIX[site],
        "REPRO_FAULT_LOG": str(log),
    })

    fired = faults.read_log(log) if log.exists() else []
    assert fired, f"the {site} fault never fired -- vacuous cell"
    assert all(record["mode"] == "kill" for record in fired)

    if chaotic.returncode == 0:
        # Only workers were killed; the pool healed around them and
        # the campaign finished -- its output must already match.
        assert chaotic.stdout == baseline
        return

    # The campaign process itself was SIGKILLed mid-run.
    assert chaotic.returncode == -9, (chaotic.returncode,
                                      chaotic.stderr[-2000:])
    resumed = run_driver(store)
    assert resumed.returncode == 0, resumed.stderr[-2000:]
    assert resumed.stdout == baseline
