"""The deterministic fault-injection plane (src/repro/faults)."""

from __future__ import annotations

import json

import pytest

from repro import faults
from repro.faults.plane import _uniform


@pytest.fixture(autouse=True)
def _clean_plane(monkeypatch):
    """Every test starts and ends without a plane or env schedule."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_FAULT_LOG", raising=False)
    faults.reset()
    yield
    faults.reset()


class TestGrammar:
    def test_full_schedule_parses(self):
        rules, seed = faults.parse_schedule(
            "seed=7;store.object_write:torn@p=0.1;"
            "pool.worker_heartbeat:kill@after=3;"
            "campaign.unit_run:raise@hits=2+5+9,times=2;"
            "native.*:fail@p=1.0")
        assert seed == 7
        assert len(rules) == 4
        assert rules[0].site == "store.object_write"
        assert rules[0].mode == "torn"
        assert rules[0].p == 0.1
        assert rules[1].after == 3
        assert rules[2].hits == (2, 5, 9)
        assert rules[2].times == 2
        assert rules[3].site == "native.*"

    def test_empty_clauses_are_skipped(self):
        rules, seed = faults.parse_schedule(";;seed=3;;a.b:kill@p=1;")
        assert seed == 3
        assert len(rules) == 1

    @pytest.mark.parametrize("spec", [
        "no-colon@p=0.1",          # missing site:mode
        ":kill@p=0.1",             # empty site
        "a.b:@p=0.1",              # empty mode
        "a.b:kill@p=x",            # unparsable float
        "a.b:kill@after=x",        # unparsable int
        "a.b:kill@bogus=1",        # unknown param
        "a.b:kill@p",              # param without =
        "seed=x",                  # unparsable seed
    ])
    def test_bad_specs_raise(self, spec):
        with pytest.raises(faults.FaultSpecError):
            faults.parse_schedule(spec)

    def test_prefix_match(self):
        (rule,), _ = faults.parse_schedule("store.*:torn@p=1")
        assert rule.matches("store.object_write")
        assert rule.matches("store.manifest_append")
        assert not rule.matches("pool.shard_dispatch")


class TestDecisions:
    def test_after_fires_exactly_on_the_nth_hit(self):
        plane = faults.configure("site.x:kill-me@after=3")
        fired = [plane.fire("site.x") for _ in range(6)]
        assert fired == [None, None, "kill-me", None, None, None]

    def test_hits_fire_exactly_on_the_listed_hits(self):
        plane = faults.configure("site.x:raise@hits=1+4")
        fired = [plane.fire("site.x") for _ in range(5)]
        assert fired == ["raise", None, None, "raise", None]

    def test_times_caps_an_unconditional_rule(self):
        plane = faults.configure("site.x:raise@times=2")
        fired = [plane.fire("site.x") for _ in range(4)]
        assert fired == ["raise", "raise", None, None]

    def test_probability_is_a_pure_function_of_seed_site_hit(self):
        spec = "seed=11;site.x:torn@p=0.5"
        plane = faults.configure(spec)
        first = [plane.fire("site.x") for _ in range(50)]
        expected = ["torn" if _uniform(11, "site.x", hit) < 0.5 else None
                    for hit in range(1, 51)]
        assert first == expected
        assert any(first) and not all(first)
        faults.reset()
        second_plane = faults.configure(spec)
        assert [second_plane.fire("site.x") for _ in range(50)] == first

    def test_different_sites_count_hits_independently(self):
        plane = faults.configure("a.x:raise@after=2;b.y:raise@after=1")
        assert plane.fire("a.x") is None
        assert plane.fire("b.y") == "raise"
        assert plane.fire("a.x") == "raise"

    def test_trip_raises_injected_fault(self):
        faults.configure("site.x:flake@after=1")
        with pytest.raises(faults.InjectedFault, match="site.x"):
            faults.trip("site.x")
        faults.trip("site.x")  # hit 2: does not fire

    def test_trip_is_a_noop_without_a_plane(self):
        faults.trip("any.site")


class TestActivation:
    def test_env_var_activates_and_deactivates(self, monkeypatch):
        assert not faults.active()
        monkeypatch.setenv("REPRO_FAULTS", "site.x:raise@after=1")
        assert faults.active()
        assert faults.fire("site.x") == "raise"
        monkeypatch.delenv("REPRO_FAULTS")
        assert not faults.active()
        assert faults.fire("site.x") is None

    def test_explicit_configure_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "env.site:raise@after=1")
        faults.configure("cli.site:raise@after=1")
        assert faults.fire("env.site") is None
        assert faults.fire("cli.site") == "raise"
        faults.reset()
        assert faults.fire("env.site") == "raise"

    def test_configure_none_clears(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "env.site:raise@after=1")
        faults.configure(None)
        assert not faults.active()


class TestLogAndReplay:
    def test_fired_faults_are_logged_as_jsonl(self, tmp_path):
        log = tmp_path / "faults.jsonl"
        plane = faults.configure("site.x:torn@hits=2+3",
                                 log_path=str(log))
        for _ in range(4):
            plane.fire("site.x")
        records = faults.read_log(log)
        assert [(r["site"], r["mode"], r["hit"]) for r in records] \
            == [("site.x", "torn", 2), ("site.x", "torn", 3)]
        assert all("pid" in r and "unix" in r for r in records)
        assert plane.fired == records

    def test_read_log_skips_torn_lines(self, tmp_path):
        log = tmp_path / "faults.jsonl"
        good = json.dumps({"site": "a.b", "mode": "torn", "hit": 1})
        log.write_text(good + "\n" + good[: len(good) // 2] + "\n")
        assert len(faults.read_log(log)) == 1

    def test_schedule_from_log_pins_and_replays(self, tmp_path):
        log = tmp_path / "faults.jsonl"
        plane = faults.configure("seed=5;site.x:torn@p=0.4;"
                                 "site.y:raise@after=2",
                                 log_path=str(log))
        original = [plane.fire("site.x") for _ in range(20)]
        plane.fire("site.y")
        plane.fire("site.y")
        pinned = faults.schedule_from_log(faults.read_log(log))
        faults.reset()
        replay_plane = faults.configure(pinned)
        replayed = [replay_plane.fire("site.x") for _ in range(20)]
        assert replayed == original
        assert replay_plane.fire("site.y") is None
        assert replay_plane.fire("site.y") == "raise"
