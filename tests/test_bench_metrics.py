"""Unit tests for the output-quality metrics."""

import pytest
from hypothesis import given, strategies as st

from repro.bench.metrics import (
    mean_squared_error,
    mismatch_fraction,
    normalized_rmse,
    relative_difference,
)

u32 = st.integers(min_value=0, max_value=(1 << 32) - 1)


class TestRelativeDifference:
    def test_exact_match(self):
        assert relative_difference(100, 100) == 0.0

    def test_simple_ratio(self):
        assert relative_difference(110, 100) == pytest.approx(0.10)

    def test_clipped_at_one(self):
        assert relative_difference(10**9, 1) == 1.0

    def test_zero_reference(self):
        assert relative_difference(0, 0) == 0.0
        assert relative_difference(5, 0) == 1.0


class TestMse:
    def test_zero_for_identical(self):
        assert mean_squared_error([1, 2, 3], [1, 2, 3]) == 0.0

    def test_simple_value(self):
        assert mean_squared_error([3, 0], [1, 0]) == pytest.approx(2.0)

    def test_wraparound_distance(self):
        # 0xFFFFFFFF vs 0: distance 1, not (2^32 - 1).
        assert mean_squared_error([0xFFFFFFFF], [0]) == pytest.approx(1.0)

    def test_half_range_is_max(self):
        assert mean_squared_error([0x80000000], [0]) == pytest.approx(
            float(0x80000000) ** 2)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            mean_squared_error([1], [1, 2])

    def test_empty(self):
        assert mean_squared_error([], []) == 0.0

    @given(st.lists(u32, min_size=1, max_size=10))
    def test_symmetric(self, values):
        shifted = [(v + 7) & 0xFFFFFFFF for v in values]
        assert mean_squared_error(values, shifted) == pytest.approx(
            mean_squared_error(shifted, values))


class TestMismatchFraction:
    def test_all_match(self):
        assert mismatch_fraction([1, 2], [1, 2]) == 0.0

    def test_half_mismatch(self):
        assert mismatch_fraction([1, 9], [1, 2]) == 0.5

    def test_empty(self):
        assert mismatch_fraction([], []) == 0.0

    @given(st.lists(u32, min_size=1, max_size=20))
    def test_bounded(self, values):
        assert 0.0 <= mismatch_fraction(values, values[::-1]) <= 1.0


class TestNormalizedRmse:
    def test_scaling(self):
        assert normalized_rmse([12], [10], full_scale=2.0) == 1.0
        assert normalized_rmse([11], [10], full_scale=2.0) == \
            pytest.approx(0.5)

    def test_clip(self):
        assert normalized_rmse([10**6], [0], full_scale=1.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            normalized_rmse([1], [1], full_scale=0.0)
