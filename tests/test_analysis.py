"""The static analysis plane: envelope, paths, oracle, lint, CLI.

The central property: the STA envelope of ``repro.analysis.sta`` is an
*independent* bound on every dynamic engine -- random circuits, random
delays, any engine, any glitch model, every arrival is 0.0 or inside
[min, max], and the rank-1 critical path's forward-walked arrival
equals the max bound bitwise.  Everything else here (lint findings,
compile diagnostics, the persisted report, the CLI verbs) hangs off
that envelope.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings

from repro import native
from repro.analysis.lint import (
    ERROR,
    WARNING,
    NetlistView,
    broken_fixture,
    lint_circuit,
    lint_netlist,
)
from repro.analysis.oracle import (
    BoundsViolation,
    bounds_check_enabled,
    check_bounds,
    maybe_check_bounds,
)
from repro.analysis.sta import (
    STA_REPORT_SCHEMA,
    StaReport,
    build_report,
    compute_envelope,
)
from repro.cli import main
from repro.netlist.circuit import Circuit
from repro.netlist.plan import compile_plan
from repro.store.schema import KINDS, artifact_from_json, current_schema
from test_engine_equivalence import needs_native, random_circuits


def _engines():
    engines = ["reference", "compiled", "compiled-f32"]
    if native.native_available():
        engines += ["compiled-native", "native-f32"]
    return engines


def _dtype(engine):
    return np.float32 if engine.endswith("f32") else np.float64


# ---------------------------------------------------------------------------
# The envelope property
# ---------------------------------------------------------------------------

@given(random_circuits())
@settings(max_examples=40, deadline=None)
def test_every_engine_inside_static_envelope(case):
    """Dynamic arrivals never escape the static [min, max] envelope.

    f64 engines are held to the bounds exactly (zero tolerance); f32
    engines under the documented relaxed-identity contract.
    check_bounds raising is the failure mode.
    """
    circuit, prev, new, delays, arrival = case
    for engine in _engines():
        for glitch_model in ("sensitized", "value-change"):
            _, arrivals = circuit.propagate(prev, new, delays, arrival,
                                            glitch_model, engine=engine)
            check_bounds(circuit, delays, arrival, arrivals,
                         timing_dtype=_dtype(engine), engine=engine,
                         glitch_model=glitch_model)


@given(random_circuits())
@settings(max_examples=40, deadline=None)
def test_rank1_path_arrival_is_the_max_bound_bitwise(case):
    """The greedy path re-walk reproduces the envelope max exactly.

    The backward argmax retraces the maximum-reduce chain and the
    forward walk repeats the same IEEE add sequence, so the reported
    arrival is bitwise equal to the bus's largest finite bound -- and
    each step's arrival is exactly the previous plus its gate delay.
    """
    circuit, prev, new, delays, arrival = case
    report = build_report(circuit, delays, input_arrival_ps=arrival)
    bounds = report.bus_max_ps["y"]
    finite = bounds[np.isfinite(bounds)]
    if not finite.size:
        assert not report.paths  # nothing event-capable to report
        return
    paths = [path for path in report.paths if path.bus == "y"]
    assert paths
    assert paths[0].arrival_ps == float(finite.max())  # bitwise
    for path in paths:
        assert path.arrival_ps <= paths[0].arrival_ps
        walked = arrival
        for index, step in enumerate(path.steps):
            if index:
                walked = walked + step.delay_ps
            assert step.arrival_ps == walked
        assert path.steps[0].delay_ps == 0.0  # the launching input
        assert path.arrival_ps == walked


def test_const_fed_logic_gets_the_empty_interval():
    """Nets fed only by constants carry [+inf, -inf]: never an event."""
    circuit = Circuit("consty")
    a = circuit.input_bus("a", 1)[0]
    dead = circuit.gate("AND2", circuit.const(0), circuit.const(1))
    live = circuit.gate("OR2", a, dead)
    circuit.output_bus("y", [dead, live])
    delays = np.array([3.0, 5.0])
    envelope = compute_envelope(circuit.plan, delays, 2.0)
    rows = circuit.plan.rows[circuit.output_nets("y")]
    assert envelope.min_rows[rows[0]] == np.inf
    assert envelope.max_rows[rows[0]] == -np.inf
    # The live gate sees only its event-capable leg: 2.0 + 5.0.
    assert envelope.min_rows[rows[1]] == 7.0
    assert envelope.max_rows[rows[1]] == 7.0
    _, arrivals = circuit.propagate({"a": [0]}, {"a": [1]}, delays, 2.0)
    check_bounds(circuit, delays, 2.0, arrivals)
    assert arrivals["y"][0, 0] == 0.0  # the const-fed bit never moves


def test_envelope_rejects_negative_delays_and_arrival():
    circuit = Circuit("neg")
    a = circuit.input_bus("a", 1)[0]
    circuit.output_bus("y", [circuit.gate("BUF", a)])
    with pytest.raises(ValueError, match="negative gate delays"):
        compute_envelope(circuit.plan, np.array([-1.0]))
    with pytest.raises(ValueError, match="negative input arrival"):
        compute_envelope(circuit.plan, np.array([1.0]), -0.5)


# ---------------------------------------------------------------------------
# The runtime oracle hook
# ---------------------------------------------------------------------------

def _inv_chain():
    circuit = Circuit("oracle")
    a = circuit.input_bus("a", 1)[0]
    x = circuit.gate("INV", a)
    circuit.output_bus("y", [circuit.gate("INV", x)])
    return circuit, np.array([2.0, 3.0])


def test_oracle_trips_on_an_escaped_arrival():
    circuit, delays = _inv_chain()
    _, arrivals = circuit.propagate({"a": [0]}, {"a": [1]}, delays, 1.0)
    assert arrivals["y"][0, 0] == 6.0  # 1 + 2 + 3: the only path
    check_bounds(circuit, delays, 1.0, arrivals)  # sanity: in bounds
    for bad in (5.999, 6.001, -1.0):
        with pytest.raises(BoundsViolation, match="escapes the static"):
            check_bounds(circuit, delays, 1.0,
                         {"y": np.array([[bad]])})
    # 0.0 is always legal: "no event this cycle".
    check_bounds(circuit, delays, 1.0, {"y": np.array([[0.0]])})


def test_oracle_is_opt_in(monkeypatch):
    circuit, delays = _inv_chain()
    monkeypatch.delenv("REPRO_CHECK_BOUNDS", raising=False)
    assert not bounds_check_enabled()
    maybe_check_bounds(circuit, delays, 1.0,
                       {"y": np.array([[999.0]])})  # no-op while off
    monkeypatch.setenv("REPRO_CHECK_BOUNDS", "1")
    assert bounds_check_enabled()
    with pytest.raises(BoundsViolation):
        maybe_check_bounds(circuit, delays, 1.0,
                           {"y": np.array([[999.0]])})


def test_propagate_runs_the_oracle_when_armed(monkeypatch):
    """The hook is wired into Circuit.propagate itself, every engine."""
    circuit, delays = _inv_chain()
    monkeypatch.setenv("REPRO_CHECK_BOUNDS", "1")
    for engine in _engines():
        circuit.propagate({"a": [0]}, {"a": [1]}, delays, 1.0,
                          engine=engine)  # oracle green end-to-end


@needs_native
def test_oracle_catches_a_corrupted_engine(monkeypatch):
    """A kernel that returned wrong settles would trip the oracle.

    Simulated by corrupting the reference result before the check --
    the point is that the envelope is computed independently of the
    value under test.
    """
    circuit, delays = _inv_chain()
    _, arrivals = circuit.propagate({"a": [0]}, {"a": [1]}, delays, 1.0,
                                    engine="compiled-native")
    corrupted = {"y": arrivals["y"] + 0.25}
    with pytest.raises(BoundsViolation):
        check_bounds(circuit, delays, 1.0, corrupted,
                     engine="compiled-native")


# ---------------------------------------------------------------------------
# compile_plan diagnostics (shared with the linter)
# ---------------------------------------------------------------------------

def test_compile_plan_names_the_combinational_cycle():
    fixture = broken_fixture()
    with pytest.raises(ValueError, match=r"n5 -> n6 -> n5"):
        compile_plan(fixture.n_nets, fixture.gate_kinds,
                     fixture.gate_inputs, fixture.gate_outputs,
                     set(fixture.input_nets))


def test_compile_plan_names_undriven_nets():
    with pytest.raises(ValueError, match=r"gate 0 \(AND2\).*\[4\]"):
        compile_plan(6, ["AND2"], [(2, 4)], [5], {2, 3})


# ---------------------------------------------------------------------------
# Lint
# ---------------------------------------------------------------------------

def test_lint_flags_the_broken_fixture():
    report = lint_netlist(broken_fixture())
    assert not report.ok
    codes = {finding.code: finding for finding in report.findings}
    assert codes["comb-loop"].severity == ERROR
    assert "n5 -> n6 -> n5" in codes["comb-loop"].message
    assert codes["undriven-net"].severity == ERROR
    assert 4 in codes["undriven-net"].nets
    assert codes["floating-input"].severity == WARNING
    assert codes["floating-input"].nets == (3,)
    payload = report.to_json()
    assert payload["ok"] is False
    assert {f["code"] for f in payload["findings"]} == set(codes)


def test_lint_clean_circuit():
    circuit = Circuit("clean")
    a = circuit.input_bus("a", 1)[0]
    b = circuit.input_bus("b", 1)[0]
    circuit.output_bus("y", [circuit.gate("AND2", a, b)])
    report = lint_circuit(circuit)
    assert report.ok
    assert "clean" in report.render()


def test_lint_flags_dead_gates_and_floating_inputs():
    circuit = Circuit("suspect")
    a = circuit.input_bus("a", 1)[0]
    circuit.input_bus("unused", 1)
    dead = circuit.gate("INV", a)  # never reaches an output
    circuit.gate("INV", dead)
    circuit.output_bus("y", [circuit.gate("BUF", a)])
    report = lint_circuit(circuit)
    codes = {finding.code for finding in report.findings}
    assert codes == {"dead-gate", "floating-input"}
    assert not report.errors and len(report.warnings) == 2


def test_lint_flags_multiple_drivers():
    view = NetlistView(name="multi", n_nets=5, gate_kinds=["INV", "INV"],
                       gate_inputs=[(2,), (3,)], gate_outputs=[4, 4],
                       input_nets=[2, 3], output_nets=[4])
    report = lint_netlist(view)
    assert any(f.code == "multi-driven-net" and f.nets == (4,)
               for f in report.errors)


def test_lint_fanout_histogram():
    circuit = Circuit("fan")
    a = circuit.input_bus("a", 1)[0]
    outs = [circuit.gate("INV", a) for _ in range(3)]
    circuit.output_bus("y", outs)
    histogram = lint_circuit(circuit).fanout_histogram
    assert histogram[3] == 1  # the input net feeds three gates
    assert histogram[1] == 3  # each INV output feeds only the bus


# ---------------------------------------------------------------------------
# The persisted report artifact
# ---------------------------------------------------------------------------

def test_sta_report_registered_and_roundtrips():
    assert "sta_report" in KINDS
    assert current_schema("sta_report") == STA_REPORT_SCHEMA
    circuit = Circuit("rt")
    a = circuit.input_bus("a", 2)
    circuit.output_bus("y", [circuit.gate("XOR2", *a),
                             circuit.gate("AND2", circuit.const(0),
                                          circuit.const(1))])
    report = build_report(circuit, np.array([3.25, 1.5]),
                          input_arrival_ps=0.75, overhead_ps=2.0,
                          clock_ps=10.0)
    payload = json.loads(json.dumps(report.to_json(), sort_keys=True))
    back = artifact_from_json("sta_report", payload)
    assert isinstance(back, StaReport)
    # Lossless: the re-serialized body is byte-identical (inf bounds
    # of the const-fed bit included).
    assert json.dumps(back.to_json(), sort_keys=True) == \
        json.dumps(report.to_json(), sort_keys=True)
    assert back.worst_arrival_ps == 4.0  # 0.75 + 3.25, bitwise
    assert back.min_period_ps == 6.0
    assert back.min_slack_ps == 4.0  # 10 - 2 - 4
    slack = back.slack_ps("y")
    assert slack is not None
    assert slack[1] == 8.0  # never-switching bit: full budget
    with pytest.raises(ValueError, match="schema"):
        StaReport.from_json({**payload, "schema": STA_REPORT_SCHEMA + 1})


# ---------------------------------------------------------------------------
# CLI verbs
# ---------------------------------------------------------------------------

def test_cli_lint_broken_fixture_fails(capsys):
    assert main(["lint", "broken-fixture"]) == 1
    out = capsys.readouterr().out
    assert "comb-loop" in out and "floating-input" in out


def test_cli_lint_broken_fixture_json(capsys):
    assert main(["lint", "broken-fixture", "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False


def test_cli_lint_clean_unit_passes(capsys):
    assert main(["lint", "adder"]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_sta_signs_off_at_the_calibrated_clock(capsys):
    assert main(["sta", "multiplier"]) == 0
    out = capsys.readouterr().out
    assert "[MET]" in out and "path #1" in out


def test_cli_sta_json_and_violated_clock(capsys):
    assert main(["sta", "adder", "--clock-ps", "10", "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == STA_REPORT_SCHEMA
    assert payload["clock_ps"] == 10.0


def test_cli_engines_reports_the_oracle(monkeypatch, capsys):
    monkeypatch.delenv("REPRO_CHECK_BOUNDS", raising=False)
    assert main(["engines"]) == 0
    assert "REPRO_CHECK_BOUNDS" in capsys.readouterr().out
    monkeypatch.setenv("REPRO_CHECK_BOUNDS", "1")
    assert main(["engines"]) == 0
    assert "ACTIVE" in capsys.readouterr().out
