"""Unit tests for the execution tracer."""

from repro.isa.assembler import assemble
from repro.sim.cpu import Cpu
from repro.sim.tracing import Tracer

SOURCE = """
start:
    l.addi r1, r0, 2
    l.addi r1, r1, 3
    l.mul  r2, r1, r1
    l.nop 0x1
"""


class TestTracer:
    def test_records_executed_instructions(self):
        tracer = Tracer()
        cpu = Cpu(assemble(SOURCE), trace_hook=tracer)
        tracer.attach(cpu)
        cpu.run("start")
        mnemonics = [e.decoded.mnemonic for e in tracer.entries]
        assert mnemonics == ["l.addi", "l.addi", "l.mul", "l.nop"]
        assert tracer.entries[0].address == 0

    def test_limit_stops_recording_not_execution(self):
        tracer = Tracer(limit=2)
        cpu = Cpu(assemble(SOURCE), trace_hook=tracer)
        result = cpu.run("start")
        assert result.finished
        assert len(tracer.entries) == 2

    def test_register_snapshots(self):
        tracer = Tracer(snapshot_regs=True)
        cpu = Cpu(assemble(SOURCE), trace_hook=tracer)
        tracer.attach(cpu)
        cpu.run("start")
        # Snapshot taken before execution: r1 still 2 at the second add.
        assert tracer.entries[1].regs[1] == 2

    def test_render_and_histogram(self):
        tracer = Tracer()
        cpu = Cpu(assemble(SOURCE), trace_hook=tracer)
        cpu.run("start")
        text = tracer.render(last=2)
        assert "l.mul" in text and "l.nop" in text
        assert tracer.mnemonic_histogram()["l.addi"] == 2

    def test_entry_render_format(self):
        tracer = Tracer()
        cpu = Cpu(assemble(SOURCE), trace_hook=tracer)
        cpu.run("start")
        entry = tracer.entries[1]
        line = entry.render()
        # "[   index] 0xaddr: disassembly" -- index right-aligned,
        # address in hex, one line per instruction.
        assert line.startswith(f"[{entry.index:>8}] ")
        assert f"{entry.address:#06x}:" in line
        assert "l.addi" in line
        assert "\n" not in line

    def test_indices_and_addresses_are_sequential(self):
        tracer = Tracer()
        cpu = Cpu(assemble(SOURCE), trace_hook=tracer)
        cpu.run("start")
        assert [e.index for e in tracer.entries] == [0, 1, 2, 3]
        assert [e.address for e in tracer.entries] == [0, 4, 8, 12]

    def test_snapshots_opt_in(self):
        # Without snapshot_regs -- the default -- entries carry no
        # register state even when a CPU is attached.
        tracer = Tracer()
        cpu = Cpu(assemble(SOURCE), trace_hook=tracer)
        tracer.attach(cpu)
        cpu.run("start")
        assert all(e.regs is None for e in tracer.entries)

    def test_snapshot_without_attach_is_none(self):
        # snapshot_regs without attach() has no CPU to read from; the
        # trace still records, just without register state.
        tracer = Tracer(snapshot_regs=True)
        cpu = Cpu(assemble(SOURCE), trace_hook=tracer)
        cpu.run("start")
        assert len(tracer.entries) == 4
        assert all(e.regs is None for e in tracer.entries)

    def test_snapshots_are_copies(self):
        tracer = Tracer(snapshot_regs=True)
        cpu = Cpu(assemble(SOURCE), trace_hook=tracer)
        tracer.attach(cpu)
        cpu.run("start")
        # Each entry's snapshot is an independent copy, not a live
        # view of the register file.
        assert tracer.entries[1].regs[1] == 2
        assert tracer.entries[2].regs[1] == 5
        assert cpu.regs[2] == 25

    def test_attach_returns_self(self):
        tracer = Tracer()
        assert tracer.attach(object()) is tracer

    def test_render_full_and_empty(self):
        tracer = Tracer()
        assert tracer.render() == ""
        assert tracer.mnemonic_histogram() == {}
        cpu = Cpu(assemble(SOURCE), trace_hook=tracer)
        cpu.run("start")
        assert len(tracer.render().splitlines()) == 4
        # last=N larger than the trace renders everything once.
        assert tracer.render(last=100) == tracer.render()
