"""Unit tests for the execution tracer."""

from repro.isa.assembler import assemble
from repro.sim.cpu import Cpu
from repro.sim.tracing import Tracer

SOURCE = """
start:
    l.addi r1, r0, 2
    l.addi r1, r1, 3
    l.mul  r2, r1, r1
    l.nop 0x1
"""


class TestTracer:
    def test_records_executed_instructions(self):
        tracer = Tracer()
        cpu = Cpu(assemble(SOURCE), trace_hook=tracer)
        tracer.attach(cpu)
        cpu.run("start")
        mnemonics = [e.decoded.mnemonic for e in tracer.entries]
        assert mnemonics == ["l.addi", "l.addi", "l.mul", "l.nop"]
        assert tracer.entries[0].address == 0

    def test_limit_stops_recording_not_execution(self):
        tracer = Tracer(limit=2)
        cpu = Cpu(assemble(SOURCE), trace_hook=tracer)
        result = cpu.run("start")
        assert result.finished
        assert len(tracer.entries) == 2

    def test_register_snapshots(self):
        tracer = Tracer(snapshot_regs=True)
        cpu = Cpu(assemble(SOURCE), trace_hook=tracer)
        tracer.attach(cpu)
        cpu.run("start")
        # Snapshot taken before execution: r1 still 2 at the second add.
        assert tracer.entries[1].regs[1] == 2

    def test_render_and_histogram(self):
        tracer = Tracer()
        cpu = Cpu(assemble(SOURCE), trace_hook=tracer)
        cpu.run("start")
        text = tracer.render(last=2)
        assert "l.mul" in text and "l.nop" in text
        assert tracer.mnemonic_histogram()["l.addi"] == 2
