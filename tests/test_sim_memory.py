"""Unit tests for the data-memory model."""

import pytest

from repro.sim.exceptions import MemoryFault, MisalignedAccess
from repro.sim.memory import DataMemory


@pytest.fixture()
def mem() -> DataMemory:
    return DataMemory(base=0x1000, size=0x100)


class TestConstruction:
    def test_bad_size(self):
        with pytest.raises(ValueError):
            DataMemory(0, 0)
        with pytest.raises(ValueError):
            DataMemory(0, 6)

    def test_bad_base(self):
        with pytest.raises(ValueError):
            DataMemory(2, 8)

    def test_limit(self, mem):
        assert mem.limit == 0x1100


class TestWordAccess:
    def test_big_endian_layout(self, mem):
        mem.store_word(0x1000, 0x11223344)
        assert mem.load_byte(0x1000) == 0x11
        assert mem.load_byte(0x1003) == 0x44
        assert mem.load_half(0x1000) == 0x1122
        assert mem.load_half(0x1002) == 0x3344

    def test_word_roundtrip_masks_to_32_bits(self, mem):
        mem.store_word(0x1004, 0x1FFFFFFFF)
        assert mem.load_word(0x1004) == 0xFFFFFFFF

    def test_uninitialized_reads_zero(self, mem):
        assert mem.load_word(0x10F8) == 0

    def test_misaligned_word(self, mem):
        with pytest.raises(MisalignedAccess):
            mem.load_word(0x1002)
        with pytest.raises(MisalignedAccess):
            mem.store_word(0x1001, 1)

    def test_misaligned_half(self, mem):
        with pytest.raises(MisalignedAccess):
            mem.load_half(0x1001)

    def test_out_of_bounds(self, mem):
        with pytest.raises(MemoryFault):
            mem.load_word(0x0FFC)
        with pytest.raises(MemoryFault):
            mem.load_word(0x1100)
        with pytest.raises(MemoryFault):
            mem.store_byte(0x1100, 1)

    def test_last_word_is_accessible(self, mem):
        mem.store_word(0x10FC, 7)
        assert mem.load_word(0x10FC) == 7

    def test_half_straddling_end(self, mem):
        with pytest.raises(MemoryFault):
            mem.store_half(0x1100, 1)


class TestSubWord:
    def test_byte_store_load(self, mem):
        mem.store_byte(0x1010, 0x1AB)
        assert mem.load_byte(0x1010) == 0xAB

    def test_half_store_load(self, mem):
        mem.store_half(0x1012, 0x12345)
        assert mem.load_half(0x1012) == 0x2345


class TestBulk:
    def test_write_read_words(self, mem):
        values = [1, 2, 3, 0xFFFFFFFF]
        mem.write_words(0x1020, values)
        assert mem.read_words(0x1020, 4) == values

    def test_clear(self, mem):
        mem.store_word(0x1000, 99)
        mem.clear()
        assert mem.load_word(0x1000) == 0
