"""Tests for the four fault-injection models A, B, B+ and C."""

import numpy as np
import pytest

from repro.fi.model_a import FixedProbabilityInjector
from repro.fi.model_b import StaInjector, endpoint_worst_sta
from repro.fi.model_bplus import StaNoiseInjector
from repro.fi.model_c import StatisticalInjector
from repro.fi.streams import EffectivePeriodStream
from repro.timing.noise import VoltageNoise


class TestModelA:
    def test_rate_matches_probability(self, rng):
        p_bit = 0.002
        injector = FixedProbabilityInjector(p_bit, rng)
        injector.begin_run()
        cycles = 30000
        for _ in range(cycles):
            injector.on_alu("l.add", 0)
        expected = p_bit * 32 * cycles
        assert injector.fault_count == pytest.approx(expected, rel=0.15)

    def test_instruction_blind(self, rng):
        injector = FixedProbabilityInjector(0.01, rng)
        injector.begin_run()
        for mnemonic in ("l.add", "l.mul", "l.sll"):
            injector.on_alu(mnemonic, 0)
        assert injector.alu_cycles == 3

    def test_zero_probability_never_faults(self, rng):
        injector = FixedProbabilityInjector(0.0, rng)
        injector.begin_run()
        for _ in range(1000):
            assert injector.on_alu("l.add", 7) == 7

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            FixedProbabilityInjector(1.5, rng)


class TestModelB:
    def test_no_faults_below_sta_limit(self, alu):
        f_safe = alu.sta_limit_hz(0.7) * 0.999
        injector = StaInjector(alu, f_safe)
        assert injector.violation_mask == 0

    def test_deterministic_mask_above_limit(self, alu):
        f_over = alu.sta_limit_hz(0.7) * 1.001
        injector = StaInjector(alu, f_over)
        assert injector.violation_mask != 0
        injector.begin_run()
        masks = {injector.fault_mask("l.add") for _ in range(10)}
        assert masks == {injector.violation_mask}

    def test_mask_grows_with_frequency(self, alu):
        limit = alu.sta_limit_hz(0.7)
        low = StaInjector(alu, limit * 1.001).violation_mask
        high = StaInjector(alu, limit * 1.2).violation_mask
        assert low & high == low
        assert high.bit_count() > low.bit_count()

    def test_highest_bit_fails_first(self, alu):
        limit = alu.sta_limit_hz(0.7)
        mask = StaInjector(alu, limit * 1.001).violation_mask
        assert mask & (1 << 31)

    def test_endpoint_worst_sta_covers_all_units(self, alu):
        worst = endpoint_worst_sta(alu, 0.7)
        per_unit = alu.endpoint_sta(0.7)
        setup = alu.library.setup(0.7)
        for arrivals in per_unit.values():
            assert np.all(worst >= arrivals + setup - 1e-9)

    def test_validation(self, alu):
        with pytest.raises(ValueError):
            StaInjector(alu, -1.0)


class TestModelBPlus:
    def test_zero_noise_reduces_to_model_b(self, alu, vdd_model, rng):
        frequency = alu.sta_limit_hz(0.7) * 1.001
        b = StaInjector(alu, frequency)
        bplus = StaNoiseInjector(alu, frequency, VoltageNoise(0.0),
                                 vdd_model=vdd_model, rng=rng)
        bplus.begin_run()
        for _ in range(20):
            assert bplus.fault_mask("l.add") == b.violation_mask

    def test_onset_below_sta_limit_with_noise(self, alu, vdd_model, rng):
        """With noise, faults appear below the STA limit -- but only in
        cycles where the droop is deep enough."""
        frequency = alu.sta_limit_hz(0.7) * 0.97
        injector = StaNoiseInjector(alu, frequency, VoltageNoise(0.025),
                                    vdd_model=vdd_model, rng=rng)
        injector.begin_run()
        faults = sum(injector.fault_mask("l.add") != 0
                     for _ in range(20000))
        assert 0 < faults < 20000

    def test_safe_far_below_onset(self, alu, vdd_model, rng):
        frequency = alu.sta_limit_hz(0.7) * 0.75
        injector = StaNoiseInjector(alu, frequency, VoltageNoise(0.010),
                                    vdd_model=vdd_model, rng=rng)
        injector.begin_run()
        assert all(injector.fault_mask("l.add") == 0
                   for _ in range(20000))

    def test_instruction_blind(self, alu, vdd_model, rng):
        """B+ applies the same worst-case mask regardless of the
        instruction (key difference from model C)."""
        frequency = alu.sta_limit_hz(0.7) * 1.05
        injector = StaNoiseInjector(alu, frequency, VoltageNoise(0.0),
                                    vdd_model=vdd_model, rng=rng)
        injector.begin_run()
        assert (injector.fault_mask("l.and")
                == injector.fault_mask("l.mul") != 0)


class TestModelC:
    def _injector(self, characterization, vdd_model, frequency, rng,
                  sigma=0.010, **kwargs):
        return StatisticalInjector(
            characterization, frequency, VoltageNoise(sigma),
            vdd_model=vdd_model, rng=rng, **kwargs)

    def test_safe_below_onset(self, characterization, vdd_model, rng):
        injector = self._injector(characterization, vdd_model, 600e6, rng)
        injector.begin_run()
        assert all(injector.fault_mask("l.mul") == 0 for _ in range(5000))

    def test_rate_increases_with_frequency(self, characterization,
                                           vdd_model, rng):
        rates = []
        for frequency in (720e6, 800e6, 900e6):
            injector = self._injector(characterization, vdd_model,
                                      frequency, rng)
            injector.begin_run()
            for _ in range(4000):
                injector.on_alu("l.mul", 0)
            rates.append(injector.fault_count)
        assert rates[0] < rates[1] < rates[2]

    def test_instruction_aware(self, characterization, vdd_model, rng):
        """At a frequency between the mul and logic PoFFs, multiplies
        fault while logic ops stay clean -- the paper's key feature."""
        injector = self._injector(characterization, vdd_model, 800e6, rng,
                                  sigma=0.0)
        injector.begin_run()
        mul_faults = sum(injector.fault_mask("l.mul") != 0
                         for _ in range(3000))
        and_faults = sum(injector.fault_mask("l.and") != 0
                         for _ in range(3000))
        assert mul_faults > 0
        assert and_faults == 0

    def test_rate_matches_cdf_probability(self, characterization,
                                          vdd_model, rng):
        """Without noise, the per-cycle any-fault rate must equal the
        empirical any-endpoint violation probability from DTA."""
        frequency = 780e6
        injector = self._injector(characterization, vdd_model, frequency,
                                  rng, sigma=0.0)
        injector.begin_run()
        trials = 30000
        faulty = sum(injector.fault_mask("l.mul") != 0
                     for _ in range(trials))
        expected = 1.0 - np.prod(
            1.0 - characterization.cdfs["l.mul"].error_probs(
                1e12 / frequency))
        assert faulty / trials == pytest.approx(expected, rel=0.12)

    def test_joint_mode_matches_empirical_any_prob(self, characterization,
                                                   vdd_model, rng):
        frequency = 780e6
        injector = self._injector(characterization, vdd_model, frequency,
                                  rng, sigma=0.0, correlation="joint")
        injector.begin_run()
        trials = 30000
        faulty = sum(injector.fault_mask("l.mul") != 0
                     for _ in range(trials))
        expected = characterization.cdfs["l.mul"].any_error_prob(
            1e12 / frequency)
        assert faulty / trials == pytest.approx(expected, rel=0.12)

    def test_voltage_overscaling_shifts_onset(self, characterization,
                                              vdd_model, rng):
        """Running below the characterization voltage at fixed frequency
        must create faults (Fig. 7's mechanism)."""
        frequency = 690e6  # safe at 0.7 V
        at_nominal = self._injector(characterization, vdd_model,
                                    frequency, rng, sigma=0.0)
        at_nominal.begin_run()
        assert all(at_nominal.fault_mask("l.mul") == 0
                   for _ in range(2000))
        undervolted = StatisticalInjector(
            characterization, frequency, VoltageNoise(0.0),
            vdd_operating=0.66, vdd_model=vdd_model, rng=rng)
        undervolted.begin_run()
        faults = sum(undervolted.fault_mask("l.mul") != 0
                     for _ in range(2000))
        assert faults > 0

    def test_requires_vdd_model(self, characterization, rng):
        with pytest.raises(ValueError, match="VddDelayModel"):
            StatisticalInjector(characterization, 700e6,
                                VoltageNoise(0.01), rng=rng)

    def test_bad_correlation_mode(self, characterization, vdd_model, rng):
        with pytest.raises(ValueError, match="correlation"):
            self._injector(characterization, vdd_model, 700e6, rng,
                           correlation="psychic")

    def test_for_alu_turnkey(self, alu, rng):
        injector = StatisticalInjector.for_alu(
            alu, 700e6, VoltageNoise(0.010), rng=rng)
        injector.begin_run()
        injector.on_alu("l.add", 1)
        assert injector.alu_cycles == 1


class TestEffectivePeriodStream:
    def test_zero_noise_constant(self, vdd_model, rng):
        stream = EffectivePeriodStream(1000.0, 0.7, 0.7, vdd_model,
                                       VoltageNoise(0.0), rng)
        assert stream.next() == pytest.approx(1000.0)

    def test_droops_shorten_effective_period(self, vdd_model, rng):
        stream = EffectivePeriodStream(1000.0, 0.7, 0.7, vdd_model,
                                       VoltageNoise(0.010), rng,
                                       block=4096)
        values = np.array([stream.next() for _ in range(8000)])
        assert values.min() < 1000.0  # droops stretch delays
        assert values.max() > 1000.0  # overshoots relax them
        assert values.min() > 900.0   # bounded by the 2-sigma clip

    def test_static_undervolt_shrinks_period(self, vdd_model, rng):
        stream = EffectivePeriodStream(1000.0, 0.68, 0.7, vdd_model,
                                       VoltageNoise(0.0), rng)
        assert stream.next() < 1000.0

    def test_validation(self, vdd_model, rng):
        with pytest.raises(ValueError):
            EffectivePeriodStream(0.0, 0.7, 0.7, vdd_model,
                                  VoltageNoise(0.0), rng)
