"""Tests for the characterization flow: coverage, caching, persistence."""

import numpy as np
import pytest

from repro.isa.instructions import ALU_MNEMONICS
from repro.timing.characterize import (
    AluCharacterization,
    CharacterizationConfig,
    clear_cache,
    get_characterization,
)


class TestCoverage:
    def test_all_alu_instructions_characterized(self, characterization):
        assert set(characterization.mnemonics) == set(ALU_MNEMONICS)

    def test_grids_built_for_every_instruction(self, characterization):
        assert set(characterization.grids) == set(characterization.cdfs)

    def test_worst_sta_recorded(self, alu, characterization):
        assert characterization.worst_sta_period_ps == pytest.approx(
            alu.worst_sta_period_ps(characterization.config.vdd))

    def test_grid_covers_all_critical_periods(self, characterization):
        for mnemonic, cdfs in characterization.cdfs.items():
            grid = characterization.grids[mnemonic]
            assert grid.periods[-1] >= cdfs.row_max_sorted[-1]


class TestCaching:
    def test_cache_returns_same_object(self, alu):
        config = CharacterizationConfig(n_cycles_per_instr=64, seed=11)
        first = get_characterization(alu, config)
        second = get_characterization(alu, config)
        assert first is second

    def test_different_config_rebuilds(self, alu):
        a = get_characterization(
            alu, CharacterizationConfig(n_cycles_per_instr=64, seed=11))
        b = get_characterization(
            alu, CharacterizationConfig(n_cycles_per_instr=64, seed=12))
        assert a is not b

    def test_clear_cache(self, alu):
        config = CharacterizationConfig(n_cycles_per_instr=64, seed=13)
        first = get_characterization(alu, config)
        clear_cache()
        second = get_characterization(alu, config)
        assert first is not second


class TestPersistence:
    def test_save_load_roundtrip(self, alu, tmp_path):
        config = CharacterizationConfig(n_cycles_per_instr=64, seed=21)
        original = AluCharacterization.run(alu, config)
        path = tmp_path / "char.npz"
        original.save(path)
        loaded = AluCharacterization.load(path)
        assert loaded.config == config
        assert set(loaded.mnemonics) == set(original.mnemonics)
        for mnemonic in original.mnemonics:
            assert np.allclose(
                loaded.cdfs[mnemonic].critical_rows,
                original.cdfs[mnemonic].critical_rows)
        assert loaded.worst_sta_period_ps == pytest.approx(
            original.worst_sta_period_ps)

    def test_loaded_grids_behave_identically(self, alu, tmp_path):
        config = CharacterizationConfig(n_cycles_per_instr=64, seed=22)
        original = AluCharacterization.run(alu, config)
        path = tmp_path / "char.npz"
        original.save(path)
        loaded = AluCharacterization.load(path)
        period = 1e12 / 800e6
        for mnemonic in original.mnemonics:
            assert np.allclose(
                loaded.cdfs[mnemonic].error_probs(period),
                original.cdfs[mnemonic].error_probs(period))
