"""Tests for dynamic timing analysis and the CDF machinery."""

import numpy as np
import pytest

from repro.timing.cdf import CdfGrid, EndpointCdfs
from repro.timing.dta import run_dta, sample_operands


class TestOperandSampling:
    def test_register_forms_full_range(self, rng):
        a, b = sample_operands("l.add", 2000, rng)
        assert a.max() > 1 << 31 and b.max() > 1 << 31

    def test_signed_immediate_range(self, rng):
        _, b = sample_operands("l.addi", 2000, rng)
        as_signed = b.astype(np.int64)
        as_signed[as_signed >= 1 << 31] -= 1 << 32
        assert as_signed.min() >= -(1 << 15)
        assert as_signed.max() < (1 << 15)

    def test_unsigned_immediate_range(self, rng):
        _, b = sample_operands("l.ori", 2000, rng)
        assert b.max() < (1 << 16)

    def test_shift_immediate_range(self, rng):
        _, b = sample_operands("l.slli", 2000, rng)
        assert b.max() < 32


class TestRunDta:
    def test_shapes_and_bounds(self, alu):
        result = run_dta(alu, "l.add", 128, vdd=0.7, seed=3)
        assert result.critical_ps.shape == (128, 32)
        assert result.values.shape == (128,)
        assert result.unit == "adder"
        worst = alu.worst_sta_period_ps(0.7)
        assert result.critical_ps.max() <= worst + 1e-9

    def test_values_are_correct_sums(self, alu, rng):
        n = 64
        a = rng.integers(0, 1 << 32, n + 1, dtype=np.uint64)
        b = rng.integers(0, 1 << 32, n + 1, dtype=np.uint64)
        result = run_dta(alu, "l.add", n, operands=(a, b))
        expected = (a[1:] + b[1:]) & np.uint64(0xFFFFFFFF)
        assert np.array_equal(result.values, expected)

    def test_error_probabilities_monotone_in_period(self, alu):
        result = run_dta(alu, "l.mul", 128, seed=5)
        p_short = result.error_probabilities(1000.0)
        p_long = result.error_probabilities(1300.0)
        assert np.all(p_short >= p_long)

    def test_explicit_operands_length_checked(self, alu):
        with pytest.raises(ValueError, match="entries"):
            run_dta(alu, "l.add", 100,
                    operands=(np.zeros(5, dtype=np.uint64),
                              np.zeros(5, dtype=np.uint64)))

    def test_n_cycles_positive(self, alu):
        with pytest.raises(ValueError):
            run_dta(alu, "l.add", 0)


def _synthetic_cdfs() -> EndpointCdfs:
    """Three cycles, two endpoints, hand-computable statistics."""
    critical = np.array([
        [100.0, 300.0],
        [200.0, 250.0],
        [150.0, 400.0],
    ])
    return EndpointCdfs.from_critical("l.test", 0.7, critical)


class TestEndpointCdfs:
    def test_exact_probabilities(self):
        cdfs = _synthetic_cdfs()
        # Period 175: endpoint0 exceeds in cycles {200}, endpoint1 in all.
        probs = cdfs.error_probs(175.0)
        assert probs[0] == pytest.approx(1 / 3)
        assert probs[1] == pytest.approx(1.0)

    def test_any_error_prob(self):
        cdfs = _synthetic_cdfs()
        assert cdfs.any_error_prob(260.0) == pytest.approx(2 / 3)
        assert cdfs.any_error_prob(500.0) == 0.0
        assert cdfs.any_error_prob(50.0) == 1.0

    def test_poff_frequency(self):
        cdfs = _synthetic_cdfs()
        assert cdfs.poff_frequency_hz() == pytest.approx(1e12 / 400.0)

    def test_frequency_view_consistent(self):
        cdfs = _synthetic_cdfs()
        assert np.array_equal(
            cdfs.error_probs_at_frequency(1e12 / 175.0),
            cdfs.error_probs(175.0))

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            EndpointCdfs.from_critical("x", 0.7, np.zeros(5))


class TestCdfGrid:
    def test_grid_probabilities_match_exact(self):
        cdfs = _synthetic_cdfs()
        grid = CdfGrid.compile(cdfs, 50.0, 450.0, points=401)
        index = grid.row_index(175.0)
        assert grid.probs[index][0] == pytest.approx(1 / 3)
        assert grid.probs[index][1] == pytest.approx(1.0)

    def test_row_index_semantics(self):
        cdfs = _synthetic_cdfs()
        grid = CdfGrid.compile(cdfs, 100.0, 500.0, points=5)
        assert grid.row_index(50.0) == 0       # clamps pessimistically
        assert grid.row_index(10000.0) == -1   # beyond grid: no faults
        # In-range values pick the row at or just below the period.
        row = grid.row_index(305.0)
        assert grid.periods[row] <= 305.0

    def test_tail_products(self):
        cdfs = _synthetic_cdfs()
        grid = CdfGrid.compile(cdfs, 50.0, 450.0, points=101)
        row = grid.row_index(175.0)
        p = grid.probs[row]
        expected = np.concatenate((
            np.cumprod((1 - p)[::-1])[::-1], [1.0]))
        assert np.allclose(grid.tail_products[row], expected)

    def test_p_any_monotone_decreasing(self):
        cdfs = _synthetic_cdfs()
        grid = CdfGrid.compile(cdfs, 50.0, 450.0, points=101)
        assert np.all(np.diff(grid.p_any) <= 1e-12)

    def test_bad_range(self):
        cdfs = _synthetic_cdfs()
        with pytest.raises(ValueError):
            CdfGrid.compile(cdfs, 200.0, 100.0)


class TestRealCharacterizationProperties:
    def test_mul_fails_before_add(self, characterization):
        assert (characterization.poff_frequency_hz("l.mul")
                < characterization.poff_frequency_hz("l.add"))

    def test_logic_is_safest(self, characterization):
        poffs = {m: characterization.poff_frequency_hz(m)
                 for m in characterization.mnemonics}
        assert min(poffs, key=poffs.get) in ("l.mul", "l.muli")
        assert poffs["l.and"] > poffs["l.add"]

    def test_cdf_monotone_in_frequency(self, characterization):
        cdfs = characterization.cdfs["l.mul"]
        frequencies = np.linspace(600e6, 1500e6, 40)
        previous = np.zeros(32)
        for f in frequencies:
            probs = cdfs.error_probs_at_frequency(f)
            assert np.all(probs >= previous - 1e-12)
            previous = probs

    def test_high_bits_fail_at_lower_frequencies(self, characterization):
        cdfs = characterization.cdfs["l.mul"]
        probs = cdfs.error_probs(1e12 / 900e6)
        # Bit 31 must be at least as error-prone as bit 8 at 900 MHz.
        assert probs[31] >= probs[8]
        assert probs[31] > 0.0
