"""Program container produced by the assembler and consumed by the ISS."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Program:
    """An assembled program image.

    Attributes:
        words: instruction/data words, one 32-bit value per word address
            starting at ``base_address``.
        base_address: byte address of ``words[0]``.
        symbols: label/constant name -> value (byte address or constant).
        line_map: instruction byte address -> source line number.
    """

    words: list[int]
    base_address: int = 0
    symbols: dict[str, int] = field(default_factory=dict)
    line_map: dict[int, int] = field(default_factory=dict)

    @property
    def size_bytes(self) -> int:
        return 4 * len(self.words)

    @property
    def end_address(self) -> int:
        return self.base_address + self.size_bytes

    def symbol(self, name: str) -> int:
        """Look up a symbol, raising a helpful error if missing."""
        try:
            return self.symbols[name]
        except KeyError:
            known = ", ".join(sorted(self.symbols)) or "<none>"
            raise KeyError(
                f"symbol {name!r} not defined (known: {known})") from None

    def word_at(self, address: int) -> int:
        """Fetch the program word at a byte address."""
        index = (address - self.base_address) // 4
        if not 0 <= index < len(self.words):
            raise IndexError(f"address {address:#x} outside program image")
        return self.words[index]
