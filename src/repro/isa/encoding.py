"""Binary encoding and decoding of the OR1K-subset instructions.

Instructions are encoded into 32-bit words with field placement modeled
on the real OpenRISC 1000 encoding:

* bits [31:26] -- major opcode
* bits [25:21] -- rD (or the set-flag sub-opcode for compares)
* bits [20:16] -- rA
* bits [15:11] -- rB
* bits [15:0]  -- 16-bit immediate (stores split it into [25:21]|[10:0])
* bits [25:0]  -- 26-bit pc-relative word offset for jumps/branches
* bits [9:0]   -- ALU minor opcode fields for register-register ops

The :class:`Decoded` structure is the single representation shared by
the disassembler and the simulator; the simulator pre-decodes the whole
instruction memory once, so decode speed is not on the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import (
    ALU_MUL,
    ALU_SHIFT,
    Format,
    INSTRUCTIONS,
    InstructionSpec,
    OP_ALU,
    OP_SF,
    OP_SFI,
    OP_SHIFTI,
    spec_for,
)

MASK32 = 0xFFFFFFFF


class EncodingError(ValueError):
    """Raised when an instruction cannot be encoded or decoded."""


@dataclass(frozen=True)
class Decoded:
    """A decoded instruction: spec plus extracted operand fields.

    Attributes:
        spec: the instruction's static description.
        rd: destination register index (0..31) or 0 if unused.
        ra: first source register index or 0 if unused.
        rb: second source register index or 0 if unused.
        imm: immediate operand, already sign- or zero-extended to a
            Python int according to the spec; for jumps this is the
            signed word offset.
    """

    spec: InstructionSpec
    rd: int = 0
    ra: int = 0
    rb: int = 0
    imm: int = 0

    @property
    def mnemonic(self) -> str:
        return self.spec.mnemonic


def sign_extend(value: int, bits: int) -> int:
    """Interpret the low ``bits`` of ``value`` as a signed integer."""
    value &= (1 << bits) - 1
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return value


def _check_reg(value: int, name: str) -> int:
    if not 0 <= value < 32:
        raise EncodingError(f"register {name} out of range: {value}")
    return value


def _check_imm(value: int, bits: int, signed: bool) -> int:
    if signed:
        low, high = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    else:
        low, high = 0, (1 << bits) - 1
    if not low <= value <= high:
        raise EncodingError(
            f"immediate {value} does not fit in {bits}-bit "
            f"{'signed' if signed else 'unsigned'} field")
    return value & ((1 << bits) - 1)


def encode(decoded: Decoded) -> int:
    """Encode a :class:`Decoded` instruction into a 32-bit word."""
    spec = decoded.spec
    op = spec.opcode << 26
    rd = _check_reg(decoded.rd, "rD") << 21
    ra = _check_reg(decoded.ra, "rA") << 16
    rb = _check_reg(decoded.rb, "rB") << 11
    fmt = spec.fmt

    if fmt is Format.RRR:
        sub = spec.subopcode or 0
        if spec.subopcode == ALU_MUL:
            sub |= 0b11 << 8  # OR1K multiplier group marker
        return op | rd | ra | rb | sub
    if fmt is Format.RRI:
        imm = _check_imm(decoded.imm, 16, spec.signed_imm)
        return op | rd | ra | imm
    if fmt is Format.RRL:
        imm = _check_imm(decoded.imm, 6, signed=False)
        return op | rd | ra | ((spec.subopcode or 0) << 6) | imm
    if fmt is Format.RI_HI:
        imm = _check_imm(decoded.imm, 16, signed=False)
        return op | rd | imm
    if fmt is Format.LOAD:
        imm = _check_imm(decoded.imm, 16, signed=True)
        return op | rd | ra | imm
    if fmt is Format.STORE:
        imm = _check_imm(decoded.imm, 16, signed=True)
        return op | ((imm >> 11) << 21) | ra | rb | (imm & 0x7FF)
    if fmt is Format.SF_RR:
        return op | ((spec.subopcode or 0) << 21) | ra | rb
    if fmt is Format.SF_RI:
        imm = _check_imm(decoded.imm, 16, signed=True)
        return op | ((spec.subopcode or 0) << 21) | ra | imm
    if fmt is Format.JUMP:
        imm = _check_imm(decoded.imm, 26, signed=True)
        return op | imm
    if fmt is Format.JUMP_REG:
        return op | rb
    if fmt is Format.NOP:
        imm = _check_imm(decoded.imm, 16, signed=False)
        return op | imm
    raise EncodingError(f"unhandled format {fmt}")  # pragma: no cover


def _decode_alu_rrr(word: int) -> InstructionSpec:
    low4 = word & 0xF
    if low4 == ALU_SHIFT:
        shift_kind = (word >> 6) & 0x3
        for mnemonic in ("l.sll", "l.srl", "l.sra"):
            spec = INSTRUCTIONS[mnemonic]
            if (spec.subopcode or 0) >> 6 == shift_kind:
                return spec
        raise EncodingError(f"bad shift kind in word {word:#010x}")
    for spec in INSTRUCTIONS.values():
        if (spec.opcode == OP_ALU and spec.fmt is Format.RRR
                and (spec.subopcode or 0) & 0xF == low4
                and low4 != ALU_SHIFT):
            return spec
    raise EncodingError(f"unknown ALU sub-opcode in word {word:#010x}")


_SF_BY_SUB = {
    (s.opcode, s.subopcode): s for s in INSTRUCTIONS.values()
    if s.opcode in (OP_SF, OP_SFI)
}
_SHIFTI_BY_SUB = {
    s.subopcode: s for s in INSTRUCTIONS.values()
    if s.opcode == OP_SHIFTI
}
_SIMPLE_BY_OPCODE = {
    s.opcode: s for s in INSTRUCTIONS.values()
    if s.opcode not in (OP_ALU, OP_SF, OP_SFI, OP_SHIFTI)
}


def decode(word: int) -> Decoded:
    """Decode a 32-bit instruction word.

    Raises:
        EncodingError: if the word does not correspond to any
            instruction of the ISA (an *illegal instruction*; the
            simulator maps this to a fatal execution error, which is how
            fault-corrupted jumps into data typically terminate).
    """
    word &= MASK32
    opcode = word >> 26
    rd = (word >> 21) & 0x1F
    ra = (word >> 16) & 0x1F
    rb = (word >> 11) & 0x1F

    if opcode == OP_ALU:
        spec = _decode_alu_rrr(word)
        return Decoded(spec, rd=rd, ra=ra, rb=rb)
    if opcode == OP_SHIFTI:
        spec = _SHIFTI_BY_SUB.get((word >> 6) & 0x3)
        if spec is None:
            raise EncodingError(f"bad shift-imm kind: {word:#010x}")
        return Decoded(spec, rd=rd, ra=ra, imm=word & 0x3F)
    if opcode in (OP_SF, OP_SFI):
        spec = _SF_BY_SUB.get((opcode, rd))
        if spec is None:
            raise EncodingError(f"bad set-flag sub-opcode: {word:#010x}")
        if opcode == OP_SFI:
            return Decoded(spec, ra=ra, imm=sign_extend(word, 16))
        return Decoded(spec, ra=ra, rb=rb)

    spec = _SIMPLE_BY_OPCODE.get(opcode)
    if spec is None:
        raise EncodingError(f"illegal instruction word: {word:#010x}")

    fmt = spec.fmt
    if fmt is Format.JUMP:
        return Decoded(spec, imm=sign_extend(word, 26))
    if fmt is Format.JUMP_REG:
        return Decoded(spec, rb=rb)
    if fmt is Format.NOP:
        return Decoded(spec, imm=word & 0xFFFF)
    if fmt is Format.RI_HI:
        return Decoded(spec, rd=rd, imm=word & 0xFFFF)
    if fmt is Format.LOAD:
        return Decoded(spec, rd=rd, ra=ra, imm=sign_extend(word, 16))
    if fmt is Format.STORE:
        imm = sign_extend(((rd << 11) | (word & 0x7FF)), 16)
        return Decoded(spec, ra=ra, rb=rb, imm=imm)
    if fmt is Format.RRI:
        imm = word & 0xFFFF
        if spec.signed_imm:
            imm = sign_extend(imm, 16)
        return Decoded(spec, rd=rd, ra=ra, imm=imm)
    raise EncodingError(f"unhandled format {fmt}")  # pragma: no cover


def make(mnemonic: str, rd: int = 0, ra: int = 0, rb: int = 0,
         imm: int = 0) -> Decoded:
    """Convenience constructor for a decoded instruction by mnemonic."""
    return Decoded(spec_for(mnemonic), rd=rd, ra=ra, rb=rb, imm=imm)
