"""Two-pass assembler for the OR1K-subset ISA.

Supports the full instruction set of :mod:`repro.isa.instructions` plus
a small set of directives sufficient for the benchmark kernels:

* ``label:`` -- define a label (code or data address).
* ``.org ADDR`` -- set the location counter.
* ``.word V [, V ...]`` -- emit 32-bit data words.
* ``.space N`` -- reserve N bytes (zero filled, word aligned).
* ``.equ NAME, VALUE`` -- define a symbolic constant.
* ``hi(expr)`` / ``lo(expr)`` -- high/low 16 bits of an expression, for
  ``l.movhi`` / ``l.ori`` address formation.
* ``#`` or ``;`` start a comment.

Immediates may be decimal, hexadecimal (``0x``), negative, a label, a
constant, or a sum/difference of those (e.g. ``data + 4``).

The output is a :class:`~repro.isa.program.Program` holding the encoded
words, the symbol table, and source line mapping for diagnostics.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.isa.encoding import Decoded, EncodingError, encode
from repro.isa.instructions import Format, spec_for
from repro.isa.program import Program

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):\s*(.*)$")
_TOKEN_RE = re.compile(r"^[A-Za-z_.$][\w.$]*$")


class AssemblerError(ValueError):
    """Raised on any assembly failure, annotated with the source line."""

    def __init__(self, message: str, line_no: int | None = None,
                 line: str | None = None):
        location = f" (line {line_no}: {line!r})" if line_no else ""
        super().__init__(message + location)
        self.line_no = line_no


@dataclass
class _Item:
    """One statement after pass 1: an instruction or data words."""

    address: int
    line_no: int
    source: str
    mnemonic: str | None = None  # None for data
    operands: list[str] | None = None
    data: list[str] | None = None  # expressions for .word


def _strip_comment(line: str) -> str:
    for marker in ("#", ";"):
        pos = line.find(marker)
        if pos >= 0:
            line = line[:pos]
    return line.strip()


def _split_operands(text: str) -> list[str]:
    """Split an operand string on top-level commas (not inside parens)."""
    operands, depth, current = [], 0, []
    for char in text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "," and depth == 0:
            operands.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        operands.append(tail)
    return operands


class Assembler:
    """Two-pass assembler producing a :class:`Program`."""

    def __init__(self) -> None:
        self.symbols: dict[str, int] = {}

    def assemble(self, source: str, base_address: int = 0) -> Program:
        """Assemble ``source`` text into a program at ``base_address``."""
        items = self._pass_one(source, base_address)
        return self._pass_two(items, base_address)

    # -- pass 1: layout and symbol collection ---------------------------

    def _pass_one(self, source: str, base_address: int) -> list[_Item]:
        self.symbols = {}
        items: list[_Item] = []
        address = base_address
        for line_no, raw in enumerate(source.splitlines(), start=1):
            line = _strip_comment(raw)
            while line:
                match = _LABEL_RE.match(line)
                if not match:
                    break
                self._define(match.group(1), address, line_no, raw)
                line = match.group(2).strip()
            if not line:
                continue
            parts = line.split(None, 1)
            head = parts[0]
            rest = parts[1] if len(parts) > 1 else ""
            if head.startswith("."):
                address = self._directive(
                    head, rest, address, line_no, raw, items)
            else:
                items.append(_Item(address, line_no, raw, mnemonic=head,
                                   operands=_split_operands(rest)))
                address += 4
        return items

    def _define(self, name: str, value: int, line_no: int,
                line: str) -> None:
        if name in self.symbols:
            raise AssemblerError(f"duplicate symbol {name!r}", line_no, line)
        self.symbols[name] = value

    def _directive(self, head: str, rest: str, address: int, line_no: int,
                   raw: str, items: list[_Item]) -> int:
        if head == ".org":
            target = self._eval(rest, line_no, raw, allow_forward=False)
            if target < address:
                raise AssemblerError(
                    f".org moves backwards ({target:#x} < {address:#x})",
                    line_no, raw)
            if target % 4:
                raise AssemblerError(".org target not word aligned",
                                     line_no, raw)
            return target
        if head == ".word":
            exprs = _split_operands(rest)
            if not exprs:
                raise AssemblerError(".word needs at least one value",
                                     line_no, raw)
            items.append(_Item(address, line_no, raw, data=exprs))
            return address + 4 * len(exprs)
        if head == ".space":
            count = self._eval(rest, line_no, raw, allow_forward=False)
            if count < 0:
                raise AssemblerError(".space size negative", line_no, raw)
            padded = (count + 3) // 4
            items.append(_Item(address, line_no, raw, data=["0"] * padded))
            return address + 4 * padded
        if head == ".equ":
            operands = _split_operands(rest)
            if len(operands) != 2 or not _TOKEN_RE.match(operands[0]):
                raise AssemblerError(".equ needs NAME, VALUE", line_no, raw)
            value = self._eval(operands[1], line_no, raw,
                               allow_forward=False)
            self._define(operands[0], value, line_no, raw)
            return address
        raise AssemblerError(f"unknown directive {head!r}", line_no, raw)

    # -- expression evaluation -------------------------------------------

    def _eval(self, expr: str, line_no: int, line: str,
              allow_forward: bool = True) -> int:
        expr = expr.strip()
        if not expr:
            raise AssemblerError("empty expression", line_no, line)
        lowered = expr.lower()
        if lowered.startswith("hi(") and expr.endswith(")"):
            value = self._eval(expr[3:-1], line_no, line, allow_forward)
            return (value >> 16) & 0xFFFF
        if lowered.startswith("lo(") and expr.endswith(")"):
            value = self._eval(expr[3:-1], line_no, line, allow_forward)
            return value & 0xFFFF
        total, sign, token = 0, 1, ""

        def consume(tok: str) -> int:
            tok = tok.strip()
            if not tok:
                raise AssemblerError(f"bad expression {expr!r}",
                                     line_no, line)
            negate = tok.startswith("-")
            if negate:
                tok = tok[1:].strip()
            if re.match(r"^0[xX][0-9a-fA-F]+$", tok):
                return -int(tok, 16) if negate else int(tok, 16)
            if re.match(r"^\d+$", tok):
                return -int(tok) if negate else int(tok)
            if negate:
                raise AssemblerError(f"bad token -{tok!r} in expression",
                                     line_no, line)
            if _TOKEN_RE.match(tok):
                if tok in self.symbols:
                    return self.symbols[tok]
                if allow_forward:
                    raise _ForwardReference(tok)
                raise AssemblerError(f"undefined symbol {tok!r}",
                                     line_no, line)
            raise AssemblerError(f"bad token {tok!r} in expression",
                                 line_no, line)

        depth = 0
        for char in expr:
            if char in "+-" and depth == 0 and token.strip():
                total += sign * consume(token)
                sign = 1 if char == "+" else -1
                token = ""
            else:
                if char == "(":
                    depth += 1
                elif char == ")":
                    depth -= 1
                token += char
        if token.strip():
            total += sign * consume(token)
        elif expr.strip() in ("+", "-"):
            raise AssemblerError(f"bad expression {expr!r}", line_no, line)
        return total

    # -- pass 2: encoding --------------------------------------------------

    def _pass_two(self, items: list[_Item], base_address: int) -> Program:
        if items:
            end = max(i.address + 4 * (len(i.data) if i.data else 1)
                      for i in items)
        else:
            end = base_address
        size_words = (end - base_address) // 4
        words = [0] * size_words
        line_map: dict[int, int] = {}
        for item in items:
            index = (item.address - base_address) // 4
            if item.data is not None:
                for offset, expr in enumerate(item.data):
                    value = self._eval(expr, item.line_no, item.source,
                                       allow_forward=False)
                    words[index + offset] = value & 0xFFFFFFFF
                continue
            decoded = self._parse_instruction(item)
            try:
                words[index] = encode(decoded)
            except EncodingError as exc:
                raise AssemblerError(str(exc), item.line_no,
                                     item.source) from exc
            line_map[item.address] = item.line_no
        return Program(words=words, base_address=base_address,
                       symbols=dict(self.symbols), line_map=line_map)

    def _reg(self, token: str, item: _Item) -> int:
        token = token.strip().lower()
        if re.match(r"^r\d{1,2}$", token):
            index = int(token[1:])
            if 0 <= index < 32:
                return index
        raise AssemblerError(f"bad register {token!r}", item.line_no,
                             item.source)

    def _imm(self, token: str, item: _Item) -> int:
        return self._eval(token, item.line_no, item.source,
                          allow_forward=False)

    def _parse_instruction(self, item: _Item) -> Decoded:
        try:
            spec = spec_for(item.mnemonic)
        except KeyError as exc:
            raise AssemblerError(str(exc), item.line_no, item.source) from exc
        ops = item.operands or []
        fmt = spec.fmt

        def need(count: int) -> None:
            if len(ops) != count:
                raise AssemblerError(
                    f"{spec.mnemonic} expects {count} operand(s), "
                    f"got {len(ops)}", item.line_no, item.source)

        if fmt is Format.RRR:
            need(3)
            return Decoded(spec, rd=self._reg(ops[0], item),
                           ra=self._reg(ops[1], item),
                           rb=self._reg(ops[2], item))
        if fmt in (Format.RRI, Format.RRL):
            need(3)
            return Decoded(spec, rd=self._reg(ops[0], item),
                           ra=self._reg(ops[1], item),
                           imm=self._imm(ops[2], item))
        if fmt is Format.RI_HI:
            need(2)
            return Decoded(spec, rd=self._reg(ops[0], item),
                           imm=self._imm(ops[1], item))
        if fmt is Format.LOAD:
            need(2)
            imm, ra = self._mem_operand(ops[1], item)
            return Decoded(spec, rd=self._reg(ops[0], item), ra=ra, imm=imm)
        if fmt is Format.STORE:
            need(2)
            imm, ra = self._mem_operand(ops[0], item)
            return Decoded(spec, ra=ra, rb=self._reg(ops[1], item), imm=imm)
        if fmt is Format.SF_RR:
            need(2)
            return Decoded(spec, ra=self._reg(ops[0], item),
                           rb=self._reg(ops[1], item))
        if fmt is Format.SF_RI:
            need(2)
            return Decoded(spec, ra=self._reg(ops[0], item),
                           imm=self._imm(ops[1], item))
        if fmt is Format.JUMP:
            need(1)
            target = self._imm(ops[0], item)
            offset = (target - item.address) // 4
            if (target - item.address) % 4:
                raise AssemblerError("branch target not word aligned",
                                     item.line_no, item.source)
            return Decoded(spec, imm=offset)
        if fmt is Format.JUMP_REG:
            need(1)
            return Decoded(spec, rb=self._reg(ops[0], item))
        if fmt is Format.NOP:
            if not ops:
                return Decoded(spec, imm=0)
            need(1)
            return Decoded(spec, imm=self._imm(ops[0], item))
        raise AssemblerError(f"unhandled format {fmt}", item.line_no,
                             item.source)  # pragma: no cover

    def _mem_operand(self, token: str, item: _Item) -> tuple[int, int]:
        """Parse ``imm(rA)`` into (imm, ra)."""
        match = re.match(r"^(.*)\((\s*[rR]\d{1,2}\s*)\)$", token.strip())
        if not match:
            raise AssemblerError(f"bad memory operand {token!r}",
                                 item.line_no, item.source)
        imm_text = match.group(1).strip() or "0"
        return (self._imm(imm_text, item),
                self._reg(match.group(2), item))


class _ForwardReference(Exception):
    """Internal: symbol referenced before definition during pass 1."""

    def __init__(self, name: str):
        super().__init__(name)
        self.name = name


def assemble(source: str, base_address: int = 0) -> Program:
    """Assemble ``source`` into a :class:`Program` (convenience API)."""
    return Assembler().assemble(source, base_address)
