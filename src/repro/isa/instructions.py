"""Instruction set definition for the OR1K-subset ISA.

The instruction set models the 32-bit OpenRISC (OR1K) subset used by the
paper's case study: integer ALU operations (register and immediate
forms), single-cycle 32-bit multiplication, loads/stores against
single-cycle SRAMs, set-flag compares, and control flow with a single
branch delay slot.

Each instruction is described by an :class:`InstructionSpec`, which
carries the assembly mnemonic, the operand format (how the assembler
parses and encodes operands), the *timing class* (which functional unit
of the execution stage the instruction exercises -- this is what the
dynamic timing analysis conditions its statistics on), and whether the
instruction is *FI-eligible* (whether timing faults can be injected into
the 32 ALU endpoint flip-flops while the instruction occupies the
execute stage).

Following the paper's constraint strategy (Section 2.1), only the ALU
data-path endpoints of the execution stage are timing critical; all
control, memory and compare-flag paths are safe below a much higher
threshold frequency, so only ALU-class instructions are FI-eligible.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Format(enum.Enum):
    """Operand/encoding format of an instruction."""

    RRR = "rD,rA,rB"  # register-register ALU op
    RRI = "rD,rA,imm16"  # register-immediate ALU op
    RRL = "rD,rA,imm6"  # shift by immediate
    RI_HI = "rD,imm16"  # l.movhi
    LOAD = "rD,imm16(rA)"  # loads
    STORE = "imm16(rA),rB"  # stores
    SF_RR = "rA,rB"  # set-flag compare, reg-reg
    SF_RI = "rA,imm16"  # set-flag compare, reg-imm
    JUMP = "imm26"  # pc-relative jump/branch
    JUMP_REG = "rB"  # jump register
    NOP = "imm16"  # l.nop with reason code


class TimingClass(enum.Enum):
    """Functional unit of the execute stage an instruction exercises.

    The gate-level dynamic timing analysis characterizes arrival-time
    statistics separately per instruction; the timing class determines
    which netlist block produces the instruction's result and therefore
    which paths can be excited.
    """

    ADDER = "adder"
    MULTIPLIER = "multiplier"
    SHIFTER = "shifter"
    LOGIC = "logic"
    COMPARE = "compare"  # flag endpoint only; safe by construction
    MEMORY = "memory"
    CONTROL = "control"
    NONE = "none"


@dataclass(frozen=True)
class InstructionSpec:
    """Static description of one instruction of the ISA.

    Attributes:
        mnemonic: assembly mnemonic, e.g. ``"l.add"``.
        opcode: major opcode (bits [31:26] of the encoding).
        fmt: operand format used by the assembler and encoder.
        timing_class: execution-stage functional unit exercised.
        subopcode: minor opcode for formats that need one (ALU register
            ops, shifts, set-flag compares); ``None`` otherwise.
        signed_imm: whether a 16-bit immediate is sign-extended.
        description: one-line human description.
    """

    mnemonic: str
    opcode: int
    fmt: Format
    timing_class: TimingClass
    subopcode: int | None = None
    signed_imm: bool = True
    description: str = ""

    @property
    def is_alu(self) -> bool:
        """True if the instruction is FI-eligible (ALU data endpoints)."""
        return self.timing_class in (
            TimingClass.ADDER,
            TimingClass.MULTIPLIER,
            TimingClass.SHIFTER,
            TimingClass.LOGIC,
        )

    @property
    def is_branch(self) -> bool:
        """True for control transfers that have a delay slot."""
        return self.fmt in (Format.JUMP, Format.JUMP_REG)

    @property
    def is_load(self) -> bool:
        return self.fmt is Format.LOAD

    @property
    def is_store(self) -> bool:
        return self.fmt is Format.STORE

    @property
    def is_compare(self) -> bool:
        return self.timing_class is TimingClass.COMPARE


# Major opcodes (aligned with the real OR1K encoding where practical).
OP_J = 0x00
OP_JAL = 0x01
OP_BNF = 0x03
OP_BF = 0x04
OP_NOP = 0x05
OP_MOVHI = 0x06
OP_JR = 0x11
OP_JALR = 0x12
OP_LWZ = 0x21
OP_LBZ = 0x23
OP_LHZ = 0x25
OP_ADDI = 0x27
OP_ANDI = 0x29
OP_ORI = 0x2A
OP_XORI = 0x2B
OP_MULI = 0x2C
OP_SFI = 0x2F
OP_SW = 0x35
OP_SB = 0x36
OP_SH = 0x37
OP_ALU = 0x38
OP_SHIFTI = 0x2E
OP_SF = 0x39

# Sub-opcodes for OP_ALU (low 4 bits, plus bits [7:6] for shifts and
# bits [9:8] == 0b11 for the multiplier group, as in OR1K).
ALU_ADD = 0x0
ALU_SUB = 0x2
ALU_AND = 0x3
ALU_OR = 0x4
ALU_XOR = 0x5
ALU_MUL = 0x6  # encoded with bits [9:8] = 0b11
ALU_SHIFT = 0x8  # bits [7:6]: 00=sll, 01=srl, 10=sra

SHIFT_SLL = 0x0
SHIFT_SRL = 0x1
SHIFT_SRA = 0x2

# Sub-opcodes for set-flag compares (carried in the rD field).
SF_EQ = 0x0
SF_NE = 0x1
SF_GTU = 0x2
SF_GEU = 0x3
SF_LTU = 0x4
SF_LEU = 0x5
SF_GTS = 0xA
SF_GES = 0xB
SF_LTS = 0xC
SF_LES = 0xD

# l.nop reason codes (simulator conventions, as used by or1ksim).
NOP_NOP = 0x0000
NOP_EXIT = 0x0001
NOP_REPORT = 0x0002
NOP_PUTC = 0x0004


def _build_instruction_set() -> dict[str, InstructionSpec]:
    specs = [
        # Control flow.
        InstructionSpec("l.j", OP_J, Format.JUMP, TimingClass.CONTROL,
                        description="jump pc-relative"),
        InstructionSpec("l.jal", OP_JAL, Format.JUMP, TimingClass.CONTROL,
                        description="jump and link (r9)"),
        InstructionSpec("l.bnf", OP_BNF, Format.JUMP, TimingClass.CONTROL,
                        description="branch if flag not set"),
        InstructionSpec("l.bf", OP_BF, Format.JUMP, TimingClass.CONTROL,
                        description="branch if flag set"),
        InstructionSpec("l.jr", OP_JR, Format.JUMP_REG, TimingClass.CONTROL,
                        description="jump register"),
        InstructionSpec("l.jalr", OP_JALR, Format.JUMP_REG,
                        TimingClass.CONTROL,
                        description="jump register and link (r9)"),
        InstructionSpec("l.nop", OP_NOP, Format.NOP, TimingClass.NONE,
                        description="no operation / simulator hook"),
        InstructionSpec("l.movhi", OP_MOVHI, Format.RI_HI, TimingClass.NONE,
                        signed_imm=False,
                        description="move immediate to high half-word"),
        # Memory.
        InstructionSpec("l.lwz", OP_LWZ, Format.LOAD, TimingClass.MEMORY,
                        description="load word, zero extend"),
        InstructionSpec("l.lbz", OP_LBZ, Format.LOAD, TimingClass.MEMORY,
                        description="load byte, zero extend"),
        InstructionSpec("l.lhz", OP_LHZ, Format.LOAD, TimingClass.MEMORY,
                        description="load half-word, zero extend"),
        InstructionSpec("l.sw", OP_SW, Format.STORE, TimingClass.MEMORY,
                        description="store word"),
        InstructionSpec("l.sb", OP_SB, Format.STORE, TimingClass.MEMORY,
                        description="store byte"),
        InstructionSpec("l.sh", OP_SH, Format.STORE, TimingClass.MEMORY,
                        description="store half-word"),
        # ALU, register-register.
        InstructionSpec("l.add", OP_ALU, Format.RRR, TimingClass.ADDER,
                        subopcode=ALU_ADD, description="add"),
        InstructionSpec("l.sub", OP_ALU, Format.RRR, TimingClass.ADDER,
                        subopcode=ALU_SUB, description="subtract"),
        InstructionSpec("l.and", OP_ALU, Format.RRR, TimingClass.LOGIC,
                        subopcode=ALU_AND, description="bitwise and"),
        InstructionSpec("l.or", OP_ALU, Format.RRR, TimingClass.LOGIC,
                        subopcode=ALU_OR, description="bitwise or"),
        InstructionSpec("l.xor", OP_ALU, Format.RRR, TimingClass.LOGIC,
                        subopcode=ALU_XOR, description="bitwise xor"),
        InstructionSpec("l.mul", OP_ALU, Format.RRR, TimingClass.MULTIPLIER,
                        subopcode=ALU_MUL,
                        description="signed 32-bit multiply (low word)"),
        InstructionSpec("l.sll", OP_ALU, Format.RRR, TimingClass.SHIFTER,
                        subopcode=ALU_SHIFT | (SHIFT_SLL << 6),
                        description="shift left logical"),
        InstructionSpec("l.srl", OP_ALU, Format.RRR, TimingClass.SHIFTER,
                        subopcode=ALU_SHIFT | (SHIFT_SRL << 6),
                        description="shift right logical"),
        InstructionSpec("l.sra", OP_ALU, Format.RRR, TimingClass.SHIFTER,
                        subopcode=ALU_SHIFT | (SHIFT_SRA << 6),
                        description="shift right arithmetic"),
        # ALU, immediate.
        InstructionSpec("l.addi", OP_ADDI, Format.RRI, TimingClass.ADDER,
                        description="add signed immediate"),
        InstructionSpec("l.andi", OP_ANDI, Format.RRI, TimingClass.LOGIC,
                        signed_imm=False,
                        description="and zero-extended immediate"),
        InstructionSpec("l.ori", OP_ORI, Format.RRI, TimingClass.LOGIC,
                        signed_imm=False,
                        description="or zero-extended immediate"),
        InstructionSpec("l.xori", OP_XORI, Format.RRI, TimingClass.LOGIC,
                        description="xor sign-extended immediate"),
        InstructionSpec("l.muli", OP_MULI, Format.RRI,
                        TimingClass.MULTIPLIER,
                        description="multiply by signed immediate"),
        InstructionSpec("l.slli", OP_SHIFTI, Format.RRL,
                        TimingClass.SHIFTER, subopcode=SHIFT_SLL,
                        description="shift left logical by immediate"),
        InstructionSpec("l.srli", OP_SHIFTI, Format.RRL,
                        TimingClass.SHIFTER, subopcode=SHIFT_SRL,
                        description="shift right logical by immediate"),
        InstructionSpec("l.srai", OP_SHIFTI, Format.RRL,
                        TimingClass.SHIFTER, subopcode=SHIFT_SRA,
                        description="shift right arithmetic by immediate"),
    ]

    # Set-flag compares, register-register and immediate forms.
    sf_subops = {
        "eq": SF_EQ, "ne": SF_NE,
        "gtu": SF_GTU, "geu": SF_GEU, "ltu": SF_LTU, "leu": SF_LEU,
        "gts": SF_GTS, "ges": SF_GES, "lts": SF_LTS, "les": SF_LES,
    }
    for name, sub in sf_subops.items():
        specs.append(InstructionSpec(
            f"l.sf{name}", OP_SF, Format.SF_RR, TimingClass.COMPARE,
            subopcode=sub, description=f"set flag if rA {name} rB"))
        specs.append(InstructionSpec(
            f"l.sf{name}i", OP_SFI, Format.SF_RI, TimingClass.COMPARE,
            subopcode=sub, description=f"set flag if rA {name} imm"))

    table = {}
    for spec in specs:
        if spec.mnemonic in table:
            raise ValueError(f"duplicate mnemonic {spec.mnemonic}")
        table[spec.mnemonic] = spec
    return table


#: Registry of all instructions, keyed by mnemonic.
INSTRUCTIONS: dict[str, InstructionSpec] = _build_instruction_set()

#: Mnemonics of FI-eligible (ALU-class) instructions.
ALU_MNEMONICS: tuple[str, ...] = tuple(
    sorted(m for m, s in INSTRUCTIONS.items() if s.is_alu))


def spec_for(mnemonic: str) -> InstructionSpec:
    """Return the :class:`InstructionSpec` for a mnemonic.

    Raises:
        KeyError: if the mnemonic is not part of the ISA.
    """
    try:
        return INSTRUCTIONS[mnemonic]
    except KeyError:
        raise KeyError(f"unknown instruction mnemonic: {mnemonic!r}") from None


def alu_mnemonics_for_class(timing_class: TimingClass) -> tuple[str, ...]:
    """All mnemonics belonging to one execution-stage timing class."""
    return tuple(sorted(
        m for m, s in INSTRUCTIONS.items() if s.timing_class is timing_class))
