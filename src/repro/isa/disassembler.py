"""Disassembler for the OR1K-subset ISA.

Renders decoded instructions back to assembly text. The output of
:func:`disassemble` round-trips through the assembler for all encodable
instructions (property-tested), which makes it a reliable debugging aid
for fault-corrupted control flow.
"""

from __future__ import annotations

from repro.isa.encoding import Decoded, EncodingError, decode
from repro.isa.instructions import Format


def format_decoded(decoded: Decoded, address: int | None = None) -> str:
    """Render one decoded instruction as assembly text.

    Args:
        decoded: the instruction to render.
        address: if given, pc-relative jump targets are rendered as
            absolute hex addresses instead of raw word offsets.
    """
    spec = decoded.spec
    fmt = spec.fmt
    m = spec.mnemonic
    if fmt is Format.RRR:
        return f"{m} r{decoded.rd}, r{decoded.ra}, r{decoded.rb}"
    if fmt in (Format.RRI, Format.RRL):
        return f"{m} r{decoded.rd}, r{decoded.ra}, {decoded.imm}"
    if fmt is Format.RI_HI:
        return f"{m} r{decoded.rd}, {decoded.imm:#x}"
    if fmt is Format.LOAD:
        return f"{m} r{decoded.rd}, {decoded.imm}(r{decoded.ra})"
    if fmt is Format.STORE:
        return f"{m} {decoded.imm}(r{decoded.ra}), r{decoded.rb}"
    if fmt is Format.SF_RR:
        return f"{m} r{decoded.ra}, r{decoded.rb}"
    if fmt is Format.SF_RI:
        return f"{m} r{decoded.ra}, {decoded.imm}"
    if fmt is Format.JUMP:
        if address is not None:
            return f"{m} {address + 4 * decoded.imm:#x}"
        return f"{m} .{4 * decoded.imm:+d}"
    if fmt is Format.JUMP_REG:
        return f"{m} r{decoded.rb}"
    if fmt is Format.NOP:
        return f"{m} {decoded.imm:#x}" if decoded.imm else m
    raise AssertionError(f"unhandled format {fmt}")  # pragma: no cover


def disassemble(word: int, address: int | None = None) -> str:
    """Disassemble one 32-bit word; illegal words render as ``.word``."""
    try:
        return format_decoded(decode(word), address)
    except EncodingError:
        return f".word {word:#010x}"


def disassemble_range(words: list[int], base_address: int = 0) -> list[str]:
    """Disassemble a word list into ``address: text`` lines."""
    lines = []
    for index, word in enumerate(words):
        address = base_address + 4 * index
        lines.append(f"{address:#06x}: {disassemble(word, address)}")
    return lines
