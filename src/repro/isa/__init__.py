"""OR1K-subset instruction set: specs, encoding, assembler, disassembler."""

from repro.isa.assembler import Assembler, AssemblerError, assemble
from repro.isa.disassembler import disassemble, disassemble_range
from repro.isa.encoding import (
    Decoded,
    EncodingError,
    decode,
    encode,
    make,
    sign_extend,
)
from repro.isa.instructions import (
    ALU_MNEMONICS,
    INSTRUCTIONS,
    Format,
    InstructionSpec,
    NOP_EXIT,
    NOP_REPORT,
    TimingClass,
    alu_mnemonics_for_class,
    spec_for,
)
from repro.isa.program import Program

__all__ = [
    "ALU_MNEMONICS",
    "Assembler",
    "AssemblerError",
    "Decoded",
    "EncodingError",
    "Format",
    "INSTRUCTIONS",
    "InstructionSpec",
    "NOP_EXIT",
    "NOP_REPORT",
    "Program",
    "TimingClass",
    "alu_mnemonics_for_class",
    "assemble",
    "decode",
    "disassemble",
    "disassemble_range",
    "encode",
    "make",
    "sign_extend",
    "spec_for",
]
