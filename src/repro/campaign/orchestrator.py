"""Sharded campaign orchestration over the result store.

A *campaign* is one figure-level experiment decomposed into its
point-level Monte-Carlo work units (see :mod:`repro.mc.units`), run
with three guarantees:

* **Idempotence** -- units already in the store are never recomputed;
  a campaign restarted after a kill (``resume``) picks up exactly the
  missing units.
* **Determinism** -- every unit owns a derived master seed and the
  serial random-stream scheme, so its result is independent of which
  worker computes it or in what order; the rendered output of a
  resumed or sharded campaign is byte-identical to an uninterrupted
  single-process run.
* **Kill-safety** -- workers persist each unit atomically the moment
  it completes; at worst the unit in flight at kill time is redone.

The process pool uses fork workers (unit closures capture injector
factories and compiled kernels, which cannot be pickled; fork inherits
them along with the parent's characterization tables), falling back to
serial execution where fork is unavailable.
"""

from __future__ import annotations

import multiprocessing
import sys
from dataclasses import dataclass
from typing import Callable

from repro.experiments import ablations, fig5, fig6, fig7
from repro.experiments.context import ExperimentContext
from repro.experiments.scale import Scale, get_scale
from repro.mc.results import McPoint
from repro.mc.runner import _fork_available
from repro.mc.units import PointUnit

#: Experiments that decompose into campaigns.
CAMPAIGN_EXPERIMENTS = ("fig5", "fig6", "fig7", "ablations")


@dataclass
class CampaignPlan:
    """An experiment decomposed into units plus its renderer."""

    experiment: str
    units: list[PointUnit]
    render: Callable[[list[McPoint]], str]


@dataclass
class CampaignReport:
    """Outcome of one ``run_campaign`` invocation."""

    experiment: str
    scale: str
    seed: int
    jobs: int
    total: int
    cached: int
    computed: int
    rendered: str

    def summary(self) -> str:
        return (f"campaign {self.experiment} scale={self.scale} "
                f"seed={self.seed} jobs={self.jobs}: {self.total} units, "
                f"{self.cached} cached, {self.computed} computed")


@dataclass
class CampaignStatus:
    """Store-side progress of a campaign."""

    experiment: str
    scale: str
    seed: int
    total: int
    done: int
    pending: list[str]

    def summary(self) -> str:
        return (f"campaign {self.experiment} scale={self.scale} "
                f"seed={self.seed}: {self.done}/{self.total} units "
                f"complete, {self.total - self.done} pending")


def plan_campaign(experiment: str, ctx: ExperimentContext,
                  seed: int) -> CampaignPlan:
    """Decompose an experiment into units and a render function.

    Planning forces the experiment's characterizations (grids depend
    on them); with a store attached to ``ctx`` they persist, so a
    resumed campaign replans without re-running DTA.
    """
    if experiment == "fig5":
        units = fig5.point_units(ctx, seed=seed)
        render = lambda points: fig5.render(  # noqa: E731
            fig5.assemble(ctx, points))
    elif experiment == "fig6":
        units = fig6.point_units(ctx, seed=seed)
        render = lambda points: fig6.render(  # noqa: E731
            fig6.assemble(ctx, points))
    elif experiment == "fig7":
        units = fig7.point_units(ctx, seed=seed)
        render = lambda points: fig7.render(  # noqa: E731
            fig7.assemble(ctx, points))
    elif experiment == "ablations":
        units = ablations.semantics_point_units(ctx, seed=seed)

        def render(points):
            # The glitch-model and adder-topology studies are pure
            # DTA/characterization work: the former is store-served
            # through the context, the latter is recomputed (it owns
            # no Monte-Carlo points).
            return ablations.render_all(
                ablations.run_glitch_model_ablation(
                    ctx.scale, seed=seed, context=ctx),
                ablations.assemble_semantics(points),
                ablations.run_adder_topology_ablation(ctx.scale,
                                                      seed=seed))
    else:
        raise KeyError(
            f"unknown campaign experiment {experiment!r}; known: "
            f"{CAMPAIGN_EXPERIMENTS}")
    return CampaignPlan(experiment=experiment, units=units, render=render)


def campaign_status(experiment: str, scale: str | Scale, seed: int,
                    store, log: Callable[[str], None] | None = None) \
        -> CampaignStatus:
    """Report which units of a campaign are already in the store.

    Planning needs the experiment's DTA characterizations (frequency
    grids derive from them), so on a *cold* store even ``status`` runs
    and persists them once -- expensive at paper scale.  ``log`` is
    told before that happens; every later status call is served from
    the store.
    """
    resolved = get_scale(scale)
    if log is not None and not any(
            entry.kind == "alu_characterization"
            for entry in store.ls()):
        log(f"cold store: planning {experiment} will run the DTA "
            f"characterization first (persisted for every later call)")
    ctx = ExperimentContext.create(resolved, seed, store=store)
    plan = plan_campaign(experiment, ctx, seed)
    pending = [unit.label for unit in plan.units
               if not store.contains(unit.key)]
    return CampaignStatus(
        experiment=experiment,
        scale=resolved.name,
        seed=seed,
        total=len(plan.units),
        done=len(plan.units) - len(pending),
        pending=pending,
    )


# Fork-worker state, inherited through the pool initializer (the unit
# closures are not picklable; initargs travel by fork inheritance).
_WORKER_STATE: dict | None = None


def _init_worker(state: dict) -> None:
    global _WORKER_STATE
    _WORKER_STATE = state


def _run_shard(indices: list[int]) -> list[int]:
    """Pool worker: compute and persist the units at ``indices``."""
    state = _WORKER_STATE
    assert state is not None, "worker state missing (pool without fork?)"
    store = state["store"]
    for index in indices:
        unit = state["units"][index]
        # Another worker of a concurrent campaign may have raced us to
        # this unit; the recheck keeps the work (not the result) unique.
        if not store.contains(unit.key):
            store.put(unit.key, unit.compute(), label=unit.label)
    return indices


def run_campaign(experiment: str, scale: str | Scale = "default",
                 seed: int = 2016, store=None, jobs: int = 1,
                 log: Callable[[str], None] | None = None) \
        -> CampaignReport:
    """Run (or resume) a campaign to its rendered figure output.

    Args:
        experiment: one of :data:`CAMPAIGN_EXPERIMENTS`.
        scale: fidelity preset (name or :class:`Scale`).
        seed: master seed (every unit derives its own).
        store: the :class:`repro.store.ResultStore` holding results;
            required -- the store *is* the campaign state.
        jobs: worker processes for pending units (1 = in-process).
        log: optional progress sink (e.g. stderr writer).

    Resuming is the same call again: completed units are store hits
    and only the missing ones execute, with byte-identical rendered
    output for any jobs value.
    """
    if store is None:
        raise ValueError("run_campaign needs a result store; it is the "
                         "campaign's persistent state")
    if jobs <= 0:
        raise ValueError("jobs must be positive")
    emit = log or (lambda message: None)
    resolved = get_scale(scale)
    ctx = ExperimentContext.create(resolved, seed, store=store)
    plan = plan_campaign(experiment, ctx, seed)
    # Envelope-level existence scan: no artifact decoding here, the
    # single full decode per unit happens in the collection loop below.
    pending = [index for index, unit in enumerate(plan.units)
               if not store.contains(unit.key)]
    cached = len(plan.units) - len(pending)
    emit(f"{experiment}: {len(plan.units)} units, {cached} cached, "
         f"{len(pending)} to compute")

    if len(pending) > 1 and jobs >= 2 and _fork_available():
        shards = [pending[start::jobs] for start in range(jobs)
                  if pending[start::jobs]]
        state = {"units": plan.units, "store": store}
        context = multiprocessing.get_context("fork")
        with context.Pool(processes=len(shards),
                          initializer=_init_worker,
                          initargs=(state,)) as pool:
            for indices in pool.imap_unordered(_run_shard, shards):
                emit(f"shard of {len(indices)} units done")
    else:
        for index in pending:
            unit = plan.units[index]
            store.put(unit.key, unit.compute(), label=unit.label)
            emit(f"computed {unit.label}")

    points = []
    for unit in plan.units:
        point = store.get(unit.key)
        if point is None:
            # A unit that passed the envelope scan but fails to decode
            # (corrupted artifact body): self-heal by recomputing.
            emit(f"recomputing undecodable unit {unit.label}")
            point = unit.compute()
            store.put(unit.key, point, label=unit.label)
        points.append(point)
    return CampaignReport(
        experiment=experiment,
        scale=resolved.name,
        seed=seed,
        jobs=jobs,
        total=len(plan.units),
        cached=cached,
        computed=len(pending),
        rendered=plan.render(points),
    )


def stderr_log(message: str) -> None:
    """Default CLI progress sink."""
    print(message, file=sys.stderr, flush=True)
