"""Sharded campaign orchestration over the result store.

A *campaign* is one figure-level experiment decomposed into its
store-addressable work units (see :mod:`repro.mc.units` -- Monte-Carlo
points for fig5/6/7/ablations, DTA curve artifacts for fig2/fig4), run
with three guarantees:

* **Idempotence** -- units already in the store are never recomputed;
  a campaign restarted after a kill (``resume``) picks up exactly the
  missing units.
* **Determinism** -- every unit owns a derived master seed (Monte-
  Carlo units additionally the serial random-stream scheme), so its
  result is independent of which worker computes it or in what order;
  the rendered output of a resumed or sharded campaign is
  byte-identical to an uninterrupted single-process run.
* **Kill-safety** -- workers persist each unit atomically the moment
  it completes; at worst the unit in flight at kill time is redone.

The ``all`` target plans every campaign experiment into one combined
unit list, shards it over one fork pool, and renders each figure from
its own units -- one store-served pass over everything the repo can
render.

The process pool uses fork workers (unit closures capture injector
factories and compiled kernels, which cannot be pickled; fork inherits
them along with the parent's characterization tables), falling back to
serial execution where fork is unavailable.
"""

from __future__ import annotations

import logging
import multiprocessing
import sys
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable

from repro import faults, obs, parallel
from repro.campaign.failures import UnitFailure, failure_key
from repro.experiments import ablations, fig1, fig2, fig4, fig5, fig6, \
    fig7, table1
from repro.experiments.context import ExperimentContext, NOMINAL_VDD
from repro.experiments.scale import Scale, get_scale
from repro.mc.units import WorkUnit
from repro.mc.runner import _fork_available
from repro.timing.characterize import characterization_key

_LOG = logging.getLogger("repro.campaign")

#: Experiments that decompose into campaigns -- every paper artifact
#: with expensive substance (table2 is a static matrix and has none).
CAMPAIGN_EXPERIMENTS = ("table1", "fig1", "fig2", "fig4", "fig5",
                        "fig6", "fig7", "ablations")

#: Pseudo-experiment: every campaign experiment in one sharded pass.
ALL_TARGET = "all"


@dataclass
class CampaignPlan:
    """An experiment decomposed into units plus its renderer.

    ``prepare`` (optional) forces expensive shared substrate --
    e.g. fig2's characterizations -- and is invoked by the
    orchestrator only when the plan actually has pending units, so a
    fully warm campaign (or status call) never touches it.
    """

    experiment: str
    units: list[WorkUnit]
    render: Callable[[list], str]
    prepare: Callable[[], None] | None = None


@dataclass
class CampaignReport:
    """Outcome of one ``run_campaign`` invocation."""

    experiment: str
    scale: str
    seed: int
    jobs: int
    total: int
    cached: int
    computed: int
    rendered: str
    #: Units whose compute raised on every allowed attempt; their
    #: failure markers are in the store and their plans render a
    #: failure notice instead of the figure.
    failed: int = 0
    failures: list = field(default_factory=list)

    def summary(self) -> str:
        text = (f"campaign {self.experiment} scale={self.scale} "
                f"seed={self.seed} jobs={self.jobs}: {self.total} units, "
                f"{self.cached} cached, {self.computed} computed")
        if self.failed:
            text += f", {self.failed} FAILED"
        return text


@dataclass
class CampaignStatus:
    """Store-side progress of a campaign."""

    experiment: str
    scale: str
    seed: int
    total: int
    done: int
    pending: list[str]
    #: ``"label (attempts=N)"`` for units with a stored failure marker
    #: -- attempted and crashed, as opposed to never attempted.
    failed: list = field(default_factory=list)

    def summary(self) -> str:
        text = (f"campaign {self.experiment} scale={self.scale} "
                f"seed={self.seed}: {self.done}/{self.total} units "
                f"complete, {len(self.pending)} pending")
        if self.failed:
            text += f", {len(self.failed)} failed"
        return text


def plan_campaign(experiment: str, ctx: ExperimentContext,
                  seed: int) -> CampaignPlan:
    """Decompose an experiment into units and a render function.

    Planning forces the experiment's characterizations where the unit
    grids (fig5/6/7, ablations) or the worker substrate (fig2) depend
    on them; with a store attached to ``ctx`` they persist, so a
    resumed campaign replans without re-running DTA.  fig4 plans
    without any DTA work -- each variant unit runs its own.
    """
    prepare = None
    if experiment == "table1":
        units = table1.row_units(ctx.scale)
        render = lambda rows: table1.render(list(rows))  # noqa: E731
    elif experiment == "fig1":
        units = fig1.point_units(ctx, seed=seed)
        render = lambda points: fig1.render(  # noqa: E731
            fig1.assemble(ctx, points))
    elif experiment == "fig2":
        units = fig2.curve_units(ctx, seed=seed)
        render = lambda curves: fig2.render(  # noqa: E731
            fig2.assemble(curves))
        prepare = lambda: fig2.prepare(ctx)  # noqa: E731
    elif experiment == "fig4":
        units = fig4.curve_units(ctx, seed=seed)
        render = lambda curves: fig4.render(  # noqa: E731
            fig4.assemble(curves))
    elif experiment == "fig5":
        units = fig5.point_units(ctx, seed=seed)
        render = lambda points: fig5.render(  # noqa: E731
            fig5.assemble(ctx, points))
    elif experiment == "fig6":
        units = fig6.point_units(ctx, seed=seed)
        render = lambda points: fig6.render(  # noqa: E731
            fig6.assemble(ctx, points))
    elif experiment == "fig7":
        units = fig7.point_units(ctx, seed=seed)
        render = lambda points: fig7.render(  # noqa: E731
            fig7.assemble(ctx, points))
    elif experiment == "ablations":
        semantics_units = ablations.semantics_point_units(ctx, seed=seed)
        adder_units = ablations.adder_topology_units(
            ctx.scale, seed=seed, timing_dtype=ctx.timing_dtype,
            engine=ctx.dta_engine)
        units = semantics_units + adder_units
        n_semantics = len(semantics_units)

        def render(artifacts):
            # The glitch-model study is store-served through the
            # context's characterizations; semantics points and
            # per-topology adder PoFFs arrive as resolved units -- a
            # warm render runs no DTA and no Monte-Carlo.
            return ablations.render_all(
                ablations.run_glitch_model_ablation(
                    ctx.scale, seed=seed, context=ctx),
                ablations.assemble_semantics(artifacts[:n_semantics]),
                ablations.assemble_adders(artifacts[n_semantics:]))
    else:
        raise KeyError(
            f"unknown campaign experiment {experiment!r}; known: "
            f"{CAMPAIGN_EXPERIMENTS + (ALL_TARGET,)}")
    return CampaignPlan(experiment=experiment, units=units,
                        render=render, prepare=prepare)


def _campaign_experiments(experiment: str) -> tuple[str, ...]:
    """Concrete experiments behind a campaign target."""
    if experiment == ALL_TARGET:
        return CAMPAIGN_EXPERIMENTS
    return (experiment,)


def _plan_characterization_configs(experiment: str,
                                   ctx: ExperimentContext) -> list:
    """Characterization configs that *planning* an experiment forces.

    Used by :func:`campaign_status` to warn precisely when a status
    call is about to run DTA: the check is ``store.contains`` on this
    context's actual characterization keys, so a characterization
    persisted for a different scale/seed/ALU never suppresses the
    warning.
    """
    vdds: dict[float, None] = {}  # insertion-ordered de-dup
    for name in _campaign_experiments(experiment):
        if name in ("table1", "fig1", "fig2", "fig4"):
            continue  # plan without DTA: table1 profiles the ISS,
            # fig1 needs only STA + the Vdd fit, fig2 characterizes
            # lazily (prepare hook), fig4 units run their own DTA
        elif name == "fig5":
            for vdd in fig5.PLOT_VDDS:
                vdds.setdefault(vdd)
        else:  # fig6, fig7, ablations: nominal-voltage grids
            vdds.setdefault(NOMINAL_VDD)
    return [ctx.char_config(vdd) for vdd in vdds]


def campaign_status(experiment: str, scale: str | Scale, seed: int,
                    store, log: Callable[[str], None] | None = None,
                    timing_dtype: str = "float64",
                    engine: str | None = None) -> CampaignStatus:
    """Report which units of a campaign are already in the store.

    Planning needs the experiment's DTA characterizations (frequency
    grids derive from them), so on a *cold* store even ``status`` runs
    and persists them once -- expensive at paper scale.  ``log`` is
    told before that happens; every later status call is served from
    the store.
    """
    resolved = get_scale(scale)
    ctx = ExperimentContext.create(resolved, seed, store=store,
                                   timing_dtype=timing_dtype,
                                   engine=engine)
    if log is not None:
        missing = [config for config
                   in _plan_characterization_configs(experiment, ctx)
                   if not store.contains(
                       characterization_key(ctx.alu, config))]
        if missing:
            log(f"cold store: planning {experiment} will run the DTA "
                f"characterization first for "
                f"{', '.join(f'{c.vdd:.2f}V' for c in missing)} "
                f"(persisted for every later call)")
    plans = [plan_campaign(name, ctx, seed)
             for name in _campaign_experiments(experiment)]
    units = [unit for plan in plans for unit in plan.units]
    pending = []
    failed = []
    for unit in units:
        if store.contains(unit.key):
            continue
        marker = store.get(failure_key(unit.key))
        if marker is not None:
            failed.append(f"{unit.label} (attempts={marker.attempts})")
        else:
            pending.append(unit.label)
    return CampaignStatus(
        experiment=experiment,
        scale=resolved.name,
        seed=seed,
        total=len(units),
        done=len(units) - len(pending) - len(failed),
        pending=pending,
        failed=failed,
    )


def _compute_one(unit: WorkUnit, store) -> str | None:
    """Compute and persist one unit; returns an error string on failure.

    Only the unit's *compute* is isolated: a crashing unit records a
    :class:`UnitFailure` marker in the store (attempt count
    accumulated across runs) instead of aborting the campaign.  Store
    persistence errors propagate -- a failing store is campaign-fatal,
    and the store layer already retries transient OSErrors itself.
    """
    fkey = failure_key(unit.key)
    with obs.span("campaign.unit", label=unit.label) as rec:
        try:
            faults.trip("campaign.unit_run")
            artifact = unit.compute()
        except Exception:
            error = traceback.format_exc()
            prior = store.get(fkey)
            attempts = (prior.attempts if prior is not None else 0) + 1
            store.put(fkey, UnitFailure(label=unit.label, error=error,
                                        attempts=attempts,
                                        last_unix=time.time()),
                      label=f"failure:{unit.label}")
            _LOG.warning("campaign unit %s failed (attempt %d): %s",
                         unit.label, attempts,
                         error.strip().splitlines()[-1])
            rec.set(outcome="failed", attempt=attempts)
            obs.counter("campaign.units_failed")
            return error
        store.put(unit.key, artifact, label=unit.label)
        store.delete(fkey)  # a success clears any stale failure marker
        rec.set(outcome="ok")
        obs.counter("campaign.units_computed")
    return None


def _compute_pending(units: list[WorkUnit], store,
                     indices: list[int]) -> dict:
    """Compute and persist the units at ``indices``.

    Returns ``{"computed": [...], "failed": [...]}`` index lists.
    ``computed`` holds only the indices *actually* computed: units a
    worker of a concurrent campaign raced us to are skipped (the
    recheck keeps the work unique) and must not be reported as
    computed.  ``failed`` units have failure markers in the store.
    """
    computed: list[int] = []
    failed: list[int] = []
    for index in indices:
        unit = units[index]
        if store.contains(unit.key):
            continue
        if _compute_one(unit, store) is None:
            computed.append(index)
        else:
            failed.append(index)
    # Shard workers exit via os._exit (no atexit): flush counter
    # snapshots at this barrier so the merged trace sees them.
    obs.flush()
    return {"computed": computed, "failed": failed}


# Fork-worker state, inherited through the pool initializer (the unit
# closures are not picklable; initargs travel by fork inheritance).
_WORKER_STATE: dict | None = None


def _init_worker(state: dict) -> None:
    global _WORKER_STATE
    _WORKER_STATE = state


def _run_shard(indices: list[int]) -> dict:
    """Throwaway-pool worker: compute/persist the units at ``indices``."""
    state = _WORKER_STATE
    assert state is not None, "worker state missing (pool without fork?)"
    return _compute_pending(state["units"], state["store"], indices)


@parallel.pool_task("campaign-unit-shard")
def _pool_shard(registry: dict, indices: list[int]) -> dict:
    """Persistent-pool task: compute/persist the units at ``indices``.

    The unit list (closures over contexts, kernels and injector
    factories) and the store arrive by fork inheritance -- registered
    once per campaign invocation, so one worker generation serves
    every shard of the campaign instead of forking a pool per unit
    batch.
    """
    return _compute_pending(registry[("campaign-units",)],
                            registry[("campaign-store",)], indices)


#: Base backoff between unit retry rounds (seconds, doubled per round).
RETRY_BACKOFF_S = 0.05


def run_campaign(experiment: str, scale: str | Scale = "default",
                 seed: int = 2016, store=None, jobs: int = 1,
                 log: Callable[[str], None] | None = None,
                 timing_dtype: str = "float64",
                 engine: str | None = None,
                 max_retries: int = 0,
                 fabric_workers: int | None = None) -> CampaignReport:
    """Run (or resume) a campaign to its rendered figure output.

    Args:
        experiment: one of :data:`CAMPAIGN_EXPERIMENTS`, or ``"all"``
            to plan every campaign experiment into one combined unit
            list sharded over a single pool and rendered per figure.
        scale: fidelity preset (name or :class:`Scale`).
        seed: master seed (every unit derives its own).
        store: the :class:`repro.store.ResultStore` holding results;
            required -- the store *is* the campaign state.
        jobs: worker processes for pending units (1 = in-process).
            With a persistent pool configured
            (:func:`repro.parallel.configure_pool`), any ``jobs >= 2``
            shards over the pool's workers instead of forking a
            throwaway pool for this invocation.
        log: optional progress sink (e.g. stderr writer).
        timing_dtype: settle-pipeline dtype of the context's DTA runs
            (``"float32"`` caches under its own keys).
        engine: backend preference for the context's DTA engine
            (``"native"`` selects the fused C kernels when a compiler
            exists, falling back to numpy otherwise; never part of
            unit keys).
        max_retries: extra rounds for units whose compute raised.
            Retries run serially in the parent with exponential
            backoff between rounds; units still failing afterwards
            keep their store markers, render as a failure notice, and
            are counted in ``CampaignReport.failed``.
        fabric_workers: run pending units through the distributed
            fabric instead of a pool -- N forked lease workers racing
            for unit batches on the (typically ``--fabric URL``
            remote) store, crash-resuming each other via lease steals
            (:mod:`repro.fabric.worker`).  Requires fork; falls back
            to the ordinary dispatch paths where unavailable.

    Resuming is the same call again: completed units are store hits
    and only the missing ones execute, with byte-identical rendered
    output for any jobs value.

    Thread sharding composes with every dispatch mode: a configured
    thread-shard pool (:func:`repro.parallel.configure_thread_pool`)
    is rebuilt per forked worker on first use (threads do not survive
    fork), so each pool/fabric worker thread-shards its own
    native-engine propagates.  Campaign artifacts stay byte-identical
    regardless of shard mode -- f64 native output is bit-identical to
    serial at any thread count.
    """
    if store is None:
        raise ValueError("run_campaign needs a result store; it is the "
                         "campaign's persistent state")
    if jobs <= 0:
        raise ValueError("jobs must be positive")
    emit = log or (lambda message: None)
    resolved = get_scale(scale)
    ctx = ExperimentContext.create(resolved, seed, store=store,
                                   timing_dtype=timing_dtype,
                                   engine=engine)
    plans = []
    for name in _campaign_experiments(experiment):
        with obs.span("campaign.plan", experiment=name) as rec:
            plan = plan_campaign(name, ctx, seed)
            rec.set(units=len(plan.units))
        plans.append(plan)
    units = [unit for plan in plans for unit in plan.units]
    # Envelope-level existence scan: no artifact decoding here, the
    # single full decode per unit happens in the collection loop below.
    pending = [index for index, unit in enumerate(units)
               if not store.contains(unit.key)]
    obs.counter("campaign.units_cached", len(units) - len(pending))
    emit(f"{experiment}: {len(units)} units, "
         f"{len(units) - len(pending)} cached, "
         f"{len(pending)} to compute")
    # Warm the shared substrate of every plan that will compute
    # something, before forking: workers inherit it instead of racing.
    pending_set = set(pending)
    offset = 0
    for plan in plans:
        plan_range = range(offset, offset + len(plan.units))
        offset += len(plan.units)
        if plan.prepare is not None \
                and any(index in pending_set for index in plan_range):
            plan.prepare()

    computed_indices: set[int] = set()
    failed_indices: set[int] = set()

    def absorb(outcome: dict) -> None:
        computed_indices.update(outcome["computed"])
        failed_indices.update(outcome["failed"])

    shared_pool = parallel.get_pool()
    if pending and fabric_workers and _fork_available():
        # Distributed fabric: forked lease workers race for batches
        # on the shared store; a killed worker's lease lapses and a
        # peer steals it, and the parent backstops any remainder --
        # the outcome scan, not worker exit status, is authoritative.
        from repro.fabric.worker import dispatch_fabric
        with obs.span("campaign.dispatch", mode="fabric",
                      pending=len(pending), workers=fabric_workers):
            absorb(dispatch_fabric(units, pending, store,
                                   fabric_workers, _compute_one,
                                   emit))
    elif len(pending) > 1 and jobs >= 2 and shared_pool is not None \
            and shared_pool.workers >= 2:
        # Persistent pool: registered once per campaign invocation,
        # every shard (and any later campaign in this process) reuses
        # the same workers.
        shared_pool.register(("campaign-units",), units)
        shared_pool.register(("campaign-store",), store)
        shards = [pending[start::shared_pool.workers]
                  for start in range(shared_pool.workers)
                  if pending[start::shared_pool.workers]]
        with obs.span("campaign.dispatch", mode="pool",
                      pending=len(pending), shards=len(shards)):
            for outcome in shared_pool.run(
                    "campaign-unit-shard",
                    [(shard,) for shard in shards]):
                absorb(outcome)
                emit(f"shard done ({len(outcome['computed'])} units "
                     f"computed, {len(outcome['failed'])} failed)")
    elif len(pending) > 1 and jobs >= 2 and _fork_available():
        shards = [pending[start::jobs] for start in range(jobs)
                  if pending[start::jobs]]
        state = {"units": units, "store": store}
        context = multiprocessing.get_context("fork")
        with obs.span("campaign.dispatch", mode="fork",
                      pending=len(pending), shards=len(shards)), \
                context.Pool(processes=len(shards),
                             initializer=_init_worker,
                             initargs=(state,)) as pool:
            for outcome in pool.imap_unordered(_run_shard, shards):
                absorb(outcome)
                emit(f"shard done ({len(outcome['computed'])} units "
                     f"computed, {len(outcome['failed'])} failed)")
    else:
        with obs.span("campaign.dispatch", mode="serial",
                      pending=len(pending)):
            for index in pending:
                unit = units[index]
                if store.contains(unit.key):
                    continue
                if _compute_one(unit, store) is None:
                    computed_indices.add(index)
                    emit(f"computed {unit.label}")
                else:
                    failed_indices.add(index)
                    emit(f"FAILED {unit.label}")

    # Retry rounds for crashed units: serial in the parent (the pool
    # may be part of the problem), exponential backoff between rounds.
    for attempt in range(1, max_retries + 1):
        if not failed_indices:
            break
        time.sleep(RETRY_BACKOFF_S * (1 << (attempt - 1)))
        emit(f"retry round {attempt}/{max_retries}: "
             f"{len(failed_indices)} failed unit(s)")
        still_failed: set[int] = set()
        for index in sorted(failed_indices):
            unit = units[index]
            if store.contains(unit.key) \
                    or _compute_one(unit, store) is None:
                computed_indices.add(index)
                emit(f"computed {unit.label} (retry {attempt})")
            else:
                still_failed.add(index)
        failed_indices = still_failed

    artifacts = []
    for index, unit in enumerate(units):
        if index in failed_indices:
            artifacts.append(None)
            continue
        artifact = store.get(unit.key)
        if artifact is None:
            # A unit that passed the envelope scan but fails to decode
            # (corrupted artifact body): self-heal by recomputing,
            # under the same retry budget as the main rounds -- the
            # heal itself can crash or be corrupted again.
            emit(f"recomputing undecodable unit {unit.label}")
            for heal in range(max_retries + 1):
                if _compute_one(unit, store) is None:
                    artifact = store.get(unit.key)
                    if artifact is not None:
                        computed_indices.add(index)
                        break
                if heal < max_retries:
                    time.sleep(RETRY_BACKOFF_S * (1 << heal))
            if artifact is None:
                failed_indices.add(index)
                computed_indices.discard(index)
                emit(f"FAILED {unit.label}")
        artifacts.append(artifact)

    sections = []
    offset = 0
    for plan in plans:
        plan_units = units[offset:offset + len(plan.units)]
        plan_artifacts = artifacts[offset:offset + len(plan.units)]
        offset += len(plan.units)
        missing = [unit.label for unit, artifact
                   in zip(plan_units, plan_artifacts)
                   if artifact is None]
        if missing:
            # Failure isolation at render time too: a plan with failed
            # units reports them instead of poisoning its renderer
            # (and the other plans still render normally).
            rendered = (f"{plan.experiment}: NOT RENDERED -- "
                        f"{len(missing)} unit(s) failed "
                        f"(see `campaign status`):\n"
                        + "\n".join(f"  {label}" for label in missing))
        else:
            with obs.span("campaign.render",
                          experiment=plan.experiment):
                rendered = plan.render(plan_artifacts)
        if len(plans) > 1:
            rendered = (f"{'=' * 72}\n{plan.experiment} "
                        f"(scale: {resolved.name})\n{'=' * 72}\n"
                        f"{rendered}")
        sections.append(rendered)
    obs.flush()
    return CampaignReport(
        experiment=experiment,
        scale=resolved.name,
        seed=seed,
        jobs=fabric_workers if fabric_workers else jobs,
        total=len(units),
        cached=len(units) - len(computed_indices)
        - len(failed_indices),
        computed=len(computed_indices),
        rendered="\n\n".join(sections),
        failed=len(failed_indices),
        failures=sorted(units[index].label
                        for index in failed_indices),
    )


def stderr_log(message: str) -> None:
    """Default CLI progress sink."""
    print(message, file=sys.stderr, flush=True)
