"""Campaign orchestration: figure-level experiments as sharded,
resumable sweeps of store-addressed Monte-Carlo work units."""

from repro.campaign.orchestrator import (
    ALL_TARGET,
    CAMPAIGN_EXPERIMENTS,
    CampaignPlan,
    CampaignReport,
    CampaignStatus,
    campaign_status,
    plan_campaign,
    run_campaign,
)

__all__ = [
    "ALL_TARGET",
    "CAMPAIGN_EXPERIMENTS",
    "CampaignPlan",
    "CampaignReport",
    "CampaignStatus",
    "campaign_status",
    "plan_campaign",
    "run_campaign",
]
