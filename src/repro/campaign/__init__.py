"""Campaign orchestration: figure-level experiments as sharded,
resumable sweeps of store-addressed Monte-Carlo work units."""

from repro.campaign.orchestrator import (
    CAMPAIGN_EXPERIMENTS,
    CampaignPlan,
    CampaignReport,
    CampaignStatus,
    campaign_status,
    plan_campaign,
    run_campaign,
)

__all__ = [
    "CAMPAIGN_EXPERIMENTS",
    "CampaignPlan",
    "CampaignReport",
    "CampaignStatus",
    "campaign_status",
    "plan_campaign",
    "run_campaign",
]
