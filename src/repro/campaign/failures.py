"""Per-unit failure markers: campaign crash isolation state.

A campaign unit that raises must not abort the whole run -- the
orchestrator records a :class:`UnitFailure` in the store under a key
*derived from* (but distinct from) the unit's own key, so:

* ``campaign status`` can report failed units separately from
  never-attempted ones (with the attempt count and the stored
  traceback available for diagnosis);
* ``campaign run --max-retries N`` knows how often a unit has already
  been tried;
* a later successful compute deletes the marker, so stale failure
  state never outlives its cause.

Import-light on purpose: the store's schema registry imports this
module lazily, and importing the orchestrator here would complete a
cycle through ``repro.store``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.store.serialize import key_hash

UNIT_FAILURE_SCHEMA = 1


@dataclass(frozen=True)
class UnitFailure:
    """Outcome record of a unit whose compute raised."""

    label: str
    error: str  # formatted traceback of the last attempt
    attempts: int
    last_unix: float

    def to_json(self) -> dict:
        return {
            "schema": UNIT_FAILURE_SCHEMA,
            "label": self.label,
            "error": self.error,
            "attempts": self.attempts,
            "last_unix": self.last_unix,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "UnitFailure":
        if payload.get("schema") != UNIT_FAILURE_SCHEMA:
            raise ValueError(
                f"unit_failure schema mismatch: "
                f"{payload.get('schema')} != {UNIT_FAILURE_SCHEMA}")
        return cls(
            label=str(payload["label"]),
            error=str(payload["error"]),
            attempts=int(payload["attempts"]),
            last_unix=float(payload["last_unix"]),
        )


def failure_key(unit_key: dict) -> dict:
    """Store key of the failure marker shadowing one unit key.

    The unit's full key is folded to its hash: the marker must never
    collide with the unit's own entry, and the marker key must stay
    valid for *any* unit kind without copying kind-specific fields.
    """
    return {
        "kind": "unit_failure",
        "schema": UNIT_FAILURE_SCHEMA,
        "experiment": unit_key.get("experiment", ""),
        "scale": None,
        "seed": unit_key.get("seed", 0),
        "stream": "failure",
        "config": {"unit_sha": key_hash(unit_key)},
    }
