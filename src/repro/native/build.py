"""On-demand compilation and ctypes binding of the fused level kernels.

No binary is ever vendored: the C source is rendered from the template
in :mod:`repro.native.source` and compiled *once per (source hash,
compiler, dtype)* into a shared library cached under the result-store
directory (``$REPRO_NATIVE_CACHE`` overrides, tests point it at a
tmpdir).  Every later process -- including forked pool workers -- just
``dlopen``\\ s the cached file; a template edit, compiler upgrade or
flag change produces a different hash and therefore a fresh build next
to the stale one.

The backend is strictly optional.  :func:`probe_compiler` looks for a
working C compiler (``$CC``, then ``gcc``/``cc``/``clang``) by
compiling a one-line probe program; when none works -- or when
``REPRO_NO_CC`` is set, the test hook that masks the toolchain -- the
backend reports unavailable with the reason and every consumer falls
back to the numpy engines.  Nothing in the repo hard-depends on a
toolchain.

Build failures raise :class:`NativeBuildError` with the compiler's
stderr; they are bugs (the probe passed), not availability conditions.
"""

from __future__ import annotations

import ctypes
import logging
import os
import subprocess
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro import faults, obs
from repro.native.source import KERNEL_ABI, render_source, source_hash

_LOG = logging.getLogger("repro.native")

#: Ceiling on one kernel compile; a wedged compiler (NFS stall, broken
#: LTO plugin) becomes a NativeBuildError -- and thereby a numpy
#: fallback -- instead of hanging the campaign.
DEFAULT_CC_TIMEOUT_S = 300.0


def compile_timeout() -> float:
    env = os.environ.get("REPRO_CC_TIMEOUT_S")
    if env:
        try:
            return float(env)
        except ValueError:
            pass
    return DEFAULT_CC_TIMEOUT_S

#: Flag sets tried in order; the first one whose probe compiles wins
#: and is hashed into the cache key.  The kernels only vectorize --
#: the whole point of the backend -- when the compiler may assume the
#: column loops are dependence-free (``#pragma omp simd`` +
#: ``-fopenmp-simd``, no OpenMP runtime involved) and may emit wide
#: masked blends (``-march=native``; measured 6x over the pragma-less
#: scalar build on AVX-512).  ``-march=native`` makes the cached .so
#: machine-local, which is exactly the scope of a per-host cache
#: directory; toolchains that reject any of this fall through to the
#: plain set and still work, just slower.
CFLAG_SETS = (
    ("-O3", "-march=native", "-fopenmp-simd", "-std=c11", "-fPIC",
     "-shared"),
    ("-O3", "-fopenmp-simd", "-std=c11", "-fPIC", "-shared"),
    ("-O3", "-std=c11", "-fPIC", "-shared"),
)

#: Default flags, for callers that only need a stable reference (the
#: probe records the actually chosen set in :class:`CompilerProbe`).
CFLAGS = CFLAG_SETS[0]

#: Extra flags of the ``REPRO_CC_SANITIZE=1`` debug build variant:
#: AddressSanitizer + UBSan with frame pointers kept for readable
#: reports.  The flags join the probed set before hashing, so the
#: sanitized library lives under its own cache key next to the fast
#: one (a ``-san`` tag in the file name keeps ``ls`` honest too).
#: Loading an ASan-instrumented .so into a non-ASan python requires
#: the ASan runtime to be preloaded (``LD_PRELOAD=$(cc
#: -print-file-name=libasan.so)``); without it dlopen fails and the
#: engine degrades to numpy through the normal runtime-failure latch.
#: ``make sanitize-smoke`` wires all of this up.
SANITIZE_FLAGS = ("-fsanitize=address,undefined",
                  "-fno-omit-frame-pointer")


def sanitize_enabled() -> bool:
    """Whether the sanitizer build variant is selected
    (``REPRO_CC_SANITIZE``)."""
    return os.environ.get("REPRO_CC_SANITIZE", "0") not in ("", "0")

#: Compilers tried in order when ``$CC`` is unset.
COMPILER_CANDIDATES = ("gcc", "cc", "clang")

#: Count of actual compiler invocations this process performed
#: (probes excluded); the build-cache tests assert it stays flat on a
#: cache hit.
build_count = 0


class NativeBuildError(RuntimeError):
    """A kernel compilation failed although the compiler probe passed."""


@dataclass(frozen=True)
class CompilerProbe:
    """Result of the working-compiler probe."""

    ok: bool
    exe: str | None = None
    version: str | None = None
    reason: str | None = None
    #: Flag set the probe succeeded with (see :data:`CFLAG_SETS`).
    cflags: tuple[str, ...] = CFLAGS


@dataclass(frozen=True)
class BuildResult:
    """One ensured kernel library on disk."""

    path: Path
    sha256: str
    built: bool  # False = served from the cache


def cache_dir() -> Path:
    """Directory holding the compiled kernel libraries.

    ``$REPRO_NATIVE_CACHE`` overrides; the default lives under the
    result-store root so ``repro cache``-adjacent state stays in one
    place (the store itself never indexes these files -- they are
    derived artifacts keyed by their own hash).
    """
    env = os.environ.get("REPRO_NATIVE_CACHE")
    if env:
        return Path(env)
    from repro.store.store import default_root
    return default_root() / "native"


def masked_reason() -> str | None:
    """Why the toolchain is masked, or None (the ``REPRO_NO_CC`` hook).

    The mask disables the whole backend -- not just compilation -- so
    a previously cached .so cannot sneak native execution into a run
    that asked for a toolchain-free environment.
    """
    if os.environ.get("REPRO_NO_CC"):
        return "REPRO_NO_CC is set (toolchain masked)"
    return None


_PROBES: dict[str, CompilerProbe] = {}


def probe_compiler() -> CompilerProbe:
    """Find a working C compiler (cached per candidate list + $CC).

    "Working" means it compiled a one-line shared library, not merely
    that an executable exists on PATH -- a broken toolchain (missing
    headers, no linker) is reported as unavailable with its stderr.
    """
    env_cc = os.environ.get("CC")
    candidates = ([env_cc] if env_cc else []) + list(COMPILER_CANDIDATES)
    # The sanitize state is part of the cache key: a toolchain that
    # compiles the fast build may lack libasan, and vice versa.
    key = "\x00".join(candidates + ["san" if sanitize_enabled() else ""])
    cached = _PROBES.get(key)
    if cached is not None:
        return cached
    failures = []
    probe = None
    for exe in candidates:
        result = _try_compiler(exe)
        if result.ok:
            probe = result
            break
        failures.append(f"{exe}: {result.reason}")
    if probe is None:
        probe = CompilerProbe(
            ok=False,
            reason="no working C compiler (tried "
                   + "; ".join(failures) + ")")
    _PROBES[key] = probe
    return probe


def _try_compiler(exe: str) -> CompilerProbe:
    """Compile a one-line probe program with one candidate."""
    try:
        version_proc = subprocess.run(
            [exe, "--version"], capture_output=True, text=True, timeout=20)
    except (OSError, subprocess.TimeoutExpired) as error:
        return CompilerProbe(ok=False, reason=str(error))
    if version_proc.returncode != 0:
        return CompilerProbe(ok=False, reason="--version failed")
    version = version_proc.stdout.splitlines()[0].strip() \
        if version_proc.stdout else exe
    extra = SANITIZE_FLAGS if sanitize_enabled() else ()
    last_detail = ""
    with tempfile.TemporaryDirectory(prefix="repro-cc-probe-") as tmp:
        src = Path(tmp) / "probe.c"
        src.write_text("int repro_probe(void) { return 1; }\n")
        for base in CFLAG_SETS:
            cflags = base + extra
            out = Path(tmp) / "probe.so"
            out.unlink(missing_ok=True)
            try:
                proc = subprocess.run(
                    [exe, *cflags, str(src), "-o", str(out)],
                    capture_output=True, text=True, timeout=60)
            except (OSError, subprocess.TimeoutExpired) as error:
                return CompilerProbe(ok=False, reason=str(error))
            if proc.returncode == 0 and out.exists():
                return CompilerProbe(ok=True, exe=exe, version=version,
                                     cflags=cflags)
            detail = (proc.stderr or "").strip().splitlines()
            last_detail = f": {detail[-1]}" if detail else ""
    reason = "probe compile failed" + last_detail
    if extra:
        reason = f"sanitizer {reason} (toolchain lacks libasan/ubsan?)"
    return CompilerProbe(ok=False, reason=reason)


def library_name(timing_dtype: str, sha256: str) -> str:
    tag = {"float64": "f64", "float32": "f32"}[timing_dtype]
    if sanitize_enabled():
        tag += "-san"
    return f"levelkern-{tag}-{sha256[:16]}.so"


def ensure_library(timing_dtype: str,
                   directory: Path | None = None) -> BuildResult:
    """Compile (or reuse) the kernel library for one timing dtype.

    Raises :class:`NativeBuildError` when the toolchain is masked or
    absent, or when the compile itself fails.  The write is atomic
    (compile to a temp name, then ``os.replace``), so concurrent
    builders -- e.g. pool workers racing a cold cache -- at worst do
    redundant work, never serve a torn file.
    """
    global build_count
    masked = masked_reason()
    if masked:
        raise NativeBuildError(f"native backend unavailable: {masked}")
    probe = probe_compiler()
    if not probe.ok:
        raise NativeBuildError(
            f"native backend unavailable: {probe.reason}")
    mode = faults.fire("native.compile")
    if mode is not None:
        raise NativeBuildError(
            f"injected {mode} fault at native.compile")
    with obs.span("native.cache_probe", dtype=timing_dtype) as rec:
        source = render_source(timing_dtype)
        sha = source_hash(source, probe.version or "", probe.cflags)
        directory = Path(directory) if directory is not None \
            else cache_dir()
        path = directory / library_name(timing_dtype, sha)
        cached = path.exists()
        rec.set(cached=cached)
    if cached:
        return BuildResult(path=path, sha256=sha, built=False)
    with obs.span("native.compile", dtype=timing_dtype, sha=sha[:16]):
        directory.mkdir(parents=True, exist_ok=True)
        src_path = directory / f"levelkern-{sha[:16]}.c"
        # The source file is shared between concurrent cold-cache
        # builders (its name is content-addressed), so it gets the same
        # atomic write-then-replace as the library: a truncating
        # write_text could hand a racing compiler a torn file.
        tmp_src = src_path.with_name(
            f".{src_path.name}.{os.getpid()}.tmp")
        tmp_src.write_text(source)
        os.replace(tmp_src, src_path)
        tmp_out = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        command = [probe.exe, *probe.cflags, str(src_path),
                   "-o", str(tmp_out)]
        timeout = compile_timeout()
        try:
            proc = subprocess.run(command, capture_output=True,
                                  text=True, timeout=timeout)
        except subprocess.TimeoutExpired:
            build_count += 1
            tmp_out.unlink(missing_ok=True)
            raise NativeBuildError(
                f"kernel compile timed out after {timeout:g}s "
                f"({' '.join(command)})")
        build_count += 1
        if proc.returncode != 0 or not tmp_out.exists():
            tmp_out.unlink(missing_ok=True)
            raise NativeBuildError(
                f"kernel compile failed ({' '.join(command)}):\n"
                f"{proc.stderr.strip()}")
        os.replace(tmp_out, path)
    return BuildResult(path=path, sha256=sha, built=True)


class Kernels:
    """ctypes binding of one compiled kernel library."""

    def __init__(self, path: Path):
        self.path = Path(path)
        self._lib = ctypes.CDLL(str(self.path))
        abi = self._lib.repro_kernel_abi
        abi.restype = ctypes.c_int
        abi.argtypes = ()
        loaded_abi = abi()
        if loaded_abi != KERNEL_ABI:  # pragma: no cover - hash keys ABI
            raise NativeBuildError(
                f"kernel ABI mismatch: library {self.path} has "
                f"{loaded_abi}, expected {KERNEL_ABI}")
        i64, ptr = ctypes.c_int64, ctypes.c_void_p
        common = [i64, ptr, ptr, ptr, ptr, ptr, ptr, i64]
        self.sensitized = self._lib.repro_propagate_sensitized
        self.sensitized.restype = None
        self.sensitized.argtypes = common + [ptr, ptr, ptr, ptr, i64, i64]
        self.value_change = self._lib.repro_propagate_value_change
        self.value_change.restype = None
        self.value_change.argtypes = common + [ptr, ptr, ptr, ptr, ptr,
                                               i64, i64]
        self.stimulus = self._lib.repro_stimulus
        self.stimulus.restype = None
        self.stimulus.argtypes = [i64, ptr, ptr, ptr, ptr, ptr, i64,
                                  ptr, i64, ptr, ptr, ptr, ptr, i64, i64]
        self.extract = self._lib.repro_extract
        self.extract.restype = None
        self.extract.argtypes = [i64, ptr, ptr, ptr, i64, ptr, ptr, ptr,
                                 i64, i64, i64, ptr, ptr]
        self.run = self._lib.repro_run
        self.run.restype = None
        self.run.argtypes = [
            # stimulus: bits, tables x3, words x2, stride, arrival
            i64, ptr, ptr, ptr, ptr, ptr, i64, ptr,
            # propagate: ops, descriptor x6, row0, delays
            i64, ptr, ptr, ptr, ptr, ptr, ptr, i64, ptr,
            # extract: bits, tables x3, words, out x2
            i64, ptr, ptr, ptr, i64, ptr, ptr,
            # shared: value_change, prev/values/events/settles,
            # stride, n_cols
            i64, ptr, ptr, ptr, ptr, i64, i64]


_KERNELS: dict[str, Kernels] = {}

_WARM: dict[tuple, Kernels] = {}


def _warm_key(timing_dtype: str, directory: Path | None) -> tuple:
    """Everything that can change which library a load resolves to.

    The warm fast path may only skip :func:`ensure_library` while the
    answer is provably the same: the dtype + explicit directory, plus
    every environment knob the ensure step reads (cache location,
    toolchain mask, compiler choice, sanitize variant).  A changed
    knob changes the key, so the next load takes the slow path and
    re-resolves honestly.
    """
    return (timing_dtype,
            str(directory) if directory is not None else None,
            os.environ.get("REPRO_NATIVE_CACHE"),
            os.environ.get("REPRO_NO_CC"),
            os.environ.get("CC"),
            sanitize_enabled())


def load_kernels(timing_dtype: str,
                 directory: Path | None = None) -> Kernels:
    """Ensure + dlopen the kernels for one dtype (cached per path).

    Safe in forked pool workers: a worker either inherits the parent's
    already-loaded handle through fork or lazily opens the cached file
    itself -- the build step was completed by whoever ran first.

    Warm loads are memoized on (dtype, directory, toolchain
    environment): the ensure step re-renders and re-hashes the kernel
    source (~0.1 ms), which would otherwise tax every propagate call.
    The memo is bypassed whenever a fault plane is active, so injected
    ``native.compile`` / ``native.dlopen`` faults keep their per-call
    hit semantics under chaos schedules.

    A cached library that will not load (truncated by a full disk,
    bit-rotted, built by an incompatible toolchain state) is **rebuilt
    once**: the corrupt file is moved aside (``<name>.corrupt``, kept
    for forensics) and the compile re-runs against the now-empty cache
    slot; a second failure propagates as :class:`NativeBuildError`.
    """
    warm_key = _warm_key(timing_dtype, directory)
    faulted = faults.get_plane() is not None
    if not faulted:
        warm = _WARM.get(warm_key)
        if warm is not None:
            return warm
    result = ensure_library(timing_dtype, directory)
    key = str(result.path)
    kernels = _KERNELS.get(key)
    if kernels is not None:
        if not faulted:
            _WARM[warm_key] = kernels
        return kernels
    if faults.fire("native.dlopen") == "corrupt":
        result.path.write_bytes(b"injected corruption: not ELF\n")
    try:
        kernels = Kernels(result.path)
    except (OSError, AttributeError, NativeBuildError) as error:
        _LOG.warning("cached kernel library %s failed to load (%s); "
                     "rebuilding once", result.path, error)
        try:
            os.replace(result.path,
                       result.path.with_name(result.path.name + ".corrupt"))
        except OSError:  # pragma: no cover - already reclaimed
            pass
        result = ensure_library(timing_dtype, directory)
        kernels = Kernels(result.path)
    _KERNELS[key] = kernels
    if not faulted:
        _WARM[warm_key] = kernels
    return kernels
