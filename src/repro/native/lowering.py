"""Lowering of a :class:`~repro.netlist.plan.CompiledPlan` to the
flat descriptor the C kernels consume, plus the ctypes dispatch.

A :class:`NativeDesc` is the plan re-expressed as a handful of
contiguous arrays -- per-op family/row-range/offset records plus one
stacked ``int32`` input-row table and per-output-row mask/delay
vectors -- so one C call walks the whole netlist without touching a
Python object per level.  The lowering makes no assumption about op
shape: a level with a single gate (``n == 1``) or a plan with a single
op produce the same records as wide levels, just shorter (regression-
tested against the width-1 suite in ``tests/``).

The descriptor is cached on the plan instance itself, so it shares the
plan's lifecycle: a netlist edit rebuilds the plan and thereby drops
the stale descriptor, and a plan pushed to pool workers carries (or
lazily rebuilds) its descriptor in each worker.
"""

from __future__ import annotations

import numpy as np

from repro.native.build import Kernels, load_kernels

_FAMILY_CODES = {"and": 0, "xor": 1, "mux": 2}


class NativeDesc:
    """Flat, native-friendly view of one compiled plan."""

    def __init__(self, plan) -> None:
        ops = plan.ops
        self.n_ops = len(ops)
        self.family = np.array([_FAMILY_CODES[op.family] for op in ops],
                               dtype=np.int32)
        self.lo = np.array([op.lo for op in ops], dtype=np.int64)
        self.hi = np.array([op.hi for op in ops], dtype=np.int64)
        sizes = [len(op.ins) for op in ops]
        self.ins_off = np.zeros(self.n_ops, dtype=np.int64)
        if self.n_ops:
            np.cumsum(sizes[:-1], out=self.ins_off[1:])
        self.ins = (np.concatenate([op.ins for op in ops])
                    if ops else np.empty(0, dtype=np.int64)) \
            .astype(np.int32)
        #: First gate-output row; flags/gidx/delays are indexed by
        #: ``row - gate_row0``.
        self.gate_row0 = int(ops[0].lo) if ops else int(plan.n_nets)
        n_rows = (int(ops[-1].hi) - self.gate_row0) if ops else 0
        self.flags = np.zeros(n_rows, dtype=np.uint8)
        self.gidx = np.empty(n_rows, dtype=np.int64)
        for op in ops:
            n = op.n_gates
            lo = op.lo - self.gate_row0
            self.gidx[lo:lo + n] = op.gidx
            if op.pin is not None:
                pin = op.pin[:, 0]
                self.flags[lo:lo + n] |= pin[:n].astype(np.uint8)
                self.flags[lo:lo + n] |= pin[n:].astype(np.uint8) << 1
            if op.po is not None:
                self.flags[lo:lo + n] |= op.po[:, 0].astype(np.uint8) << 2
        #: Per-dtype one-slot delay cache, mirroring
        #: ``CompiledPlan.delay_mats``: identity plus defensive value
        #: comparison, so recycled ids and in-place mutations both
        #: miss correctly.
        self._delay_cache: dict[str, tuple] = {}

    def delays_rowed(self, delays: np.ndarray, dtype) -> np.ndarray:
        """Per-output-row delay vector of one dtype (size-1 cache)."""
        dtype = np.dtype(dtype)
        cached = self._delay_cache.get(dtype.str)
        if (cached is None or cached[0] is not delays
                or not np.array_equal(cached[1], delays)):
            rowed = np.ascontiguousarray(
                delays[self.gidx].astype(dtype, copy=False))
            cached = (delays, delays.copy(), rowed)
            self._delay_cache[dtype.str] = cached
        return cached[2]


def native_desc(plan) -> NativeDesc:
    """The plan's native descriptor (built lazily, cached on the plan)."""
    desc = getattr(plan, "_native_desc", None)
    if desc is None:
        desc = NativeDesc(plan)
        plan._native_desc = desc
    return desc


class BusTables:
    """Flat per-bit stimulus/extract tables for one circuit's buses.

    Each bus bit becomes one ``(row, word, shift)`` record: ``row`` is
    the bit's net renumbered through ``plan.rows``, ``word`` the index
    of its bus in the packed ``(n_buses, N)`` uint64 stimulus/result
    matrix, ``shift`` its position inside that word.  The tables are
    what lets ``repro_stimulus`` / ``repro_extract`` cross the
    Python/C wall once per call instead of once per bus.

    Buses wider than 64 bits cannot pack into one word; callers must
    check :attr:`packable` and keep the numpy path for such circuits
    (the numpy ``ints_from_bits`` shares the same 64-bit ceiling).
    """

    def __init__(self, plan, input_buses: dict, output_buses: dict) -> None:
        #: Structural identity: ``plan.output_bus`` can add buses
        #: without recompiling the plan, so the cache in
        #: :func:`bus_tables` keys on this, not on plan identity.
        self.key = (
            tuple((name, tuple(nets)) for name, nets in input_buses.items()),
            tuple((name, tuple(nets)) for name, nets in output_buses.items()),
        )
        widths = [len(nets) for nets in input_buses.values()]
        widths += [len(nets) for nets in output_buses.values()]
        self.packable = all(w <= 64 for w in widths)
        rows = plan.rows

        def flat(buses):
            bit_row, bit_word, bit_shift = [], [], []
            for word, nets in enumerate(buses.values()):
                for shift, net in enumerate(nets):
                    bit_row.append(int(rows[net]))
                    bit_word.append(word)
                    bit_shift.append(shift)
            return (np.array(bit_row, dtype=np.int64),
                    np.array(bit_word, dtype=np.int64),
                    np.array(bit_shift, dtype=np.int64))

        self.in_rows, self.in_word, self.in_shift = flat(input_buses)
        self.out_rows, self.out_word, self.out_shift = flat(output_buses)
        #: Base pointers of the table arrays, computed once: the
        #: arrays live as long as this object, and ``.ctypes.data``
        #: rebuilds a ctypes accessor on every read (~1.5 us each,
        #: three reads per fused stage otherwise).
        self.in_ptrs = (self.in_rows.ctypes.data,
                        self.in_word.ctypes.data,
                        self.in_shift.ctypes.data)
        self.out_ptrs = (self.out_rows.ctypes.data,
                         self.out_word.ctypes.data,
                         self.out_shift.ctypes.data)
        self.n_in_bits = len(self.in_rows)
        self.n_out_bits = len(self.out_rows)
        self.n_out_buses = len(output_buses)
        self.out_names = list(output_buses)
        self.out_widths = [len(nets) for nets in output_buses.values()]
        #: Per-bus offset into the dense (n_out_bits, N) arrival matrix.
        self.out_offsets = np.concatenate(
            ([0], np.cumsum(self.out_widths)))[:-1].tolist() \
            if self.out_widths else []


def bus_tables(plan, input_buses: dict, output_buses: dict) -> BusTables:
    """The plan's bus tables (cached on the plan, keyed by structure).

    ``input_buses`` / ``output_buses`` map bus name to its ordered net
    list (LSB first), in the circuit's canonical bus order -- the same
    order the packed stimulus/result word matrices use.
    """
    cached = getattr(plan, "_native_bus_tables", None)
    key = (
        tuple((name, tuple(nets)) for name, nets in input_buses.items()),
        tuple((name, tuple(nets)) for name, nets in output_buses.items()),
    )
    if cached is None or cached.key != key:
        cached = BusTables(plan, input_buses, output_buses)
        plan._native_bus_tables = cached
    return cached


def _packed_words(words: np.ndarray, n_cols: int, what: str) -> int:
    """Validate a packed ``(n_buses, N)`` uint64 matrix; row stride."""
    if (words.dtype != np.uint64 or words.ndim != 2
            or words.shape[1] != n_cols
            or not words.flags.c_contiguous):
        raise ValueError(f"{what} words must be C-contiguous "
                         f"(n_buses, {n_cols}) uint64")
    return words.shape[1]


def run_stimulus(plan, ws, tables: BusTables, prev_words: np.ndarray,
                 new_words: np.ndarray, arrival: float, fill_prev: bool,
                 kernels: Kernels | None = None) -> None:
    """Seed constants + input rows of ``ws`` straight from packed words.

    Replaces the numpy stimulus stage: unpacks ``prev_words`` /
    ``new_words`` (``(n_buses, N)`` uint64, one row per input bus in
    table order) into the workspace value planes, computing events and
    arrival-seeded settles in the same pass, and seeds the constant
    rows 0/1.  ``fill_prev`` additionally stores the previous values
    into ``ws.prev`` (the value-change engine's input contract).
    """
    if not tables.packable:
        raise ValueError("bus wider than 64 bits cannot use the fused "
                         "stimulus path")
    if kernels is None:
        kernels = load_kernels(_dtype_name(ws))
    n_cols = ws.n_vectors
    words_stride = _packed_words(prev_words, n_cols, "prev stimulus")
    _packed_words(new_words, n_cols, "new stimulus")
    stride, new_ptr, events_ptr, settles_ptr, prev_ptr = \
        _layout(ws, fill_prev)
    cached = getattr(ws, "_native_arrival", None)
    if cached is None:
        buf = np.empty(1, dtype=ws.timing_dtype)
        cached = (buf, buf.ctypes.data)
        ws._native_arrival = cached
    arr, arr_ptr = cached
    arr[0] = arrival
    kernels.stimulus(tables.n_in_bits, *tables.in_ptrs,
                     prev_words.ctypes.data, new_words.ctypes.data,
                     words_stride, arr_ptr, int(fill_prev),
                     prev_ptr, new_ptr, events_ptr,
                     settles_ptr, stride, n_cols)


def run_extract(plan, ws, tables: BusTables, glitch_model: str,
                kernels: Kernels | None = None):
    """Gather every output bus out of ``ws`` in one C pass.

    Returns ``(outputs, arrivals)``: per-bus packed uint64 vectors and
    per-bus ``(width, N)`` arrival matrices, views into two buffers
    freshly allocated per call (callers may retain them).  Matches the
    numpy extraction bit-for-bit: sensitized arrivals are the raw
    settle rows masked by events, value-change arrivals are the
    already-masked settle rows.
    """
    if not tables.packable:
        raise ValueError("bus wider than 64 bits cannot use the fused "
                         "extract path")
    if kernels is None:
        kernels = load_kernels(_dtype_name(ws))
    n_cols = ws.n_vectors
    stride, new_ptr, events_ptr, settles_ptr, _ = _layout(ws, False)
    out_words = np.empty((tables.n_out_buses, n_cols), dtype=np.uint64)
    out_arrivals = np.empty((tables.n_out_bits, n_cols),
                            dtype=ws.timing_dtype)
    kernels.extract(tables.n_out_bits, *tables.out_ptrs,
                    tables.n_out_buses, new_ptr, events_ptr,
                    settles_ptr, stride,
                    int(glitch_model == "sensitized"), n_cols,
                    out_words.ctypes.data, out_arrivals.ctypes.data)
    outputs = {}
    arrivals = {}
    for i, (name, width, off) in enumerate(
            zip(tables.out_names, tables.out_widths, tables.out_offsets)):
        outputs[name] = out_words[i]
        arrivals[name] = out_arrivals[off:off + width]
    return outputs, arrivals


def run_fused(plan, ws, tables: BusTables, prev_words: np.ndarray,
              new_words: np.ndarray, arrival: float, delays: np.ndarray,
              glitch_model: str, kernels: Kernels):
    """Whole propagate in one library call (``repro_run``).

    Stimulus unpack, every level, and output extraction happen inside
    a single ctypes crossing: the serial native path's Python wall
    reduces to output-buffer allocation and dict assembly, and the
    output rows are still cache-hot from the last level when the
    extract pass reads them.  Same contract as running the three
    stage kernels back to back (the C side *is* that composition).
    Shard and degrade paths keep the individual kernels: a shard
    extracts nothing, and a mid-call engine switch needs the seams.
    """
    if not tables.packable:
        raise ValueError("bus wider than 64 bits cannot use the fused "
                         "path")
    n_cols = ws.n_vectors
    words_stride = _packed_words(prev_words, n_cols, "prev stimulus")
    _packed_words(new_words, n_cols, "new stimulus")
    value_change = glitch_model != "sensitized"
    stride, new_ptr, events_ptr, settles_ptr, prev_ptr = \
        _layout(ws, value_change)
    desc = native_desc(plan)
    rowed = desc.delays_rowed(np.asarray(delays, dtype=float),
                              ws.timing_dtype)
    cached = getattr(ws, "_native_arrival", None)
    if cached is None:
        buf = np.empty(1, dtype=ws.timing_dtype)
        cached = (buf, buf.ctypes.data)
        ws._native_arrival = cached
    arr, arr_ptr = cached
    arr[0] = arrival
    out_words = np.empty((tables.n_out_buses, n_cols), dtype=np.uint64)
    out_arrivals = np.empty((tables.n_out_bits, n_cols),
                            dtype=ws.timing_dtype)
    kernels.run(tables.n_in_bits, *tables.in_ptrs,
                prev_words.ctypes.data, new_words.ctypes.data,
                words_stride, arr_ptr,
                desc.n_ops, desc.family.ctypes.data,
                desc.lo.ctypes.data, desc.hi.ctypes.data,
                desc.ins_off.ctypes.data, desc.ins.ctypes.data,
                desc.flags.ctypes.data, desc.gate_row0,
                rowed.ctypes.data,
                tables.n_out_bits, *tables.out_ptrs,
                tables.n_out_buses, out_words.ctypes.data,
                out_arrivals.ctypes.data,
                int(value_change), prev_ptr, new_ptr, events_ptr,
                settles_ptr, stride, n_cols)
    outputs = {}
    arrivals = {}
    for i, (name, width, off) in enumerate(
            zip(tables.out_names, tables.out_widths, tables.out_offsets)):
        outputs[name] = out_words[i]
        arrivals[name] = out_arrivals[off:off + width]
    return outputs, arrivals


def _dtype_name(ws) -> str:
    """Kernel-library dtype name for a workspace's timing dtype."""
    if ws.timing_dtype == np.float64:
        return "float64"
    if ws.timing_dtype == np.float32:
        return "float32"
    raise ValueError(
        f"no native kernel for timing dtype {ws.timing_dtype}")


def _layout(ws, need_prev: bool) -> tuple:
    """Shared row stride + base pointers of ``ws``'s state matrices.

    Serial workspaces are plain C-contiguous ``(n_nets, N)`` blocks;
    pool shard views are column slices whose rows keep the parent
    width as stride.  Either way all matrices must agree and columns
    must be unit-stride -- the kernels address ``base + row * stride +
    col``.

    Returns ``(stride, new_ptr, events_ptr, settles_ptr, prev_ptr)``
    (``prev_ptr`` is None unless ``need_prev``).  ``.ctypes.data``
    rebuilds a ctypes accessor on every read (~1.5 us, several reads
    per fused stage), and one workspace serves every call of a DTA
    sweep -- so the derived layout is cached on the workspace and
    revalidated by plane identity: a reallocated plane (or a fresh
    per-call ShardView) misses and re-derives.
    """
    new, events, settles = ws.new, ws.events, ws.settles
    prev = ws.prev if need_prev else None
    cached = getattr(ws, "_native_layout", None)
    if (cached is not None and cached[0] is new and cached[1] is events
            and cached[2] is settles
            and (not need_prev or cached[3] is prev)):
        return cached[4]
    stride = new.strides[0] // new.itemsize
    if (events.strides[0] // events.itemsize != stride
            or settles.strides[0] // settles.itemsize != stride
            or new.strides[1] != new.itemsize
            or settles.strides[1] != settles.itemsize):
        raise ValueError("workspace matrices disagree on layout")
    if prev is not None and prev.strides[0] // prev.itemsize != stride:
        raise ValueError("workspace matrices disagree on layout")
    layout = (stride, new.ctypes.data, events.ctypes.data,
              settles.ctypes.data,
              prev.ctypes.data if prev is not None else None)
    ws._native_layout = (new, events, settles, prev, layout)
    return layout


def run_propagate(plan, ws, delays: np.ndarray, glitch_model: str,
                  kernels: Kernels | None = None) -> None:
    """Run one propagate call through the fused C kernels.

    Drop-in replacement for ``plan_mod.propagate_sensitized`` /
    ``propagate_value_change`` over the same :class:`Workspace` (or
    pool :class:`ShardView`) contract: constants/input rows seeded by
    the caller, sensitized settle rows left raw, value-change settle
    rows stored masked.
    """
    dtype_name = _dtype_name(ws)
    desc = native_desc(plan)
    if not desc.n_ops:
        return  # gate-less plan: nothing to run, nothing to compile
    if kernels is None:
        kernels = load_kernels(dtype_name)
    rowed = desc.delays_rowed(np.asarray(delays, dtype=float), ws.timing_dtype)
    value_change = glitch_model != "sensitized"
    stride, new_ptr, events_ptr, settles_ptr, prev_ptr = \
        _layout(ws, value_change)
    args = (desc.n_ops, desc.family.ctypes.data, desc.lo.ctypes.data,
            desc.hi.ctypes.data, desc.ins_off.ctypes.data,
            desc.ins.ctypes.data, desc.flags.ctypes.data, desc.gate_row0)
    if value_change:
        kernels.value_change(*args, prev_ptr, new_ptr,
                             events_ptr, settles_ptr,
                             rowed.ctypes.data, stride, ws.n_vectors)
    else:
        kernels.sensitized(*args, new_ptr, events_ptr, settles_ptr,
                           rowed.ctypes.data, stride, ws.n_vectors)
