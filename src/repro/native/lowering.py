"""Lowering of a :class:`~repro.netlist.plan.CompiledPlan` to the
flat descriptor the C kernels consume, plus the ctypes dispatch.

A :class:`NativeDesc` is the plan re-expressed as a handful of
contiguous arrays -- per-op family/row-range/offset records plus one
stacked ``int32`` input-row table and per-output-row mask/delay
vectors -- so one C call walks the whole netlist without touching a
Python object per level.  The lowering makes no assumption about op
shape: a level with a single gate (``n == 1``) or a plan with a single
op produce the same records as wide levels, just shorter (regression-
tested against the width-1 suite in ``tests/``).

The descriptor is cached on the plan instance itself, so it shares the
plan's lifecycle: a netlist edit rebuilds the plan and thereby drops
the stale descriptor, and a plan pushed to pool workers carries (or
lazily rebuilds) its descriptor in each worker.
"""

from __future__ import annotations

import numpy as np

from repro.native.build import Kernels, load_kernels

_FAMILY_CODES = {"and": 0, "xor": 1, "mux": 2}


class NativeDesc:
    """Flat, native-friendly view of one compiled plan."""

    def __init__(self, plan) -> None:
        ops = plan.ops
        self.n_ops = len(ops)
        self.family = np.array([_FAMILY_CODES[op.family] for op in ops],
                               dtype=np.int32)
        self.lo = np.array([op.lo for op in ops], dtype=np.int64)
        self.hi = np.array([op.hi for op in ops], dtype=np.int64)
        sizes = [len(op.ins) for op in ops]
        self.ins_off = np.zeros(self.n_ops, dtype=np.int64)
        if self.n_ops:
            np.cumsum(sizes[:-1], out=self.ins_off[1:])
        self.ins = (np.concatenate([op.ins for op in ops])
                    if ops else np.empty(0, dtype=np.int64)) \
            .astype(np.int32)
        #: First gate-output row; flags/gidx/delays are indexed by
        #: ``row - gate_row0``.
        self.gate_row0 = int(ops[0].lo) if ops else int(plan.n_nets)
        n_rows = (int(ops[-1].hi) - self.gate_row0) if ops else 0
        self.flags = np.zeros(n_rows, dtype=np.uint8)
        self.gidx = np.empty(n_rows, dtype=np.int64)
        for op in ops:
            n = op.n_gates
            lo = op.lo - self.gate_row0
            self.gidx[lo:lo + n] = op.gidx
            if op.pin is not None:
                pin = op.pin[:, 0]
                self.flags[lo:lo + n] |= pin[:n].astype(np.uint8)
                self.flags[lo:lo + n] |= pin[n:].astype(np.uint8) << 1
            if op.po is not None:
                self.flags[lo:lo + n] |= op.po[:, 0].astype(np.uint8) << 2
        #: Per-dtype one-slot delay cache, mirroring
        #: ``CompiledPlan.delay_mats``: identity plus defensive value
        #: comparison, so recycled ids and in-place mutations both
        #: miss correctly.
        self._delay_cache: dict[str, tuple] = {}

    def delays_rowed(self, delays: np.ndarray, dtype) -> np.ndarray:
        """Per-output-row delay vector of one dtype (size-1 cache)."""
        dtype = np.dtype(dtype)
        cached = self._delay_cache.get(dtype.str)
        if (cached is None or cached[0] is not delays
                or not np.array_equal(cached[1], delays)):
            rowed = np.ascontiguousarray(
                delays[self.gidx].astype(dtype, copy=False))
            cached = (delays, delays.copy(), rowed)
            self._delay_cache[dtype.str] = cached
        return cached[2]


def native_desc(plan) -> NativeDesc:
    """The plan's native descriptor (built lazily, cached on the plan)."""
    desc = getattr(plan, "_native_desc", None)
    if desc is None:
        desc = NativeDesc(plan)
        plan._native_desc = desc
    return desc


def _common_stride(ws) -> int:
    """Shared row stride (elements) of a workspace's state matrices.

    Serial workspaces are plain C-contiguous ``(n_nets, N)`` blocks;
    pool shard views are column slices whose rows keep the parent
    width as stride.  Either way all matrices must agree and columns
    must be unit-stride -- the kernels address ``base + row * stride +
    col``.
    """
    new, events, settles = ws.new, ws.events, ws.settles
    stride = new.strides[0] // new.itemsize
    if (events.strides[0] // events.itemsize != stride
            or settles.strides[0] // settles.itemsize != stride
            or new.strides[1] != new.itemsize
            or settles.strides[1] != settles.itemsize):
        raise ValueError("workspace matrices disagree on layout")
    return stride


def run_propagate(plan, ws, delays: np.ndarray, glitch_model: str,
                  kernels: Kernels | None = None) -> None:
    """Run one propagate call through the fused C kernels.

    Drop-in replacement for ``plan_mod.propagate_sensitized`` /
    ``propagate_value_change`` over the same :class:`Workspace` (or
    pool :class:`ShardView`) contract: constants/input rows seeded by
    the caller, sensitized settle rows left raw, value-change settle
    rows stored masked.
    """
    if ws.timing_dtype == np.float64:
        dtype_name = "float64"
    elif ws.timing_dtype == np.float32:
        dtype_name = "float32"
    else:
        raise ValueError(
            f"no native kernel for timing dtype {ws.timing_dtype}")
    desc = native_desc(plan)
    if not desc.n_ops:
        return  # gate-less plan: nothing to run, nothing to compile
    if kernels is None:
        kernels = load_kernels(dtype_name)
    rowed = desc.delays_rowed(np.asarray(delays, dtype=float), ws.timing_dtype)
    stride = _common_stride(ws)
    args = (desc.n_ops, desc.family.ctypes.data, desc.lo.ctypes.data,
            desc.hi.ctypes.data, desc.ins_off.ctypes.data,
            desc.ins.ctypes.data, desc.flags.ctypes.data, desc.gate_row0)
    if glitch_model == "sensitized":
        kernels.sensitized(*args, ws.new.ctypes.data,
                           ws.events.ctypes.data, ws.settles.ctypes.data,
                           rowed.ctypes.data, stride, ws.n_vectors)
    else:
        prev = ws.prev
        if prev.strides[0] // prev.itemsize != stride:
            raise ValueError("workspace matrices disagree on layout")
        kernels.value_change(*args, prev.ctypes.data, ws.new.ctypes.data,
                             ws.events.ctypes.data, ws.settles.ctypes.data,
                             rowed.ctypes.data, stride, ws.n_vectors)
