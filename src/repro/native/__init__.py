"""Native fused level kernels: the optional C backend of the engines.

This package turns the compiled SoA plan's per-level numpy pipeline
into one fused C pass per gate (values + events + settles in a single
loop over memory), compiled on demand with whatever C compiler the
machine has and cached as a shared library under the store directory.
It is wired into the engine selection as two additional engines:

* ``"compiled-native"`` -- float64, **bit-identical** to
  ``"compiled"`` (same ops, same order, select-vs-multiply masking
  proven equivalent for the non-negative settles both produce);
* ``"native-f32"`` -- float32, inheriting the relaxed-identity
  contract (and the distinct store keys) of ``"compiled-f32"``.

Availability is a property of the machine, not the repo: no compiler
(or ``REPRO_NO_CC=1``) means :func:`native_available` is False, the
``repro engines`` diagnostic says why, and :func:`engine_for` resolves
every request to the numpy engines.  Nothing hard-depends on a
toolchain.

Engine preference is explicit at every API level (``engine=`` on the
contexts and campaign calls, ``--engine`` on the CLI) plus one
process-global default (:func:`set_backend`) that forked pool and
campaign workers inherit.
"""

from __future__ import annotations

from repro.native.build import (
    BuildResult,
    CompilerProbe,
    Kernels,
    NativeBuildError,
    cache_dir,
    ensure_library,
    library_name,
    load_kernels,
    masked_reason,
    probe_compiler,
)
from repro.native.lowering import (
    BusTables,
    NativeDesc,
    bus_tables,
    native_desc,
    run_extract,
    run_fused,
    run_propagate,
    run_stimulus,
)
from repro.native.source import KERNEL_ABI, render_source, source_hash

__all__ = [
    "BuildResult",
    "BusTables",
    "CompilerProbe",
    "KERNEL_ABI",
    "Kernels",
    "NATIVE_ENGINES",
    "NativeBuildError",
    "NativeDesc",
    "bus_tables",
    "cache_dir",
    "clear_runtime_failure",
    "engine_for",
    "ensure_library",
    "get_backend",
    "library_name",
    "load_kernels",
    "masked_reason",
    "native_available",
    "native_desc",
    "native_status",
    "probe_compiler",
    "record_runtime_failure",
    "render_source",
    "run_extract",
    "run_fused",
    "run_propagate",
    "run_stimulus",
    "runtime_failure",
    "set_backend",
    "source_hash",
    "unavailable_reason",
]

#: Native engine name -> timing dtype it runs.
NATIVE_ENGINES = {"compiled-native": "float64", "native-f32": "float32"}

#: Numpy engine serving each timing dtype (the fallback targets).
_NUMPY_ENGINES = {"float64": "compiled", "float32": "compiled-f32"}

BACKENDS = ("numpy", "native")

_BACKEND = "numpy"

#: First runtime native failure of this process (compile error behind
#: a passing probe, unloadable library after the rebuild retry, ...).
#: Once latched, engine selection stops offering the native engines --
#: every later propagate runs numpy -- and ``repro engines`` surfaces
#: the reason.  f64 native is bit-identical to numpy, so a mid-run
#: degrade never changes rendered results.
_RUNTIME_FAILURE: str | None = None


def record_runtime_failure(reason: str) -> None:
    """Latch a native runtime failure and degrade to numpy (logged)."""
    global _RUNTIME_FAILURE
    if _RUNTIME_FAILURE is None:
        import logging
        logging.getLogger("repro.native").warning(
            "native backend degraded to numpy for the rest of this "
            "process: %s", reason)
        _RUNTIME_FAILURE = reason


def runtime_failure() -> str | None:
    return _RUNTIME_FAILURE


def clear_runtime_failure() -> None:
    global _RUNTIME_FAILURE
    _RUNTIME_FAILURE = None


def set_backend(name: str) -> None:
    """Set the process-global engine preference (``--engine``).

    Fork children (pool and campaign workers) inherit it; a ``native``
    preference still resolves to numpy wherever the backend is
    unavailable.
    """
    global _BACKEND
    if name not in BACKENDS:
        raise ValueError(f"unknown backend {name!r}; known: {BACKENDS}")
    _BACKEND = name


def get_backend() -> str:
    return _BACKEND


def unavailable_reason() -> str | None:
    """Why the native backend cannot run here, or None if it can."""
    masked = masked_reason()
    if masked:
        return masked
    probe = probe_compiler()
    if not probe.ok:
        return probe.reason
    return None


def native_available() -> bool:
    return unavailable_reason() is None


def engine_for(timing_dtype: str, backend: str | None = None) -> str:
    """Concrete engine name for a dtype under a backend preference.

    ``backend=None`` uses the process-global preference.  A
    ``"native"`` preference falls back to the numpy engine of the same
    dtype when the backend is unavailable -- selection-level fallback
    is what keeps toolchain-free environments running, and the
    ``repro engines`` diagnostic is what makes it visible.
    """
    if timing_dtype not in _NUMPY_ENGINES:
        raise ValueError(
            f"timing_dtype must be float64 or float32, "
            f"got {timing_dtype!r}")
    backend = backend if backend is not None else _BACKEND
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; known: {BACKENDS}")
    if backend == "native" and native_available() \
            and _RUNTIME_FAILURE is None:
        return {"float64": "compiled-native",
                "float32": "native-f32"}[timing_dtype]
    return _NUMPY_ENGINES[timing_dtype]


def native_status(timing_dtype: str = "float64") -> dict:
    """Diagnostic record for one native engine (``repro engines``).

    Always answers -- available or not -- with the compiler probe
    outcome, the cache path the library would live at, and the source
    hash, so a silent fallback can be diagnosed from the CLI.
    """
    reason = unavailable_reason()
    record: dict = {
        "available": reason is None,
        "reason": reason,
        "runtime_failure": _RUNTIME_FAILURE,
        "cache_dir": str(cache_dir()),
        "compiler": None,
        "compiler_version": None,
        "source_hash": None,
        "library": None,
        "cached": False,
    }
    if masked_reason() is None:
        probe = probe_compiler()
        if probe.ok:
            record["compiler"] = probe.exe
            record["compiler_version"] = probe.version
            sha = source_hash(render_source(timing_dtype),
                              probe.version or "", probe.cflags)
            path = cache_dir() / library_name(timing_dtype, sha)
            record["source_hash"] = sha
            record["library"] = str(path)
            record["cached"] = path.exists()
    return record
