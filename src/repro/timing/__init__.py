"""Timing analysis: STA, DTA, CDFs, voltage and noise models."""

from repro.timing.cdf import CdfGrid, EndpointCdfs
from repro.timing.characterize import (
    AluCharacterization,
    CharacterizationConfig,
    clear_cache,
    get_characterization,
)
from repro.timing.dta import DtaResult, run_dta, sample_operands
from repro.timing.noise import NoiseStream, VoltageNoise
from repro.timing.report import EndpointSlack, TimingReport, timing_report
from repro.timing.sta import max_frequency_hz, static_arrivals, worst_arrival
from repro.timing.voltage import VddDelayModel

__all__ = [
    "AluCharacterization",
    "CdfGrid",
    "CharacterizationConfig",
    "DtaResult",
    "EndpointCdfs",
    "EndpointSlack",
    "NoiseStream",
    "TimingReport",
    "VddDelayModel",
    "VoltageNoise",
    "clear_cache",
    "get_characterization",
    "max_frequency_hz",
    "run_dta",
    "sample_operands",
    "static_arrivals",
    "timing_report",
    "worst_arrival",
]
