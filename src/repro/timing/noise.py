"""Supply-voltage noise model.

The paper models supply noise as an i.i.d. per-cycle normal random
variable with zero mean and standard deviation sigma, clipped at
+-2 sigma to suppress physically unrealistic tail spikes (Section 3.3).
Each cycle's noise value modulates every path delay of that cycle
through the fitted Vdd-delay curve.

Noise is sampled in pre-generated blocks so the per-cycle cost inside
the instruction set simulator stays negligible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class VoltageNoise:
    """Gaussian supply-voltage noise, clipped at ``clip_sigmas``.

    Attributes:
        sigma_v: standard deviation in volts (e.g. 0.010 for 10 mV).
        clip_sigmas: symmetric clipping point in sigmas (paper: 2.0).
    """

    sigma_v: float
    clip_sigmas: float = 2.0

    def __post_init__(self) -> None:
        if self.sigma_v < 0:
            raise ValueError("noise sigma must be non-negative")
        if self.clip_sigmas <= 0:
            raise ValueError("clip point must be positive")

    @property
    def max_droop_v(self) -> float:
        """Largest possible voltage drop (positive number, volts)."""
        return self.clip_sigmas * self.sigma_v

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` per-cycle noise values [V], clipped."""
        if self.sigma_v == 0.0:
            return np.zeros(count)
        values = rng.normal(0.0, self.sigma_v, count)
        bound = self.max_droop_v
        return np.clip(values, -bound, bound)


class NoiseStream:
    """Blocked sampler handing out one noise value per simulated cycle.

    Refills from the underlying :class:`VoltageNoise` in blocks to keep
    per-cycle overhead to an array index.
    """

    def __init__(self, noise: VoltageNoise, rng: np.random.Generator,
                 block: int = 65536):
        if block <= 0:
            raise ValueError("block size must be positive")
        self._noise = noise
        self._rng = rng
        self._block = block
        self._values = noise.sample(block, rng)
        self._cursor = 0

    def next(self) -> float:
        """Noise value [V] for the next cycle."""
        if self._cursor >= self._block:
            self._values = self._noise.sample(self._block, self._rng)
            self._cursor = 0
        value = self._values[self._cursor]
        self._cursor += 1
        return value
