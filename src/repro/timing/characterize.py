"""Characterization flow: run DTA for every instruction, build CDFs.

This is the offline part of the paper's model C: a gate-level
characterization kernel covering all ALU instructions with randomized
operands (the paper uses 8 kCycles total) produces per-instruction,
per-endpoint arrival statistics, which are compiled into the CDF
tables the statistical fault injector consumes.

Characterizations are cached in-process by configuration key and can
be persisted to ``.npz`` files (the gate-level timing simulation is
the most expensive step of the flow).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.netlist.alu import AluNetlist
from repro.netlist.library import VDD_REF
from repro.timing.cdf import CdfGrid, EndpointCdfs
from repro.timing.dta import run_dta


@dataclass(frozen=True)
class CharacterizationConfig:
    """Parameters of one characterization run.

    Attributes:
        vdd: supply voltage of the timing views.
        n_cycles_per_instr: characterization cycles per instruction.
            The paper's 8 kCycle kernel over ~17 ALU instructions is
            roughly 470 cycles each; the default is slightly richer.
        seed: base RNG seed (each instruction derives its own stream).
        glitch_model: event model for the timing simulation.
        grid_points: resolution of the compiled period grid.
    """

    vdd: float = VDD_REF
    n_cycles_per_instr: int = 512
    seed: int = 2016
    glitch_model: str = "sensitized"
    grid_points: int = 2048


@dataclass
class AluCharacterization:
    """Per-instruction CDF tables for one ALU at one supply voltage."""

    config: CharacterizationConfig
    cdfs: dict[str, EndpointCdfs]
    grids: dict[str, CdfGrid] = field(default_factory=dict)
    worst_sta_period_ps: float = 0.0

    @classmethod
    def run(cls, alu: "AluNetlist",
            config: CharacterizationConfig | None = None) -> \
            "AluCharacterization":
        """Characterize every FI-eligible instruction of an ALU."""
        config = config or CharacterizationConfig()
        cdfs: dict[str, EndpointCdfs] = {}
        max_critical = 0.0
        for index, mnemonic in enumerate(alu.mnemonics):
            result = run_dta(
                alu, mnemonic,
                n_cycles=config.n_cycles_per_instr,
                vdd=config.vdd,
                seed=config.seed + 7919 * index,
                glitch_model=config.glitch_model)
            cdfs[mnemonic] = EndpointCdfs.from_critical(
                mnemonic, config.vdd, result.critical_ps)
            max_critical = max(max_critical,
                               float(result.critical_ps.max()))
        worst_sta = alu.worst_sta_period_ps(config.vdd)
        grid_min = 0.35 * worst_sta
        grid_max = 1.05 * max(max_critical, worst_sta)
        grids = {
            mnemonic: CdfGrid.compile(table, grid_min, grid_max,
                                      config.grid_points)
            for mnemonic, table in cdfs.items()
        }
        return cls(config=config, cdfs=cdfs, grids=grids,
                   worst_sta_period_ps=worst_sta)

    @property
    def mnemonics(self) -> tuple[str, ...]:
        return tuple(sorted(self.cdfs))

    def poff_frequency_hz(self, mnemonic: str) -> float:
        """Lowest frequency at which an instruction can ever fail."""
        return self.cdfs[mnemonic].poff_frequency_hz()

    # -- persistence -----------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Persist the raw arrival statistics to an ``.npz`` file."""
        arrays = {
            f"critical::{m}": table.critical_rows
            for m, table in self.cdfs.items()
        }
        arrays["meta"] = np.array([
            self.config.vdd, self.config.n_cycles_per_instr,
            self.config.seed, self.config.grid_points,
            self.worst_sta_period_ps,
        ])
        arrays["glitch_model"] = np.array(self.config.glitch_model)
        np.savez_compressed(Path(path), **arrays)

    @classmethod
    def load(cls, path: str | Path) -> "AluCharacterization":
        """Load a characterization persisted by :meth:`save`."""
        data = np.load(Path(path), allow_pickle=False)
        meta = data["meta"]
        config = CharacterizationConfig(
            vdd=float(meta[0]),
            n_cycles_per_instr=int(meta[1]),
            seed=int(meta[2]),
            glitch_model=str(data["glitch_model"]),
            grid_points=int(meta[3]),
        )
        worst_sta = float(meta[4])
        cdfs = {}
        max_critical = 0.0
        for key in data.files:
            if not key.startswith("critical::"):
                continue
            mnemonic = key.split("::", 1)[1]
            critical = data[key]
            cdfs[mnemonic] = EndpointCdfs.from_critical(
                mnemonic, config.vdd, critical)
            max_critical = max(max_critical, float(critical.max()))
        grid_min = 0.35 * worst_sta
        grid_max = 1.05 * max(max_critical, worst_sta)
        grids = {
            mnemonic: CdfGrid.compile(table, grid_min, grid_max,
                                      config.grid_points)
            for mnemonic, table in cdfs.items()
        }
        return cls(config=config, cdfs=cdfs, grids=grids,
                   worst_sta_period_ps=worst_sta)


#: In-process characterization cache, keyed by (alu key, config).
_CACHE: dict[tuple, AluCharacterization] = {}


def _alu_cache_key(alu: "AluNetlist") -> tuple:
    scales = tuple(sorted(alu.unit_scales.items()))
    lib = alu.library
    return (alu.config.width, alu.config.adder_kind, scales,
            lib.vth, lib.alpha, lib.clk_to_q_ps, lib.setup_ps,
            tuple(sorted(lib.cell_delays_ps.items())))


def get_characterization(alu: "AluNetlist",
                         config: CharacterizationConfig | None = None) -> \
        AluCharacterization:
    """Cached characterization lookup (runs DTA on first use)."""
    config = config or CharacterizationConfig()
    key = (_alu_cache_key(alu), config)
    found = _CACHE.get(key)
    if found is None:
        found = AluCharacterization.run(alu, config)
        _CACHE[key] = found
    return found


def clear_cache() -> None:
    """Drop all cached characterizations (mainly for tests)."""
    _CACHE.clear()
