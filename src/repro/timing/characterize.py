"""Characterization flow: run DTA for every instruction, build CDFs.

This is the offline part of the paper's model C: a gate-level
characterization kernel covering all ALU instructions with randomized
operands (the paper uses 8 kCycles total) produces per-instruction,
per-endpoint arrival statistics, which are compiled into the CDF
tables the statistical fault injector consumes.

Characterizations are cached in-process by configuration key and can
be persisted to ``.npz`` files (the gate-level timing simulation is
the most expensive step of the flow).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.netlist.alu import AluNetlist
from repro.netlist.library import VDD_REF
from repro.timing.cdf import CdfGrid, EndpointCdfs
from repro.timing.dta import run_dta

#: Schema version of the AluCharacterization JSON representation.
ALU_CHARACTERIZATION_SCHEMA = 1


@dataclass(frozen=True)
class CharacterizationConfig:
    """Parameters of one characterization run.

    Attributes:
        vdd: supply voltage of the timing views.
        n_cycles_per_instr: characterization cycles per instruction.
            The paper's 8 kCycle kernel over ~17 ALU instructions is
            roughly 470 cycles each; the default is slightly richer.
        seed: base RNG seed (each instruction derives its own stream).
        glitch_model: event model for the timing simulation.
        grid_points: resolution of the compiled period grid.
        timing_dtype: settle-pipeline dtype of the DTA engine.  The
            default ``"float64"`` is bit-exact; ``"float32"`` halves
            the DTA memory traffic under the engine's relaxed-identity
            contract and caches under its own store keys (see
            :func:`config_key_fields`).
    """

    vdd: float = VDD_REF
    n_cycles_per_instr: int = 512
    seed: int = 2016
    glitch_model: str = "sensitized"
    grid_points: int = 2048
    timing_dtype: str = "float64"

    @property
    def engine(self) -> str:
        """Circuit engine implied by the timing dtype.

        Resolves through the process-global backend preference
        (:func:`repro.native.engine_for`): the native engines are
        execution details, never part of the config identity or any
        cache key -- native f64 is bit-identical to numpy f64, and
        native f32 shares the f32 tolerance class.
        """
        from repro import native
        return native.engine_for(self.timing_dtype)


def config_key_fields(config: CharacterizationConfig) -> dict:
    """Cache-key fields of a characterization config.

    ``timing_dtype`` is dropped at its default: every float64 key --
    characterizations and the Monte-Carlo points fingerprinting them
    -- stays byte-identical to the pre-dtype era, so existing stores
    keep serving.  float32 runs produce different (tolerance-level)
    numbers and get distinct keys by keeping the field.
    """
    fields = asdict(config)
    if fields.get("timing_dtype", "float64") == "float64":
        del fields["timing_dtype"]
    return fields


@dataclass
class AluCharacterization:
    """Per-instruction CDF tables for one ALU at one supply voltage."""

    config: CharacterizationConfig
    cdfs: dict[str, EndpointCdfs]
    grids: dict[str, CdfGrid] = field(default_factory=dict)
    worst_sta_period_ps: float = 0.0

    @classmethod
    def run(cls, alu: "AluNetlist",
            config: CharacterizationConfig | None = None,
            engine: str | None = None) -> "AluCharacterization":
        """Characterize every FI-eligible instruction of an ALU.

        ``engine`` overrides the config-implied circuit engine (e.g. a
        context with an explicit backend preference); it must serve
        the config's timing dtype and never affects the result
        identity.
        """
        config = config or CharacterizationConfig()
        cdfs: dict[str, EndpointCdfs] = {}
        max_critical = 0.0
        for index, mnemonic in enumerate(alu.mnemonics):
            result = run_dta(
                alu, mnemonic,
                n_cycles=config.n_cycles_per_instr,
                vdd=config.vdd,
                seed=config.seed + 7919 * index,
                glitch_model=config.glitch_model,
                engine=engine or config.engine)
            cdfs[mnemonic] = EndpointCdfs.from_critical(
                mnemonic, config.vdd, result.critical_ps)
            max_critical = max(max_critical,
                               float(result.critical_ps.max()))
        worst_sta = alu.worst_sta_period_ps(config.vdd)
        grid_min = 0.35 * worst_sta
        grid_max = 1.05 * max(max_critical, worst_sta)
        grids = {
            mnemonic: CdfGrid.compile(table, grid_min, grid_max,
                                      config.grid_points)
            for mnemonic, table in cdfs.items()
        }
        return cls(config=config, cdfs=cdfs, grids=grids,
                   worst_sta_period_ps=worst_sta)

    @property
    def mnemonics(self) -> tuple[str, ...]:
        return tuple(sorted(self.cdfs))

    def poff_frequency_hz(self, mnemonic: str) -> float:
        """Lowest frequency at which an instruction can ever fail."""
        return self.cdfs[mnemonic].poff_frequency_hz()

    # -- persistence -----------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Persist the raw arrival statistics to an ``.npz`` file."""
        arrays = {
            f"critical::{m}": table.critical_rows
            for m, table in self.cdfs.items()
        }
        arrays["meta"] = np.array([
            self.config.vdd, self.config.n_cycles_per_instr,
            self.config.seed, self.config.grid_points,
            self.worst_sta_period_ps,
        ])
        arrays["glitch_model"] = np.array(self.config.glitch_model)
        arrays["timing_dtype"] = np.array(self.config.timing_dtype)
        np.savez_compressed(Path(path), **arrays)

    @classmethod
    def load(cls, path: str | Path) -> "AluCharacterization":
        """Load a characterization persisted by :meth:`save`."""
        data = np.load(Path(path), allow_pickle=False)
        meta = data["meta"]
        config = CharacterizationConfig(
            vdd=float(meta[0]),
            n_cycles_per_instr=int(meta[1]),
            seed=int(meta[2]),
            glitch_model=str(data["glitch_model"]),
            grid_points=int(meta[3]),
            timing_dtype=(str(data["timing_dtype"])
                          if "timing_dtype" in data.files
                          else "float64"),  # pre-dtype files
        )
        criticals = {
            key.split("::", 1)[1]: data[key]
            for key in data.files if key.startswith("critical::")
        }
        return cls._rebuild(config, criticals, float(meta[4]))

    @classmethod
    def _rebuild(cls, config: CharacterizationConfig,
                 criticals: dict[str, np.ndarray],
                 worst_sta: float) -> "AluCharacterization":
        """Reconstruct CDFs and grids from raw critical-period data.

        Deterministic: given bit-identical criticals, the rebuilt
        tables and grids match the originally computed ones exactly
        (``CdfGrid.compile`` and ``EndpointCdfs.from_critical`` are
        pure), which is what makes store-served characterizations
        interchangeable with freshly computed ones.
        """
        cdfs = {}
        max_critical = 0.0
        for mnemonic, critical in criticals.items():
            # The persisted matrix is critical_rows, i.e. already in
            # row-max ascending order; rebuilding the views directly
            # (instead of re-sorting via from_critical) keeps the row
            # order exact even when worst periods tie, so joint-mode
            # sampling stays bit-identical across a round-trip.
            critical = np.asarray(critical)
            cdfs[mnemonic] = EndpointCdfs(
                mnemonic=mnemonic,
                vdd=config.vdd,
                critical_sorted=np.sort(critical.T, axis=1),
                row_max_sorted=critical.max(axis=1),
                critical_rows=critical,
            )
            max_critical = max(max_critical, float(critical.max()))
        grid_min = 0.35 * worst_sta
        grid_max = 1.05 * max(max_critical, worst_sta)
        grids = {
            mnemonic: CdfGrid.compile(table, grid_min, grid_max,
                                      config.grid_points)
            for mnemonic, table in cdfs.items()
        }
        return cls(config=config, cdfs=cdfs, grids=grids,
                   worst_sta_period_ps=worst_sta)

    def to_json(self) -> dict:
        """Lossless JSON body (schema ``ALU_CHARACTERIZATION_SCHEMA``).

        Only the raw per-instruction critical-period matrices travel
        (exact dtype preserved); CDFs and grids are rebuilt
        deterministically on load, exactly like :meth:`load`.
        """
        from repro.store.serialize import encode
        return {
            "schema": ALU_CHARACTERIZATION_SCHEMA,
            "config": asdict(self.config),
            "worst_sta_period_ps": float(self.worst_sta_period_ps),
            "critical_ps": {
                mnemonic: encode(table.critical_rows)
                for mnemonic, table in self.cdfs.items()
            },
        }

    @classmethod
    def from_json(cls, payload: dict) -> "AluCharacterization":
        """Inverse of :meth:`to_json` (bit-identical tables)."""
        from repro.store.serialize import decode
        if payload.get("schema") != ALU_CHARACTERIZATION_SCHEMA:
            raise ValueError(
                f"AluCharacterization schema mismatch: stored "
                f"{payload.get('schema')}, current "
                f"{ALU_CHARACTERIZATION_SCHEMA}")
        config = CharacterizationConfig(**payload["config"])
        criticals = {mnemonic: decode(encoded) for mnemonic, encoded
                     in payload["critical_ps"].items()}
        return cls._rebuild(config, criticals,
                            payload["worst_sta_period_ps"])


#: In-process characterization cache, keyed by (alu key, config).
_CACHE: dict[tuple, AluCharacterization] = {}


def alu_fingerprint(alu: "AluNetlist") -> tuple:
    """Identity of an ALU's timing model: structure, unit scaling and
    cell library.  Part of every characterization *and* Monte-Carlo
    cache key, so hardware-model changes invalidate persisted results
    instead of serving stale ones."""
    scales = tuple(sorted(alu.unit_scales.items()))
    lib = alu.library
    return (alu.config.width, alu.config.adder_kind, scales,
            lib.vth, lib.alpha, lib.clk_to_q_ps, lib.setup_ps,
            tuple(sorted(lib.cell_delays_ps.items())))


def characterization_key(alu: "AluNetlist",
                         config: CharacterizationConfig) -> dict:
    """Result-store key payload for one characterization.

    Covers everything that determines the tables: the calibrated ALU
    identity (structure, unit scaling, cell library) and the full
    characterization config, plus the schema version.
    """
    return {
        "kind": "alu_characterization",
        "schema": ALU_CHARACTERIZATION_SCHEMA,
        "alu": alu_fingerprint(alu),
        "config": config_key_fields(config),
    }


def get_characterization(alu: "AluNetlist",
                         config: CharacterizationConfig | None = None,
                         engine: str | None = None) -> \
        AluCharacterization:
    """Cached characterization lookup (runs DTA on first use).

    The cache key is (ALU identity, config) only: ``engine`` is an
    execution detail -- native f64 is bit-identical to numpy f64, and
    the two f32 engines share one tolerance class -- so results are
    interchangeable across backends.
    """
    config = config or CharacterizationConfig()
    key = (alu_fingerprint(alu), config)
    found = _CACHE.get(key)
    if found is None:
        found = AluCharacterization.run(alu, config, engine=engine)
        _CACHE[key] = found
    return found


def clear_cache() -> None:
    """Drop all cached characterizations (mainly for tests)."""
    _CACHE.clear()
