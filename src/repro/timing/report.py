"""Timing report generation (STA endpoint-slack reports).

Produces the familiar sign-off-style view of the ALU's timing: per
endpoint bit, the worst static arrival, the required time (clock period
minus setup), the slack, and which functional unit owns the worst path.
Used by the examples and handy when exploring alternative calibration
targets or adder topologies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.netlist.alu import AluNetlist
from repro.netlist.library import VDD_REF


@dataclass(frozen=True)
class EndpointSlack:
    """One endpoint's timing at a given clock."""

    bit: int
    unit: str
    arrival_ps: float
    required_ps: float

    @property
    def slack_ps(self) -> float:
        return self.required_ps - self.arrival_ps

    @property
    def violated(self) -> bool:
        return self.slack_ps < 0


@dataclass
class TimingReport:
    """STA endpoint report for one operating point."""

    vdd: float
    frequency_hz: float
    endpoints: list[EndpointSlack]

    @property
    def worst(self) -> EndpointSlack:
        return min(self.endpoints, key=lambda e: e.slack_ps)

    @property
    def violations(self) -> list[EndpointSlack]:
        return [e for e in self.endpoints if e.violated]

    def render(self, limit: int | None = 10) -> str:
        """Sign-off style text report (worst endpoints first)."""
        ordered = sorted(self.endpoints, key=lambda e: e.slack_ps)
        if limit is not None:
            ordered = ordered[:limit]
        lines = [
            f"Timing report @ {self.vdd:.2f} V, "
            f"{self.frequency_hz / 1e6:.1f} MHz "
            f"(period {1e12 / self.frequency_hz:.1f} ps)",
            f"{'endpoint':>10s} {'unit':>12s} {'arrival':>9s} "
            f"{'required':>9s} {'slack':>9s}",
        ]
        for endpoint in ordered:
            marker = " (VIOLATED)" if endpoint.violated else ""
            lines.append(
                f"  result[{endpoint.bit:>2d}] {endpoint.unit:>12s} "
                f"{endpoint.arrival_ps:9.1f} {endpoint.required_ps:9.1f} "
                f"{endpoint.slack_ps:9.1f}{marker}")
        total = len(self.violations)
        lines.append(f"{total} violated endpoint(s) of "
                     f"{len(self.endpoints)}")
        return "\n".join(lines)


def timing_report(alu: "AluNetlist", frequency_hz: float,
                  vdd: float = VDD_REF) -> TimingReport:
    """Build the STA endpoint-slack report of an ALU.

    The arrival per endpoint bit is the worst over all functional
    units (the model-B view); the owning unit is recorded so reports
    show which block limits each bit.
    """
    if frequency_hz <= 0:
        raise ValueError("frequency must be positive")
    per_unit = alu.endpoint_sta(vdd)
    units = list(per_unit)
    stacked = np.stack([per_unit[u] for u in units])  # (units, 32)
    owner_index = np.argmax(stacked, axis=0)
    worst_arrival = stacked.max(axis=0)
    required = 1e12 / frequency_hz - alu.library.setup(vdd)
    endpoints = [
        EndpointSlack(
            bit=bit,
            unit=units[int(owner_index[bit])],
            arrival_ps=float(worst_arrival[bit]),
            required_ps=required,
        )
        for bit in range(stacked.shape[1])
    ]
    return TimingReport(vdd=vdd, frequency_hz=frequency_hz,
                        endpoints=endpoints)
