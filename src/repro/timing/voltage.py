"""Fitted supply-voltage / delay model.

Following the paper (Section 3.3), the relation between a supply
voltage change and path delay is extracted from a *fitted Vdd-delay
curve*, interpolated from the worst path delay at five supply voltages
(0.6 V to 1.0 V in 100 mV steps).  The fitted curve converts per-cycle
voltage noise into a multiplicative delay scale factor, and also powers
the voltage-overscaling analysis of Fig. 7 (running below the nominal
supply at fixed frequency).

As the paper's footnote 1 notes, assuming all paths scale with a single
factor is an approximation that holds for small changes around an
accurately characterized operating point; we adopt the same assumption.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.netlist.alu import AluNetlist
from repro.netlist.library import CHARACTERIZED_VDDS


@dataclass(frozen=True)
class VddDelayModel:
    """Polynomial fit of worst-path delay versus supply voltage.

    Attributes:
        coefficients: ``np.polyfit`` coefficients of delay [ps] vs
            Vdd [V], highest degree first.
        vdd_min: lowest voltage of the fitted data.
        vdd_max: highest voltage of the fitted data.
    """

    coefficients: tuple[float, ...]
    vdd_min: float
    vdd_max: float

    @classmethod
    def fit(cls, vdds: np.ndarray, delays_ps: np.ndarray,
            degree: int = 3) -> "VddDelayModel":
        """Fit the Vdd-delay curve from (voltage, delay) samples."""
        vdds = np.asarray(vdds, dtype=float)
        delays_ps = np.asarray(delays_ps, dtype=float)
        if vdds.shape != delays_ps.shape or vdds.size < degree + 1:
            raise ValueError(
                f"need at least {degree + 1} samples to fit degree "
                f"{degree}; got {vdds.size}")
        coeffs = np.polyfit(vdds, delays_ps, degree)
        return cls(coefficients=tuple(coeffs), vdd_min=float(vdds.min()),
                   vdd_max=float(vdds.max()))

    @classmethod
    def from_alu_sta(cls, alu: "AluNetlist",
                     vdds: tuple[float, ...] = CHARACTERIZED_VDDS,
                     degree: int = 3) -> "VddDelayModel":
        """Fit from STA of the ALU's worst path at each library corner.

        This mirrors the paper's methodology: the worst path is timed
        with the foundry views at each of the five characterized
        supplies, and the curve is interpolated between them.
        """
        voltages = np.array(vdds, dtype=float)
        delays = np.array(
            [alu.worst_sta_period_ps(v) for v in voltages])
        return cls.fit(voltages, delays, degree)

    def delay_ps(self, vdd: np.ndarray | float) -> np.ndarray | float:
        """Fitted worst-path delay [ps] at a supply voltage.

        Values outside the fitted range are clamped to the range edges
        (large physically-unrealistic extrapolations are not
        meaningful; noise is clipped to +-2 sigma anyway).
        """
        vdd = np.clip(vdd, self.vdd_min, self.vdd_max)
        return np.polyval(np.asarray(self.coefficients), vdd)

    def scale_factor(self, vdd_effective: np.ndarray | float,
                     vdd_reference: float) -> np.ndarray | float:
        """Delay multiplier at ``vdd_effective`` relative to a reference.

        A droop (lower effective voltage) yields a factor > 1: all path
        delays stretch by this factor during the affected cycle.
        """
        return self.delay_ps(vdd_effective) / self.delay_ps(vdd_reference)
