"""Timing-error probability CDFs and their runtime grid compilation.

From the DTA arrival statistics of one instruction we derive, per ALU
endpoint, the cumulative distribution function of the timing-error
probability over clock frequency: ``P_{E,V,I}(f) = v_f / n_I`` (paper
Section 3.4, Fig. 2).

Two views are provided:

* :class:`EndpointCdfs` -- the exact empirical CDFs, queried by period
  or frequency (used for plots, tables and tests);
* :class:`CdfGrid` -- a dense period-grid compilation used by the
  statistical fault injector on its per-cycle fast path: one bisect
  finds the grid row, which holds the per-endpoint probabilities, the
  any-endpoint violation probability and the tail products needed for
  conditional sampling.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass

import numpy as np


@dataclass
class EndpointCdfs:
    """Empirical per-endpoint timing-error CDFs for one instruction.

    Attributes:
        mnemonic: instruction these statistics belong to.
        vdd: characterization supply voltage.
        critical_sorted: (32, n) critical periods [ps], each endpoint
            row sorted ascending.
        row_max_sorted: (n,) per-cycle worst critical period, sorted
            ascending (drives the any-endpoint probability).
        critical_rows: (n, 32) the raw per-cycle critical periods in
            row-max sorted order (for joint empirical sampling).
    """

    mnemonic: str
    vdd: float
    critical_sorted: np.ndarray
    row_max_sorted: np.ndarray
    critical_rows: np.ndarray

    @classmethod
    def from_critical(cls, mnemonic: str, vdd: float,
                      critical_ps: np.ndarray) -> "EndpointCdfs":
        """Build from a DTA (n_cycles, 32) critical-period matrix."""
        if critical_ps.ndim != 2:
            raise ValueError("critical_ps must be 2-D (cycles, endpoints)")
        row_max = critical_ps.max(axis=1)
        order = np.argsort(row_max)
        return cls(
            mnemonic=mnemonic,
            vdd=vdd,
            critical_sorted=np.sort(critical_ps.T, axis=1),
            row_max_sorted=row_max[order],
            critical_rows=critical_ps[order],
        )

    @property
    def n_cycles(self) -> int:
        return self.critical_rows.shape[0]

    @property
    def n_endpoints(self) -> int:
        return self.critical_rows.shape[1]

    def error_probs(self, period_ps: float) -> np.ndarray:
        """Per-endpoint violation probability at a clock period."""
        n = self.n_cycles
        counts = np.array([
            n - np.searchsorted(row, period_ps, side="right")
            for row in self.critical_sorted
        ])
        return counts / n

    def any_error_prob(self, period_ps: float) -> float:
        """Probability that at least one endpoint violates at a period."""
        n = self.n_cycles
        index = np.searchsorted(self.row_max_sorted, period_ps,
                                side="right")
        return float(n - index) / n

    def error_probs_at_frequency(self, frequency_hz: float) -> np.ndarray:
        """Per-endpoint violation probability at a clock frequency."""
        return self.error_probs(1e12 / frequency_hz)

    def poff_frequency_hz(self) -> float:
        """Lowest frequency with a non-zero violation probability."""
        return 1e12 / float(self.row_max_sorted[-1])


@dataclass
class CdfGrid:
    """Dense period-grid compilation of one instruction's CDFs.

    Attributes:
        periods: (G,) ascending clock-period grid [ps].
        probs: (G, 32) per-endpoint violation probabilities.
        p_any: (G,) any-endpoint violation probability.
        tail_products: (G, 33) suffix products of (1 - p_bit), i.e.
            ``tail_products[g, i] = prod_{j >= i} (1 - probs[g, j])``;
            used for exact conditional sampling in independent mode.
    """

    periods: np.ndarray
    probs: np.ndarray
    p_any: np.ndarray
    tail_products: np.ndarray

    @classmethod
    def compile(cls, cdfs: EndpointCdfs, period_min_ps: float,
                period_max_ps: float, points: int = 2048) -> "CdfGrid":
        """Sample the CDFs onto a dense period grid."""
        if period_min_ps <= 0 or period_max_ps <= period_min_ps:
            raise ValueError("bad grid period range")
        periods = np.linspace(period_min_ps, period_max_ps, points)
        n = cdfs.n_cycles
        # Vectorized: for each endpoint row (sorted ascending), the
        # count of cycles exceeding each grid period is n - insertion
        # index of that period.
        probs = np.stack([
            n - np.searchsorted(row, periods, side="right")
            for row in cdfs.critical_sorted
        ]).T / n
        p_any = (n - np.searchsorted(cdfs.row_max_sorted, periods,
                                     side="right")) / n
        one_minus = 1.0 - probs
        tails = np.ones((points, probs.shape[1] + 1))
        tails[:, :-1] = np.cumprod(one_minus[:, ::-1], axis=1)[:, ::-1]
        return cls(periods=periods, probs=probs, p_any=p_any,
                   tail_products=tails)

    def __post_init__(self) -> None:
        # The injector's fast path uses plain-Python bisect on a list,
        # which is faster than numpy for scalar lookups.
        self._period_list = self.periods.tolist()
        self._p_any_list = self.p_any.tolist()

    def row_index(self, period_ps: float) -> int:
        """Grid row whose probabilities apply at an effective period.

        Periods below the grid clamp to the most pessimistic row;
        periods above the grid return -1 (no violations possible).
        """
        if period_ps >= self._period_list[-1]:
            return -1
        index = bisect_left(self._period_list, period_ps) - 1
        return max(index, 0)

    def p_any_at(self, row: int) -> float:
        return self._p_any_list[row]
