"""Dynamic timing analysis (DTA) of the ALU netlist.

DTA extracts the *statistics of data arrival times* at every ALU
endpoint, conditioned on the executing instruction, by driving the
gate-level netlist with a randomized characterization kernel and
running the two-vector timing simulation cycle by cycle (paper
Section 3.4, methodology of [14]).

Each characterization cycle applies a fresh random operand pair for the
instruction under analysis while the previous cycle's operands form the
"from" state, exactly like back-to-back execution of that instruction
in the pipeline's execute stage.  Operand distributions respect the
instruction's encoding (e.g. 16-bit sign-extended immediates).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.isa.instructions import spec_for
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.netlist.alu import AluNetlist
from repro.netlist.library import VDD_REF


def sample_operands(mnemonic: str, count: int,
                    rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """Random operand streams (a, b) matching an instruction's encoding.

    Register operands are uniform 32-bit values.  The second operand of
    an immediate-form instruction is drawn from its 16-bit immediate
    range (sign- or zero-extended to 32 bits per the ISA spec); shift
    immediates are drawn from 0..31.
    """
    spec = spec_for(mnemonic)
    a = rng.integers(0, 1 << 32, count, dtype=np.uint64)
    if mnemonic in ("l.slli", "l.srli", "l.srai"):
        b = rng.integers(0, 32, count, dtype=np.uint64)
    elif spec.fmt.name == "RRI":
        if spec.signed_imm:
            signed = rng.integers(-(1 << 15), 1 << 15, count,
                                  dtype=np.int64)
            b = (signed & 0xFFFFFFFF).astype(np.uint64)
        else:
            b = rng.integers(0, 1 << 16, count, dtype=np.uint64)
    else:
        b = rng.integers(0, 1 << 32, count, dtype=np.uint64)
    return a, b


@dataclass
class DtaResult:
    """Arrival statistics for one instruction at one supply voltage.

    Attributes:
        mnemonic: the characterized instruction.
        unit: functional unit it exercises.
        vdd: supply voltage of the timing view.
        critical_ps: (n_cycles, 32) array of *critical periods* per
            endpoint: data arrival (incl. clock-to-Q and output mux)
            plus the capture setup time.  A cycle violates endpoint E at
            clock period T exactly when ``critical_ps[cycle, E] > T``.
        glitch_model: event model used by the timing simulation.
    """

    mnemonic: str
    unit: str
    vdd: float
    critical_ps: np.ndarray
    glitch_model: str
    values: np.ndarray | None = None

    @property
    def n_cycles(self) -> int:
        return self.critical_ps.shape[0]

    def error_probabilities(self, period_ps: float) -> np.ndarray:
        """P_{E,V,I}(f): per-endpoint violation probability at a period.

        Computed as ``v_f / n_I`` -- the fraction of characterization
        cycles whose critical period exceeds the clock period (the
        paper's definition).
        """
        return (self.critical_ps > period_ps).mean(axis=0)


def run_dta(alu: "AluNetlist", mnemonic: str, n_cycles: int,
            vdd: float = VDD_REF, seed: int = 2016,
            block: int = 512, glitch_model: str = "sensitized",
            operands: tuple[np.ndarray, np.ndarray] | None = None,
            engine: str = "compiled") -> DtaResult:
    """Characterize one instruction's endpoint arrival statistics.

    Args:
        alu: calibrated ALU netlist.
        mnemonic: FI-eligible instruction to characterize.
        n_cycles: number of characterization cycles.
        vdd: supply voltage of the timing view.
        seed: RNG seed for the operand stream.
        block: cycles per vectorized evaluation block (bounds memory).
        glitch_model: see :meth:`Circuit.propagate`.
        operands: optional explicit (a, b) operand streams of length
            ``n_cycles + 1`` (overrides the default random sampling;
            used e.g. for restricted operand ranges in the
            instruction-characterization study, paper Section 4.1).
        engine: circuit engine, see :meth:`Circuit.propagate`.

    Returns:
        A :class:`DtaResult` with the (n_cycles, 32) critical periods
        and the functional result values per cycle.

    The result arrays are preallocated once and filled chunk by chunk;
    together with the circuit-level workspace reuse (one scratch block
    per unit, see :mod:`repro.netlist.plan`) and the per-corner delay
    tile cache, steady-state chunks run allocation-free.

    Parallel substrate: each block's propagate routes through
    whatever pools the process has configured -- with a thread-shard
    pool (``--shard-threads``), native-engine blocks fan out over
    in-process threads; numpy engines shard over the fork pool.  The
    results are bit-identical either way (f64), so ``block`` remains
    a pure memory/scheduling knob, never a results knob.
    """
    if n_cycles <= 0:
        raise ValueError("n_cycles must be positive")
    if os.environ.get("REPRO_FORBID_DTA"):
        # Verification hook (the DTA twin of REPRO_FORBID_MC): a
        # warm-cache fig2/fig4 rerun must be served entirely from the
        # result store, so reaching the timing simulator is a bug.
        raise RuntimeError(
            "DTA simulation attempted while REPRO_FORBID_DTA is set "
            "-- expected a result-store hit")
    unit = alu.unit_of(mnemonic)
    if operands is None:
        rng = np.random.default_rng(seed)
        a, b = sample_operands(mnemonic, n_cycles + 1, rng)
    else:
        a, b = operands
        a = np.asarray(a, dtype=np.uint64)
        b = np.asarray(b, dtype=np.uint64)
        if a.shape[0] < n_cycles + 1 or b.shape[0] < n_cycles + 1:
            raise ValueError(
                f"explicit operand streams need {n_cycles + 1} entries")
    setup = alu.library.setup(vdd)
    critical: np.ndarray | None = None
    all_values: np.ndarray | None = None
    for start in range(0, n_cycles, block):
        stop = min(start + block, n_cycles)
        prev = (a[start:stop], b[start:stop])
        new = (a[start + 1:stop + 1], b[start + 1:stop + 1])
        values, arrivals = alu.propagate(mnemonic, prev, new, vdd,
                                         glitch_model, engine=engine)
        if critical is None:
            critical = np.empty((n_cycles, arrivals.shape[0]))
            all_values = np.empty(n_cycles, dtype=values.dtype)
        critical[start:stop] = arrivals.T
        critical[start:stop] += setup
        all_values[start:stop] = values
    return DtaResult(mnemonic=mnemonic, unit=unit, vdd=vdd,
                     critical_ps=critical,
                     glitch_model=glitch_model,
                     values=all_values)
