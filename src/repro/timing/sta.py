"""Static timing analysis over gate-level circuits.

Classic topological longest-path analysis: every primary input launches
at the flip-flop clock-to-Q delay, every gate output's static arrival is
its delay plus the latest input arrival, and endpoint slack is measured
against the clock period minus the capture flip-flop's setup time.

STA is the timing view used by fault-injection models B and B+ (the
paper's Section 3.2/3.3) and the upper bound that dynamic timing
analysis can never exceed (property-tested).
"""

from __future__ import annotations

import numpy as np

from repro.netlist.circuit import Circuit
from repro.netlist.library import CellLibrary, VDD_REF


def static_arrivals(circuit: Circuit, library: CellLibrary,
                    vdd: float = VDD_REF, scale: float = 1.0,
                    include_clk_to_q: bool = True) -> dict[str, np.ndarray]:
    """Static (worst-case) data arrival time per output bit.

    Args:
        circuit: the netlist to analyze.
        library: timing library.
        vdd: supply voltage for the delay view.
        scale: unit sizing scale (see the library docs).
        include_clk_to_q: launch inputs at the flip-flop clock-to-Q
            delay (True for register-to-register paths).

    Returns:
        output bus name -> array of per-bit arrival times [ps].
        Setup time is *not* included; add ``library.setup(vdd)`` when
        comparing against a clock period.
    """
    delays = circuit.gate_delays(library, vdd, scale)
    launch = library.clk_to_q(vdd) if include_clk_to_q else 0.0
    arrival = np.zeros(circuit.n_nets)
    for net in range(2, circuit.n_nets):
        arrival[net] = launch  # primary inputs (overwritten for gates)
    arrival[0] = 0.0
    arrival[1] = 0.0
    for index, (ins, out) in enumerate(
            zip(circuit.gate_inputs, circuit.gate_outputs)):
        worst_in = max(arrival[i] for i in ins)
        arrival[out] = worst_in + delays[index]
    return {
        name: np.array([arrival[n] for n in circuit.output_nets(name)])
        for name in circuit.output_names
    }


def worst_arrival(circuit: Circuit, library: CellLibrary,
                  vdd: float = VDD_REF, scale: float = 1.0) -> float:
    """Worst static arrival over all outputs [ps], incl. clock-to-Q."""
    per_bus = static_arrivals(circuit, library, vdd, scale)
    return max(float(bits.max()) for bits in per_bus.values())


def max_frequency_hz(worst_arrival_ps: float, setup_ps: float) -> float:
    """Maximum clock frequency for a worst arrival + setup [Hz]."""
    period_ps = worst_arrival_ps + setup_ps
    if period_ps <= 0:
        raise ValueError("non-positive critical period")
    return 1e12 / period_ps
