"""Monte-Carlo result containers and aggregation.

One :class:`TrialResult` records a single fault-injected run; a
:class:`McPoint` aggregates the trials of one parameter configuration
(one data point of the paper's figures) into the four application-level
metrics of Section 4.2:

* probability that the program *finishes*,
* probability that the execution is *correct*,
* fault-injection rate in FIs per 1000 kernel cycles,
* output error of the remaining successful runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.mc.stats import mean, wilson_interval

#: Schema version of the McPoint JSON representation; bump on any
#: incompatible change (store entries key on it, so old entries are
#: invalidated rather than misread).
MC_POINT_SCHEMA = 1


@dataclass(frozen=True)
class TrialResult:
    """Outcome of one fault-injected benchmark run.

    Attributes:
        finished: the program reached its exit hook.
        correct: outputs matched the golden run exactly.
        error_value: benchmark-native output error (only meaningful when
            ``finished``; NaN-free: 0.0 for non-finishing runs).
        relative_error: normalized [0, 1] output error (same caveat).
        fault_count: injected faults (corrupted bits).
        kernel_cycles: cycles executed inside the FI window.
        alu_cycles: FI-eligible instructions inside the FI window.
        cycles: total executed cycles.
        abort_reason: reason tag for non-finishing runs.
    """

    finished: bool
    correct: bool
    error_value: float
    relative_error: float
    fault_count: int
    kernel_cycles: int
    alu_cycles: int
    cycles: int
    abort_reason: str | None = None

    @property
    def fi_rate_per_kcycle(self) -> float:
        if self.kernel_cycles <= 0:
            return 0.0
        return 1000.0 * self.fault_count / self.kernel_cycles

    def to_json(self) -> dict:
        """JSON-native dict; every field is losslessly representable."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_json(cls, payload: dict) -> "TrialResult":
        """Inverse of :meth:`to_json` (exact round-trip)."""
        names = {f.name for f in fields(cls)}
        unknown = set(payload) - names
        if unknown:
            raise ValueError(f"unknown TrialResult fields {sorted(unknown)}")
        return cls(**payload)


@dataclass
class McPoint:
    """Aggregated Monte-Carlo metrics for one configuration.

    The error statistics follow the paper's convention: output error is
    averaged over the *successful* (finished) runs only, while the FI
    rate is averaged over all runs.
    """

    label: str
    trials: list[TrialResult] = field(default_factory=list)
    config: dict = field(default_factory=dict)

    def add(self, trial: TrialResult) -> None:
        self.trials.append(trial)

    @property
    def n_trials(self) -> int:
        return len(self.trials)

    @property
    def p_finished(self) -> float:
        if not self.trials:
            return 0.0
        return sum(t.finished for t in self.trials) / len(self.trials)

    @property
    def p_correct(self) -> float:
        if not self.trials:
            return 0.0
        return sum(t.correct for t in self.trials) / len(self.trials)

    @property
    def fi_rate_per_kcycle(self) -> float:
        return mean([t.fi_rate_per_kcycle for t in self.trials])

    @property
    def mean_error_of_finished(self) -> float:
        """Benchmark-native error averaged over finishing runs."""
        finished = [t.error_value for t in self.trials if t.finished]
        return mean(finished)

    @property
    def mean_relative_error_of_finished(self) -> float:
        """Normalized error averaged over finishing runs."""
        finished = [t.relative_error for t in self.trials if t.finished]
        return mean(finished)

    def finished_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Wilson CI of the finish probability."""
        if not self.trials:
            return (0.0, 0.0)
        return wilson_interval(
            sum(t.finished for t in self.trials), len(self.trials), z)

    def correct_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Wilson CI of the correctness probability."""
        if not self.trials:
            return (0.0, 0.0)
        return wilson_interval(
            sum(t.correct for t in self.trials), len(self.trials), z)

    def abort_histogram(self) -> dict[str, int]:
        """Counts of abort reasons among non-finishing runs."""
        histogram: dict[str, int] = {}
        for trial in self.trials:
            if trial.finished:
                continue
            reason = trial.abort_reason or "unknown"
            histogram[reason] = histogram.get(reason, 0) + 1
        return histogram

    def summary(self) -> dict[str, float]:
        """Flat metric dict, convenient for tables and benches."""
        return {
            "n_trials": float(self.n_trials),
            "p_finished": self.p_finished,
            "p_correct": self.p_correct,
            "fi_rate_per_kcycle": self.fi_rate_per_kcycle,
            "mean_error": self.mean_error_of_finished,
            "mean_relative_error": self.mean_relative_error_of_finished,
        }

    # -- persistence -----------------------------------------------------

    def to_json(self) -> dict:
        """Lossless JSON body (schema ``MC_POINT_SCHEMA``).

        Trials serialize field-by-field; the config dict goes through
        the store encoder so numpy scalars keep their exact dtype.
        """
        from repro.store.serialize import encode
        return {
            "schema": MC_POINT_SCHEMA,
            "label": self.label,
            "config": encode(self.config),
            "trials": [trial.to_json() for trial in self.trials],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "McPoint":
        """Inverse of :meth:`to_json` (exact round-trip)."""
        from repro.store.serialize import decode
        if payload.get("schema") != MC_POINT_SCHEMA:
            raise ValueError(
                f"McPoint schema mismatch: stored {payload.get('schema')}, "
                f"current {MC_POINT_SCHEMA}")
        return cls(
            label=payload["label"],
            trials=[TrialResult.from_json(t) for t in payload["trials"]],
            config=decode(payload["config"]),
        )
