"""Parameter sweeps: frequency curves, PoFF detection, STA gains.

A frequency sweep reproduces one sub-figure of the paper: the four
application metrics as a function of clock frequency at a fixed supply
voltage and noise level.  The point of first failure (PoFF) is the
lowest swept frequency at which the application no longer finishes with
a 100 % correct result; its gain over the STA limit is the headline
number annotated in the paper's Fig. 5/6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.bench.kernel import KernelInstance
from repro.fi.base import FaultInjector
from repro.mc.results import McPoint
from repro.mc.runner import run_point
from repro.mc.units import PointUnit, mc_point_key, resolve_units, \
    stream_scheme

#: Builds an injector for (frequency_hz, rng).
FrequencyInjectorFactory = Callable[
    [float, np.random.Generator], FaultInjector]

#: Schema version of the FrequencySweep JSON representation.
FREQUENCY_SWEEP_SCHEMA = 1

#: Per-frequency seed stride (each swept point derives its own master
#: seed as ``seed + SWEEP_SEED_STRIDE * index`` over the sorted grid).
SWEEP_SEED_STRIDE = 104729


@dataclass
class FrequencySweep:
    """Results of one frequency sweep of one benchmark.

    Attributes:
        kernel_name: benchmark name.
        frequencies_hz: swept frequencies, ascending.
        points: one aggregated :class:`McPoint` per frequency.
        sta_limit_hz: STA frequency limit of the hardware at the swept
            operating condition (for PoFF-gain reporting).
        config: free-form description of the sweep conditions.
    """

    kernel_name: str
    frequencies_hz: list[float]
    points: list[McPoint]
    sta_limit_hz: float
    config: dict = field(default_factory=dict)

    def metric_series(self, metric: str) -> list[float]:
        """Extract one metric across the sweep (see McPoint.summary)."""
        return [point.summary()[metric] for point in self.points]

    def poff_hz(self) -> float | None:
        """Lowest frequency where not every trial finished correct.

        Returns None when every swept point is fully correct (PoFF is
        beyond the sweep) -- callers should widen the sweep.
        """
        for frequency, point in zip(self.frequencies_hz, self.points):
            if point.p_correct < 1.0:
                return frequency
        return None

    def poff_gain_over_sta(self) -> float | None:
        """Relative PoFF gain over the STA limit (paper's annotation).

        Positive values mean the application still ran fully correct
        beyond the STA frequency; None when PoFF is outside the sweep.
        """
        poff = self.poff_hz()
        if poff is None:
            return None
        return poff / self.sta_limit_hz - 1.0

    def rows(self) -> list[dict[str, float]]:
        """Tabular view: one dict per swept frequency."""
        table = []
        for frequency, point in zip(self.frequencies_hz, self.points):
            row = {"frequency_mhz": frequency / 1e6}
            row.update(point.summary())
            table.append(row)
        return table

    # -- persistence -----------------------------------------------------

    def to_json(self) -> dict:
        """Lossless JSON body (schema ``FREQUENCY_SWEEP_SCHEMA``)."""
        from repro.store.serialize import encode
        return {
            "schema": FREQUENCY_SWEEP_SCHEMA,
            "kernel_name": self.kernel_name,
            "frequencies_hz": [float(f) for f in self.frequencies_hz],
            "points": [point.to_json() for point in self.points],
            "sta_limit_hz": float(self.sta_limit_hz),
            "config": encode(self.config),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "FrequencySweep":
        """Inverse of :meth:`to_json` (exact round-trip)."""
        from repro.store.serialize import decode
        if payload.get("schema") != FREQUENCY_SWEEP_SCHEMA:
            raise ValueError(
                f"FrequencySweep schema mismatch: stored "
                f"{payload.get('schema')}, current {FREQUENCY_SWEEP_SCHEMA}")
        return cls(
            kernel_name=payload["kernel_name"],
            frequencies_hz=list(payload["frequencies_hz"]),
            points=[McPoint.from_json(p) for p in payload["points"]],
            sta_limit_hz=payload["sta_limit_hz"],
            config=decode(payload["config"]),
        )


def sweep_units(kernel: KernelInstance,
                injector_factory: FrequencyInjectorFactory,
                frequencies_hz: list[float],
                n_trials: int,
                seed: int = 0,
                n_jobs: int | None = None,
                experiment: str = "",
                scale=None,
                condition: dict | None = None) -> list[PointUnit]:
    """Decompose a frequency sweep into per-point work units.

    One unit per swept frequency, in ascending-frequency order, each
    with the exact ``run_point`` invocation :func:`sweep_frequencies`
    has always made (same derived seed, label and recorded config), so
    unit-resolved sweeps are bit-identical to the historical loop.

    ``experiment``/``scale``/``condition`` only parameterize the cache
    key (see :func:`repro.mc.units.mc_point_key`); they do not affect
    the computation.
    """
    stream = stream_scheme(n_jobs)
    units = []
    for index, frequency in enumerate(sorted(frequencies_hz)):
        point_seed = seed + SWEEP_SEED_STRIDE * index
        point_condition = {**(condition or {}),
                           "frequency_hz": float(frequency)}

        def compute(f=frequency, s=point_seed):
            # The frequency travels as injector_args (not a closure):
            # every point of the sweep then shares one factory object,
            # which is what lets the persistent pool keep its workers
            # across the whole sweep.
            point = run_point(
                kernel,
                injector_factory,
                n_trials=n_trials,
                seed=s,
                label=f"{kernel.name}@{f / 1e6:.1f}MHz",
                n_jobs=n_jobs,
                injector_args=(f,),
            )
            point.config = {"frequency_hz": f}
            return point

        units.append(PointUnit(
            label=f"{experiment or kernel.name}:"
                  f"{kernel.name}@{frequency / 1e6:.1f}MHz",
            key=mc_point_key(experiment, scale, point_seed, stream,
                             kernel, n_trials, point_condition),
            compute=compute,
        ))
    return units


def sweep_frequencies(kernel: KernelInstance,
                      injector_factory: FrequencyInjectorFactory,
                      frequencies_hz: list[float],
                      n_trials: int,
                      sta_limit_hz: float,
                      seed: int = 0,
                      config: dict | None = None,
                      n_jobs: int | None = None,
                      store=None,
                      experiment: str = "",
                      scale=None,
                      key_extra: dict | None = None) -> FrequencySweep:
    """Run a Monte-Carlo frequency sweep.

    Args:
        kernel: benchmark instance (reused across points; the CPU is
            compiled once per point and reset between trials).
        injector_factory: builds an injector for a frequency and RNG.
        frequencies_hz: frequencies to sweep (any order; stored sorted).
        n_trials: Monte-Carlo trials per frequency.
        sta_limit_hz: hardware STA limit for PoFF-gain reporting.
        seed: master seed; every (frequency, trial) pair derives an
            independent stream.
        config: description recorded on the sweep.
        n_jobs: forwarded to :func:`repro.mc.runner.run_point`; an
            integer switches every point to independent per-trial
            streams (bit-identical for any job count), ``None`` keeps
            the historical serial scheme.
        store: optional :class:`repro.store.ResultStore`; points found
            there skip their Monte-Carlo simulation, misses are
            computed and persisted.
        experiment: experiment name for the cache key.
        scale: :class:`~repro.experiments.scale.Scale` for the cache key.
        key_extra: extra condition fields for the cache key (e.g. the
            characterization fingerprint) merged on top of ``config``.
    """
    ordered = sorted(frequencies_hz)
    units = sweep_units(kernel, injector_factory, ordered, n_trials,
                        seed=seed, n_jobs=n_jobs, experiment=experiment,
                        scale=scale,
                        condition={**(config or {}), **(key_extra or {})})
    points, _, _ = resolve_units(units, store)
    return FrequencySweep(
        kernel_name=kernel.name,
        frequencies_hz=ordered,
        points=points,
        sta_limit_hz=sta_limit_hz,
        config=config or {},
    )


def frequency_grid(center_hz: float, span_rel: float,
                   points: int) -> list[float]:
    """Symmetric relative frequency grid around a center frequency.

    ``span_rel`` must lie in [0, 1): a span of 1 or more would emit
    zero or negative frequencies, which poison every downstream period
    computation (``1e12 / f``).
    """
    if points < 2:
        raise ValueError("need at least two grid points")
    if not 0.0 <= span_rel < 1.0:
        raise ValueError(
            f"span_rel must be in [0, 1) -- a span of {span_rel} would "
            f"emit zero or negative frequencies, whose clock periods "
            f"(1e12 / f) are meaningless")
    return list(np.linspace(center_hz * (1 - span_rel),
                            center_hz * (1 + span_rel), points))
