"""Monte-Carlo harness: trials, aggregation, sweeps, statistics."""

from repro.mc.results import McPoint, TrialResult
from repro.mc.runner import (
    BUDGET_FACTOR,
    golden_cycles,
    run_point,
    run_trial,
    trial_budget,
    trial_seeds,
)
from repro.mc.stats import geometric_mean, mean, std, wilson_interval
from repro.mc.sweep import FrequencySweep, frequency_grid, sweep_frequencies

__all__ = [
    "BUDGET_FACTOR",
    "FrequencySweep",
    "McPoint",
    "TrialResult",
    "frequency_grid",
    "geometric_mean",
    "golden_cycles",
    "mean",
    "run_point",
    "run_trial",
    "std",
    "sweep_frequencies",
    "trial_budget",
    "trial_seeds",
    "wilson_interval",
]
