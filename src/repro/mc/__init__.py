"""Monte-Carlo harness: trials, aggregation, sweeps, statistics."""

from repro.mc.results import MC_POINT_SCHEMA, McPoint, TrialResult
from repro.mc.runner import (
    BUDGET_FACTOR,
    golden_cycles,
    run_point,
    run_trial,
    trial_budget,
    trial_seeds,
)
from repro.mc.stats import geometric_mean, mean, std, wilson_interval
from repro.mc.sweep import (
    FREQUENCY_SWEEP_SCHEMA,
    FrequencySweep,
    frequency_grid,
    sweep_frequencies,
    sweep_units,
)
from repro.mc.units import (
    PointUnit,
    WorkUnit,
    mc_point_key,
    resolve_units,
    stream_scheme,
    work_unit_key,
)

__all__ = [
    "BUDGET_FACTOR",
    "FREQUENCY_SWEEP_SCHEMA",
    "FrequencySweep",
    "MC_POINT_SCHEMA",
    "McPoint",
    "PointUnit",
    "TrialResult",
    "WorkUnit",
    "frequency_grid",
    "geometric_mean",
    "golden_cycles",
    "mc_point_key",
    "mean",
    "resolve_units",
    "run_point",
    "run_trial",
    "std",
    "stream_scheme",
    "sweep_frequencies",
    "sweep_units",
    "trial_budget",
    "trial_seeds",
    "wilson_interval",
    "work_unit_key",
]
