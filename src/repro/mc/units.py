"""Work units: the campaign/store currency of every experiment layer.

A figure-level experiment decomposes into **work units**: one unit
computes one storable artifact (a Monte-Carlo :class:`McPoint`, a
fig2 CDF curve, a fig4 MSE curve, ...) and carries the canonical
cache-key payload that addresses its result in a
:class:`repro.store.ResultStore`.  The unit machinery is deliberately
kind-agnostic -- the ``kind`` field of the key payload selects the
artifact's schema and (de)serializer through the store's registry
(:mod:`repro.store.schema`), so any artifact with a lossless
``to_json``/``from_json`` pair can ride the same rails.  The same
units serve three callers:

* the figure drivers iterate them in order (store-aware: hits skip the
  expensive computation entirely);
* the campaign orchestrator shards them across a process pool and
  persists each result as soon as it completes (kill-safe resume);
* tests compare resolve paths (fresh vs cached vs pooled) for
  bit-identical output.

Key discipline: the payload contains *everything* that determines the
result -- experiment, full scale preset, master seed, and the
condition config (voltage, noise, frequency, hardware-model
fingerprint, benchmark identity) -- plus the schema version, so a
schema bump invalidates stale entries by construction.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Callable

from repro.bench.kernel import KernelInstance
from repro.mc.results import MC_POINT_SCHEMA
from repro.mc.runner import BUDGET_FACTOR


def stream_scheme(n_jobs: int | None) -> str:
    """Random-stream scheme implied by an ``n_jobs`` setting.

    ``run_point`` draws trials from one continuing stream when
    ``n_jobs`` is None and from independent per-trial child seeds when
    it is set; the two produce different (both valid) points, so the
    scheme must be part of the cache key.  Within a scheme the results
    are bit-identical at any job count, which is why the job count
    itself is *not* part of the key.
    """
    return "serial" if n_jobs is None else "per-trial"


def work_unit_key(kind: str, experiment: str, scale, seed: int,
                  condition: dict | None, stream: str = "dta") -> dict:
    """Canonical cache-key payload for one work unit of any kind.

    The schema version is read from the store's kind registry so it
    always tracks the artifact's ``*_SCHEMA`` constant.  ``stream``
    defaults to ``"dta"`` for deterministic (non-Monte-Carlo)
    artifacts; Monte-Carlo points pass their random-stream scheme
    through :func:`mc_point_key` instead.
    """
    from repro.store.schema import current_schema
    return {
        "kind": kind,
        "schema": current_schema(kind),
        "experiment": experiment,
        "scale": asdict(scale) if scale is not None else None,
        "seed": seed,
        "stream": stream,
        "config": dict(condition or {}),
    }


def mc_point_key(experiment: str, scale, seed: int, stream: str,
                 kernel: KernelInstance, n_trials: int,
                 condition: dict | None) -> dict:
    """Canonical cache-key payload for one Monte-Carlo point."""
    return {
        "kind": "mc_point",
        "schema": MC_POINT_SCHEMA,
        "experiment": experiment,
        "scale": asdict(scale) if scale is not None else None,
        "seed": seed,
        "stream": stream,
        "config": {
            **(condition or {}),
            "benchmark": kernel.name,
            "kernel_params": dict(kernel.params),
            "n_trials": n_trials,
            "budget_factor": BUDGET_FACTOR,
        },
    }


@dataclass
class WorkUnit:
    """One store-addressable unit of work of any artifact kind.

    Attributes:
        label: human-readable unit name (shown by campaign status).
        key: full cache-key payload (see :func:`work_unit_key` /
            :func:`mc_point_key`); its ``kind`` field selects the
            artifact schema and serializer.
        compute: runs the expensive computation and returns the
            artifact (a closure over the experiment context, kernels
            and seeds; it is fork-inheritable but not picklable).
    """

    label: str
    key: dict
    compute: Callable[[], object]


#: Backwards-compatible alias from when units were hard-wired to
#: :class:`~repro.mc.results.McPoint`.
PointUnit = WorkUnit


def resolve_units(units: list[WorkUnit], store=None,
                  progress: Callable[[str], None] | None = None) \
        -> tuple[list, int, int]:
    """Resolve units in order against a store (or compute them all).

    Every store hit skips its computation; every miss is computed and
    immediately persisted, so a killed run resumes from the last
    completed unit.  Returns ``(artifacts, n_cached, n_computed)``;
    the artifacts are in unit order either way.
    """
    artifacts: list = []
    n_cached = 0
    n_computed = 0
    for unit in units:
        artifact = store.get(unit.key) if store is not None else None
        if artifact is None:
            artifact = unit.compute()
            if store is not None:
                store.put(unit.key, artifact, label=unit.label)
            n_computed += 1
            if progress is not None:
                progress(f"computed {unit.label}")
        else:
            n_cached += 1
            if progress is not None:
                progress(f"cached   {unit.label}")
        artifacts.append(artifact)
    return artifacts, n_cached, n_computed
