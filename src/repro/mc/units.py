"""Point-level work units: the campaign/store currency of the MC layer.

A figure-level experiment decomposes into **point units**: one unit
computes one :class:`McPoint` (one data point of a paper figure) and
carries the canonical cache-key payload that addresses its result in a
:class:`repro.store.ResultStore`.  The same units serve three callers:

* the figure drivers iterate them in order (store-aware: hits skip the
  Monte-Carlo simulation entirely);
* the campaign orchestrator shards them across a process pool and
  persists each result as soon as it completes (kill-safe resume);
* tests compare resolve paths (fresh vs cached vs pooled) for
  bit-identical output.

Key discipline: the payload contains *everything* that determines the
result -- experiment, full scale preset, master seed, stream scheme
(serial vs per-trial child seeds), benchmark identity and the
condition config (voltage, noise, frequency, characterization
fingerprint) -- plus the schema version, so a schema bump invalidates
stale entries by construction.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Callable

from repro.bench.kernel import KernelInstance
from repro.mc.results import MC_POINT_SCHEMA, McPoint
from repro.mc.runner import BUDGET_FACTOR


def stream_scheme(n_jobs: int | None) -> str:
    """Random-stream scheme implied by an ``n_jobs`` setting.

    ``run_point`` draws trials from one continuing stream when
    ``n_jobs`` is None and from independent per-trial child seeds when
    it is set; the two produce different (both valid) points, so the
    scheme must be part of the cache key.  Within a scheme the results
    are bit-identical at any job count, which is why the job count
    itself is *not* part of the key.
    """
    return "serial" if n_jobs is None else "per-trial"


def mc_point_key(experiment: str, scale, seed: int, stream: str,
                 kernel: KernelInstance, n_trials: int,
                 condition: dict | None) -> dict:
    """Canonical cache-key payload for one Monte-Carlo point."""
    return {
        "kind": "mc_point",
        "schema": MC_POINT_SCHEMA,
        "experiment": experiment,
        "scale": asdict(scale) if scale is not None else None,
        "seed": seed,
        "stream": stream,
        "config": {
            **(condition or {}),
            "benchmark": kernel.name,
            "kernel_params": dict(kernel.params),
            "n_trials": n_trials,
            "budget_factor": BUDGET_FACTOR,
        },
    }


@dataclass
class PointUnit:
    """One store-addressable unit of Monte-Carlo work.

    Attributes:
        label: human-readable unit name (shown by campaign status).
        key: full cache-key payload (see :func:`mc_point_key`).
        compute: runs the Monte-Carlo simulation and returns the point
            (a closure over the kernel, injector factory and seeds; it
            is fork-inheritable but not picklable).
    """

    label: str
    key: dict
    compute: Callable[[], McPoint]


def resolve_units(units: list[PointUnit], store=None,
                  progress: Callable[[str], None] | None = None) \
        -> tuple[list[McPoint], int, int]:
    """Resolve units in order against a store (or compute them all).

    Every store hit skips its Monte-Carlo simulation; every miss is
    computed and immediately persisted, so a killed run resumes from
    the last completed unit.  Returns ``(points, n_cached,
    n_computed)``; the points are in unit order either way.
    """
    points: list[McPoint] = []
    n_cached = 0
    n_computed = 0
    for unit in units:
        point = store.get(unit.key) if store is not None else None
        if point is None:
            point = unit.compute()
            if store is not None:
                store.put(unit.key, point, label=unit.label)
            n_computed += 1
            if progress is not None:
                progress(f"computed {unit.label}")
        else:
            n_cached += 1
            if progress is not None:
                progress(f"cached   {unit.label}")
        points.append(point)
    return points, n_cached, n_computed
