"""Small statistics helpers for Monte-Carlo aggregation."""

from __future__ import annotations

import math


def wilson_interval(successes: int, trials: int,
                    z: float = 1.96) -> tuple[float, float]:
    """Wilson score confidence interval for a binomial proportion.

    Args:
        successes: number of successes.
        trials: number of trials (must be positive).
        z: normal quantile (1.96 for 95%).

    Returns:
        (low, high) bounds of the proportion.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must lie in [0, trials]")
    p = successes / trials
    denom = 1.0 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    half = (z / denom) * math.sqrt(
        p * (1 - p) / trials + z * z / (4 * trials * trials))
    return max(0.0, center - half), min(1.0, center + half)


def mean(values: list[float]) -> float:
    """Arithmetic mean (0.0 for an empty list)."""
    return sum(values) / len(values) if values else 0.0


def std(values: list[float]) -> float:
    """Sample standard deviation (0.0 below two samples)."""
    n = len(values)
    if n < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (n - 1))


def geometric_mean(values: list[float]) -> float:
    """Geometric mean of positive values (0.0 for an empty list)."""
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
