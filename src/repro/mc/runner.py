"""Monte-Carlo execution of fault-injected benchmark runs.

The runner owns the reproducibility story: a master seed derives one
RNG substream per (configuration, trial), new CPU state per trial, and
a cycle budget tied to the fault-free execution length of the kernel
(the infinite-loop detector of the paper's ISS).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.bench.kernel import KernelInstance
from repro.fi.base import FaultInjector, NullInjector
from repro.mc.results import McPoint, TrialResult
from repro.sim.cpu import Cpu
from repro.sim.machine import MachineConfig

#: Multiplier on the fault-free cycle count used as the cycle budget;
#: a run exceeding it is aborted as an infinite loop.
BUDGET_FACTOR = 4

InjectorFactory = Callable[[np.random.Generator], FaultInjector]


def golden_cycles(kernel: KernelInstance,
                  config: MachineConfig | None = None) -> int:
    """Fault-free cycle count of a kernel (cached on the instance)."""
    if kernel._golden_cycles is None:
        cpu = Cpu(kernel.program, config=config, injector=NullInjector())
        result = cpu.run(kernel.entry)
        if not result.finished:
            raise RuntimeError(
                f"kernel {kernel.name} does not finish fault-free "
                f"({result.abort_reason})")
        outputs = cpu.dmem.read_words(kernel.output_address,
                                      kernel.output_count)
        if not kernel.is_correct(outputs):
            raise RuntimeError(
                f"kernel {kernel.name} fault-free outputs do not match "
                f"the golden reference")
        kernel._golden_cycles = result.cycles
    return kernel._golden_cycles


def run_trial(kernel: KernelInstance, injector: FaultInjector,
              config: MachineConfig | None = None,
              budget_factor: int = BUDGET_FACTOR) -> TrialResult:
    """Execute one fault-injected run and judge its outputs."""
    base_config = config or MachineConfig()
    budget = budget_factor * golden_cycles(kernel, base_config) + 1000
    cpu = Cpu(kernel.program, config=base_config.with_max_cycles(budget),
              injector=injector)
    result = cpu.run(kernel.entry)
    finished = result.finished
    correct = False
    error_value = 0.0
    relative_error = 0.0
    if finished:
        outputs = cpu.dmem.read_words(kernel.output_address,
                                      kernel.output_count)
        correct = kernel.is_correct(outputs)
        error_value = kernel.error_value(outputs, kernel.golden)
        relative_error = kernel.relative_error(outputs, kernel.golden)
    return TrialResult(
        finished=finished,
        correct=correct,
        error_value=error_value,
        relative_error=relative_error,
        fault_count=result.fault_count,
        kernel_cycles=result.kernel_cycles,
        alu_cycles=result.alu_cycles,
        cycles=result.cycles,
        abort_reason=result.abort_reason,
    )


def run_point(kernel: KernelInstance, injector_factory: InjectorFactory,
              n_trials: int, seed: int = 0, label: str = "",
              config: MachineConfig | None = None) -> McPoint:
    """Run ``n_trials`` Monte-Carlo trials of one configuration.

    Args:
        kernel: the benchmark instance.
        injector_factory: builds a fresh injector from a per-trial RNG.
        n_trials: number of trials (paper: at least 100 per point).
        seed: master seed; trials use independent child streams.
        label: point label for reports.
        config: machine configuration override.

    Returns:
        The aggregated :class:`McPoint`.
    """
    if n_trials <= 0:
        raise ValueError("n_trials must be positive")
    point = McPoint(label=label or kernel.name)
    master = np.random.default_rng(seed)
    # One injector serves all trials of the point: construction (CDF
    # grids, noise blocks) is much more expensive than a trial, and the
    # CPU calls begin_run() before every run, which resets the per-run
    # counters while the random stream continues across trials.
    injector = injector_factory(master)
    for _ in range(n_trials):
        point.add(run_trial(kernel, injector, config))
    return point
