"""Monte-Carlo execution of fault-injected benchmark runs.

The runner owns the reproducibility story: a master seed derives the
injector RNG stream(s), and a cycle budget tied to the fault-free
execution length of the kernel (the infinite-loop detector of the
paper's ISS) bounds every trial.

Two execution schemes:

* **Serial** (``n_jobs=None``, the historical default): one injector
  serves all trials of a point and its random stream continues across
  trials.  Since the compiled-code rework, the CPU is constructed once
  per point and restored between trials via :meth:`Cpu.reset` (the
  instruction closures are compiled exactly once per point) -- results
  are bit-identical to the per-trial-CPU scheme because ``reset``
  restores the exact construction-time architectural state.
* **Per-trial streams** (``n_jobs`` set): every trial gets an
  independent child seed spawned from the master
  :class:`numpy.random.SeedSequence` and builds its own injector, so
  trial outcomes do not depend on execution order.  This is what makes
  process-parallel execution (``n_jobs >= 2``) bit-identical to the
  same scheme run serially (``n_jobs=1``).

Parallel execution prefers the process-global persistent pool
(:mod:`repro.parallel`, when configured): the kernel, injector factory
and machine config are registered with the pool once per change (fork
inheritance -- they hold compiled closures and cannot be pickled),
per-point seeds travel the worker pipes, and repeated ``run_point``
calls of one sweep reuse the same workers instead of forking a
throwaway pool per point.  Without a configured pool the historical
per-call fork pool is used, falling back to in-process execution where
fork is unavailable.  All three execution paths are bit-identical at
any worker count.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable

import numpy as np

from repro import parallel
from repro.bench.kernel import KernelInstance
from repro.fi.base import FaultInjector, NullInjector
from repro.mc.results import McPoint, TrialResult
from repro.sim.cpu import Cpu
from repro.sim.machine import MachineConfig

#: Multiplier on the fault-free cycle count used as the cycle budget;
#: a run exceeding it is aborted as an infinite loop.
BUDGET_FACTOR = 4

InjectorFactory = Callable[[np.random.Generator], FaultInjector]


def golden_cycles(kernel: KernelInstance,
                  config: MachineConfig | None = None) -> int:
    """Fault-free cycle count of a kernel (cached on the instance)."""
    if kernel._golden_cycles is None:
        cpu = Cpu(kernel.program, config=config, injector=NullInjector())
        result = cpu.run(kernel.entry)
        if not result.finished:
            raise RuntimeError(
                f"kernel {kernel.name} does not finish fault-free "
                f"({result.abort_reason})")
        outputs = cpu.dmem.read_words(kernel.output_address,
                                      kernel.output_count)
        if not kernel.is_correct(outputs):
            raise RuntimeError(
                f"kernel {kernel.name} fault-free outputs do not match "
                f"the golden reference")
        kernel._golden_cycles = result.cycles
    return kernel._golden_cycles


def trial_budget(kernel: KernelInstance,
                 config: MachineConfig | None = None,
                 budget_factor: int = BUDGET_FACTOR) -> int:
    """Cycle budget applied to every fault-injected trial."""
    return budget_factor * golden_cycles(kernel, config) + 1000


def _judge(cpu: Cpu, kernel: KernelInstance, result) -> TrialResult:
    """Fold one execution result into a :class:`TrialResult`."""
    finished = result.finished
    correct = False
    error_value = 0.0
    relative_error = 0.0
    if finished:
        outputs = cpu.dmem.read_words(kernel.output_address,
                                      kernel.output_count)
        correct = kernel.is_correct(outputs)
        error_value = kernel.error_value(outputs, kernel.golden)
        relative_error = kernel.relative_error(outputs, kernel.golden)
    return TrialResult(
        finished=finished,
        correct=correct,
        error_value=error_value,
        relative_error=relative_error,
        fault_count=result.fault_count,
        kernel_cycles=result.kernel_cycles,
        alu_cycles=result.alu_cycles,
        cycles=result.cycles,
        abort_reason=result.abort_reason,
    )


def run_trial(kernel: KernelInstance, injector: FaultInjector,
              config: MachineConfig | None = None,
              budget_factor: int = BUDGET_FACTOR,
              cpu: Cpu | None = None) -> TrialResult:
    """Execute one fault-injected run and judge its outputs.

    Args:
        kernel: the benchmark instance.
        injector: fault injector for this trial.
        config: machine configuration override.
        budget_factor: cycle-budget multiplier on the golden run.
        cpu: optional CPU to reuse: it is reset (registers, data
            memory, counters restored from the construction-time
            snapshot) and re-armed with ``injector`` instead of
            constructing -- and re-compiling -- a fresh CPU.  Results
            are bit-identical either way; the reused CPU must have been
            built with the same machine ``config`` (a mismatch raises
            ``ValueError`` rather than silently running with the old
            memory map).
    """
    base_config = config or MachineConfig()
    budget = trial_budget(kernel, base_config, budget_factor)
    if cpu is None:
        cpu = Cpu(kernel.program,
                  config=base_config.with_max_cycles(budget),
                  injector=injector)
    else:
        if cpu.config.with_max_cycles(budget) != \
                base_config.with_max_cycles(budget):
            raise ValueError(
                "reused cpu was built with a different MachineConfig "
                f"({cpu.config}) than requested ({base_config})")
        cpu.reset()
        cpu.injector = injector
    result = cpu.run(kernel.entry, max_cycles=budget)
    return _judge(cpu, kernel, result)


def trial_seeds(seed: int, n_trials: int) -> list[np.random.SeedSequence]:
    """Independent per-trial child seeds of one master seed."""
    return np.random.SeedSequence(seed).spawn(n_trials)


def _point_cpu(kernel: KernelInstance,
               config: MachineConfig | None,
               injector: FaultInjector) -> Cpu:
    """Budget-configured CPU, compiled once and reset between trials."""
    base_config = config or MachineConfig()
    budget = trial_budget(kernel, base_config)
    return Cpu(kernel.program, config=base_config.with_max_cycles(budget),
               injector=injector)


def _run_seeded_trials(kernel: KernelInstance,
                       injector_factory: InjectorFactory,
                       seeds: list[np.random.SeedSequence],
                       config: MachineConfig | None,
                       injector_args: tuple = ()) -> list[TrialResult]:
    """Run trials with independent per-trial injectors, reusing one CPU."""
    cpu: Cpu | None = None
    results = []
    for child in seeds:
        injector = injector_factory(*injector_args,
                                    np.random.default_rng(child))
        if cpu is None:
            cpu = _point_cpu(kernel, config, injector)
        results.append(run_trial(kernel, injector, config, cpu=cpu))
    return results


# Fork-worker state, set inside each worker process by the pool
# initializer.  Passing the state through ``initargs`` (inherited via
# fork, never pickled) keeps concurrent ``run_point`` calls from
# different threads isolated: each pool's workers see exactly the
# state that pool was created with.
_WORKER_STATE: dict | None = None


def _init_worker(state: dict) -> None:
    global _WORKER_STATE
    _WORKER_STATE = state


def _run_trial_chunk(chunk: list[int]) -> list[TrialResult]:
    """Pool worker: run the trials at the given indices."""
    state = _WORKER_STATE
    assert state is not None, "worker state missing (pool without fork?)"
    seeds = [state["seeds"][index] for index in chunk]
    return _run_seeded_trials(state["kernel"], state["factory"], seeds,
                              state["config"],
                              state.get("injector_args", ()))


@parallel.pool_task("mc-trial-chunk")
def _pool_trial_chunk(registry: dict, indices: list[int]) \
        -> list[TrialResult]:
    """Persistent-pool task: run the trials at the given indices.

    Kernel, factory and config arrive by fork inheritance (registered
    once per change -- they capture compiled closures); the per-point
    seed list and injector args travel the pipes (picklable, tiny).
    """
    seeds = [registry[("mc-seeds",)][index] for index in indices]
    return _run_seeded_trials(registry[("mc-kernel",)],
                              registry[("mc-factory",)],
                              seeds,
                              registry[("mc-config",)],
                              registry[("mc-injector-args",)])


def run_point(kernel: KernelInstance, injector_factory: InjectorFactory,
              n_trials: int, seed: int = 0, label: str = "",
              config: MachineConfig | None = None,
              n_jobs: int | None = None,
              injector_args: tuple = ()) -> McPoint:
    """Run ``n_trials`` Monte-Carlo trials of one configuration.

    Args:
        kernel: the benchmark instance.
        injector_factory: builds a fresh injector from a per-trial RNG
            (called as ``injector_factory(*injector_args, rng)``).
        n_trials: number of trials (paper: at least 100 per point).
        seed: master seed; trials use independent child streams.
        label: point label for reports.
        config: machine configuration override.
        n_jobs: ``None`` (default) keeps the historical serial scheme:
            one injector whose stream spans all trials.  An integer
            switches to per-trial child seeds -- ``n_jobs=1`` runs them
            in-process, ``n_jobs>=2`` fans trials out over worker
            processes; all orderings produce bit-identical points.
        injector_args: leading arguments for ``injector_factory``.
            Sweeps pass the per-point condition (e.g. the frequency)
            here instead of closing over it, so the *same* factory
            object serves every point -- which is what lets the
            persistent pool keep its workers across a whole sweep
            (closures would force a respawn per point).

    Returns:
        The aggregated :class:`McPoint`.
    """
    if n_trials <= 0:
        raise ValueError("n_trials must be positive")
    if n_jobs is not None and n_jobs <= 0:
        raise ValueError("n_jobs must be positive (or None for serial)")
    if os.environ.get("REPRO_FORBID_MC"):
        # Verification hook: a warm-cache rerun must be served entirely
        # from the result store, so reaching the simulator is a bug.
        raise RuntimeError(
            "Monte-Carlo simulation attempted while REPRO_FORBID_MC is "
            "set -- expected a result-store hit")
    point = McPoint(label=label or kernel.name)
    # Resolve the golden run up front: workers then inherit the cached
    # cycle count instead of each re-deriving it.
    golden_cycles(kernel, config or MachineConfig())

    if n_jobs is None:
        master = np.random.default_rng(seed)
        # One injector serves all trials of the point: construction
        # (CDF grids, noise blocks) is much more expensive than a
        # trial, and the CPU calls begin_run() before every run, which
        # resets the per-run counters while the random stream continues
        # across trials.  The CPU itself is also constructed once --
        # the compiled instruction closures are reused and reset()
        # restores the architectural state between trials.
        injector = injector_factory(*injector_args, master)
        cpu = _point_cpu(kernel, config, injector)
        for _ in range(n_trials):
            point.add(run_trial(kernel, injector, config, cpu=cpu))
        return point

    seeds = trial_seeds(seed, n_trials)
    if n_jobs == 1 or n_trials == 1 or not _fork_available():
        for trial in _run_seeded_trials(kernel, injector_factory, seeds,
                                        config, injector_args):
            point.add(trial)
        return point

    pool = parallel.get_pool()
    if pool is not None and pool.workers >= 2:
        ordered = _run_pooled_trials(pool, kernel, injector_factory,
                                     seeds, config, injector_args)
    else:
        ordered = _run_forked_trials(kernel, injector_factory, seeds,
                                     config, injector_args, n_jobs)
    for trial in ordered:
        assert trial is not None
        point.add(trial)
    return point


def _reassemble(chunks: list[list[int]], per_chunk: list,
                n_trials: int) -> list[TrialResult | None]:
    """Put chunked trial results back into trial order.

    This is what makes every parallel path bit-identical to serial:
    the point only ever sees trials in index order, no matter which
    worker ran them or when it finished.
    """
    ordered: list[TrialResult | None] = [None] * n_trials
    for chunk, results in zip(chunks, per_chunk):
        for index, trial in zip(chunk, results):
            ordered[index] = trial
    return ordered


def _run_pooled_trials(pool, kernel, injector_factory, seeds, config,
                       injector_args) -> list[TrialResult | None]:
    """Fan trials out over the persistent pool.

    Kernel/factory/config are registered by identity: within a sweep
    they are the same objects for every point, so only the first point
    respawns the workers -- later points reuse them and only ship the
    (picklable) seed list and injector args over the pipes.
    """
    pool.register(("mc-kernel",), kernel)
    pool.register(("mc-factory",), injector_factory)
    pool.register(("mc-config",), config)
    pool.push_if_new(("mc-seeds",), seeds)
    pool.push_if_new(("mc-injector-args",), injector_args)
    n_trials = len(seeds)
    chunks = [list(range(start, n_trials, pool.workers))
              for start in range(pool.workers)]
    chunks = [chunk for chunk in chunks if chunk]
    per_chunk = pool.run("mc-trial-chunk",
                         [(chunk,) for chunk in chunks])
    return _reassemble(chunks, per_chunk, n_trials)


def _run_forked_trials(kernel, injector_factory, seeds, config,
                       injector_args, n_jobs) -> list[TrialResult | None]:
    """Historical per-call fork pool (no persistent pool configured)."""
    n_trials = len(seeds)
    chunks = [list(range(start, n_trials, n_jobs))
              for start in range(n_jobs)]
    state = {"kernel": kernel, "factory": injector_factory,
             "seeds": seeds, "config": config,
             "injector_args": injector_args}
    context = multiprocessing.get_context("fork")
    with context.Pool(processes=n_jobs, initializer=_init_worker,
                      initargs=(state,)) as pool:
        per_chunk = pool.map(_run_trial_chunk, chunks)
    return _reassemble(chunks, per_chunk, n_trials)


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods() \
        and hasattr(os, "fork")
