"""Benchmark kernel abstraction.

A *kernel* is a self-contained assembly program plus everything the
Monte-Carlo harness needs to judge a faulty run: the location of its
outputs in data memory, the fault-free golden outputs (computed by an
exact Python reference of the same integer algorithm), and the
benchmark-specific output-quality metric from the paper's Table 1.

Kernels bracket their hot loop with the ``l.nop`` FI-window markers so
fault injection covers only the kernel part of the program, as in the
paper (Section 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.sim.machine import DATA_BASE, NOP_FI_OFF, NOP_FI_ON


def source_header() -> str:
    """Common assembly prologue constants shared by all kernels."""
    return (
        f".equ DATA, {DATA_BASE:#x}\n"
        f".equ FI_ON, {NOP_FI_ON:#x}\n"
        f".equ FI_OFF, {NOP_FI_OFF:#x}\n"
    )


def words_directive(values: list[int], per_line: int = 8) -> str:
    """Render a list of ints as ``.word`` directives."""
    lines = []
    for start in range(0, len(values), per_line):
        chunk = values[start:start + per_line]
        lines.append("    .word " + ", ".join(
            str(v & 0xFFFFFFFF) for v in chunk))
    return "\n".join(lines)


@dataclass
class KernelInstance:
    """One concrete, assembled benchmark instance.

    Attributes:
        name: benchmark name (e.g. ``"median"``).
        program: assembled program image.
        entry: entry symbol.
        output_symbol: data-memory symbol where outputs live.
        output_count: number of 32-bit output words.
        golden: fault-free output words.
        metric_name: name of the benchmark's quality metric
            (paper Table 1 row "output error").
        error_value: metric in its native unit (e.g. MSE) from outputs.
        relative_error: metric normalized to [0, 1] from outputs.
        params: the generation parameters (size, seed, ...).
    """

    name: str
    program: Program
    entry: str
    output_symbol: str
    output_count: int
    golden: list[int]
    metric_name: str
    error_value: Callable[[list[int], list[int]], float]
    relative_error: Callable[[list[int], list[int]], float]
    params: dict = field(default_factory=dict)
    _golden_cycles: int | None = None

    @property
    def output_address(self) -> int:
        return self.program.symbol(self.output_symbol)

    def is_correct(self, outputs: list[int]) -> bool:
        """Exact output match against the golden run."""
        return outputs == self.golden


def assemble_kernel(name: str, source: str, entry: str,
                    output_symbol: str, output_count: int,
                    golden: list[int], metric_name: str,
                    error_value, relative_error,
                    params: dict) -> KernelInstance:
    """Assemble kernel source and wrap it into a :class:`KernelInstance`."""
    program = assemble(source)
    instance = KernelInstance(
        name=name,
        program=program,
        entry=entry,
        output_symbol=output_symbol,
        output_count=output_count,
        golden=golden,
        metric_name=metric_name,
        error_value=error_value,
        relative_error=relative_error,
        params=params,
    )
    # Fail fast if the program forgot its markers or entry point.
    program.symbol(entry)
    program.symbol(output_symbol)
    return instance
