"""Matrix-multiplication benchmark: C = A x B on n x n matrices.

Arithmetic/data-path-dominated kernel (paper Table 1: compute "++",
control "-", 16x16 matrices in 8- and 16-bit element variants).
Output error metric: mean squared error over the result matrix.
"""

from __future__ import annotations

import numpy as np

from repro.bench.kernel import (
    KernelInstance,
    assemble_kernel,
    source_header,
    words_directive,
)
from repro.bench.metrics import mean_squared_error, normalized_rmse

#: Paper-scale problem size (16x16 matrices).
PAPER_SIZE = 16

_ASM_TEMPLATE = """\
{header}
.equ N, {n}
.equ ROWBYTES, {rowbytes}

start:
    l.movhi r4, hi(mat_a)
    l.ori   r4, r4, lo(mat_a)      # r4 = A
    l.movhi r5, hi(mat_b)
    l.ori   r5, r5, lo(mat_b)      # r5 = B
    l.movhi r6, hi(mat_c)
    l.ori   r6, r6, lo(mat_c)      # r6 = C (write pointer)
    l.addi  r7, r0, N
    l.nop   FI_ON
    l.addi  r8, r0, 0              # r8 = i
loop_i:
    l.addi  r9, r0, 0              # r9 = j  (r9 free: no calls)
loop_j:
    l.addi  r10, r0, 0             # r10 = acc
    l.addi  r11, r0, 0             # r11 = k
    l.slli  r12, r8, {log_rowbytes}
    l.add   r12, r12, r4           # r12 = &A[i][0]
    l.slli  r13, r9, 2
    l.add   r13, r13, r5           # r13 = &B[0][j]
loop_k:
    l.lwz   r14, 0(r12)            # A[i][k]
    l.lwz   r15, 0(r13)            # B[k][j]
    l.mul   r16, r14, r15
    l.add   r10, r10, r16
    l.addi  r12, r12, 4
    l.addi  r13, r13, ROWBYTES
    l.addi  r11, r11, 1
    l.sflts r11, r7
    l.bf    loop_k
    l.nop
    l.sw    0(r6), r10             # C[i][j] = acc
    l.addi  r6, r6, 4
    l.addi  r9, r9, 1
    l.sflts r9, r7
    l.bf    loop_j
    l.nop
    l.addi  r8, r8, 1
    l.sflts r8, r7
    l.bf    loop_i
    l.nop
    l.nop   FI_OFF
    l.nop   0x1                    # exit

.org DATA
mat_a:
{a_words}
mat_b:
{b_words}
mat_c:
    .space {out_bytes}
"""


def generate_inputs(size: int, width_bits: int,
                    seed: int) -> tuple[list[int], list[int]]:
    """Random matrices with ``width_bits``-bit unsigned elements."""
    rng = np.random.default_rng(seed)
    high = 1 << width_bits
    a = [int(v) for v in rng.integers(0, high, size * size)]
    b = [int(v) for v in rng.integers(0, high, size * size)]
    return a, b


def golden_matmul(a: list[int], b: list[int], size: int) -> list[int]:
    """Exact reference with 32-bit wraparound accumulation."""
    out = []
    for i in range(size):
        for j in range(size):
            acc = 0
            for k in range(size):
                acc = (acc + a[i * size + k] * b[k * size + j]) & 0xFFFFFFFF
            out.append(acc)
    return out


def build(size: int = PAPER_SIZE, width_bits: int = 8,
          seed: int = 42) -> KernelInstance:
    """Build a matrix-multiplication kernel instance.

    Args:
        size: matrix dimension (must be a power of two so row strides
            are shift-encodable).
        width_bits: element width, 8 or 16 (the paper's two variants).
        seed: input-data seed.
    """
    if size < 2 or size & (size - 1):
        raise ValueError("size must be a power of two >= 2")
    if width_bits not in (8, 16):
        raise ValueError("width_bits must be 8 or 16")
    a, b = generate_inputs(size, width_bits, seed)
    golden = golden_matmul(a, b, size)
    rowbytes = 4 * size
    # Full scale of one product term, for the normalized metric.
    full_scale = float((1 << width_bits) - 1) ** 2

    def error_value(outputs: list[int], reference: list[int]) -> float:
        return mean_squared_error(outputs, reference)

    def rel_error(outputs: list[int], reference: list[int]) -> float:
        return normalized_rmse(outputs, reference, full_scale)

    return assemble_kernel(
        name=f"mat_mult_{width_bits}bit",
        source=_ASM_TEMPLATE.format(
            header=source_header(),
            n=size,
            rowbytes=rowbytes,
            log_rowbytes=rowbytes.bit_length() - 1,
            a_words=words_directive(a),
            b_words=words_directive(b),
            out_bytes=4 * size * size,
        ),
        entry="start",
        output_symbol="mat_c",
        output_count=size * size,
        golden=golden,
        metric_name="mean squared error",
        error_value=error_value,
        relative_error=rel_error,
        params={"size": size, "width_bits": width_bits, "seed": seed},
    )
