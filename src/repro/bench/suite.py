"""Benchmark suite registry (the paper's Table 1 kernels).

Provides named factories with paper-scale defaults and the scaled-down
"quick" variants the default experiment presets use (pure-Python
Monte-Carlo at full paper scale is possible but slow; see
``repro.experiments.scale``).
"""

from __future__ import annotations

from typing import Callable

from repro.bench import dijkstra, kmeans, matmul, median
from repro.bench.kernel import KernelInstance

#: Benchmark names in the paper's Table 1 order.
BENCHMARK_NAMES = (
    "median",
    "mat_mult_8bit",
    "mat_mult_16bit",
    "kmeans",
    "dijkstra",
)

KernelFactory = Callable[..., KernelInstance]


def paper_kernel(name: str, seed: int = 42) -> KernelInstance:
    """Build a kernel at the paper's problem size."""
    builders: dict[str, Callable[[], KernelInstance]] = {
        "median": lambda: median.build(median.PAPER_SIZE, seed=seed),
        "mat_mult_8bit": lambda: matmul.build(
            matmul.PAPER_SIZE, width_bits=8, seed=seed),
        "mat_mult_16bit": lambda: matmul.build(
            matmul.PAPER_SIZE, width_bits=16, seed=seed),
        "kmeans": lambda: kmeans.build(kmeans.PAPER_POINTS, seed=seed),
        "dijkstra": lambda: dijkstra.build(dijkstra.PAPER_NODES, seed=seed),
    }
    try:
        return builders[name]()
    except KeyError:
        raise KeyError(f"unknown benchmark {name!r}; "
                       f"known: {BENCHMARK_NAMES}") from None


def quick_kernel(name: str, seed: int = 42) -> KernelInstance:
    """Build a scaled-down kernel for fast Monte-Carlo sweeps."""
    builders: dict[str, Callable[[], KernelInstance]] = {
        "median": lambda: median.build(33, seed=seed),
        "mat_mult_8bit": lambda: matmul.build(8, width_bits=8, seed=seed),
        "mat_mult_16bit": lambda: matmul.build(8, width_bits=16, seed=seed),
        "kmeans": lambda: kmeans.build(8, iters=6, seed=seed),
        "dijkstra": lambda: dijkstra.build(8, seed=seed),
    }
    try:
        return builders[name]()
    except KeyError:
        raise KeyError(f"unknown benchmark {name!r}; "
                       f"known: {BENCHMARK_NAMES}") from None


def build_kernel(name: str, scale: str = "paper",
                 seed: int = 42) -> KernelInstance:
    """Build a kernel by name at ``"paper"`` or ``"quick"`` scale."""
    if scale == "paper":
        return paper_kernel(name, seed)
    if scale == "quick":
        return quick_kernel(name, seed)
    raise ValueError(f"unknown scale {scale!r}; expected paper|quick")
