"""Dijkstra benchmark: all-pairs shortest paths on a weighted graph.

Control/graph-search-dominated kernel (paper Table 1: compute "-",
control "++", 10 nodes).  Runs the O(n^2) single-source algorithm from
every source node over an adjacency matrix (0x7FFFFFFF encodes "no
edge") and emits the full n x n distance matrix.  Output error metric:
fraction of node pairs with a wrong minimum distance.
"""

from __future__ import annotations

import numpy as np

from repro.bench.kernel import (
    KernelInstance,
    assemble_kernel,
    source_header,
    words_directive,
)
from repro.bench.metrics import mismatch_fraction

#: Paper-scale problem size (10 nodes).
PAPER_NODES = 10

#: "No edge" marker in the adjacency matrix.
INF = 0x7FFFFFFF

_ASM_TEMPLATE = """\
{header}
.equ N, {n}

start:
    l.movhi r4, hi(adj)
    l.ori   r4, r4, lo(adj)
    l.movhi r5, hi(out)
    l.ori   r5, r5, lo(out)
    l.movhi r6, hi(dist)
    l.ori   r6, r6, lo(dist)
    l.movhi r7, hi(visited)
    l.ori   r7, r7, lo(visited)
    l.addi  r28, r0, N
    l.movhi r26, 0x7fff
    l.ori   r26, r26, 0xffff       # r26 = INF
    l.nop   FI_ON
    l.addi  r2, r0, 0              # src
src_loop:
    l.addi  r10, r0, 0             # v
init_loop:
    l.slli  r29, r10, 2
    l.add   r13, r6, r29
    l.sw    0(r13), r26            # dist[v] = INF
    l.add   r13, r7, r29
    l.sw    0(r13), r0             # visited[v] = 0
    l.addi  r10, r10, 1
    l.sflts r10, r28
    l.bf    init_loop
    l.nop
    l.slli  r29, r2, 2
    l.add   r13, r6, r29
    l.sw    0(r13), r0             # dist[src] = 0
    l.addi  r8, r0, 0              # iteration
iter_loop:
    l.addi  r11, r26, 0            # best = INF
    l.addi  r12, r0, -1            # u = -1
    l.addi  r10, r0, 0             # v
scan_loop:
    l.slli  r29, r10, 2
    l.add   r13, r7, r29
    l.lwz   r15, 0(r13)            # visited[v]
    l.sfeqi r15, 0
    l.bnf   scan_next
    l.nop
    l.add   r13, r6, r29
    l.lwz   r14, 0(r13)            # dist[v]
    l.sfltu r14, r11
    l.bnf   scan_next
    l.nop
    l.addi  r11, r14, 0            # best = dist[v]
    l.addi  r12, r10, 0            # u = v
scan_next:
    l.addi  r10, r10, 1
    l.sflts r10, r28
    l.bf    scan_loop
    l.nop
    l.sflts r12, r0                # no reachable unvisited node?
    l.bf    iter_next
    l.nop
    l.slli  r29, r12, 2
    l.add   r13, r7, r29
    l.addi  r15, r0, 1
    l.sw    0(r13), r15            # visited[u] = 1
    l.add   r13, r6, r29
    l.lwz   r16, 0(r13)            # dist[u]
    l.mul   r18, r12, r28
    l.slli  r18, r18, 2
    l.add   r17, r4, r18           # &adj[u][0]
    l.addi  r10, r0, 0             # v
relax_loop:
    l.lwz   r14, 0(r17)            # w = adj[u][v]
    l.sfeq  r14, r26
    l.bf    relax_next
    l.nop
    l.add   r15, r16, r14          # nd = dist[u] + w
    l.slli  r29, r10, 2
    l.add   r13, r6, r29
    l.lwz   r19, 0(r13)            # dist[v]
    l.sfltu r15, r19
    l.bnf   relax_next
    l.nop
    l.sw    0(r13), r15            # dist[v] = nd
relax_next:
    l.addi  r17, r17, 4
    l.addi  r10, r10, 1
    l.sflts r10, r28
    l.bf    relax_loop
    l.nop
iter_next:
    l.addi  r8, r8, 1
    l.sflts r8, r28
    l.bf    iter_loop
    l.nop
    # copy dist row into the all-pairs output
    l.mul   r18, r2, r28
    l.slli  r18, r18, 2
    l.add   r17, r5, r18           # &out[src][0]
    l.addi  r10, r0, 0
copy_loop:
    l.slli  r29, r10, 2
    l.add   r13, r6, r29
    l.lwz   r14, 0(r13)
    l.sw    0(r17), r14
    l.addi  r17, r17, 4
    l.addi  r10, r10, 1
    l.sflts r10, r28
    l.bf    copy_loop
    l.nop
    l.addi  r2, r2, 1
    l.sflts r2, r28
    l.bf    src_loop
    l.nop
    l.nop   FI_OFF
    l.nop   0x1                    # exit

.org DATA
adj:
{adj_words}
out:
    .space {out_bytes}
dist:
    .space {row_bytes}
visited:
    .space {row_bytes}
"""


def generate_inputs(nodes: int, seed: int,
                    density: float = 0.55,
                    max_weight: int = 100) -> list[int]:
    """Random symmetric weighted graph as a flat adjacency matrix."""
    rng = np.random.default_rng(seed)
    adj = [[INF] * nodes for _ in range(nodes)]
    for i in range(nodes):
        adj[i][i] = 0
        for j in range(i + 1, nodes):
            if rng.random() < density:
                weight = int(rng.integers(1, max_weight + 1))
                adj[i][j] = weight
                adj[j][i] = weight
    return [adj[i][j] for i in range(nodes) for j in range(nodes)]


def golden_dijkstra(adj: list[int], nodes: int) -> list[int]:
    """Exact reference of the kernel's all-pairs algorithm."""
    out = []
    for src in range(nodes):
        dist = [INF] * nodes
        visited = [False] * nodes
        dist[src] = 0
        for _ in range(nodes):
            best, u = INF, -1
            for v in range(nodes):
                if not visited[v] and dist[v] < best:
                    best, u = dist[v], v
            if u < 0:
                continue
            visited[u] = True
            base = u * nodes
            for v in range(nodes):
                w = adj[base + v]
                if w == INF:
                    continue
                nd = dist[u] + w
                if nd < dist[v]:
                    dist[v] = nd
        out.extend(dist)
    return out


def build(nodes: int = PAPER_NODES, seed: int = 42,
          density: float = 0.55, max_weight: int = 100) -> KernelInstance:
    """Build a Dijkstra kernel instance.

    Args:
        nodes: graph size (paper: 10).
        seed: input-data seed.
        density: edge probability of the random graph.
        max_weight: maximum edge weight.
    """
    if nodes < 2:
        raise ValueError("need at least 2 nodes")
    adj = generate_inputs(nodes, seed, density, max_weight)
    golden = golden_dijkstra(adj, nodes)

    def error_value(outputs: list[int], reference: list[int]) -> float:
        return mismatch_fraction(outputs, reference)

    return assemble_kernel(
        name="dijkstra",
        source=_ASM_TEMPLATE.format(
            header=source_header(),
            n=nodes,
            adj_words=words_directive(adj),
            out_bytes=4 * nodes * nodes,
            row_bytes=4 * nodes,
        ),
        entry="start",
        output_symbol="out",
        output_count=nodes * nodes,
        golden=golden,
        metric_name="min-distance mismatch",
        error_value=error_value,
        relative_error=error_value,
        params={"nodes": nodes, "seed": seed, "density": density,
                "max_weight": max_weight},
    )
