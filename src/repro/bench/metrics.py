"""Output-quality metrics of the four benchmarks (paper Table 1).

Each benchmark quantifies output error in its own unit:

* median -- relative difference of the reported median;
* matrix multiplication -- mean squared error over the result matrix;
* k-means -- fraction of points with wrong cluster membership;
* Dijkstra -- fraction of node pairs with a wrong minimum distance.

Every metric also has a normalized [0, 1] form used for cross-benchmark
comparisons and the power/error trade-off analysis (Fig. 7's "average
relative error in %").
"""

from __future__ import annotations


def relative_difference(value: int, reference: int,
                        clip: float = 1.0) -> float:
    """|value - reference| / reference, clipped (median benchmark)."""
    if reference == 0:
        return 0.0 if value == 0 else clip
    return min(abs(value - reference) / abs(reference), clip)


def mean_squared_error(outputs: list[int], golden: list[int]) -> float:
    """MSE over 32-bit output words (matrix-mult benchmark).

    Differences are evaluated modulo 2**32 with wrap-aware magnitude
    (a corrupted word is at most 2**31 away from the reference).
    """
    if len(outputs) != len(golden):
        raise ValueError("output length mismatch")
    if not outputs:
        return 0.0
    total = 0.0
    for out, ref in zip(outputs, golden):
        diff = (out - ref) & 0xFFFFFFFF
        if diff > 0x80000000:
            diff = 0x100000000 - diff
        total += float(diff) ** 2
    return total / len(outputs)


def mismatch_fraction(outputs: list[int], golden: list[int]) -> float:
    """Fraction of output words differing from the golden run."""
    if len(outputs) != len(golden):
        raise ValueError("output length mismatch")
    if not outputs:
        return 0.0
    wrong = sum(1 for out, ref in zip(outputs, golden) if out != ref)
    return wrong / len(outputs)


def normalized_rmse(outputs: list[int], golden: list[int],
                    full_scale: float) -> float:
    """Root MSE normalized by a full-scale value, clipped to [0, 1]."""
    if full_scale <= 0:
        raise ValueError("full_scale must be positive")
    rmse = mean_squared_error(outputs, golden) ** 0.5
    return min(rmse / full_scale, 1.0)
