"""Benchmark kernels: median, matrix-mult, k-means, Dijkstra (Table 1)."""

from repro.bench.kernel import (
    KernelInstance,
    assemble_kernel,
    source_header,
    words_directive,
)
from repro.bench.metrics import (
    mean_squared_error,
    mismatch_fraction,
    normalized_rmse,
    relative_difference,
)
from repro.bench.suite import (
    BENCHMARK_NAMES,
    build_kernel,
    paper_kernel,
    quick_kernel,
)

__all__ = [
    "BENCHMARK_NAMES",
    "KernelInstance",
    "assemble_kernel",
    "build_kernel",
    "mean_squared_error",
    "mismatch_fraction",
    "normalized_rmse",
    "paper_kernel",
    "quick_kernel",
    "relative_difference",
    "source_header",
    "words_directive",
]
