"""Median benchmark: insertion sort of N values, report the middle one.

Sorting/control-dominated kernel (paper Table 1: compute "-",
control "+", 129 values).  Output error metric: relative difference of
the reported median.
"""

from __future__ import annotations

import numpy as np

from repro.bench.kernel import (
    KernelInstance,
    assemble_kernel,
    source_header,
    words_directive,
)
from repro.bench.metrics import relative_difference

#: Paper-scale problem size.
PAPER_SIZE = 129

_ASM_TEMPLATE = """\
{header}
.equ N, {n}

start:
    l.movhi r4, hi(values)
    l.ori   r4, r4, lo(values)     # r4 = &values[0]
    l.addi  r5, r0, N              # r5 = N
    l.nop   FI_ON
    l.addi  r6, r0, 1              # r6 = i
outer:
    l.sflts r6, r5                 # i < N ?
    l.bnf   sorted
    l.nop
    l.slli  r7, r6, 2
    l.add   r7, r7, r4             # r7 = &a[i]
    l.lwz   r8, 0(r7)              # r8 = key
    l.addi  r10, r6, -1            # r10 = j
inner:
    l.sflts r10, r0                # j < 0 ?
    l.bf    place
    l.nop
    l.slli  r11, r10, 2
    l.add   r11, r11, r4           # r11 = &a[j]
    l.lwz   r12, 0(r11)
    l.sfgtu r12, r8                # a[j] > key ?
    l.bnf   place
    l.nop
    l.sw    4(r11), r12            # a[j+1] = a[j]
    l.j     inner
    l.addi  r10, r10, -1           # delay slot: j--
place:
    l.slli  r11, r10, 2
    l.add   r11, r11, r4
    l.sw    4(r11), r8             # a[j+1] = key
    l.j     outer
    l.addi  r6, r6, 1              # delay slot: i++
sorted:
    l.addi  r6, r0, {mid}          # middle index
    l.slli  r6, r6, 2
    l.add   r6, r6, r4
    l.lwz   r3, 0(r6)              # median
    l.addi  r3, r3, 0              # result moves through the ALU
    l.nop   FI_OFF
    l.movhi r7, hi(result)
    l.ori   r7, r7, lo(result)
    l.sw    0(r7), r3
    l.nop   0x2                    # report median
    l.nop   0x1                    # exit

.org DATA
values:
{values}
result:
    .space 4
"""


def generate_inputs(size: int, seed: int) -> list[int]:
    """Random input values in a 16-bit range (all positive)."""
    rng = np.random.default_rng(seed)
    return [int(v) for v in rng.integers(1, 1 << 16, size)]


def golden_median(values: list[int]) -> int:
    """Exact reference: middle element of the sorted values."""
    return sorted(values)[len(values) // 2]


def build(size: int = PAPER_SIZE, seed: int = 42) -> KernelInstance:
    """Build a median kernel instance.

    Args:
        size: number of values to sort (odd sizes give a true median).
        seed: input-data seed.
    """
    if size < 1:
        raise ValueError("size must be at least 1")
    values = generate_inputs(size, seed)
    golden = [golden_median(values)]

    def error_value(outputs: list[int], reference: list[int]) -> float:
        return relative_difference(outputs[0], reference[0])

    instance = assemble_kernel(
        name="median",
        source=_ASM_TEMPLATE.format(
            header=source_header(),
            n=size,
            mid=size // 2,
            values=words_directive(values),
        ),
        entry="start",
        output_symbol="result",
        output_count=1,
        golden=golden,
        metric_name="relative difference",
        error_value=error_value,
        relative_error=error_value,
        params={"size": size, "seed": seed},
    )
    return instance
