"""K-means clustering benchmark: Lloyd iterations on 2-D points.

Mixed data-mining kernel (paper Table 1: compute "+", control "+",
8 points in 2-D).  Two clusters, a fixed number of Lloyd iterations,
integer centroids via a software restoring-division subroutine (the
core has no divide instruction).  Output error metric: fraction of
points whose final cluster membership differs from the golden run.
"""

from __future__ import annotations

import numpy as np

from repro.bench.kernel import (
    KernelInstance,
    assemble_kernel,
    source_header,
    words_directive,
)
from repro.bench.metrics import mismatch_fraction

#: Paper-scale problem size (8 points, 2 clusters).
PAPER_POINTS = 8
DEFAULT_ITERS = 15

_ASM_TEMPLATE = """\
{header}
.equ P, {points}
.equ ITERS, {iters}

start:
    l.movhi r10, hi(px)
    l.ori   r10, r10, lo(px)
    l.movhi r11, hi(py)
    l.ori   r11, r11, lo(py)
    l.movhi r12, hi(assign)
    l.ori   r12, r12, lo(assign)
    l.addi  r28, r0, P
    l.nop   FI_ON
    # centroids start at the first two points
    l.lwz   r13, 0(r10)            # cx0
    l.lwz   r14, 0(r11)            # cy0
    l.lwz   r15, 4(r10)            # cx1
    l.lwz   r16, 4(r11)            # cy1
    l.addi  r21, r0, 0             # iteration counter
iter_loop:
    l.addi  r22, r0, 0             # sx0
    l.addi  r23, r0, 0             # sy0
    l.addi  r24, r0, 0             # cnt0
    l.addi  r25, r0, 0             # sx1
    l.addi  r26, r0, 0             # sy1
    l.addi  r27, r0, 0             # cnt1
    l.addi  r2, r0, 0              # p
assign_loop:
    l.slli  r29, r2, 2
    l.add   r30, r10, r29
    l.lwz   r17, 0(r30)            # x
    l.add   r30, r11, r29
    l.lwz   r18, 0(r30)            # y
    # d0 = (x-cx0)^2 + (y-cy0)^2
    l.sub   r19, r17, r13
    l.mul   r19, r19, r19
    l.sub   r20, r18, r14
    l.mul   r20, r20, r20
    l.add   r19, r19, r20          # d0
    # d1 = (x-cx1)^2 + (y-cy1)^2
    l.sub   r20, r17, r15
    l.mul   r20, r20, r20
    l.sub   r31, r18, r16
    l.mul   r31, r31, r31
    l.add   r20, r20, r31          # d1
    l.sfleu r19, r20               # d0 <= d1 -> cluster 0
    l.bf    to_cluster0
    l.nop
    # cluster 1
    l.addi  r31, r0, 1
    l.add   r25, r25, r17          # sx1 += x
    l.add   r26, r26, r18          # sy1 += y
    l.j     store_assign
    l.addi  r27, r27, 1            # delay slot: cnt1++
to_cluster0:
    l.addi  r31, r0, 0
    l.add   r22, r22, r17          # sx0 += x
    l.add   r23, r23, r18          # sy0 += y
    l.addi  r24, r24, 1            # cnt0++
store_assign:
    l.add   r30, r12, r29
    l.sw    0(r30), r31
    l.addi  r2, r2, 1
    l.sflts r2, r28
    l.bf    assign_loop
    l.nop
    # update phase: centroid = sum / count (skip empty clusters)
    l.sfeqi r24, 0
    l.bf    skip_c0
    l.nop
    l.addi  r3, r22, 0
    l.jal   divu
    l.addi  r4, r24, 0             # delay slot: divisor = cnt0
    l.addi  r13, r3, 0             # cx0
    l.addi  r3, r23, 0
    l.jal   divu
    l.addi  r4, r24, 0
    l.addi  r14, r3, 0             # cy0
skip_c0:
    l.sfeqi r27, 0
    l.bf    skip_c1
    l.nop
    l.addi  r3, r25, 0
    l.jal   divu
    l.addi  r4, r27, 0
    l.addi  r15, r3, 0             # cx1
    l.addi  r3, r26, 0
    l.jal   divu
    l.addi  r4, r27, 0
    l.addi  r16, r3, 0             # cy1
skip_c1:
    l.addi  r21, r21, 1
    l.sfltsi r21, ITERS
    l.bf    iter_loop
    l.nop
    l.nop   FI_OFF
    l.nop   0x1                    # exit

# unsigned restoring division: r3 = r3 / r4; clobbers r5-r8
divu:
    l.addi  r5, r0, 0              # remainder
    l.addi  r6, r0, 32             # bit counter
    l.addi  r7, r0, 0              # quotient
divu_loop:
    l.slli  r5, r5, 1
    l.srli  r8, r3, 31
    l.or    r5, r5, r8
    l.slli  r3, r3, 1
    l.slli  r7, r7, 1
    l.sfgeu r5, r4
    l.bnf   divu_skip
    l.nop
    l.sub   r5, r5, r4
    l.ori   r7, r7, 1
divu_skip:
    l.addi  r6, r6, -1
    l.sfgts r6, r0
    l.bf    divu_loop
    l.nop
    l.jr    r9
    l.addi  r3, r7, 0              # delay slot: move quotient

.org DATA
px:
{px_words}
py:
{py_words}
assign:
    .space {assign_bytes}
"""


def generate_inputs(points: int, seed: int) -> tuple[list[int], list[int]]:
    """Random 15-bit point coordinates around two loose blobs."""
    rng = np.random.default_rng(seed)
    half = points // 2
    xs, ys = [], []
    for count, (cx, cy) in zip((half, points - half),
                               ((8000, 9000), (24000, 22000))):
        xs.extend(int(v) for v in
                  np.clip(rng.normal(cx, 3500, count), 0, 32767))
        ys.extend(int(v) for v in
                  np.clip(rng.normal(cy, 3500, count), 0, 32767))
    return xs, ys


def golden_kmeans(px: list[int], py: list[int], iters: int) -> list[int]:
    """Exact reference of the kernel's integer Lloyd iterations."""
    mask = 0xFFFFFFFF

    def sq_dist(x: int, y: int, cx: int, cy: int) -> int:
        dx = (x - cx) & mask
        dy = (y - cy) & mask
        sdx = dx - (1 << 32) if dx & 0x80000000 else dx
        sdy = dy - (1 << 32) if dy & 0x80000000 else dy
        return ((sdx * sdx) + (sdy * sdy)) & mask

    cx = [px[0], px[1]]
    cy = [py[0], py[1]]
    assign = [0] * len(px)
    for _ in range(iters):
        sums = [[0, 0, 0], [0, 0, 0]]  # sx, sy, count
        for index, (x, y) in enumerate(zip(px, py)):
            d0 = sq_dist(x, y, cx[0], cy[0])
            d1 = sq_dist(x, y, cx[1], cy[1])
            cluster = 0 if d0 <= d1 else 1
            assign[index] = cluster
            sums[cluster][0] = (sums[cluster][0] + x) & mask
            sums[cluster][1] = (sums[cluster][1] + y) & mask
            sums[cluster][2] += 1
        for cluster in (0, 1):
            sx, sy, count = sums[cluster]
            if count:
                cx[cluster] = sx // count
                cy[cluster] = sy // count
    return assign


def build(points: int = PAPER_POINTS, iters: int = DEFAULT_ITERS,
          seed: int = 42) -> KernelInstance:
    """Build a k-means kernel instance (2 clusters).

    Args:
        points: number of 2-D points (paper: 8).
        iters: fixed Lloyd iterations.
        seed: input-data seed.
    """
    if points < 2:
        raise ValueError("need at least 2 points (centroid seeds)")
    if iters < 1:
        raise ValueError("need at least one iteration")
    px, py = generate_inputs(points, seed)
    golden = golden_kmeans(px, py, iters)
    source = _ASM_TEMPLATE.format(
        header=source_header(),
        points=points,
        iters=iters,
        px_words=words_directive(px),
        py_words=words_directive(py),
        assign_bytes=4 * points,
    )
    def error_value(outputs: list[int], reference: list[int]) -> float:
        return mismatch_fraction(outputs, reference)

    return assemble_kernel(
        name="kmeans",
        source=source,
        entry="start",
        output_symbol="assign",
        output_count=points,
        golden=golden,
        metric_name="cluster membership mismatch",
        error_value=error_value,
        relative_error=error_value,
        params={"points": points, "iters": iters, "seed": seed},
    )
