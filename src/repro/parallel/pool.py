"""Persistent shared-memory fork pool: spawn once, execute many.

The historical parallel paths (``run_point(n_jobs=...)``, the campaign
orchestrator) created a ``multiprocessing.Pool`` per call: every call
paid a fork per worker plus the inheritance of whatever happened to be
in the parent at that moment.  :class:`SharedPool` inverts that:

* **Workers are spawned once** (per registration generation, see
  below) and stay alive across calls; each holds the objects the
  parent registered -- compiled netlist plans, shared-memory
  workspaces, Monte-Carlo state -- so the per-call message is a task
  name plus a few ints.  No plan, buffer or closure is ever pickled
  per call.
* **Results land in place** for the sharded netlist path: workspace
  matrices are anonymous shared mappings
  (:func:`repro.parallel.shm.shared_empty`), each worker writes its
  own column range, and the parent reads the full matrix after the
  join.  There is no inter-level barrier because the block axis is
  embarrassingly parallel: every row a level reads was written by the
  same column shard at an earlier level.
* **Two transports** feed the workers.  Picklable objects
  (:meth:`SharedPool.push_if_new` -- plans, delay vectors, seed lists)
  are broadcast over the worker pipes once, when they change.
  Unpicklable or shared-mapping objects (:meth:`SharedPool.register`
  -- workspaces, closures over injector factories and compiled
  kernels) ride fork inheritance: registering one after the workers
  exist marks the pool *stale*, and the next :meth:`SharedPool.run`
  respawns the workers so they fork with the new state in memory.
  Spawn cost is therefore amortized: registrations happen when a
  circuit, sweep or campaign is first seen, and every hot-path call
  after that reuses the same workers.

Tasks are module-level functions declared with :func:`pool_task` at
import time (workers inherit the registry via fork); they receive the
worker's object registry plus the per-call arguments and must return
something picklable (or ``None`` when results land in shared memory).

Failure semantics: a worker exception travels back as a formatted
traceback and re-raises as :class:`PoolError` in the parent after all
workers of the call have been drained (no worker is left mid-task); a
dead worker (EOF on its pipe) marks the pool stale so the next call
respawns.  Workers ignore SIGINT (the parent handles it) and exit on
pipe EOF, so they cannot outlive a killed parent.
"""

from __future__ import annotations

import os
import signal
import traceback
import multiprocessing
from typing import Callable

#: Task-name -> function registry, populated at import time by
#: :func:`pool_task`; forked workers inherit it.
_TASKS: dict[str, Callable] = {}


def pool_task(name: str) -> Callable:
    """Register a module-level function as a pool task.

    The function runs inside workers as ``fn(registry, *args)``.  It
    must be declared at import time (before the pool spawns) so fork
    inheritance carries it into every worker.
    """
    def decorate(fn: Callable) -> Callable:
        existing = _TASKS.get(name)
        if existing is not None and existing is not fn:
            raise ValueError(f"pool task {name!r} already registered")
        _TASKS[name] = fn
        return fn
    return decorate


class PoolError(RuntimeError):
    """A pool task failed or the pool is unusable in this process."""


#: Distinguishes "key absent" from "key holds None" in the registry
#: (``None`` is a legitimate registered value, e.g. a default config).
_MISSING = object()


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods() \
        and hasattr(os, "fork")


def _worker_main(conn, registry: dict, stale_parent_ends: list) -> None:
    """Worker loop: serve ``set``/``run`` messages until EOF or exit.

    ``stale_parent_ends`` are the parent-side pipe ends this worker
    inherited through fork (its own included); closing them here makes
    parent death observable as EOF on ``conn`` -- otherwise sibling
    workers would keep each other's pipes open forever.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    for end in stale_parent_ends:
        try:
            end.close()
        except OSError:  # pragma: no cover - already closed
            pass
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break  # parent is gone
        kind = message[0]
        if kind == "set":
            registry[message[1]] = message[2]
        elif kind == "run":
            _, name, calls = message
            try:
                fn = _TASKS[name]
                conn.send(("ok", [fn(registry, *args) for args in calls]))
            except BaseException:
                conn.send(("err", traceback.format_exc()))
        elif kind == "exit":
            break
    conn.close()


def shard_ranges(n: int, shards: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into contiguous near-equal (lo, hi) ranges."""
    base, extra = divmod(n, shards)
    ranges = []
    lo = 0
    for index in range(shards):
        hi = lo + base + (1 if index < extra else 0)
        if hi > lo:
            ranges.append((lo, hi))
        lo = hi
    return ranges


class SharedPool:
    """Persistent fork-worker pool with a fork-inherited object registry.

    Args:
        workers: worker process count (>= 1; sharding helpers require
            >= 2 to bother).
        min_shard_vectors: narrowest column shard
            :meth:`shard_columns` will produce; blocks narrower than
            ``workers * min_shard_vectors`` run serially (the per-call
            pipe round-trip would dominate).
    """

    def __init__(self, workers: int, min_shard_vectors: int = 64):
        if workers < 1:
            raise ValueError("workers must be positive")
        if min_shard_vectors < 1:
            raise ValueError("min_shard_vectors must be positive")
        self.workers = int(workers)
        self.min_shard_vectors = int(min_shard_vectors)
        self.owner_pid = os.getpid()
        #: Forks performed so far; benches assert it stays flat across
        #: hot-path calls (spawn cost amortized).
        self.spawn_count = 0
        self._registry: dict = {}
        self._procs: list = []
        self._conns: list = []
        self._stale = True

    # -- state distribution ----------------------------------------------

    def register(self, key, obj) -> None:
        """Make ``obj`` visible to workers via fork inheritance.

        For objects that cannot travel a pipe: shared-memory
        workspaces (pickling would copy them) and closures (cannot be
        pickled at all).  Re-registering the same object is free;
        registering a new object under a live pool marks it stale, and
        the next :meth:`run` respawns the workers.
        """
        if self._registry.get(key, _MISSING) is obj:
            return
        self._registry[key] = obj
        if self._alive():
            self._stale = True

    def push_if_new(self, key, obj) -> None:
        """Send a picklable object to the workers, once per change.

        Pipe sends are ordered, so a ``run`` issued after a push is
        guaranteed to see the object -- no acknowledgement needed.
        """
        if self._registry.get(key, _MISSING) is obj:
            return
        self._registry[key] = obj
        if self._alive() and not self._stale:
            for conn in self._conns:
                conn.send(("set", key, obj))

    # -- execution --------------------------------------------------------

    def shard_columns(self, n_vectors: int) -> list[tuple[int, int]] | None:
        """Column ranges for sharding a block, or None when not worth it.

        Deterministic in (n_vectors, workers): a given total width
        always produces the same ranges, so each worker sees a stable
        shard width and its delay-tile cache stays hot.
        """
        if self.workers < 2 \
                or n_vectors < self.workers * self.min_shard_vectors:
            return None
        return shard_ranges(n_vectors, self.workers)

    def run(self, task: str, calls: list[tuple]) -> list:
        """Execute ``task`` once per argument tuple; results in order.

        Calls are dealt round-robin across workers; the parent blocks
        until every worker involved has replied.
        """
        if task not in _TASKS:
            raise PoolError(f"unknown pool task {task!r}")
        calls = list(calls)
        if not calls:
            return []
        self._ensure()
        buckets: list[list] = [[] for _ in self._conns]
        for index, args in enumerate(calls):
            buckets[index % len(buckets)].append((index, tuple(args)))
        for conn, bucket in zip(self._conns, buckets):
            if bucket:
                conn.send(("run", task, [args for _, args in bucket]))
        results: list = [None] * len(calls)
        failure = None
        for worker, (conn, bucket) in enumerate(zip(self._conns, buckets)):
            if not bucket:
                continue
            try:
                status, payload = conn.recv()
            except (EOFError, OSError):
                self._stale = True
                raise PoolError(
                    f"pool worker {worker} died while running {task!r}")
            if status == "err":
                failure = payload  # drain the remaining workers first
                continue
            for (index, _), value in zip(bucket, payload):
                results[index] = value
        if failure is not None:
            raise PoolError(
                f"pool task {task!r} failed in a worker:\n{failure}")
        return results

    # -- lifecycle --------------------------------------------------------

    def _alive(self) -> bool:
        return bool(self._procs) \
            and all(proc.is_alive() for proc in self._procs)

    def _ensure(self) -> None:
        if os.getpid() != self.owner_pid:
            raise PoolError(
                "SharedPool used from a process that does not own it "
                "(pools do not survive fork; use repro.parallel.get_pool)")
        if not fork_available():  # pragma: no cover - posix containers
            raise PoolError("SharedPool needs the fork start method")
        if self._alive() and not self._stale:
            return
        self._teardown()
        context = multiprocessing.get_context("fork")
        for index in range(self.workers):
            parent_end, child_end = context.Pipe(duplex=True)
            # The child inherits every parent end created so far (its
            # own included); the worker closes them all first thing.
            proc = context.Process(
                target=_worker_main,
                args=(child_end, self._registry,
                      [*self._conns, parent_end]),
                daemon=True, name=f"repro-pool-{index}")
            proc.start()
            child_end.close()
            self._conns.append(parent_end)
            self._procs.append(proc)
        self._stale = False
        self.spawn_count += 1

    def _teardown(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("exit",))
            except (BrokenPipeError, OSError):
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - wedged worker
                proc.terminate()
                proc.join(timeout=1.0)
        self._conns = []
        self._procs = []

    def shutdown(self) -> None:
        """Stop the workers (the registry survives for a respawn)."""
        if os.getpid() != self.owner_pid:
            return  # a forked child must not reap its parent's workers
        self._teardown()
        self._stale = True

    def __enter__(self) -> "SharedPool":
        return self

    def __exit__(self, *exc) -> bool:
        self.shutdown()
        return False
