"""Persistent shared-memory fork pool: spawn once, execute many.

The historical parallel paths (``run_point(n_jobs=...)``, the campaign
orchestrator) created a ``multiprocessing.Pool`` per call: every call
paid a fork per worker plus the inheritance of whatever happened to be
in the parent at that moment.  :class:`SharedPool` inverts that:

* **Workers are spawned once** (per registration generation, see
  below) and stay alive across calls; each holds the objects the
  parent registered -- compiled netlist plans, shared-memory
  workspaces, Monte-Carlo state -- so the per-call message is a task
  name plus a few ints.  No plan, buffer or closure is ever pickled
  per call.
* **Results land in place** for the sharded netlist path: workspace
  matrices are anonymous shared mappings
  (:func:`repro.parallel.shm.shared_empty`), each worker writes its
  own column range, and the parent reads the full matrix after the
  join.  There is no inter-level barrier because the block axis is
  embarrassingly parallel: every row a level reads was written by the
  same column shard at an earlier level.
* **Two transports** feed the workers.  Picklable objects
  (:meth:`SharedPool.push_if_new` -- plans, delay vectors, seed lists)
  are broadcast over the worker pipes once, when they change.
  Unpicklable or shared-mapping objects (:meth:`SharedPool.register`
  -- workspaces, closures over injector factories and compiled
  kernels) ride fork inheritance: registering one after the workers
  exist marks the pool *stale*, and the next :meth:`SharedPool.run`
  respawns the workers so they fork with the new state in memory.
  Spawn cost is therefore amortized: registrations happen when a
  circuit, sweep or campaign is first seen, and every hot-path call
  after that reuses the same workers.

Tasks are module-level functions declared with :func:`pool_task` at
import time (workers inherit the registry via fork); they receive the
worker's object registry plus the per-call arguments and must return
something picklable (or ``None`` when results land in shared memory).

Failure semantics: a worker exception travels back as a formatted
traceback and re-raises as :class:`PoolError` in the parent after all
workers of the call have been drained (no worker is left mid-task) --
task-level bugs are deterministic, so they are never retried.  Worker
*loss* is different: each worker sends a heartbeat every
``heartbeat_s / 4`` while idle or computing, and the parent treats a
worker as lost when its pipe hits EOF, its process exits, or no beat
arrives within ``heartbeat_s`` (hung: the process is killed).  Lost
workers trigger **one respawn-and-reassign cycle** for their in-flight
calls; if workers keep dying, the pool logs a fallback and runs the
remaining calls **serially in the parent** -- tasks are deterministic
and idempotent (shared-memory shard writes, store puts), so results
are bit-identical either way.  Workers ignore SIGINT (the parent
handles it) and exit on pipe EOF, so they cannot outlive a killed
parent; an ``atexit`` hook additionally reaps every live pool of the
owning process, and ``shutdown`` is idempotent, so a parent exception
mid-dispatch leaves no zombie children behind.
"""

from __future__ import annotations

import atexit
import logging
import os
import signal
import threading
import time
import traceback
import weakref
import multiprocessing
from typing import Callable

from repro import faults, obs

_LOG = logging.getLogger("repro.parallel")

#: Default worker staleness timeout (seconds); 0 disables hung-worker
#: detection (dead-worker detection via pipe EOF stays on).
DEFAULT_HEARTBEAT_S = 30.0


def default_heartbeat_s() -> float:
    env = os.environ.get("REPRO_POOL_HEARTBEAT_S")
    if env:
        try:
            return float(env)
        except ValueError:
            pass
    return DEFAULT_HEARTBEAT_S

#: Task-name -> function registry, populated at import time by
#: :func:`pool_task`; forked workers inherit it.
_TASKS: dict[str, Callable] = {}


def pool_task(name: str) -> Callable:
    """Register a module-level function as a pool task.

    The function runs inside workers as ``fn(registry, *args)``.  It
    must be declared at import time (before the pool spawns) so fork
    inheritance carries it into every worker.
    """
    def decorate(fn: Callable) -> Callable:
        existing = _TASKS.get(name)
        if existing is not None and existing is not fn:
            raise ValueError(f"pool task {name!r} already registered")
        _TASKS[name] = fn
        return fn
    return decorate


class PoolError(RuntimeError):
    """A pool task failed or the pool is unusable in this process."""


#: Distinguishes "key absent" from "key holds None" in the registry
#: (``None`` is a legitimate registered value, e.g. a default config).
_MISSING = object()


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods() \
        and hasattr(os, "fork")


def _worker_main(conn, registry: dict, stale_parent_ends: list,
                 heartbeat_s: float = 0.0) -> None:
    """Worker loop: serve ``set``/``run`` messages until EOF or exit.

    ``stale_parent_ends`` are the parent-side pipe ends this worker
    inherited through fork (its own included); closing them here makes
    parent death observable as EOF on ``conn`` -- otherwise sibling
    workers would keep each other's pipes open forever.

    With ``heartbeat_s > 0`` a daemon thread sends ``("hb",)`` every
    quarter-timeout (under a lock shared with result sends, so beats
    never interleave into a result frame); the parent declares the
    worker hung when no message arrives for a full timeout.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    for end in stale_parent_ends:
        try:
            end.close()
        except OSError:  # pragma: no cover - already closed
            pass
    send_lock = threading.Lock()
    stop_beat = threading.Event()
    if heartbeat_s > 0:
        def beat() -> None:
            while not stop_beat.wait(heartbeat_s / 4.0):
                try:
                    with send_lock:
                        conn.send(("hb",))
                except OSError:  # pragma: no cover - parent gone
                    return
        threading.Thread(target=beat, daemon=True,
                         name="repro-pool-heartbeat").start()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break  # parent is gone
        recv_mono = time.monotonic()
        mode = faults.fire("pool.worker_heartbeat")
        if mode == "hang":
            # A genuine hang stops making progress *and* stops
            # beating; sleeping with the beat thread alive would look
            # like a slow-but-healthy worker to the parent.
            stop_beat.set()
            time.sleep(600.0)
        kind = message[0]
        if kind == "set":
            registry[message[1]] = message[2]
        elif kind == "run":
            _, name, calls, t_sent = message
            try:
                fn = _TASKS[name]
                # Queue wait = send-to-receive on the shared monotonic
                # clock; compute = the span's own duration.  Together
                # they split each shard's latency into transport vs
                # work in `repro stats`.
                with obs.span("pool.task", task=name, calls=len(calls),
                              queue_wait_us=max(
                                  (recv_mono - t_sent) * 1e6, 0.0)):
                    results = [fn(registry, *args) for args in calls]
                faults.fire("pool.result_return")
                with send_lock:
                    conn.send(("ok", results))
            except BaseException:
                with send_lock:
                    conn.send(("err", traceback.format_exc()))
            # Workers exit via os._exit and never run atexit hooks, so
            # counter snapshots must flush at this barrier.
            obs.flush()
        elif kind == "exit":
            break
    stop_beat.set()
    conn.close()


def shard_ranges(n: int, shards: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into contiguous near-equal (lo, hi) ranges."""
    base, extra = divmod(n, shards)
    ranges = []
    lo = 0
    for index in range(shards):
        hi = lo + base + (1 if index < extra else 0)
        if hi > lo:
            ranges.append((lo, hi))
        lo = hi
    return ranges


class SharedPool:
    """Persistent fork-worker pool with a fork-inherited object registry.

    Args:
        workers: worker process count (>= 1; sharding helpers require
            >= 2 to bother).
        min_shard_vectors: narrowest column shard
            :meth:`shard_columns` will produce; blocks narrower than
            ``workers * min_shard_vectors`` run serially (the per-call
            pipe round-trip would dominate).
        heartbeat_s: worker staleness timeout; a worker whose last
            heartbeat is older than this mid-call is killed as hung.
            ``None`` reads ``REPRO_POOL_HEARTBEAT_S`` (default 30);
            0 disables hung detection (EOF detection stays).
    """

    def __init__(self, workers: int, min_shard_vectors: int = 64,
                 heartbeat_s: float | None = None):
        if workers < 1:
            raise ValueError("workers must be positive")
        if min_shard_vectors < 1:
            raise ValueError("min_shard_vectors must be positive")
        self.workers = int(workers)
        self.min_shard_vectors = int(min_shard_vectors)
        self.heartbeat_s = default_heartbeat_s() if heartbeat_s is None \
            else float(heartbeat_s)
        self.owner_pid = os.getpid()
        #: Forks performed so far; benches assert it stays flat across
        #: hot-path calls (spawn cost amortized).
        self.spawn_count = 0
        self._registry: dict = {}
        self._procs: list = []
        self._conns: list = []
        self._stale = True

    # -- state distribution ----------------------------------------------

    def register(self, key, obj) -> None:
        """Make ``obj`` visible to workers via fork inheritance.

        For objects that cannot travel a pipe: shared-memory
        workspaces (pickling would copy them) and closures (cannot be
        pickled at all).  Re-registering the same object is free;
        registering a new object under a live pool marks it stale, and
        the next :meth:`run` respawns the workers.
        """
        if self._registry.get(key, _MISSING) is obj:
            return
        self._registry[key] = obj
        if self._alive():
            self._stale = True

    def push_if_new(self, key, obj) -> None:
        """Send a picklable object to the workers, once per change.

        Pipe sends are ordered, so a ``run`` issued after a push is
        guaranteed to see the object -- no acknowledgement needed.
        """
        if self._registry.get(key, _MISSING) is obj:
            return
        self._registry[key] = obj
        if self._alive() and not self._stale:
            for conn in self._conns:
                try:
                    conn.send(("set", key, obj))
                except OSError:
                    # The worker died mid-broadcast (SIGKILL races the
                    # send).  The object is already in the registry, so
                    # marking the pool stale makes the next `run`
                    # respawn workers that inherit it by fork.
                    self._stale = True

    # -- execution --------------------------------------------------------

    def shard_columns(self, n_vectors: int) -> list[tuple[int, int]] | None:
        """Column ranges for sharding a block, or None when not worth it.

        Deterministic in (n_vectors, workers): a given total width
        always produces the same ranges, so each worker sees a stable
        shard width and its delay-tile cache stays hot.
        """
        if self.workers < 2 \
                or n_vectors < self.workers * self.min_shard_vectors:
            return None
        return shard_ranges(n_vectors, self.workers)

    def run(self, task: str, calls: list[tuple]) -> list:
        """Execute ``task`` once per argument tuple; results in order.

        Calls are dealt round-robin across workers; the parent blocks
        until every worker involved has replied.  Calls whose worker is
        lost (dead, hung, or unreachable) survive one
        respawn-and-reassign cycle; if workers keep dying the leftover
        calls run serially in the parent -- same tasks, same registry,
        bit-identical results.
        """
        if task not in _TASKS:
            raise PoolError(f"unknown pool task {task!r}")
        calls = list(calls)
        if not calls:
            return []
        faults.trip("pool.shard_dispatch")
        with obs.span("pool.dispatch", task=task, calls=len(calls)):
            self._ensure()
            results: list = [None] * len(calls)
            leftover, task_error = self._run_round(
                task, results, list(enumerate(calls)))
            if leftover and task_error is None:
                _LOG.warning(
                    "pool lost worker(s) running %r; respawning and "
                    "reassigning %d call(s)", task, len(leftover))
                self._stale = True
                self._ensure()
                leftover, task_error = self._run_round(task, results,
                                                       leftover)
                if leftover and task_error is None:
                    _LOG.warning(
                        "pool workers keep dying; running %d call(s) of "
                        "%r serially in the parent", len(leftover), task)
                    self._stale = True
                    for index, args in leftover:
                        try:
                            results[index] = _TASKS[task](self._registry,
                                                          *args)
                        except Exception:
                            task_error = traceback.format_exc()
                            break
        if task_error is not None:
            raise PoolError(
                f"pool task {task!r} failed in a worker:\n{task_error}")
        return results

    def _run_round(self, task: str, results: list,
                   indexed_calls: list) -> tuple[list, str | None]:
        """Dispatch indexed calls and collect; returns what is left.

        Returns (lost calls needing another round, task error).  A
        task error -- the function itself raised -- is deterministic
        and is reported, never retried; the remaining workers are
        still drained first so none is left mid-task.
        """
        buckets: list[list] = [[] for _ in self._conns]
        for n, item in enumerate(indexed_calls):
            buckets[n % len(buckets)].append(item)
        pending: list[tuple[int, list]] = []
        lost: list = []
        for worker, bucket in enumerate(buckets):
            if not bucket:
                continue
            try:
                self._conns[worker].send(
                    ("run", task, [tuple(args) for _, args in bucket],
                     time.monotonic()))
            except (BrokenPipeError, OSError):
                lost.extend(bucket)
                continue
            pending.append((worker, bucket))
        task_error = None
        for worker, bucket in pending:
            status, payload = self._recv_result(worker)
            if status == "lost":
                lost.extend(bucket)
            elif status == "err":
                task_error = payload
            else:
                for (index, _), value in zip(bucket, payload):
                    results[index] = value
        return lost, task_error

    def _recv_result(self, worker: int) -> tuple[str, object]:
        """Await one result frame, skipping heartbeats.

        Returns ("ok", values) / ("err", traceback) / ("lost", reason).
        A worker is lost on pipe EOF, on process exit (a buffered
        result still in the pipe is served first -- poll precedes the
        liveness check), or when no message of any kind arrives within
        the heartbeat timeout (hung; the process is killed so a later
        wakeup cannot corrupt a respawned successor's shared state).
        """
        conn = self._conns[worker]
        proc = self._procs[worker]
        last_message = time.monotonic()
        while True:
            try:
                if conn.poll(0.05):
                    message = conn.recv()
                    if message[0] == "hb":
                        obs.counter("pool.heartbeat")
                        last_message = time.monotonic()
                        continue
                    return message[0], message[1]
            except (EOFError, OSError):
                return "lost", f"worker {worker} pipe EOF"
            if not proc.is_alive():
                return "lost", f"worker {worker} exited"
            if self.heartbeat_s > 0 \
                    and time.monotonic() - last_message > self.heartbeat_s:
                _LOG.warning("pool worker %d hung (no heartbeat for "
                             "%.1fs); killing it", worker,
                             self.heartbeat_s)
                try:
                    proc.kill()
                except (OSError, AttributeError):  # pragma: no cover
                    proc.terminate()
                proc.join(timeout=1.0)
                return "lost", f"worker {worker} hung"

    # -- lifecycle --------------------------------------------------------

    def _alive(self) -> bool:
        return bool(self._procs) \
            and all(proc.is_alive() for proc in self._procs)

    def _ensure(self) -> None:
        if os.getpid() != self.owner_pid:
            raise PoolError(
                "SharedPool used from a process that does not own it "
                "(pools do not survive fork; use repro.parallel.get_pool)")
        if not fork_available():  # pragma: no cover - posix containers
            raise PoolError("SharedPool needs the fork start method")
        if self._alive() and not self._stale:
            return
        self._teardown()
        if self.spawn_count:
            obs.counter("pool.respawn")
        context = multiprocessing.get_context("fork")
        with obs.span("pool.spawn", workers=self.workers):
            for index in range(self.workers):
                parent_end, child_end = context.Pipe(duplex=True)
                # The child inherits every parent end created so far
                # (its own included); the worker closes them all first
                # thing.
                proc = context.Process(
                    target=_worker_main,
                    args=(child_end, self._registry,
                          [*self._conns, parent_end], self.heartbeat_s),
                    daemon=True, name=f"repro-pool-{index}")
                proc.start()
                child_end.close()
                self._conns.append(parent_end)
                self._procs.append(proc)
        self._stale = False
        self.spawn_count += 1
        _LIVE_POOLS.add(self)

    def _teardown(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("exit",))
            except (BrokenPipeError, OSError):
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - wedged worker
                proc.terminate()
                proc.join(timeout=1.0)
        self._conns = []
        self._procs = []

    def shutdown(self) -> None:
        """Stop the workers (the registry survives for a respawn)."""
        if os.getpid() != self.owner_pid:
            return  # a forked child must not reap its parent's workers
        self._teardown()
        self._stale = True

    def __enter__(self) -> "SharedPool":
        return self

    def __exit__(self, *exc) -> bool:
        self.shutdown()
        return False


#: Every pool that ever spawned workers, reaped at interpreter exit so
#: a parent exception outside a ``with`` block cannot leak children.
#: Weak references: a collected pool's daemon workers are torn down by
#: their pipes' EOF, so holding it alive here would only delay that.
_LIVE_POOLS: "weakref.WeakSet[SharedPool]" = weakref.WeakSet()


@atexit.register
def _atexit_reap_pools() -> None:  # pragma: no cover - exit path
    for pool in list(_LIVE_POOLS):
        try:
            pool.shutdown()
        except Exception:
            pass
