"""Process-global execution pools: fork workers and thread shards.

Two pools, two substrates, one decision rule:

* :class:`~repro.parallel.pool.SharedPool` -- persistent **fork**
  workers with shared-memory workspaces.  The substrate for work that
  holds the GIL (numpy engines, MC trial chunks, campaign units):
  separate processes are the only way those overlap.
* :class:`~repro.parallel.threads.ThreadShardPool` -- persistent
  **threads** sharding native-engine propagates over column views of
  the same workspace.  The native kernels are ctypes calls that
  release the GIL, so threads overlap them with zero pipes, zero
  pickling and zero registry plumbing; when a thread pool is
  configured, :meth:`Circuit.propagate` routes native engines here
  and never engages the fork pool for them.

Configured explicitly (CLI ``--pool-workers`` / ``--shard-threads``,
benches, tests).  Both accessors are fork-aware, in opposite ways: a
forked child sees ``None`` from :func:`get_pool` (it must never talk
over its parent's pipes) but gets a *fresh same-width pool* from
:func:`get_thread_pool` (threads do not survive fork, and a campaign
or DTA worker should keep thread-sharding its propagates).
"""

from __future__ import annotations

import atexit
import itertools
import os

from repro.parallel.pool import (
    PoolError,
    SharedPool,
    fork_available,
    pool_task,
    shard_ranges,
)
from repro.parallel.shm import is_shared, shared_empty
from repro.parallel.threads import ThreadShardPool, free_threaded

__all__ = [
    "PoolError",
    "SharedPool",
    "ThreadShardPool",
    "configure_pool",
    "configure_thread_pool",
    "fork_available",
    "free_threaded",
    "get_pool",
    "get_thread_pool",
    "is_shared",
    "next_token",
    "pool_task",
    "shard_ranges",
    "shared_empty",
    "shutdown_pool",
    "shutdown_thread_pool",
]

_POOL: SharedPool | None = None

_THREAD_POOL: ThreadShardPool | None = None

_TOKENS = itertools.count(1)


def next_token() -> int:
    """Process-unique small int for building registry keys."""
    return next(_TOKENS)


def configure_pool(workers: int | None,
                   min_shard_vectors: int = 64) -> SharedPool | None:
    """Install (or clear) the process-global pool.

    ``workers`` of None/0/1 -- or an environment without fork --
    clears the pool: every consumer falls back to its serial path.
    Workers spawn lazily on first use, so configuring is free until
    something actually runs on the pool.
    """
    global _POOL
    shutdown_pool()
    if workers and workers >= 2 and fork_available():
        _POOL = SharedPool(workers, min_shard_vectors=min_shard_vectors)
    return _POOL


def get_pool() -> SharedPool | None:
    """The process-global pool, or None (also for forked children)."""
    pool = _POOL
    if pool is None or pool.owner_pid != os.getpid():
        return None
    return pool


def shutdown_pool() -> None:
    """Stop and drop the process-global pool, if this process owns it."""
    global _POOL
    if _POOL is not None and _POOL.owner_pid == os.getpid():
        _POOL.shutdown()
    _POOL = None


def configure_thread_pool(workers: int | None,
                          min_shard_vectors: int = 64) \
        -> ThreadShardPool | None:
    """Install (or clear) the process-global thread-shard pool.

    ``workers`` of None/0 clears it.  Unlike the fork pool, a
    1-worker thread pool is installed rather than cleared: it is
    degenerate (``shard_columns`` answers None, propagates run
    serially) but costs nothing, and it lets "thread mode, one lane"
    be expressed without a special case -- the 1-core bench row runs
    through it.  Threads spawn lazily on first sharded call.
    """
    global _THREAD_POOL
    shutdown_thread_pool()
    if workers and workers >= 1:
        _THREAD_POOL = ThreadShardPool(
            workers, min_shard_vectors=min_shard_vectors)
    return _THREAD_POOL


def get_thread_pool() -> ThreadShardPool | None:
    """The process-global thread pool, rebuilt across forks.

    Threads do not survive :func:`os.fork`, but the *configuration*
    should: a forked campaign/DTA worker inheriting a configured
    thread pool gets a fresh pool of the same width on first access,
    so its native propagates keep thread-sharding.
    """
    global _THREAD_POOL
    pool = _THREAD_POOL
    if pool is not None and pool.owner_pid != os.getpid():
        pool = ThreadShardPool(
            pool.workers, min_shard_vectors=pool.min_shard_vectors)
        _THREAD_POOL = pool
    return pool


def shutdown_thread_pool() -> None:
    """Join and drop the thread pool, if this process owns it."""
    global _THREAD_POOL
    if _THREAD_POOL is not None \
            and _THREAD_POOL.owner_pid == os.getpid():
        _THREAD_POOL.shutdown()
    _THREAD_POOL = None


atexit.register(shutdown_pool)
atexit.register(shutdown_thread_pool)
