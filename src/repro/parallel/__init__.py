"""Process-global shared-memory execution pool.

One :class:`~repro.parallel.pool.SharedPool` per process, configured
explicitly (CLI ``--pool-workers``, benches, tests) and consumed by
the hot paths:

* :meth:`repro.netlist.circuit.Circuit.propagate` shards the block
  axis of the compiled engines over the pool (shared-memory
  workspaces, zero per-call pickling);
* :func:`repro.mc.runner.run_point` runs per-trial-seed chunks on the
  pool instead of forking a throwaway ``multiprocessing.Pool`` per
  point;
* the campaign orchestrator shards work units over the pool instead
  of forking a pool per campaign invocation.

:func:`get_pool` is fork-aware: a worker process that inherited the
parent's pool object sees ``None`` and falls back to serial execution
-- a forked child must never talk over its parent's pipes.
"""

from __future__ import annotations

import atexit
import itertools
import os

from repro.parallel.pool import (
    PoolError,
    SharedPool,
    fork_available,
    pool_task,
    shard_ranges,
)
from repro.parallel.shm import is_shared, shared_empty

__all__ = [
    "PoolError",
    "SharedPool",
    "configure_pool",
    "fork_available",
    "get_pool",
    "is_shared",
    "next_token",
    "pool_task",
    "shard_ranges",
    "shared_empty",
    "shutdown_pool",
]

_POOL: SharedPool | None = None

_TOKENS = itertools.count(1)


def next_token() -> int:
    """Process-unique small int for building registry keys."""
    return next(_TOKENS)


def configure_pool(workers: int | None,
                   min_shard_vectors: int = 64) -> SharedPool | None:
    """Install (or clear) the process-global pool.

    ``workers`` of None/0/1 -- or an environment without fork --
    clears the pool: every consumer falls back to its serial path.
    Workers spawn lazily on first use, so configuring is free until
    something actually runs on the pool.
    """
    global _POOL
    shutdown_pool()
    if workers and workers >= 2 and fork_available():
        _POOL = SharedPool(workers, min_shard_vectors=min_shard_vectors)
    return _POOL


def get_pool() -> SharedPool | None:
    """The process-global pool, or None (also for forked children)."""
    pool = _POOL
    if pool is None or pool.owner_pid != os.getpid():
        return None
    return pool


def shutdown_pool() -> None:
    """Stop and drop the process-global pool, if this process owns it."""
    global _POOL
    if _POOL is not None and _POOL.owner_pid == os.getpid():
        _POOL.shutdown()
    _POOL = None


atexit.register(shutdown_pool)
