"""Zero-IPC block-axis sharding for native engines: threads, not forks.

The fork :class:`~repro.parallel.pool.SharedPool` exists because numpy
engines hold the GIL: to overlap shards it needs separate processes,
which drags in shared mappings, registry pushes, pipe round-trips and
a measured ~3-4 ms/task contended queue wait on this box.  The native
C kernels need none of that -- they are ``ctypes`` calls, which
**release the GIL** for their whole run -- so a plain thread pool can
shard the block axis of a propagate over column-sliced views of the
*same* workspace: zero pipes, zero pickling, zero MAP_SHARED plumbing,
and worker "spawn" is just a thread create.

Design target is free-threaded CPython (PEP 703): there, the Python
slivers around the kernel call stop serializing too and numpy engines
become shardable the same way.  On a GIL build, everything outside the
kernel call serializes -- which is fine, because the kernel *is* the
propagate (the fused stimulus/extract kernels removed the numpy walls
around it).  ``repro engines`` reports which build is running via
``Py_GIL_DISABLED``.

Fault site: every shard dispatch passes through ``threads.shard``.  A
fired fault (or a real exception escaping a worker) does not abort the
call -- the lost shard **heals serially in the dispatching thread**,
which is byte-identical because column writes are idempotent and
disjoint.  A failure that persists through the serial retry
propagates.
"""

from __future__ import annotations

import logging
import os
import sysconfig
import threading
from concurrent.futures import Future, ThreadPoolExecutor

from repro import faults, obs
from repro.parallel.pool import shard_ranges

_LOG = logging.getLogger("repro.parallel")


def free_threaded() -> bool:
    """True on a free-threaded (PEP 703, ``Py_GIL_DISABLED``) build."""
    return bool(sysconfig.get_config_var("Py_GIL_DISABLED"))


class ThreadShardPool:
    """Persistent thread pool sharding native propagates by column range.

    Mirrors the :class:`~repro.parallel.pool.SharedPool` sharding
    contract (``shard_columns`` answers None when sharding cannot
    help, callers then run serially) without any of its plumbing:
    there is no registry, nothing to push, and nothing to inherit --
    workers see the caller's objects directly.

    A one-worker pool is legal and degenerate: ``shard_columns``
    always answers None, so every propagate runs serially on the
    dispatching thread -- "thread mode, one lane" without a special
    case, which is also what keeps the 1-core bench row at parity
    with serial.
    """

    def __init__(self, workers: int, min_shard_vectors: int = 64):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = int(workers)
        self.min_shard_vectors = int(min_shard_vectors)
        #: Threads do not survive :func:`os.fork`; the module-level
        #: accessor uses this to rebuild a fresh pool in forked
        #: campaign/DTA workers instead of submitting into a dead
        #: executor.
        self.owner_pid = os.getpid()
        #: Executor creations (1 after first use unless shut down and
        #: revived) -- benchmarks assert warm calls never respawn.
        self.spawn_count = 0
        self._executor: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()

    # -- sharding ---------------------------------------------------------

    def shard_columns(self, n_vectors: int) \
            -> list[tuple[int, int]] | None:
        """Column ranges for one call, or None to run serially.

        Same decision rule as the fork pool: sharding needs at least
        two workers and enough columns that every worker gets a
        meaningful slice.
        """
        if self.workers < 2 \
                or n_vectors < self.workers * self.min_shard_vectors:
            return None
        return shard_ranges(n_vectors, self.workers)

    # -- execution --------------------------------------------------------

    def _ensure(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-shard")
                self.spawn_count += 1
            return self._executor

    @staticmethod
    def _run_shard(fn, lo: int, hi: int,
                   parent: str | None) -> BaseException | None:
        """One worker-thread shard; returns (not raises) its failure.

        The span parent is adopted from the dispatching thread so
        ``threads.shard`` spans hang off the propagate call tree
        instead of floating free (worker threads start with an empty
        span stack).
        """
        with obs.adopted_parent(parent):
            try:
                with obs.span("threads.shard", lo=lo, hi=hi):
                    fn(lo, hi)
            except BaseException as error:  # healed by the dispatcher
                return error
        return None

    def run(self, fn, shards: list[tuple[int, int]]) -> None:
        """Run ``fn(lo, hi)`` for every shard across the pool.

        Shards that fail -- an injected ``threads.shard`` fault at
        dispatch or a real exception escaping the worker -- are healed
        by re-running ``fn`` serially in the calling thread.  Column
        writes are idempotent and disjoint per shard, so a healed call
        is byte-identical to an unfaulted one.  The fault is counted
        per shard in the dispatching thread (deterministic hit order;
        worker interleaving never changes which shard trips).
        """
        executor = self._ensure()
        parent = obs.current_span_id()
        pending: list[tuple[int, int, Future]] = []
        healing: list[tuple[int, int, str]] = []
        for lo, hi in shards:
            mode = faults.fire("threads.shard")
            if mode is not None:
                healing.append((lo, hi, f"injected {mode} fault"))
                continue
            pending.append((lo, hi, executor.submit(
                self._run_shard, fn, lo, hi, parent)))
        for lo, hi, future in pending:
            error = future.result()
            if error is not None:
                healing.append((lo, hi, repr(error)))
        for lo, hi, reason in healing:
            _LOG.warning(
                "thread shard [%d:%d) lost (%s); healing serially in "
                "the dispatching thread", lo, hi, reason)
            obs.counter("threads.heal")
            with obs.span("threads.shard", lo=lo, hi=hi, healed=True):
                fn(lo, hi)

    # -- lifecycle --------------------------------------------------------

    def shutdown(self) -> None:
        """Join the worker threads (idempotent; pool stays revivable)."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)
