"""Shared-memory numpy buffers for the persistent execution pool.

Buffers are anonymous ``MAP_SHARED`` mappings (``mmap.mmap(-1, n)``),
not named :mod:`multiprocessing.shared_memory` segments, for three
reasons that matter to this repo's fork-only pool:

* **Inheritance is the transport.**  Pool workers are forked from the
  parent, so they inherit the mapping directly -- there is no name to
  attach to, no pickling, and parent/worker writes are visible to each
  other immediately (the pages are shared, not copy-on-write).
* **Kill-safe by construction.**  A SIGKILLed campaign must leave no
  litter (the campaign smoke test kills whole process groups).  An
  anonymous mapping disappears with its last process; a named
  ``/dev/shm`` segment would leak until someone unlinks it.
* **No resource-tracker hazards.**  Named segments are registered with
  the multiprocessing resource tracker, which double-unlinks and warns
  when parent and forked children disagree about ownership (fixed only
  in Python 3.13's ``track=False``).  Anonymous mappings sidestep the
  whole mechanism.

The one rule callers must respect: a worker only sees mappings created
*before* it was forked.  :class:`~repro.parallel.pool.SharedPool`
enforces this by respawning its workers (generation bump) whenever a
fork-inherited object is registered after spawn.
"""

from __future__ import annotations

import mmap

import numpy as np


def shared_empty(shape, dtype) -> np.ndarray:
    """Uninitialized array backed by an anonymous shared mapping.

    The returned array owns a reference to the mapping (via the buffer
    protocol), so the mapping lives exactly as long as the array --
    and, through fork, as long as any worker still maps it.
    """
    dtype = np.dtype(dtype)
    count = int(np.prod(shape, dtype=np.int64)) if shape else 1
    nbytes = max(1, count * dtype.itemsize)
    buffer = mmap.mmap(-1, nbytes)
    return np.frombuffer(buffer, dtype=dtype,
                         count=count).reshape(shape)


def is_shared(array: np.ndarray) -> bool:
    """Whether an array (or its base chain) sits on a shared mapping.

    ``np.frombuffer`` wraps its buffer in a memoryview, so the base
    chain of a :func:`shared_empty` array ends in a ``memoryview``
    whose ``.obj`` is the mapping -- follow both links.
    """
    base = array
    while base is not None:
        if isinstance(base, mmap.mmap):
            return True
        if isinstance(base, memoryview):
            base = base.obj
        else:
            base = getattr(base, "base", None)
    return False
