"""The execution-stage ALU: four functional units behind a result mux.

This is the netlist-level model of the case study's execute stage.
The 32 result bits latched at the EX/MEM pipeline boundary are the *ALU
endpoints* -- by the paper's constraint strategy they are the only
timing-critical flip-flops in the core, so all timing characterization
(STA for models B/B+, DTA for model C) happens here.

Structure:

* ``adder`` -- add/subtract unit (carry-select by default),
* ``multiplier`` -- low-word carry-save array multiplier,
* ``shifter`` -- shared barrel shifter,
* ``logic`` -- AND/OR/XOR unit,
* a per-bit 4:1 output mux (two MUX2 levels) merging the unit results
  onto the endpoint register inputs, modeled as a fixed delay adder
  since the mux selects are stable during back-to-back operations of
  the same type.

Every FI-eligible mnemonic maps to one unit plus a stimulus builder
that formats architectural operands into the unit's input buses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.isa.instructions import ALU_MNEMONICS
from repro.netlist.adders import ADDER_KINDS, adder_circuit
from repro.netlist.circuit import Circuit
from repro.netlist.library import CellLibrary, VDD_REF
from repro.netlist.logic_unit import OP_AND, OP_OR, OP_XOR, logic_circuit
from repro.netlist.multiplier import multiplier_circuit
from repro.netlist.shifter import shifter_circuit
from repro.timing.sta import static_arrivals

#: Number of ALU endpoint flip-flops (the EX-stage result register).
N_ENDPOINTS = 32

#: Levels of 2:1 muxes between unit outputs and the endpoint register.
OUTPUT_MUX_LEVELS = 2

StimulusBuilder = Callable[[np.ndarray, np.ndarray], dict[str, np.ndarray]]


def _adder_stimulus(sub: int) -> StimulusBuilder:
    def build(a: np.ndarray, b: np.ndarray) -> dict[str, np.ndarray]:
        return {"a": a, "b": b, "sub": np.full_like(a, sub)}
    return build


def _mul_stimulus(a: np.ndarray, b: np.ndarray) -> dict[str, np.ndarray]:
    return {"a": a, "b": b}


def _shift_stimulus(right: int, arith: int) -> StimulusBuilder:
    def build(a: np.ndarray, b: np.ndarray) -> dict[str, np.ndarray]:
        return {
            "a": a,
            "amount": b & 31,
            "right": np.full_like(a, right),
            "arith": np.full_like(a, arith),
        }
    return build


def _logic_stimulus(op: int) -> StimulusBuilder:
    def build(a: np.ndarray, b: np.ndarray) -> dict[str, np.ndarray]:
        return {"a": a, "b": b, "op": np.full_like(a, op)}
    return build


@dataclass
class AluConfig:
    """Build-time configuration of the ALU netlist.

    Attributes:
        width: data-path width (32 for the case study).
        adder_kind: adder topology (see :data:`ADDER_KINDS`).
    """

    width: int = 32
    adder_kind: str = "carry-select"

    def __post_init__(self) -> None:
        if self.adder_kind not in ADDER_KINDS:
            raise ValueError(f"unknown adder kind {self.adder_kind!r}")


class AluNetlist:
    """The assembled execution-stage ALU with its timing views.

    Args:
        config: build-time configuration.
        library: cell timing library.
        unit_scales: per-unit sizing scales; normally set afterwards by
            :func:`repro.netlist.calibrate.calibrate_alu`.
    """

    UNIT_NAMES = ("adder", "multiplier", "shifter", "logic")

    def __init__(self, config: AluConfig | None = None,
                 library: CellLibrary | None = None,
                 unit_scales: dict[str, float] | None = None):
        self.config = config or AluConfig()
        self.library = library or CellLibrary()
        width = self.config.width
        self.units: dict[str, Circuit] = {
            "adder": adder_circuit(width, self.config.adder_kind),
            "multiplier": multiplier_circuit(width),
            "shifter": shifter_circuit(width),
            "logic": logic_circuit(width),
        }
        self.unit_scales: dict[str, float] = dict.fromkeys(
            self.UNIT_NAMES, 1.0)
        if unit_scales:
            self.unit_scales.update(unit_scales)
        self._dispatch: dict[str, tuple[str, StimulusBuilder]] = \
            self._build_dispatch()

    def _build_dispatch(self) -> dict[str, tuple[str, StimulusBuilder]]:
        dispatch: dict[str, tuple[str, StimulusBuilder]] = {
            "l.add": ("adder", _adder_stimulus(0)),
            "l.addi": ("adder", _adder_stimulus(0)),
            "l.sub": ("adder", _adder_stimulus(1)),
            "l.mul": ("multiplier", _mul_stimulus),
            "l.muli": ("multiplier", _mul_stimulus),
            "l.sll": ("shifter", _shift_stimulus(0, 0)),
            "l.slli": ("shifter", _shift_stimulus(0, 0)),
            "l.srl": ("shifter", _shift_stimulus(1, 0)),
            "l.srli": ("shifter", _shift_stimulus(1, 0)),
            "l.sra": ("shifter", _shift_stimulus(1, 1)),
            "l.srai": ("shifter", _shift_stimulus(1, 1)),
            "l.and": ("logic", _logic_stimulus(OP_AND)),
            "l.andi": ("logic", _logic_stimulus(OP_AND)),
            "l.or": ("logic", _logic_stimulus(OP_OR)),
            "l.ori": ("logic", _logic_stimulus(OP_OR)),
            "l.xor": ("logic", _logic_stimulus(OP_XOR)),
            "l.xori": ("logic", _logic_stimulus(OP_XOR)),
        }
        missing = set(ALU_MNEMONICS) - set(dispatch)
        if missing:
            raise AssertionError(
                f"FI-eligible mnemonics without a unit mapping: {missing}")
        return dispatch

    # -- structure -------------------------------------------------------

    @property
    def mnemonics(self) -> tuple[str, ...]:
        """All FI-eligible mnemonics this ALU implements."""
        return tuple(sorted(self._dispatch))

    def unit_of(self, mnemonic: str) -> str:
        """Functional unit exercised by a mnemonic."""
        try:
            return self._dispatch[mnemonic][0]
        except KeyError:
            raise KeyError(
                f"{mnemonic!r} is not an FI-eligible instruction") from None

    def total_gates(self) -> int:
        return sum(unit.n_gates for unit in self.units.values())

    # -- timing helpers -----------------------------------------------------

    def mux_delay_ps(self, vdd: float = VDD_REF) -> float:
        """Delay of the output-mux levels in front of the endpoints."""
        return OUTPUT_MUX_LEVELS * self.library.delay_ps("MUX2", vdd)

    def endpoint_sta(self, vdd: float = VDD_REF) -> dict[str, np.ndarray]:
        """Static arrival per unit and endpoint bit, incl. output mux.

        Setup time is not included; callers compare
        ``arrival + setup`` against the clock period.
        """
        mux = self.mux_delay_ps(vdd)
        result = {}
        for name, unit in self.units.items():
            arrivals = static_arrivals(unit, self.library, vdd,
                                       self.unit_scales[name])
            result[name] = arrivals["result"] + mux
        return result

    def worst_sta_period_ps(self, vdd: float = VDD_REF) -> float:
        """Minimum safe clock period [ps]: worst arrival + setup."""
        per_unit = self.endpoint_sta(vdd)
        worst = max(float(bits.max()) for bits in per_unit.values())
        return worst + self.library.setup(vdd)

    def sta_limit_hz(self, vdd: float = VDD_REF) -> float:
        """STA frequency limit [Hz] at a supply voltage."""
        return 1e12 / self.worst_sta_period_ps(vdd)

    # -- functional/timing evaluation ---------------------------------------

    def compute(self, mnemonic: str, a: np.ndarray,
                b: np.ndarray) -> np.ndarray:
        """Functionally evaluate one mnemonic on operand arrays."""
        unit_name, build = self._dispatch[mnemonic]
        a = np.atleast_1d(np.asarray(a, dtype=np.uint64))
        b = np.atleast_1d(np.asarray(b, dtype=np.uint64))
        outputs = self.units[unit_name].evaluate(build(a, b))
        return outputs["result"]

    def propagate(self, mnemonic: str, prev_ops: tuple[np.ndarray, np.ndarray],
                  new_ops: tuple[np.ndarray, np.ndarray],
                  vdd: float = VDD_REF,
                  glitch_model: str = "sensitized",
                  engine: str = "compiled") -> \
            tuple[np.ndarray, np.ndarray]:
        """Two-vector timing simulation of one mnemonic.

        Args:
            mnemonic: FI-eligible instruction.
            prev_ops: (a, b) operand arrays of the previous cycle.
            new_ops: (a, b) operand arrays of the current cycle.
            vdd: supply voltage of the timing view.
            glitch_model: event model, see :meth:`Circuit.propagate`.
            engine: circuit engine (``"compiled"`` uses the unit's
                levelized plan and reuses its block workspace across
                calls; ``"reference"`` is the per-gate loop).

        Returns:
            ``(values, arrivals)``: the new result words (N,) and the
            endpoint data arrival times (32, N) in ps, including
            clock-to-Q launch and the output mux, excluding setup.
        """
        unit_name, build = self._dispatch[mnemonic]
        unit = self.units[unit_name]
        delays = unit.gate_delays(self.library, vdd,
                                  self.unit_scales[unit_name])
        launch = self.library.clk_to_q(vdd)
        prev = build(np.atleast_1d(np.asarray(prev_ops[0], dtype=np.uint64)),
                     np.atleast_1d(np.asarray(prev_ops[1], dtype=np.uint64)))
        new = build(np.atleast_1d(np.asarray(new_ops[0], dtype=np.uint64)),
                    np.atleast_1d(np.asarray(new_ops[1], dtype=np.uint64)))
        outputs, arrivals = unit.propagate(prev, new, delays, launch,
                                           glitch_model, engine=engine)
        changed = arrivals["result"] > 0.0
        return outputs["result"], np.where(
            changed, arrivals["result"] + self.mux_delay_ps(vdd), 0.0)
