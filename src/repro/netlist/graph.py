"""Structural graph utilities over raw netlist arrays.

Both the compiled plan (:mod:`repro.netlist.plan`) and the netlist
linter (:mod:`repro.analysis.lint`) need the same structural questions
answered about a netlist given only its raw arrays -- gate kinds,
per-gate input tuples, per-gate output nets -- without assuming the
arrays came from a well-formed :class:`~repro.netlist.circuit.Circuit`
(the whole point of linting is that they may not have).  The helpers
here are pure functions of those arrays, so the two consumers share
one implementation instead of two drifting ones.

A netlist is *combinational* iff the directed graph whose edges run
from every gate input net to its output net is acyclic.  The
:class:`Circuit` construction API enforces this by insisting on
topological gate order, but netlists assembled by hand, imported from
Verilog, or corrupted in transit can violate it -- and a cyclic
netlist used to fail levelization with an obscure internal assertion
instead of a diagnostic naming the loop.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def driver_map(gate_inputs: Sequence[tuple[int, ...]],
               gate_outputs: Sequence[int]) -> dict[int, int]:
    """Net id -> index of the (last) gate driving it."""
    del gate_inputs  # symmetry with the other helpers' signatures
    return {out: index for index, out in enumerate(gate_outputs)}


def fanout_counts(n_nets: int,
                  gate_inputs: Sequence[tuple[int, ...]],
                  output_nets: Iterable[int] = ()) -> list[int]:
    """Per-net consumer count: gate input pins plus output-bus taps."""
    counts = [0] * n_nets
    for ins in gate_inputs:
        for net in ins:
            counts[net] += 1
    for net in output_nets:
        counts[net] += 1
    return counts


def undriven_nets(n_nets: int,
                  gate_inputs: Sequence[tuple[int, ...]],
                  gate_outputs: Sequence[int],
                  input_nets: Iterable[int],
                  output_nets: Iterable[int] = ()) -> list[int]:
    """Nets referenced (gate pin or output bus) but driven by nothing.

    Drivers are the constants 0/1, the primary input nets and every
    gate output.  Unreferenced undriven ids are not reported -- a
    netlist may legitimately have net-id gaps.
    """
    driven = {0, 1}
    driven.update(input_nets)
    driven.update(gate_outputs)
    referenced: set[int] = set()
    for ins in gate_inputs:
        referenced.update(ins)
    referenced.update(output_nets)
    return sorted(net for net in referenced if net not in driven)


def multiply_driven_nets(gate_outputs: Sequence[int],
                         input_nets: Iterable[int]) -> list[int]:
    """Nets with more than one driver (two gates, or gate + input)."""
    inputs = set(input_nets)
    seen: set[int] = set()
    clashing: set[int] = set()
    for out in gate_outputs:
        if out in seen or out in inputs or out in (0, 1):
            clashing.add(out)
        seen.add(out)
    return sorted(clashing)


def find_combinational_cycle(
        gate_inputs: Sequence[tuple[int, ...]],
        gate_outputs: Sequence[int]) -> list[int] | None:
    """One combinational loop as a closed net-id walk, or None.

    Runs an iterative three-color depth-first search over the gate
    graph (edge: driver gate -> consumer pin's gate).  On the first
    back edge the gray stack is unwound into the cycle's *net* ids --
    the names a user can actually look up -- returned as a closed walk
    ``[n, ..., n]`` whose first and last entries coincide.
    """
    drivers = driver_map(gate_inputs, gate_outputs)
    n_gates = len(gate_outputs)
    # 0 = white, 1 = gray (on the current DFS path), 2 = black.
    color = [0] * n_gates
    for root in range(n_gates):
        if color[root] != 0:
            continue
        # Stack of (gate, iterator over its driver-gate predecessors).
        stack = [(root, iter(gate_inputs[root]))]
        color[root] = 1
        while stack:
            gate, pins = stack[-1]
            advanced = False
            for net in pins:
                pred = drivers.get(net)
                if pred is None:
                    continue
                if color[pred] == 1:
                    # Back edge: unwind the gray path pred -> ... -> gate.
                    path_gates = [entry[0] for entry in stack]
                    start = path_gates.index(pred)
                    nets = [gate_outputs[g] for g in path_gates[start:]]
                    return nets + [nets[0]]
                if color[pred] == 0:
                    color[pred] = 1
                    stack.append((pred, iter(gate_inputs[pred])))
                    advanced = True
                    break
            if not advanced:
                color[gate] = 2
                stack.pop()
    return None


def reaches_outputs(n_nets: int,
                    gate_inputs: Sequence[tuple[int, ...]],
                    gate_outputs: Sequence[int],
                    output_nets: Iterable[int]) -> list[bool]:
    """Per-gate flag: does the gate's output reach any output-bus net?

    Backward breadth-first search from the output taps through the
    driver relation; robust to cycles (visited set).  Gates that fail
    this test are *dead logic* -- they burn area and simulation time
    but can never influence an observable value.
    """
    drivers = driver_map(gate_inputs, gate_outputs)
    del n_nets  # the walk is over gates; nets only index `drivers`
    live = [False] * len(gate_outputs)
    frontier = [drivers[net] for net in output_nets if net in drivers]
    for gate in frontier:
        live[gate] = True
    while frontier:
        gate = frontier.pop()
        for net in gate_inputs[gate]:
            pred = drivers.get(net)
            if pred is not None and not live[pred]:
                live[pred] = True
                frontier.append(pred)
    return live
