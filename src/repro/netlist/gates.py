"""Gate primitives of the synthetic standard-cell library.

Each gate kind has a boolean evaluation function vectorized over numpy
arrays (the circuit engine evaluates a whole block of stimulus cycles
per gate call) and a nominal propagation delay defined by the cell
library.  The set matches what a simple technology mapping of the ALU
blocks needs: inverters, 2-input NAND/NOR/AND/OR/XOR/XNOR and a 2:1 mux.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

BoolArray = np.ndarray

#: Gate kind -> (number of inputs, vectorized evaluation function).
#: Input order for MUX2 is (select, a, b): output is b when select else a.
GATE_KINDS: dict[str, tuple[int, Callable[..., BoolArray]]] = {
    "INV": (1, lambda a: ~a),
    "BUF": (1, lambda a: a.copy()),
    "NAND2": (2, lambda a, b: ~(a & b)),
    "NOR2": (2, lambda a, b: ~(a | b)),
    "AND2": (2, lambda a, b: a & b),
    "OR2": (2, lambda a, b: a | b),
    "XOR2": (2, lambda a, b: a ^ b),
    "XNOR2": (2, lambda a, b: ~(a ^ b)),
    "MUX2": (3, lambda s, a, b: np.where(s, b, a)),
}


def arity_of(kind: str) -> int:
    """Number of inputs of a gate kind."""
    try:
        return GATE_KINDS[kind][0]
    except KeyError:
        raise KeyError(f"unknown gate kind {kind!r}; known: "
                       f"{sorted(GATE_KINDS)}") from None


def eval_gate(kind: str, *inputs: BoolArray) -> BoolArray:
    """Evaluate one gate kind on vectorized boolean inputs."""
    arity, fn = GATE_KINDS[kind]
    if len(inputs) != arity:
        raise ValueError(f"{kind} expects {arity} inputs, got {len(inputs)}")
    return fn(*inputs)
