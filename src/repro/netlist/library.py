"""Synthetic 28 nm-class standard-cell timing library.

The paper characterizes a post place & route netlist in 28 nm FD-SOI
with foundry libraries at several supply voltages.  We model the same
information with a compact analytical library:

* per-cell nominal propagation delays (picoseconds) at the reference
  supply voltage of 0.7 V, with magnitudes representative of a 28 nm
  process at that (near-threshold-ish) operating point;
* supply-voltage dependence through the alpha-power law
  ``delay(V) = k * V / (V - Vth)**alpha``, the standard compact model
  for gate delay in velocity-saturated CMOS.  The default Vth/alpha
  pair is chosen so the delay sensitivity around 0.7 V (about -3.6 %/
  10 mV) reproduces the paper's measured noise behavior: with clipped
  2-sigma droops, the model-B+ fault onsets land near the published
  661 MHz (sigma = 10 mV) and 588 MHz (sigma = 25 mV);
* sequential overheads: flip-flop clock-to-Q delay and setup time.

The library also supports a per-unit *sizing scale*: synthesis balances
each functional unit against the clock constraint by gate sizing, which
uniformly speeds up or slows down a block without changing its
structure.  :mod:`repro.netlist.calibrate` uses this to place each ALU
unit's STA limit at the case study's operating points.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Nominal per-cell propagation delays in picoseconds at VDD_REF.
DEFAULT_CELL_DELAYS_PS: dict[str, float] = {
    "INV": 12.0,
    "BUF": 18.0,
    "NAND2": 16.0,
    "NOR2": 18.0,
    "AND2": 22.0,
    "OR2": 24.0,
    "XOR2": 30.0,
    "XNOR2": 30.0,
    "MUX2": 26.0,
}

#: Reference supply voltage at which nominal delays are defined [V].
VDD_REF = 0.7

#: Supply voltages for which "foundry characterization" is available,
#: matching the paper's five STA corners (0.6 V to 1.0 V, 100 mV steps).
CHARACTERIZED_VDDS = (0.6, 0.7, 0.8, 0.9, 1.0)


@dataclass(frozen=True)
class CellLibrary:
    """Timing views of the synthetic standard-cell library.

    Attributes:
        cell_delays_ps: per-kind nominal delay at ``VDD_REF``.
        vth: effective threshold voltage of the alpha-power model [V].
        alpha: velocity-saturation exponent of the alpha-power model.
        clk_to_q_ps: flip-flop clock-to-output delay at ``VDD_REF``.
        setup_ps: flip-flop setup time at ``VDD_REF``.
    """

    cell_delays_ps: dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_CELL_DELAYS_PS))
    vth: float = 0.42
    alpha: float = 1.4
    clk_to_q_ps: float = 55.0
    setup_ps: float = 40.0

    def voltage_factor(self, vdd: float) -> float:
        """Delay multiplier at supply ``vdd`` relative to ``VDD_REF``.

        Uses the alpha-power law; raises for voltages at or below the
        threshold, where the model (and the circuit) stops working.
        """
        if vdd <= self.vth:
            raise ValueError(
                f"supply {vdd} V at or below threshold {self.vth} V")
        def raw(v: float) -> float:
            return v / (v - self.vth) ** self.alpha
        return raw(vdd) / raw(VDD_REF)

    def delay_ps(self, kind: str, vdd: float = VDD_REF,
                 scale: float = 1.0) -> float:
        """Propagation delay of one cell kind at a supply voltage.

        Args:
            kind: gate kind (see :mod:`repro.netlist.gates`).
            vdd: supply voltage in volts.
            scale: unit sizing scale (1.0 = nominal sizing).
        """
        try:
            base = self.cell_delays_ps[kind]
        except KeyError:
            raise KeyError(f"no delay for cell kind {kind!r}") from None
        return base * scale * self.voltage_factor(vdd)

    def clk_to_q(self, vdd: float = VDD_REF) -> float:
        """Flip-flop clock-to-Q delay [ps] at a supply voltage."""
        return self.clk_to_q_ps * self.voltage_factor(vdd)

    def setup(self, vdd: float = VDD_REF) -> float:
        """Flip-flop setup time [ps] at a supply voltage."""
        return self.setup_ps * self.voltage_factor(vdd)
