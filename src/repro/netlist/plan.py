"""Compiled structure-of-arrays evaluation plan for :class:`Circuit`.

The per-gate engines in :mod:`repro.netlist.circuit` dispatch one small
numpy call per gate per block, so a 3k-gate multiplier pays ~40k trips
through the Python interpreter for every evaluated block -- the
dominant cost of DTA characterization.  A :class:`CompiledPlan` removes
that overhead by separating a one-time *compile* step from the repeated
*execute* step:

1. **Levelize** the netlist: every net gets a topological level
   (primary inputs and constants at level 0, a gate output one past its
   deepest input).  Gates on the same level are mutually independent by
   construction, so they can be evaluated all at once.
2. **Renumber** nets so that each level's gate outputs occupy one
   contiguous row range of the state matrices -- every kernel writes
   straight into a matrix slice instead of scattering.
3. **Merge** each level's gates into at most three *family* kernels
   (structure-of-arrays index vectors + per-gate inversion-mask
   columns):

   * ``and``-family -- AND2/NAND2/OR2/NOR2 and, with the constant-1
     net as a phantom second input, INV/BUF.  By De Morgan every member
     is ``((a ^ pa) & (b ^ pb)) ^ po`` for per-gate masks pa/pb/po,
     and the sensitized event rule is uniform as well: an input event
     passes iff the other leg has an event or sits at the
     non-controlling value, i.e. ``eff_a = ea & (eb | (nb ^ pb))``.
   * ``xor``-family -- XOR2/XNOR2: ``(a ^ b) ^ po``, never masks.
   * ``mux`` -- MUX2 keeps its dedicated select rules.

Execution operates on ``(n_nets, N)`` state matrices: per family
kernel one fancy-indexed gather of the stacked inputs, a handful of
vectorized bitwise ops, one float max-plus pipeline and one slice
write.  ``np.where`` is avoided throughout (masking is multiplication
by a boolean array, measured ~3x faster), and the sensitized engine
skips the previous-cycle value network entirely -- its masks only ever
read current-cycle values, so the prev evaluation of the per-gate
reference is dead work there.

Two internal representation changes relative to the reference engine
are invisible at the API boundary but worth knowing:

* **Raw settles.**  Internally, a gate-output row of the settle matrix
  holds ``latest + delay`` even where the output carries no event; the
  reference stores 0.0 there.  Consumers always multiply a gathered
  settle by their effective-event mask (``eff <= event``), and
  :class:`Circuit` masks by the event matrix at output-bus extraction,
  so observable arrivals are bit-identical (all settles are
  non-negative, and ``e * s`` equals ``where(e, s, 0.0)`` exactly for
  finite non-negative ``s``).
* **Delay matrix cache.**  The broadcast of the per-bucket delay
  column against the block is materialized once per (delay vector,
  block width, timing dtype) and cached by *object identity* (a strong
  reference is kept, so the id cannot be recycled); repeated blocks of
  one DTA corner reuse it.

Timing dtype
------------

The value/event network is boolean and dtype-free; only the settle
(max-plus) pipeline carries floats.  Both timing engines read their
working dtype from the workspace's settle matrix, so a
:class:`Workspace` built with ``timing_dtype=np.float32`` runs the
whole bandwidth-bound pipeline -- settle matrices, gathered settle
planes and delay tiles -- at half the memory traffic.  float32 is a
*relaxed-identity* view: output values and events stay bit-identical
to float64 (they are boolean), while arrivals agree within
:data:`F32_RTOL`/:data:`F32_ATOL` (each level adds one rounding step
of 2^-24 relative error; tens of levels stay orders of magnitude
inside the contract).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netlist.graph import find_combinational_cycle
from repro.parallel import pool_task

#: Relative tolerance of the float32 settle pipeline vs float64.
#: An arrival is a max-plus chain of at most ``n_levels`` roundings,
#: so the relative error is bounded by ``n_levels * 2**-24`` -- about
#: 4e-6 for the deepest unit (the multiplier, ~65 levels).  1e-4 gives
#: a 25x documented margin.
F32_RTOL = 1e-4

#: Absolute tolerance [ps] of the float32 settle pipeline vs float64
#: (covers arrivals near zero, where rtol alone is vacuous).
F32_ATOL = 0.05

#: and-family kind -> (pa, pb, po) inversion masks for
#: ``((a ^ pa) & (b ^ pb)) ^ po``.
AND_FAMILY: dict[str, tuple[bool, bool, bool]] = {
    "AND2": (False, False, False),
    "NAND2": (False, False, True),
    "OR2": (True, True, True),
    "NOR2": (True, True, False),
    # Unary gates get the constant-1 net as phantom leg b (pb=False):
    # b^pb is all-ones, so the AND is transparent and leg b (event-free
    # by construction) never contributes an event.
    "INV": (False, False, True),
    "BUF": (False, False, False),
}

#: xor-family kind -> po output-inversion mask for ``(a ^ b) ^ po``.
XOR_FAMILY: dict[str, bool] = {"XOR2": False, "XNOR2": True}

_UNARY = ("INV", "BUF")


def _column(flags: list[bool]) -> np.ndarray | None:
    """Per-gate boolean mask column ``(n, 1)``; None when all-False."""
    if not any(flags):
        return None
    return np.array(flags, dtype=bool)[:, None]


@dataclass(frozen=True)
class FamilyOp:
    """One level's worth of same-family gates, as index arrays.

    Attributes:
        family: ``"and"``, ``"xor"`` or ``"mux"``.
        lo, hi: output row slice of the state matrices.
        ins: stacked input *rows*, ``(2n,)`` ordered ``[a..., b...]``
            for 2-input families and ``(3n,)`` ``[a..., b..., s...]``
            for muxes.
        gidx: ``(n,)`` gate indices into the caller's delay vector.
        pin: ``(2n, 1)`` input inversion-mask column (and-family only).
        po: ``(n, 1)`` output inversion-mask column.
    """

    family: str
    lo: int
    hi: int
    ins: np.ndarray
    gidx: np.ndarray
    pin: np.ndarray | None = None
    po: np.ndarray | None = None

    @property
    def n_gates(self) -> int:
        return self.hi - self.lo


class CompiledPlan:
    """Levelized, family-bucketed execution plan of one circuit."""

    def __init__(self, n_nets: int, n_levels: int, rows: np.ndarray,
                 ops: tuple[FamilyOp, ...]):
        self.n_nets = n_nets
        self.n_levels = n_levels
        #: net id -> row index in the plan's state matrices.
        self.rows = rows
        self.ops = ops
        #: Widest per-level gather, in stacked input rows; sizes the
        #: workspace scratch planes so no level allocates its own.
        self.max_gather_rows = max((len(op.ins) for op in ops), default=0)
        self._dmat_key: tuple | None = None
        self._dmat_delays: np.ndarray | None = None  # strong ref, keeps id
        self._dmat_values: np.ndarray | None = None  # defensive copy
        self._dmats: list[np.ndarray] = []

    @property
    def n_ops(self) -> int:
        return len(self.ops)

    @property
    def net_of_row(self) -> np.ndarray:
        """Row index -> net id (inverse of :attr:`rows`), lazily built.

        Static analyzers compute per-*row* quantities (the kernels'
        native coordinates) and need to speak per-*net* at the API
        boundary; the inverse permutation is the bridge.
        """
        inverse = getattr(self, "_net_of_row", None)
        if inverse is None:
            inverse = np.empty(self.n_nets, dtype=np.int64)
            inverse[self.rows] = np.arange(self.n_nets, dtype=np.int64)
            self._net_of_row = inverse
        return inverse

    def row_delays(self, delays: np.ndarray,
                   dtype=np.float64) -> np.ndarray:
        """Per-row delay view: ``out[row] = delays[gate]`` (0 elsewhere).

        Constants, primary inputs and any other non-gate rows carry
        delay 0.  Uncached -- analyzers call this once per report, not
        per propagated block.
        """
        out = np.zeros(self.n_nets, dtype=np.dtype(dtype))
        typed = delays.astype(np.dtype(dtype), copy=False)
        for op in self.ops:
            out[op.lo:op.hi] = typed[op.gidx]
        return out

    def delay_mats(self, delays: np.ndarray, n_vectors: int,
                   dtype=np.float64) -> list[np.ndarray]:
        """Per-op ``(n, N)`` delay tiles of one dtype (size-1 cache).

        The cache key is the delay array's identity plus a defensive
        value comparison, so both a new array under a recycled id and
        an in-place mutation of the cached array miss correctly.  The
        comparison is O(n_gates), noise next to one level kernel.
        """
        dtype = np.dtype(dtype)
        key = (id(delays), n_vectors, dtype.str)
        if (self._dmat_key != key or self._dmat_delays is not delays
                or self._dmat_values is None
                or not np.array_equal(self._dmat_values, delays)):
            # Materialized (not stride-0 broadcast) tiles: the inner
            # np.add then runs at contiguous speed on every block.
            typed = delays.astype(dtype, copy=False)
            self._dmats = [
                np.ascontiguousarray(np.broadcast_to(
                    typed[op.gidx][:, None], (op.n_gates, n_vectors)))
                for op in self.ops
            ]
            self._dmat_delays = delays
            self._dmat_values = delays.copy()
            self._dmat_key = key
        return self._dmats


def compile_plan(n_nets: int, gate_kinds: list[str],
                 gate_inputs: list[tuple[int, ...]],
                 gate_outputs: list[int],
                 input_nets: set[int]) -> CompiledPlan:
    """Levelize a topologically-ordered netlist and bucket it by family.

    Raises:
        ValueError: on a combinational cycle (the diagnostic names the
            loop's nets) or a gate reading a net with no driver --
            conditions that would otherwise corrupt levelization
            silently (an unassigned level reads as 0, an unassigned
            row as -1).
    """
    driven = {0, 1} | set(input_nets)
    for index, (ins, out) in enumerate(zip(gate_inputs, gate_outputs)):
        missing = [net for net in ins if net not in driven]
        if missing:
            cycle = find_combinational_cycle(gate_inputs, gate_outputs)
            if cycle is not None:
                path = " -> ".join(f"n{net}" for net in cycle)
                raise ValueError(
                    f"combinational cycle through nets {path}; "
                    "break the loop (insert a register) before compiling")
            raise ValueError(
                f"gate {index} ({gate_kinds[index]}) reads undriven "
                f"net(s) {missing}; drive them or list gates in "
                "topological order")
        driven.add(out)

    level = np.zeros(n_nets, dtype=np.int64)
    gate_levels = []
    for ins, out in zip(gate_inputs, gate_outputs):
        out_level = 1 + max(level[i] for i in ins)
        level[out] = out_level
        gate_levels.append(int(out_level))

    # Renumber: constants at rows 0/1, then primary inputs, then gate
    # outputs level by level, family-major, so each FamilyOp writes one
    # contiguous slice.
    rows = np.full(n_nets, -1, dtype=np.int64)
    rows[0] = 0
    rows[1] = 1
    next_row = 2
    for net in sorted(input_nets):
        rows[net] = next_row
        next_row += 1

    def family_of(kind: str) -> str:
        if kind in AND_FAMILY:
            return "and"
        if kind in XOR_FAMILY:
            return "xor"
        if kind == "MUX2":
            return "mux"
        raise ValueError(f"no compiled rule for gate kind {kind!r}")

    groups: dict[tuple[int, str], list[int]] = {}
    for index, (kind, gate_level) in enumerate(zip(gate_kinds, gate_levels)):
        groups.setdefault((gate_level, family_of(kind)), []).append(index)

    ops = []
    for (gate_level, family), members in sorted(groups.items()):
        lo = next_row
        for g in members:
            rows[gate_outputs[g]] = next_row
            next_row += 1
        gidx = np.array(members, dtype=np.int64)
        if family == "and":
            ia, ib, pa, pb, po = [], [], [], [], []
            for g in members:
                kind = gate_kinds[g]
                mask_a, mask_b, mask_o = AND_FAMILY[kind]
                ins = gate_inputs[g]
                ia.append(ins[0])
                # Unary kinds get the constant-1 net as a phantom b leg.
                ib.append(1 if kind in _UNARY else ins[1])
                pa.append(mask_a)
                pb.append(mask_b)
                po.append(mask_o)
            stacked = rows[np.array(ia + ib, dtype=np.int64)]
            pin = _column(pa + pb)
            ops.append(FamilyOp("and", lo, next_row, stacked, gidx,
                                pin=pin, po=_column(po)))
        elif family == "xor":
            ia = [gate_inputs[g][0] for g in members]
            ib = [gate_inputs[g][1] for g in members]
            po = [XOR_FAMILY[gate_kinds[g]] for g in members]
            stacked = rows[np.array(ia + ib, dtype=np.int64)]
            ops.append(FamilyOp("xor", lo, next_row, stacked, gidx,
                                po=_column(po)))
        else:  # mux: input order in the netlist is (select, a, b)
            isel = [gate_inputs[g][0] for g in members]
            ia = [gate_inputs[g][1] for g in members]
            ib = [gate_inputs[g][2] for g in members]
            stacked = rows[np.array(ia + ib + isel, dtype=np.int64)]
            ops.append(FamilyOp("mux", lo, next_row, stacked, gidx))

    assert next_row == n_nets
    return CompiledPlan(n_nets=n_nets, n_levels=max(gate_levels, default=0),
                        rows=rows, ops=tuple(ops))


class Workspace:
    """Preallocated ``(n_nets, N)`` state matrices, reused across calls.

    Every kernel writes its full output slice on every call (constants
    and primary inputs are re-seeded, each level re-writes its rows),
    so buffers are recycled between blocks of the same width without
    clearing -- the DTA loop reuses one workspace for all its chunks.
    ``prev`` is only allocated when the value-change engine needs it --
    the sensitized engine never touches previous-cycle gate values, so
    a sensitized-only workspace never pays for the matrix.

    ``timing_dtype`` selects the dtype of the settle matrix (and, via
    the engines, of the gathered settle planes and delay tiles); the
    boolean value/event matrices are dtype-independent.  ``alloc``
    swaps the allocator, e.g. for buffers in shared memory
    (:func:`repro.parallel.shm.shared_empty`); shared workspaces
    allocate everything eagerly so fork workers inherit complete
    mappings (``eager=True``).
    """

    def __init__(self, n_nets: int, n_vectors: int,
                 timing_dtype=np.float64, alloc=None, eager: bool = False):
        self.n_vectors = n_vectors
        self.timing_dtype = np.dtype(timing_dtype)
        self._alloc = alloc or (lambda shape, dtype: np.empty(shape, dtype))
        self.new = self._alloc((n_nets, n_vectors), np.dtype(bool))
        self._events: np.ndarray | None = None
        self._settles: np.ndarray | None = None
        self._prev: np.ndarray | None = None
        self._scratch: dict[tuple, np.ndarray] = {}
        if eager:
            self.prev, self.events, self.settles  # noqa: B018

    def scratch(self, tag: str, rows: int, n_vectors: int | None = None,
                dtype=bool) -> np.ndarray:
        """Reusable private ``(rows, N)`` gather plane, grown on demand.

        The timing engines gather each level's stacked inputs into
        these planes (``np.take(..., out=...)``) instead of allocating
        ``values[op.ins]`` fresh for every level of every call; one
        plane per role ("values"/"events"/"settles") sized to the
        plan's widest level serves the whole propagate.  Scratch is
        always process-private ``np.empty`` -- never the shared
        allocator -- because no other process ever reads it.
        """
        n_vectors = self.n_vectors if n_vectors is None else n_vectors
        key = (tag, n_vectors, np.dtype(dtype).str)
        buffer = self._scratch.get(key)
        if buffer is None or buffer.shape[0] < rows:
            buffer = np.empty((rows, n_vectors), np.dtype(dtype))
            self._scratch[key] = buffer
        return buffer

    @property
    def prev(self) -> np.ndarray:
        if self._prev is None:
            self._prev = self._alloc(self.new.shape, np.dtype(bool))
        return self._prev

    @property
    def events(self) -> np.ndarray:
        if self._events is None:
            self._events = self._alloc(self.new.shape, np.dtype(bool))
        return self._events

    @property
    def settles(self) -> np.ndarray:
        if self._settles is None:
            self._settles = self._alloc(self.new.shape, self.timing_dtype)
        return self._settles


class ShardView:
    """Column slice ``[:, lo:hi]`` of a workspace, for one pool worker.

    The timing engines are elementwise along the block axis (gathers
    run along the net axis, every float/bool op along the columns), so
    a worker operating on its column range computes results
    bit-identical to the serial engine restricted to those columns --
    no inter-level synchronization is needed: every row a level reads
    was written by the *same* shard at an earlier level.
    """

    def __init__(self, ws: Workspace, lo: int, hi: int):
        self.n_vectors = hi - lo
        self.timing_dtype = ws.timing_dtype
        self.new = ws.new[:, lo:hi]
        self.events = ws.events[:, lo:hi]
        self.settles = ws.settles[:, lo:hi]
        self._ws = ws
        self._lo, self._hi = lo, hi

    @property
    def prev(self) -> np.ndarray:
        return self._ws.prev[:, self._lo:self._hi]

    def scratch(self, tag: str, rows: int, n_vectors: int | None = None,
                dtype=bool) -> np.ndarray:
        """Shard-width gather plane (safety net, not the hot path).

        The engines key the scratch path on C-contiguity, which a
        proper column slice never has -- but a full-width view would,
        so this passthrough keeps the workspace duck type complete
        instead of resting on ``shard_columns`` never producing one.
        Cached on the owning workspace (each pool worker owns its
        forked copy of that object; only the state matrices are
        shared mappings).
        """
        return self._ws.scratch(tag, rows, self.n_vectors, dtype)


# ---------------------------------------------------------------------------
# Value kernels (shared by evaluate and both timing engines)
# ---------------------------------------------------------------------------

def _gather(matrix: np.ndarray, ins: np.ndarray,
            scratch: np.ndarray | None) -> np.ndarray:
    """Gather stacked input rows, into ``scratch`` when profitable.

    ``np.take(..., out=scratch)`` keeps steady-state propagate calls
    allocation-free -- but only on C-contiguous matrices: handed a
    column-sliced shard view it falls into a buffering slow path that
    copies the whole source (measured ~90x), so shard views keep the
    fancy-index gather (callers pass ``scratch=None``).
    """
    if scratch is None:
        return matrix[ins]
    # Shard-boundary guard: a non-contiguous source or destination
    # would silently take numpy's buffered slow path.  Callers gate
    # the scratch path on the matrix's contiguity, so tripping this
    # means a new call site routed a column-sliced view here.
    assert matrix.flags.c_contiguous, \
        "np.take(out=) fast path needs a C-contiguous source"
    out = scratch[:len(ins)]
    assert out.flags.c_contiguous, \
        "np.take(out=) fast path needs a C-contiguous destination"
    np.take(matrix, ins, axis=0, out=out, mode="clip")
    return out


def _values_op(op: FamilyOp, values: np.ndarray,
               scratch: np.ndarray | None = None) -> tuple[np.ndarray, ...]:
    """Evaluate one family op; returns the gathered per-leg inputs.

    Writes the output values into ``values[op.lo:op.hi]`` and returns
    the (possibly inversion-masked) gathered input planes so the event
    kernels can reuse them without a second gather.  With ``scratch``
    (a preallocated ``(>= len(op.ins), N)`` plane) the gather runs
    allocation-free via ``np.take``; the indices are plan-built and
    in-range, so ``mode="clip"`` only buys the cheap unchecked path.
    """
    n = op.n_gates
    out = values[op.lo:op.hi]
    gathered = _gather(values, op.ins, scratch)
    if op.family == "and":
        if op.pin is not None:
            np.bitwise_xor(gathered, op.pin, out=gathered)
        va, vb = gathered[:n], gathered[n:]
        np.bitwise_and(va, vb, out=out)
        if op.po is not None:
            np.bitwise_xor(out, op.po, out=out)
        return va, vb
    if op.family == "xor":
        va, vb = gathered[:n], gathered[n:]
        np.bitwise_xor(va, vb, out=out)
        if op.po is not None:
            np.bitwise_xor(out, op.po, out=out)
        return va, vb
    # mux: out = a ^ (s & (a ^ b))
    va, vb, vs = gathered[:n], gathered[n:2 * n], gathered[2 * n:]
    diff = va ^ vb
    np.bitwise_and(vs, diff, out=out)
    np.bitwise_xor(out, va, out=out)
    return va, vb, vs, diff


def run_functional(plan: CompiledPlan, values: np.ndarray) -> None:
    """Evaluate all gates on a ``(n_nets, N)`` value matrix in place."""
    for op in plan.ops:
        _values_op(op, values)


# ---------------------------------------------------------------------------
# Timing engines
# ---------------------------------------------------------------------------

def propagate_sensitized(plan: CompiledPlan, ws: Workspace,
                         delays: np.ndarray) -> None:
    """Bucketed event engine with static masking (see circuit docstring).

    Expects ``ws.new`` filled on constant/input rows, ``ws.events`` /
    ``ws.settles`` seeded there as well; ``ws.prev`` is not used (the
    masks of the sensitized model only read current-cycle values).
    Settle rows of gate outputs are left *unmasked* (raw arrival); the
    caller masks by the event matrix at extraction.
    """
    new, events, settles = ws.new, ws.events, ws.settles
    dmats = plan.delay_mats(delays, ws.n_vectors, ws.timing_dtype)
    rows = plan.max_gather_rows if new.flags.c_contiguous else 0
    vbuf = ws.scratch("values", rows) if rows else None
    ebuf = ws.scratch("events", rows) if rows else None
    sbuf = ws.scratch("settles", rows, dtype=ws.timing_dtype) \
        if rows else None
    for op, dmat in zip(plan.ops, dmats):
        n = op.n_gates
        legs = _values_op(op, new, vbuf)
        eff = _gather(events, op.ins, ebuf)
        out_events = events[op.lo:op.hi]
        if op.family == "and":
            va, vb = legs
            ea, eb = eff[:n], eff[n:]
            sens_a = eb | vb
            sens_b = ea | va
            np.bitwise_and(ea, sens_a, out=ea)
            np.bitwise_and(eb, sens_b, out=eb)
            np.bitwise_or(ea, eb, out=out_events)
        elif op.family == "xor":
            np.bitwise_or(eff[:n], eff[n:], out=out_events)
        else:  # mux
            va, vb, vs, diff = legs
            ea, eb, es = eff[:n], eff[n:2 * n], eff[2 * n:]
            s_stable_b = ~es  # becomes "select stable and pointing away"
            sel_away_a = s_stable_b & vs
            np.bitwise_and(s_stable_b, ~vs, out=s_stable_b)
            legs_equal = ~ea & ~eb & ~diff
            np.bitwise_and(ea, ~sel_away_a, out=ea)
            np.bitwise_and(eb, ~s_stable_b, out=eb)
            np.bitwise_and(es, ~legs_equal, out=es)
            np.bitwise_or(ea, eb, out=out_events)
            np.bitwise_or(out_events, es, out=out_events)
        gathered = _gather(settles, op.ins, sbuf)
        np.multiply(gathered, eff, out=gathered)
        latest = np.maximum(gathered[:n], gathered[n:2 * n],
                            out=gathered[:n])
        if op.family == "mux":
            np.maximum(latest, gathered[2 * n:], out=latest)
        np.add(latest, dmat, out=settles[op.lo:op.hi])


def propagate_value_change(plan: CompiledPlan, ws: Workspace,
                           delays: np.ndarray) -> None:
    """Bucketed optimistic engine: only settled-value toggles are events.

    Unlike the sensitized engine, consumers read input settles
    *unmasked* by events, so settle rows are stored masked (zero where
    the output value did not toggle), exactly like the reference.
    """
    prev, new, events, settles = ws.prev, ws.new, ws.events, ws.settles
    dmats = plan.delay_mats(delays, ws.n_vectors, ws.timing_dtype)
    rows = plan.max_gather_rows if new.flags.c_contiguous else 0
    vbuf = ws.scratch("values", rows) if rows else None
    sbuf = ws.scratch("settles", rows, dtype=ws.timing_dtype) \
        if rows else None
    for op, dmat in zip(plan.ops, dmats):
        n = op.n_gates
        _values_op(op, prev, vbuf)
        _values_op(op, new, vbuf)
        changed = events[op.lo:op.hi]
        np.not_equal(prev[op.lo:op.hi], new[op.lo:op.hi], out=changed)
        gathered = _gather(settles, op.ins, sbuf)
        if op.family == "mux":
            # Reference input order is (select, a, b).
            latest = np.maximum(gathered[2 * n:], gathered[:n],
                                out=gathered[:n])
            np.maximum(latest, gathered[n:2 * n], out=latest)
        else:
            latest = np.maximum(gathered[:n], gathered[n:],
                                out=gathered[:n])
        np.add(latest, dmat, out=latest)
        np.multiply(latest, changed, out=settles[op.lo:op.hi])


@pool_task("netlist-propagate-shard")
def _propagate_shard(registry: dict, plan_key, ws_key, delays_key,
                     glitch_model: str, lo: int, hi: int,
                     native: bool = False) -> None:
    """Pool task: run one column shard of a propagate call in place.

    The plan and delay vector arrive by pipe push (picklable, sent
    once per change); the workspace arrives by fork inheritance (its
    matrices are shared mappings, so the writes below land in the
    parent's buffers).  Nothing is returned -- the join in
    ``SharedPool.run`` is the synchronization point.

    With ``native`` set the shard runs the fused C kernels over its
    column range of the same shared mappings: the worker either
    inherited the parent's loaded library through fork or lazily
    dlopens the cached .so the parent ensured before dispatching.
    """
    view = ShardView(registry[ws_key], lo, hi)
    if native:
        from repro import native as native_mod
        try:
            native_mod.run_propagate(registry[plan_key], view,
                                     registry[delays_key], glitch_model)
            return
        except native_mod.NativeBuildError as error:
            # The parent ensured the library before dispatch, but this
            # worker's dlopen can still fail (cache evicted between
            # ensure and load); degrade this shard to numpy -- f64 is
            # bit-identical -- and latch the reason worker-locally.
            native_mod.record_runtime_failure(str(error))
    if glitch_model == "sensitized":
        propagate_sensitized(registry[plan_key], view, registry[delays_key])
    else:
        propagate_value_change(registry[plan_key], view,
                               registry[delays_key])
