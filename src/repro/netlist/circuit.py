"""Gate-level netlist graph with vectorized evaluation and timing.

A :class:`Circuit` is a feed-forward netlist: nets are integer ids,
gates are created in topological order (every input net must already
exist), and named input/output buses tie the netlist to the outside.

Two engines operate on a circuit:

* :meth:`Circuit.evaluate` -- functional evaluation, vectorized over a
  block of stimulus vectors (numpy boolean arrays per net).
* :meth:`Circuit.propagate` -- *two-vector timing simulation*, the core
  of dynamic timing analysis: given the previous cycle's inputs and the
  current cycle's inputs, it propagates switching events through the
  netlist and computes, per net, the settling (data arrival) time.

Event semantics (``glitch_model="sensitized"``, the default): a net
carries an event when its waveform may toggle during the cycle, i.e.
when it changes value *or* may glitch.  An input event propagates
through a gate unless it is statically masked by a stable controlling
side input (a stable 0 on an AND, a stable 1 on an OR, a stable select
on a mux pointing at the other leg, or a mux select toggle between two
stable equal data legs).  XOR-class gates never mask.  The settle time
of an event-carrying output is one gate delay after its latest
unmasked event input; event-free nets settle at 0.  This matches what
gate-level timing simulation (the paper's DTA flow) observes, where
glitches dominate arrival times in XOR-rich arithmetic.

``glitch_model="value-change"`` is the optimistic variant that tracks
only settled-value toggles; it is kept for the ablation study of how
much glitch activity contributes to timing-error rates.

Either way an arrival never exceeds the static longest path
(property-tested against STA).

Engines and the compiled plan
-----------------------------

Both engines exist in two implementations selected by the ``engine``
argument of :meth:`Circuit.evaluate` / :meth:`Circuit.propagate`:

* ``"compiled"`` (default) -- a structure-of-arrays plan built lazily
  at first use (see :mod:`repro.netlist.plan`): the netlist is
  levelized topologically and each level's gates are grouped *by kind*
  into contiguous index arrays.  Evaluation operates on one
  ``(n_nets, N)`` value/event/settle matrix with a single
  fancy-indexed numpy kernel per (level, kind) bucket -- a few hundred
  vectorized operations instead of one Python-level call per gate.
  The plan and the per-corner delay cache are invalidated lazily via a
  dirty flag set by :meth:`gate` (so incremental construction stays
  O(1) per gate) and are rebuilt on next use.  Scratch matrices are
  recycled per block width, so e.g. the DTA loop reuses one workspace
  across all of its chunks.
* ``"compiled-f32"`` -- the compiled plan with a **float32 timing
  view**: the settle pipeline (settle matrices, gathered settle
  planes, delay tiles) runs at half the memory traffic.  Output
  values and events are still bit-identical to float64 (the value/
  event network is boolean); arrivals follow the relaxed-identity
  contract of :data:`repro.netlist.plan.F32_RTOL` /
  :data:`~repro.netlist.plan.F32_ATOL` instead of being bit-exact.
* ``"reference"`` -- the original per-gate loops, kept as the
  executable specification; the property suite asserts the compiled
  engine is bit-identical to it on random circuits.

When a shared-memory pool is configured (see :mod:`repro.parallel`),
both compiled engines shard the block axis of :meth:`propagate` over
the pool's persistent fork workers: the workspace matrices live in
anonymous shared mappings, every worker runs the full level pipeline
on its own column range (columns are independent, so no inter-level
barrier exists), and float64 results stay bit-identical to the
serial engine at any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs, parallel
from repro import native as native_mod
from repro.netlist import plan as plan_mod
from repro.netlist.gates import GATE_KINDS, arity_of
from repro.netlist.library import CellLibrary, VDD_REF

#: Engines executed by the on-demand-compiled C backend, with their
#: timing dtypes -- the single source of truth lives in
#: :mod:`repro.native` (``compiled-native`` is bit-identical to
#: ``compiled``, ``native-f32`` shares the relaxed-identity contract
#: of ``compiled-f32``).
_NATIVE_ENGINES = frozenset(native_mod.NATIVE_ENGINES)

ENGINES = ("compiled", "compiled-f32", *sorted(_NATIVE_ENGINES),
           "reference")

#: Timing dtype of each compiled engine variant.
_ENGINE_DTYPES = {"compiled": np.float64, "compiled-f32": np.float32,
                  **{name: np.dtype(dtype).type
                     for name, dtype in native_mod.NATIVE_ENGINES.items()}}


def bits_from_ints(values: np.ndarray, width: int) -> np.ndarray:
    """Convert an int array (N,) into a bool bit-plane array (width, N).

    Bit 0 is the least significant bit.
    """
    values = np.asarray(values, dtype=np.uint64)
    shifts = np.arange(width, dtype=np.uint64)[:, None]
    return ((values[None, :] >> shifts) & np.uint64(1)).astype(bool)


def ints_from_bits(bits: np.ndarray) -> np.ndarray:
    """Convert a bool bit-plane array (width, N) back to ints (N,)."""
    width = bits.shape[0]
    weights = (np.uint64(1) << np.arange(width, dtype=np.uint64))[:, None]
    return (bits.astype(np.uint64) * weights).sum(axis=0)


@dataclass
class _Bus:
    name: str
    nets: list[int]


class CircuitError(ValueError):
    """Raised on malformed circuit construction or bad stimulus."""


class Circuit:
    """A feed-forward gate-level netlist.

    Net ids are dense integers.  Nets 0 and 1 are reserved for the
    constants 0 and 1.  Gates must be added in topological order.
    """

    def __init__(self, name: str):
        self.name = name
        self.n_nets = 2  # nets 0/1 are constant low/high
        self._input_buses: dict[str, _Bus] = {}
        self._output_buses: dict[str, _Bus] = {}
        self._input_net_set: set[int] = set()
        self.gate_kinds: list[str] = []
        self.gate_inputs: list[tuple[int, ...]] = []
        self.gate_outputs: list[int] = []
        self._driven: set[int] = {0, 1}
        self._delay_cache: dict[tuple[float, float], np.ndarray] = {}
        self._plan: plan_mod.CompiledPlan | None = None
        self._workspaces: dict[tuple, plan_mod.Workspace] = {}
        self._dirty = False
        self._pool_token: int | None = None
        #: (pool, delays snapshot) last pushed -- the pool is part of
        #: the guard because a reconfigured pool starts with an empty
        #: registry and must be pushed again even for equal values.
        self._pool_delays: tuple | None = None

    # -- construction ---------------------------------------------------

    def const(self, value: int) -> int:
        """Net id of constant 0 or 1."""
        return 1 if value else 0

    def input_bus(self, name: str, width: int) -> list[int]:
        """Declare an input bus of ``width`` bits; returns its net ids."""
        if name in self._input_buses or name in self._output_buses:
            raise CircuitError(f"duplicate bus name {name!r}")
        nets = list(range(self.n_nets, self.n_nets + width))
        self.n_nets += width
        self._input_buses[name] = _Bus(name, nets)
        self._input_net_set.update(nets)
        self._driven.update(nets)
        self._dirty = True  # the compiled plan covers input rows too
        return nets

    def gate(self, kind: str, *inputs: int) -> int:
        """Add a gate; returns the id of its (new) output net."""
        if len(inputs) != arity_of(kind):
            raise CircuitError(
                f"{kind} expects {arity_of(kind)} inputs, got {len(inputs)}")
        for net in inputs:
            if net not in self._driven:
                raise CircuitError(
                    f"gate input net {net} is not driven yet "
                    f"(gates must be added in topological order)")
        output = self.n_nets
        self.n_nets += 1
        self.gate_kinds.append(kind)
        self.gate_inputs.append(tuple(inputs))
        self.gate_outputs.append(output)
        self._driven.add(output)
        # Invalidate cached timing/plan state lazily: clearing caches on
        # every added gate would make incremental construction O(n^2).
        self._dirty = True
        return output

    def output_bus(self, name: str, nets: list[int]) -> None:
        """Declare an output bus over existing nets."""
        if name in self._output_buses or name in self._input_buses:
            raise CircuitError(f"duplicate bus name {name!r}")
        for net in nets:
            if net not in self._driven:
                raise CircuitError(f"output net {net} is not driven")
        self._output_buses[name] = _Bus(name, list(nets))

    # -- convenience composite builders ----------------------------------

    def xor3(self, a: int, b: int, c: int) -> int:
        return self.gate("XOR2", self.gate("XOR2", a, b), c)

    def majority(self, a: int, b: int, c: int) -> int:
        """Carry function of a full adder: at least two of three."""
        ab = self.gate("AND2", a, b)
        axb = self.gate("XOR2", a, b)
        c_and = self.gate("AND2", axb, c)
        return self.gate("OR2", ab, c_and)

    def full_adder(self, a: int, b: int, cin: int) -> tuple[int, int]:
        """Returns (sum, carry-out)."""
        axb = self.gate("XOR2", a, b)
        s = self.gate("XOR2", axb, cin)
        ab = self.gate("AND2", a, b)
        bc = self.gate("AND2", axb, cin)
        cout = self.gate("OR2", ab, bc)
        return s, cout

    def half_adder(self, a: int, b: int) -> tuple[int, int]:
        """Returns (sum, carry-out)."""
        return self.gate("XOR2", a, b), self.gate("AND2", a, b)

    # -- introspection -----------------------------------------------------

    @property
    def n_gates(self) -> int:
        return len(self.gate_kinds)

    @property
    def input_names(self) -> tuple[str, ...]:
        return tuple(self._input_buses)

    @property
    def output_names(self) -> tuple[str, ...]:
        return tuple(self._output_buses)

    def input_width(self, name: str) -> int:
        return len(self._input_buses[name].nets)

    def input_nets(self, name: str) -> list[int]:
        return list(self._input_buses[name].nets)

    def output_nets(self, name: str) -> list[int]:
        return list(self._output_buses[name].nets)

    def cell_histogram(self) -> dict[str, int]:
        histogram: dict[str, int] = {}
        for kind in self.gate_kinds:
            histogram[kind] = histogram.get(kind, 0) + 1
        return histogram

    # -- cached views (delays, compiled plan, scratch buffers) -------------

    def _flush_dirty(self) -> None:
        """Drop cached state invalidated by netlist edits (lazy)."""
        if self._dirty:
            self._delay_cache.clear()
            self._plan = None
            self._workspaces.clear()
            self._dirty = False

    @property
    def plan(self) -> plan_mod.CompiledPlan:
        """The compiled structure-of-arrays plan (built lazily)."""
        self._flush_dirty()
        if self._plan is None:
            self._plan = plan_mod.compile_plan(
                self.n_nets, self.gate_kinds, self.gate_inputs,
                self.gate_outputs, self._input_net_set)
        return self._plan

    def _workspace(self, n_vectors: int, timing_dtype=np.float64,
                   shared: bool = False) -> plan_mod.Workspace:
        """Reusable ``(n_nets, N)`` scratch matrices for one block width.

        One workspace is kept per (width, timing dtype, shared?) so a
        float32 view or a pool-sharded run never clobbers the buffers
        of a concurrent float64 serial run at the same width.  Shared
        workspaces allocate every matrix eagerly in anonymous shared
        mappings, so fork workers inherit complete, writable views.
        """
        key = (n_vectors, np.dtype(timing_dtype).str, shared)
        workspace = self._workspaces.get(key)
        if workspace is None:
            alloc = parallel.shared_empty if shared else None
            workspace = plan_mod.Workspace(self.n_nets, n_vectors,
                                           timing_dtype=timing_dtype,
                                           alloc=alloc, eager=shared)
            self._workspaces[key] = workspace
        return workspace

    def gate_delays(self, library: CellLibrary, vdd: float = VDD_REF,
                    scale: float = 1.0) -> np.ndarray:
        """Per-gate delay vector [ps] for one (vdd, scale) corner."""
        self._flush_dirty()
        key = (vdd, scale)
        cached = self._delay_cache.get(key)
        if cached is None:
            cached = np.array(
                [library.delay_ps(kind, vdd, scale)
                 for kind in self.gate_kinds])
            self._delay_cache[key] = cached
        return cached

    # -- stimulus plumbing ---------------------------------------------------

    def _stimulus_planes(self, inputs: dict[str, np.ndarray]) -> \
            tuple[dict[str, np.ndarray], int]:
        """Validate bus stimulus and convert it to per-bus bit planes."""
        missing = set(self._input_buses) - set(inputs)
        if missing:
            raise CircuitError(f"missing stimulus for inputs {sorted(missing)}")
        extra = set(inputs) - set(self._input_buses)
        if extra:
            raise CircuitError(f"unknown input buses {sorted(extra)}")
        n_vectors = None
        planes: dict[str, np.ndarray] = {}
        for name, bus in self._input_buses.items():
            stimulus = np.atleast_1d(np.asarray(inputs[name]))
            if n_vectors is None:
                n_vectors = stimulus.shape[0]
            elif stimulus.shape[0] != n_vectors:
                raise CircuitError("stimulus arrays differ in length")
            planes[name] = bits_from_ints(stimulus, len(bus.nets))
        assert n_vectors is not None
        return planes, n_vectors

    def _stimulus_words(self, inputs: dict[str, np.ndarray]) -> \
            tuple[np.ndarray, int]:
        """Validate bus stimulus and pack it into one uint64 matrix.

        Row ``i`` is the ``(N,)`` integer stimulus of the ``i``-th
        input bus in canonical bus order.  The fused native stimulus
        kernel unpacks bits straight from these words into the
        workspace planes, so the numpy bit-plane stage
        (:meth:`_stimulus_planes`) never materializes on that path.
        """
        missing = set(self._input_buses) - set(inputs)
        if missing:
            raise CircuitError(f"missing stimulus for inputs {sorted(missing)}")
        extra = set(inputs) - set(self._input_buses)
        if extra:
            raise CircuitError(f"unknown input buses {sorted(extra)}")
        n_vectors = None
        stacked = []
        for name in self._input_buses:
            stimulus = np.atleast_1d(np.asarray(inputs[name]))
            if n_vectors is None:
                n_vectors = stimulus.shape[0]
            elif stimulus.shape[0] != n_vectors:
                raise CircuitError("stimulus arrays differ in length")
            stacked.append(stimulus.astype(np.uint64, copy=False))
        assert n_vectors is not None
        words = np.empty((len(stacked), n_vectors), dtype=np.uint64)
        for i, row in enumerate(stacked):
            words[i] = row
        return words, n_vectors

    def _planes_from_words(self, words: np.ndarray) \
            -> dict[str, np.ndarray]:
        """Rebuild per-bus bit planes from packed stimulus words.

        Only runs on the native-degrade path (first kernel touch of
        the process failed after validation already consumed the
        inputs as packed words).
        """
        return {name: bits_from_ints(words[i], len(bus.nets))
                for i, (name, bus) in enumerate(self._input_buses.items())}

    def _seed_workspace(self, ws, rows, prev_planes, new_planes,
                        sensitized: bool, arrival: float) -> None:
        """Numpy stimulus stage: scatter planes, seed events/settles."""
        if not sensitized:
            # Sensitized masks only read current-cycle values; the
            # previous-cycle value network exists only here.
            self._fill_matrix(prev_planes, ws.prev, rows)
        self._fill_matrix(new_planes, ws.new, rows)
        ws.events[:2] = False
        ws.settles[:2] = 0.0
        for name, bus in self._input_buses.items():
            bus_rows = rows[bus.nets]
            changed = prev_planes[name] != new_planes[name]
            ws.events[bus_rows] = changed
            ws.settles[bus_rows] = changed * arrival

    def _prepare_inputs(self, inputs: dict[str, np.ndarray]) -> \
            tuple[list[np.ndarray | None], int]:
        """Map bus-name -> int-array stimulus onto per-net bit planes."""
        planes, n_vectors = self._stimulus_planes(inputs)
        values: list[np.ndarray | None] = [None] * self.n_nets
        for name, bus in self._input_buses.items():
            for bit, net in enumerate(bus.nets):
                values[net] = planes[name][bit]
        values[0] = np.zeros(n_vectors, dtype=bool)
        values[1] = np.ones(n_vectors, dtype=bool)
        return values, n_vectors

    def _fill_matrix(self, planes: dict[str, np.ndarray],
                     values: np.ndarray, rows: np.ndarray) -> None:
        """Scatter per-bus bit planes into an ``(n_nets, N)`` matrix."""
        values[0] = False
        values[1] = True
        for name, bus in self._input_buses.items():
            values[rows[bus.nets]] = planes[name]

    def _run_functional(self, values: list[np.ndarray | None]) -> None:
        for kind, ins, out in zip(self.gate_kinds, self.gate_inputs,
                                  self.gate_outputs):
            fn = GATE_KINDS[kind][1]
            values[out] = fn(*[values[i] for i in ins])

    def evaluate(self, inputs: dict[str, np.ndarray],
                 engine: str = "compiled") -> dict[str, np.ndarray]:
        """Functionally evaluate the circuit on integer bus stimulus.

        Args:
            inputs: bus name -> integer array (N,) (or scalar int).
            engine: ``"compiled"`` (bucketed plan, default) or
                ``"reference"`` (per-gate loop).

        Returns:
            bus name -> integer array (N,) for every output bus.
        """
        if engine not in ENGINES:
            raise CircuitError(f"unknown engine {engine!r}")
        with obs.span("circuit.evaluate", circuit=self.name,
                      engine=engine):
            if engine == "reference":
                values, _ = self._prepare_inputs(inputs)
                self._run_functional(values)
                return {
                    name: ints_from_bits(
                        np.stack([values[n] for n in bus.nets]))
                    for name, bus in self._output_buses.items()
                }
            planes, n_vectors = self._stimulus_planes(inputs)
            plan = self.plan
            matrix = self._workspace(n_vectors).new
            self._fill_matrix(planes, matrix, plan.rows)
            plan_mod.run_functional(plan, matrix)
            return {
                name: ints_from_bits(matrix[plan.rows[bus.nets]])
                for name, bus in self._output_buses.items()
            }

    def propagate(self, prev_inputs: dict[str, np.ndarray],
                  new_inputs: dict[str, np.ndarray],
                  delays: np.ndarray,
                  input_arrival: float = 0.0,
                  glitch_model: str = "sensitized",
                  engine: str = "compiled") -> \
            tuple[dict[str, np.ndarray], dict[str, np.ndarray]]:
        """Two-vector timing simulation (see module docstring).

        Args:
            prev_inputs: bus stimulus applied in the previous cycle
                (the circuit is assumed settled on it).
            new_inputs: bus stimulus launched at the current clock edge.
            delays: per-gate delay vector, e.g. from :meth:`gate_delays`.
            input_arrival: arrival time of toggling primary inputs
                (the flip-flop clock-to-Q delay).
            glitch_model: ``"sensitized"`` (events + static masking,
                default) or ``"value-change"`` (optimistic, settled
                toggles only).
            engine: ``"compiled"`` (bucketed plan, default),
                ``"compiled-f32"`` (same plan, float32 timing view
                under the relaxed-identity contract),
                ``"compiled-native"`` / ``"native-f32"`` (the same
                plan through the fused C kernels of
                :mod:`repro.native`; f64 is bit-identical to
                ``compiled``, f32 shares the ``compiled-f32``
                contract; raises when no compiler is available) or
                ``"reference"`` (per-gate loop); ``"compiled"``,
                ``"compiled-native"`` and ``"reference"`` are
                bit-identical.

        Returns:
            ``(outputs, arrivals)``: per output bus, the new integer
            values (N,) and the per-bit arrival-time array (width, N)
            in the same unit as ``delays``.
        """
        if len(delays) != self.n_gates:
            raise CircuitError(
                f"delay vector has {len(delays)} entries for "
                f"{self.n_gates} gates")
        if glitch_model not in ("sensitized", "value-change"):
            raise CircuitError(f"unknown glitch model {glitch_model!r}")
        if engine not in ENGINES:
            raise CircuitError(f"unknown engine {engine!r}")
        if engine in _ENGINE_DTYPES:
            result = self._propagate_compiled(
                prev_inputs, new_inputs, delays, input_arrival,
                glitch_model, _ENGINE_DTYPES[engine],
                native=engine in _NATIVE_ENGINES, engine_name=engine)
        else:
            with obs.span("circuit.propagate", circuit=self.name,
                          engine=engine, glitch_model=glitch_model):
                result = self._propagate_reference(prev_inputs, new_inputs,
                                                   delays, input_arrival,
                                                   glitch_model)
        # Opt-in independent oracle (REPRO_CHECK_BOUNDS=1): assert every
        # dynamic arrival falls inside the static [min, max] envelope.
        # Imported lazily so the analysis plane stays out of the hot
        # path's import graph; the enabled check itself is one O(nets)
        # STA pass (cached per plan/delay/arrival) plus vector compares.
        from repro.analysis.oracle import maybe_check_bounds
        maybe_check_bounds(
            self, delays, input_arrival, result[1],
            timing_dtype=_ENGINE_DTYPES.get(engine, np.float64),
            engine=engine, glitch_model=glitch_model)
        return result

    def _propagate_reference(self, prev_inputs, new_inputs, delays,
                             input_arrival, glitch_model) -> \
            tuple[dict[str, np.ndarray], dict[str, np.ndarray]]:
        """Per-gate-loop propagate (the executable specification)."""
        prev_values, n_prev = self._prepare_inputs(prev_inputs)
        new_values, n_new = self._prepare_inputs(new_inputs)
        if n_prev != n_new:
            raise CircuitError("prev/new stimulus lengths differ")

        events: list[np.ndarray | None] = [None] * self.n_nets
        settles: list[np.ndarray | None] = [None] * self.n_nets
        no_event = np.zeros(n_new, dtype=bool)
        zero = np.zeros(n_new)
        events[0] = no_event
        events[1] = no_event
        settles[0] = zero
        settles[1] = zero
        for net in self._input_net_set:
            changed = prev_values[net] != new_values[net]
            events[net] = changed
            settles[net] = np.where(changed, input_arrival, 0.0)

        if glitch_model == "sensitized":
            runner = self._propagate_sensitized
        else:
            runner = self._propagate_value_change
        runner(prev_values, new_values, events, settles, delays)

        outputs = {}
        out_arrivals = {}
        for name, bus in self._output_buses.items():
            outputs[name] = ints_from_bits(
                np.stack([new_values[n] for n in bus.nets]))
            out_arrivals[name] = np.stack([settles[n] for n in bus.nets])
        return outputs, out_arrivals

    def _propagate_compiled(self, prev_inputs, new_inputs, delays,
                            input_arrival, glitch_model,
                            timing_dtype=np.float64,
                            native: bool = False,
                            engine_name: str = "compiled") -> \
            tuple[dict[str, np.ndarray], dict[str, np.ndarray]]:
        """Bucketed two-vector simulation on the compiled plan.

        ``native`` selects the fused C kernels over the same plan and
        workspace contract; the caller asked for a native engine
        explicitly, so an unavailable backend is a
        :class:`CircuitError` here -- silent fallback happens one
        level up, in :func:`repro.native.engine_for`.

        Native engines run *fused*: stimulus word-unpacking and
        output-bus extraction happen inside the C library too.  The
        serial native path is ONE library call (``repro_run``:
        stimulus -> every level -> extract in a single Python/C
        crossing); sharded and degraded calls run the stage kernels
        (``repro_stimulus`` / ``repro_extract``) around the sharded
        middle.  Routing: when a thread-shard pool is configured,
        native engines shard their block axis over in-process threads
        (the kernels release the GIL -- zero pipes, zero pickling) and
        the fork pool is never engaged for them; numpy engines keep
        the fork ``SharedPool``, which also still serves native work
        when only it is configured.

        The staged pipeline carries per-stage telemetry spans
        (``propagate.stimulus`` / ``propagate.kernel`` /
        ``propagate.extract``) so "where did the time go" inside one
        call is answerable from a trace; the fused serial path emits a
        single ``propagate.kernel`` span (mode ``native-fused``) --
        there are no Python-side stages left to time.
        """
        if native:
            reason = native_mod.unavailable_reason()
            if reason is not None:
                raise CircuitError(
                    f"native engine unavailable: {reason} "
                    f"(use repro.native.engine_for for fallback "
                    f"selection)")
        with obs.span("circuit.propagate", circuit=self.name,
                      engine=engine_name,
                      glitch_model=glitch_model) as top:
            sensitized = glitch_model == "sensitized"
            arrival = float(input_arrival)
            plan = self.plan
            rows = plan.rows
            tables = None
            if native:
                tables = native_mod.bus_tables(
                    plan,
                    {name: bus.nets
                     for name, bus in self._input_buses.items()},
                    {name: bus.nets
                     for name, bus in self._output_buses.items()})
            fused = native and tables.packable
            pool = None
            thread_pool = parallel.get_thread_pool() if native else None
            kernels = None
            if native:
                # Resolve the dlopened library once per call: the
                # ensure step re-hashes the kernel source (~0.1 ms),
                # which would otherwise be paid by every fused stage.
                # The first touch of a process can still fail behind a
                # passing probe (compile or dlopen rot): latch the
                # degrade and run this call numpy end to end --
                # bit-identical at f64, same relaxed contract at f32.
                try:
                    kernels = native_mod.load_kernels(
                        "float32" if timing_dtype == np.float32
                        else "float64")
                except native_mod.NativeBuildError as error:
                    native_mod.record_runtime_failure(str(error))
                    native = False
                    fused = False
                    thread_pool = None
            # Call setup -- validation, shard routing and workspace
            # lookup -- happens outside the stage spans so the traced
            # stimulus/extract durations measure the stages themselves
            # (the ROADMAP ceiling analysis reads them as such).
            delays = np.asarray(delays, dtype=float)
            prev_planes = new_planes = None
            if fused:
                prev_words, n_prev = self._stimulus_words(prev_inputs)
                new_words, n_new = self._stimulus_words(new_inputs)
            else:
                prev_planes, n_prev = self._stimulus_planes(prev_inputs)
                new_planes, n_new = self._stimulus_planes(new_inputs)
            if n_prev != n_new:
                raise CircuitError(
                    "prev/new stimulus lengths differ")
            if thread_pool is not None:
                thread_shards = thread_pool.shard_columns(n_new)
                shards = None
            else:
                thread_shards = None
                pool = parallel.get_pool()
                shards = pool.shard_columns(n_new) \
                    if pool is not None else None
            ws = self._workspace(n_new, timing_dtype,
                                 shared=shards is not None)
            if fused and thread_shards is None and shards is None:
                # Serial native path: the whole propagate -- stimulus
                # unpack, every level, output extraction -- is ONE
                # library call (``repro_run``), so no per-stage
                # stimulus/extract spans are emitted: there is no
                # Python-side stage work left to measure, only this
                # single crossing.  Sharded runs and mid-call engine
                # degrades keep the staged pipeline below (a shard
                # extracts nothing; a degrade switches engines at a
                # stage seam).
                top.set(n_vectors=n_new)
                with obs.span("propagate.kernel", mode="native-fused"):
                    return native_mod.run_fused(
                        plan, ws, tables, prev_words, new_words,
                        arrival, delays, glitch_model, kernels)
            with obs.span("propagate.stimulus",
                          mode="native" if fused else "numpy") as stim:
                if fused:
                    try:
                        native_mod.run_stimulus(
                            plan, ws, tables, prev_words, new_words,
                            arrival, fill_prev=not sensitized,
                            kernels=kernels)
                    except native_mod.NativeBuildError as error:
                        # The first kernel touch of the process can
                        # still fail (compile or dlopen rot behind a
                        # passing probe): latch the degrade and finish
                        # this call numpy end to end -- bit-identical
                        # at f64, same relaxed contract at f32.
                        native_mod.record_runtime_failure(str(error))
                        fused = False
                        native = False
                        thread_shards = None
                        stim.set(mode="numpy-degraded")
                        prev_planes = self._planes_from_words(prev_words)
                        new_planes = self._planes_from_words(new_words)
                if not fused:
                    self._seed_workspace(ws, rows, prev_planes,
                                         new_planes, sensitized, arrival)
            top.set(n_vectors=n_new)
            if thread_shards is not None:
                mode = "threads"
            elif shards is not None:
                mode = "pooled"
            else:
                mode = "native" if native else "numpy"
            with obs.span("propagate.kernel", mode=mode):
                if thread_shards is not None:
                    try:
                        self._propagate_threaded(thread_pool, plan, ws,
                                                 delays, glitch_model,
                                                 thread_shards, kernels)
                    except native_mod.NativeBuildError as error:
                        # Column writes are idempotent: the serial
                        # numpy engine recomputes every gate row over
                        # the full width, overwriting any partial
                        # shard output.
                        native_mod.record_runtime_failure(str(error))
                        fused = False
                        if sensitized:
                            plan_mod.propagate_sensitized(plan, ws,
                                                          delays)
                        else:
                            plan_mod.propagate_value_change(plan, ws,
                                                            delays)
                elif shards is not None:
                    self._propagate_pooled(pool, plan, ws, delays,
                                           glitch_model, shards,
                                           native=native)
                elif native:
                    try:
                        native_mod.run_propagate(plan, ws, delays,
                                                 glitch_model,
                                                 kernels=kernels)
                    except native_mod.NativeBuildError as error:
                        # Runtime failure behind a passing probe
                        # (compile or dlopen broke mid-run): latch the
                        # degrade and finish on the numpy engine over
                        # the same plan/workspace -- bit-identical at
                        # f64, same relaxed contract at f32.
                        native_mod.record_runtime_failure(str(error))
                        fused = False
                        if sensitized:
                            plan_mod.propagate_sensitized(plan, ws,
                                                          delays)
                        else:
                            plan_mod.propagate_value_change(plan, ws,
                                                            delays)
                elif sensitized:
                    plan_mod.propagate_sensitized(plan, ws, delays)
                else:
                    plan_mod.propagate_value_change(plan, ws, delays)
            with obs.span("propagate.extract",
                          mode="native" if fused else "numpy"):
                if fused:
                    try:
                        outputs, out_arrivals = native_mod.run_extract(
                            plan, ws, tables, glitch_model,
                            kernels=kernels)
                    except native_mod.NativeBuildError as error:
                        native_mod.record_runtime_failure(str(error))
                        fused = False
                if not fused:
                    outputs = {}
                    out_arrivals = {}
                    for name, bus in self._output_buses.items():
                        bus_rows = rows[bus.nets]
                        outputs[name] = ints_from_bits(ws.new[bus_rows])
                        if sensitized:
                            # Settle rows are raw arrivals; event-mask
                            # on the way out.
                            out_arrivals[name] = ws.settles[bus_rows] \
                                * ws.events[bus_rows]
                        else:
                            out_arrivals[name] = ws.settles[bus_rows]
        return outputs, out_arrivals

    def _propagate_threaded(self, thread_pool, plan, ws, delays,
                            glitch_model, shards, kernels) -> None:
        """Shard one native propagate's block axis over threads.

        Threads share the address space, so nothing is registered or
        pushed anywhere: every shard runs the fused C kernels over a
        column-sliced view of the *same* workspace, and the ctypes
        calls release the GIL so shards genuinely overlap (and will
        scale further on free-threaded CPython).  The descriptor and
        the per-row delay tile are materialized here, once, before
        fan-out (the caller already resolved ``kernels``) -- worker
        threads never touch the lazy caches, so there is nothing to
        race.
        """
        desc = native_mod.native_desc(plan)
        desc.delays_rowed(delays, ws.timing_dtype)
        # Touch the lazily-allocated planes in the dispatching thread.
        _ = (ws.events, ws.settles)
        if glitch_model != "sensitized":
            _ = ws.prev

        def shard(lo: int, hi: int) -> None:
            native_mod.run_propagate(plan, plan_mod.ShardView(ws, lo, hi),
                                     delays, glitch_model,
                                     kernels=kernels)

        thread_pool.run(shard, shards)

    def _propagate_pooled(self, pool, plan, ws, delays, glitch_model,
                          shards, native: bool = False) -> None:
        """Shard one propagate call's block axis over the pool.

        The plan and the per-corner delay vector are pushed to the
        workers once (small, picklable; re-pushed only when they
        change), the workspace is registered for fork inheritance
        (its buffers live in shared mappings, so worker writes land in
        place), and each per-call message is a handful of ints -- no
        per-call pickling of the plan or any buffer.

        The delay vector is compared *by value* against the last
        pushed snapshot, mirroring the serial delay-tile cache: an
        in-place mutation of a previously pushed array, or a fresh
        equal-valued array per call (e.g. list input), both do the
        right thing -- re-push on real change, no traffic otherwise.
        One key per circuit, so the worker registries stay bounded
        across DTA corners.
        """
        if self._pool_token is None:
            self._pool_token = parallel.next_token()
        token = self._pool_token
        plan_key = ("netlist-plan", token)
        pool.push_if_new(plan_key, plan)
        delays_key = ("netlist-delays", token)
        if self._pool_delays is None \
                or self._pool_delays[0] is not pool \
                or not np.array_equal(self._pool_delays[1], delays):
            # Push a snapshot: the registry copy must not alias an
            # array the caller may mutate in place (a respawn forks
            # whatever the registry holds).
            snapshot = delays.copy()
            self._pool_delays = (pool, snapshot)
            pool.push_if_new(delays_key, snapshot)
        ws_key = ("netlist-ws", token, ws.n_vectors, ws.timing_dtype.str)
        pool.register(ws_key, ws)
        if native:
            # Complete the build before dispatching so cold-cache
            # workers dlopen a finished library instead of racing the
            # compile (racing is safe -- atomic replace -- but wasteful).
            try:
                native_mod.ensure_library(
                    "float32" if ws.timing_dtype == np.float32
                    else "float64")
            except native_mod.NativeBuildError as error:
                native_mod.record_runtime_failure(str(error))
                native = False  # shards run the numpy propagate
        pool.run("netlist-propagate-shard",
                 [(plan_key, ws_key, delays_key, glitch_model, lo, hi,
                   native)
                  for lo, hi in shards])

    def _propagate_value_change(self, prev_values, new_values, events,
                                settles, delays) -> None:
        """Optimistic engine: only settled-value toggles are events."""
        for index, (kind, ins, out) in enumerate(
                zip(self.gate_kinds, self.gate_inputs, self.gate_outputs)):
            fn = GATE_KINDS[kind][1]
            prev_out = fn(*[prev_values[i] for i in ins])
            new_out = fn(*[new_values[i] for i in ins])
            prev_values[out] = prev_out
            new_values[out] = new_out
            latest = settles[ins[0]]
            for i in ins[1:]:
                latest = np.maximum(latest, settles[i])
            changed = prev_out != new_out
            events[out] = changed
            settles[out] = np.where(changed, latest + delays[index], 0.0)

    def _propagate_sensitized(self, prev_values, new_values, events,
                              settles, delays) -> None:
        """Event engine with static masking by stable controlling inputs.

        The sensitized rules only ever read *current-cycle* values
        (events of the primary inputs already encode the prev-vs-new
        toggle), so unlike the value-change engine this loop never
        evaluates the previous-cycle value network -- the per-gate
        prev evaluation it used to do was dead work, and the compiled
        engine skips it for the same reason.
        """
        for index, (kind, ins, out) in enumerate(
                zip(self.gate_kinds, self.gate_inputs, self.gate_outputs)):
            fn = GATE_KINDS[kind][1]
            new_out = fn(*[new_values[i] for i in ins])
            new_values[out] = new_out

            if kind in ("INV", "BUF"):
                a = ins[0]
                out_event = events[a]
                latest = settles[a]
            elif kind in ("AND2", "NAND2", "OR2", "NOR2"):
                a, b = ins
                controlling = kind in ("OR2", "NOR2")  # stable 1 masks
                if controlling:
                    mask_a = ~events[b] & new_values[b]
                    mask_b = ~events[a] & new_values[a]
                else:  # stable 0 masks
                    mask_a = ~events[b] & ~new_values[b]
                    mask_b = ~events[a] & ~new_values[a]
                eff_a = events[a] & ~mask_a
                eff_b = events[b] & ~mask_b
                out_event = eff_a | eff_b
                latest = np.maximum(np.where(eff_a, settles[a], 0.0),
                                    np.where(eff_b, settles[b], 0.0))
            elif kind in ("XOR2", "XNOR2"):
                a, b = ins
                out_event = events[a] | events[b]
                latest = np.maximum(np.where(events[a], settles[a], 0.0),
                                    np.where(events[b], settles[b], 0.0))
            elif kind == "MUX2":
                s, a, b = ins
                s_stable = ~events[s]
                # Data-leg events are masked when the select is stable
                # and points at the other leg.
                eff_a = events[a] & ~(s_stable & new_values[s])
                eff_b = events[b] & ~(s_stable & ~new_values[s])
                # A select toggle between two stable, equal data legs
                # produces no output activity on an ideal mux.
                legs_equal = (~events[a] & ~events[b]
                              & (new_values[a] == new_values[b]))
                eff_s = events[s] & ~legs_equal
                out_event = eff_a | eff_b | eff_s
                latest = np.maximum(
                    np.maximum(np.where(eff_a, settles[a], 0.0),
                               np.where(eff_b, settles[b], 0.0)),
                    np.where(eff_s, settles[s], 0.0))
            else:  # pragma: no cover - all kinds handled above
                raise CircuitError(f"no event rule for gate kind {kind!r}")

            events[out] = out_event
            settles[out] = np.where(out_event, latest + delays[index], 0.0)
