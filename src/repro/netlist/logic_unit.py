"""Gate-level bitwise logic unit generator.

Computes AND, OR and XOR of two words behind a per-bit 3:1 result mux
(two MUX2 levels), selected by a 2-bit operation code:

* ``op = 0`` -> AND, ``op = 1`` -> OR, ``op = 2 or 3`` -> XOR.

Inputs: ``a`` (width), ``b`` (width), ``op`` (2).
Output: ``result`` (width).
"""

from __future__ import annotations

from repro.netlist.circuit import Circuit

OP_AND = 0
OP_OR = 1
OP_XOR = 2


def build_logic_unit(circuit: Circuit, a: list[int], b: list[int],
                     op: list[int]) -> list[int]:
    """Build the logic unit; returns the result bits."""
    if len(a) != len(b):
        raise ValueError("operand widths differ")
    if len(op) != 2:
        raise ValueError("op select bus must be 2 bits")
    result = []
    for a_bit, b_bit in zip(a, b):
        and_bit = circuit.gate("AND2", a_bit, b_bit)
        or_bit = circuit.gate("OR2", a_bit, b_bit)
        xor_bit = circuit.gate("XOR2", a_bit, b_bit)
        and_or = circuit.gate("MUX2", op[0], and_bit, or_bit)
        result.append(circuit.gate("MUX2", op[1], and_or, xor_bit))
    return result


def logic_circuit(width: int = 32) -> Circuit:
    """Standalone logic unit (see module docstring for the ports)."""
    circuit = Circuit(f"logic{width}")
    a = circuit.input_bus("a", width)
    b = circuit.input_bus("b", width)
    op = circuit.input_bus("op", 2)
    circuit.output_bus("result", build_logic_unit(circuit, a, b, op))
    return circuit
