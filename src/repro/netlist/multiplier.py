"""Gate-level 32x32 -> low-32 multiplier generator.

The core's ``l.mul`` returns the low 32 bits of the product; modulo
2**32 the low word of a signed and an unsigned product are identical,
so the netlist is an unsigned carry-save array truncated to the low
word:

* partial products ``pp[i][j] = a[j] & b[i]`` for ``i + j < width``;
* a carry-save adder array accumulates one partial-product row per
  level; row ``i`` consumes the carries produced by row ``i - 1``
  (which all sit at columns >= i), so after the last row the redundant
  carry vector is fully absorbed and the column sums *are* the low
  product word -- the truncated array needs no final carry-propagate
  adder.

The vertical path through the full-adder array makes the endpoint
arrival profile grow roughly linearly with bit significance -- the
physical reason why, in the paper's Fig. 2, higher multiplier result
bits fail at lower frequencies than low bits.
"""

from __future__ import annotations

from repro.netlist.circuit import Circuit


def build_multiplier_low(circuit: Circuit, a: list[int],
                         b: list[int]) -> list[int]:
    """Build the low-word array multiplier; returns the result bits."""
    width = len(a)
    if len(b) != width:
        raise ValueError("operand widths differ")
    zero = circuit.const(0)

    # Partial products for columns 0..width-1 only (low-word truncation).
    def pp(i: int, j: int) -> int:
        return circuit.gate("AND2", a[j], b[i])

    # Carry-save accumulation, one partial-product row per level.  After
    # processing row i, outstanding carries sit at columns i+1..width-1
    # (higher ones fall off the truncated top), so row i+1's full adders
    # consume all of them and the invariant holds inductively.
    sums = [pp(0, j) for j in range(width)]
    carries = [zero] * width
    for i in range(1, width):
        new_sums = list(sums)
        new_carries = [zero] * width
        for column in range(i, width):
            row_bit = pp(i, column - i)
            s, c = circuit.full_adder(sums[column], carries[column], row_bit)
            new_sums[column] = s
            if column + 1 < width:
                new_carries[column + 1] = c
        sums = new_sums
        carries = new_carries
    return sums


def multiplier_circuit(width: int = 32) -> Circuit:
    """Standalone multiplier unit.

    Inputs: ``a`` (width), ``b`` (width).  Output: ``result`` (width),
    the low word of the product ``(a * b) mod 2**width``.
    """
    circuit = Circuit(f"array-mul{width}")
    a = circuit.input_bus("a", width)
    b = circuit.input_bus("b", width)
    circuit.output_bus("result", build_multiplier_low(circuit, a, b))
    return circuit
