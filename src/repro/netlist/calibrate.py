"""Calibration of per-unit sizing against the case-study timing targets.

The paper's processor is a placed & routed 28 nm design whose maximum
clock frequency at 0.7 V is 707 MHz, limited by the 32 ALU endpoints of
the execution stage, with the constraint strategy of [14] guaranteeing
that everything else is much faster.  Synthesis reaches such targets by
gate sizing; we model sizing as one uniform delay scale per functional
unit and solve for the scales that place each unit's STA limit at a
chosen target period.

The default targets put the multiplier exactly at the 707 MHz STA
limit and stagger the other units below it in the same order the
paper's Fig. 2/4 imply (adder close behind the multiplier, shifter and
logic comfortably fast), while the relative arrival profile *within*
each unit -- which bit fails first, how operand data excites paths --
remains purely structural.
"""

from __future__ import annotations

from repro.netlist.alu import AluNetlist
from repro.netlist.library import VDD_REF
from repro.timing.sta import static_arrivals

#: Target STA-limited clock period [ps] per unit at 0.7 V (including
#: clock-to-Q, output mux and setup).  1414.4 ps = 1 / 707.1 MHz for the
#: multiplier, the paper's critical path.  The adder lands at ~769 MHz,
#: consistent with first 32-bit add failures appearing around 746 MHz
#: under voltage noise (Fig. 4); shifter and logic never fail in the
#: plotted ranges, as in the paper.
DEFAULT_TARGETS_PS: dict[str, float] = {
    "multiplier": 1414.4,
    "adder": 1300.0,
    "shifter": 1050.0,
    "logic": 700.0,
}


class CalibrationError(ValueError):
    """Raised when a target period is infeasible for a unit."""


def calibrate_alu(alu: AluNetlist,
                  targets_ps: dict[str, float] | None = None,
                  vdd: float = VDD_REF) -> dict[str, float]:
    """Set ``alu.unit_scales`` so each unit meets its target period.

    Args:
        alu: the ALU to calibrate (mutated in place).
        targets_ps: per-unit target period [ps]; defaults to the
            case-study targets.
        vdd: voltage at which the targets are defined.

    Returns:
        The solved per-unit scale factors.

    The target period decomposes as ``clk_to_q + scale * path + mux +
    setup``; the combinational path delay is linear in the sizing
    scale, so each unit's scale has a closed form.
    """
    targets = dict(DEFAULT_TARGETS_PS)
    if targets_ps:
        targets.update(targets_ps)
    library = alu.library
    fixed = (library.clk_to_q(vdd) + alu.mux_delay_ps(vdd)
             + library.setup(vdd))
    scales: dict[str, float] = {}
    for name, unit in alu.units.items():
        target = targets[name]
        budget = target - fixed
        if budget <= 0:
            raise CalibrationError(
                f"unit {name!r}: target {target} ps leaves no budget "
                f"for logic (fixed overhead {fixed:.1f} ps)")
        arrivals = static_arrivals(unit, library, vdd, scale=1.0,
                                   include_clk_to_q=False)
        path = max(float(bits.max()) for bits in arrivals.values())
        if path <= 0:
            raise CalibrationError(f"unit {name!r} has no timing path")
        scales[name] = budget / path
    alu.unit_scales.update(scales)
    return scales


def calibrated_alu(config=None, library=None,
                   targets_ps: dict[str, float] | None = None,
                   vdd: float = VDD_REF) -> AluNetlist:
    """Build an :class:`AluNetlist` and calibrate it in one step."""
    alu = AluNetlist(config=config, library=library)
    calibrate_alu(alu, targets_ps, vdd)
    return alu


def verify_calibration(alu: AluNetlist,
                       targets_ps: dict[str, float] | None = None,
                       vdd: float = VDD_REF,
                       tolerance: float = 1e-6) -> dict[str, float]:
    """Recompute each unit's STA period and check it meets its target.

    Returns the measured per-unit periods; raises
    :class:`CalibrationError` on any mismatch beyond ``tolerance``
    (relative).
    """
    targets = dict(DEFAULT_TARGETS_PS)
    if targets_ps:
        targets.update(targets_ps)
    setup = alu.library.setup(vdd)
    measured = {}
    for name, arrivals in alu.endpoint_sta(vdd).items():
        period = float(arrivals.max()) + setup
        measured[name] = period
        target = targets[name]
        if abs(period - target) > tolerance * target:
            raise CalibrationError(
                f"unit {name!r}: measured {period:.2f} ps vs "
                f"target {target:.2f} ps")
    return measured
