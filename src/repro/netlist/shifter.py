"""Gate-level barrel shifter generator.

One shared shifter implements ``l.sll``, ``l.srl`` and ``l.sra``: the
operand is conditionally bit-reversed (for left shifts), passed through
a logarithmic right-shift mux cascade with a selectable fill bit
(zero, or the sign bit for arithmetic shifts), and conditionally
reversed back.  This is the standard single-shifter synthesis of an
RTL ``>>``/``<<`` pair.

Inputs: ``a`` (width), ``amount`` (log2(width)), ``right`` (1),
``arith`` (1).  Output: ``result`` (width).
"""

from __future__ import annotations

from repro.netlist.circuit import Circuit


def build_barrel_shifter(circuit: Circuit, a: list[int], amount: list[int],
                         right: int, arith: int) -> list[int]:
    """Build the shared barrel shifter; returns the result bits."""
    width = len(a)
    if 1 << len(amount) != width:
        raise ValueError(
            f"amount bus of {len(amount)} bits cannot address {width} bits")
    # Left shifts are right shifts of the bit-reversed operand.
    is_left = circuit.gate("INV", right)
    stage = [circuit.gate("MUX2", is_left, a[i], a[width - 1 - i])
             for i in range(width)]
    # Fill bit: sign for arithmetic right shifts, zero otherwise.
    fill = circuit.gate("AND2", a[width - 1],
                        circuit.gate("AND2", right, arith))
    for level, select in enumerate(amount):
        distance = 1 << level
        stage = [
            circuit.gate("MUX2", select, stage[i],
                         stage[i + distance] if i + distance < width
                         else fill)
            for i in range(width)
        ]
    return [circuit.gate("MUX2", is_left, stage[i], stage[width - 1 - i])
            for i in range(width)]


def shifter_circuit(width: int = 32) -> Circuit:
    """Standalone shifter unit (see module docstring for the ports)."""
    amount_bits = (width - 1).bit_length()
    circuit = Circuit(f"barrel-shifter{width}")
    a = circuit.input_bus("a", width)
    amount = circuit.input_bus("amount", amount_bits)
    right = circuit.input_bus("right", 1)[0]
    arith = circuit.input_bus("arith", 1)[0]
    circuit.output_bus("result",
                       build_barrel_shifter(circuit, a, amount, right, arith))
    return circuit
