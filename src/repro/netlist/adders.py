"""Gate-level adder generators.

Three synthesis topologies are provided; the case-study ALU uses the
carry-select adder by default, whose near-linear-in-blocks arrival
profile across endpoint bits best matches the published CDF spreads.
The ripple-carry and Kogge-Stone variants support the ablation studies
(the choice changes how strongly the point of first failure depends on
operand bit-width).

All builders operate *inside* an existing :class:`Circuit` so they can
be used both standalone (wrapped by ``*_adder_circuit``) and as the
final carry-propagate stage of the multiplier.
"""

from __future__ import annotations

from repro.netlist.circuit import Circuit

#: Adder topology registry keys.
ADDER_KINDS = ("ripple", "carry-select", "kogge-stone")


def build_ripple(circuit: Circuit, a: list[int], b: list[int],
                 cin: int) -> tuple[list[int], int]:
    """Ripple-carry adder; returns (sum bits, carry out)."""
    if len(a) != len(b):
        raise ValueError("operand widths differ")
    sums = []
    carry = cin
    for a_bit, b_bit in zip(a, b):
        s, carry = circuit.full_adder(a_bit, b_bit, carry)
        sums.append(s)
    return sums, carry


def build_carry_select(circuit: Circuit, a: list[int], b: list[int],
                       cin: int, block_width: int = 4) -> \
        tuple[list[int], int]:
    """Carry-select adder; returns (sum bits, carry out).

    The operand is split into blocks of ``block_width`` bits.  Every
    block beyond the first computes both carry hypotheses with two
    ripple chains and selects with the incoming block carry, so the
    carry path is one mux per block.
    """
    width = len(a)
    if len(b) != width:
        raise ValueError("operand widths differ")
    sums: list[int] = []
    carry = cin
    for start in range(0, width, block_width):
        stop = min(start + block_width, width)
        block_a, block_b = a[start:stop], b[start:stop]
        if start == 0:
            block_sums, carry = build_ripple(circuit, block_a, block_b, cin)
            sums.extend(block_sums)
            continue
        sums0, cout0 = build_ripple(circuit, block_a, block_b,
                                    circuit.const(0))
        sums1, cout1 = build_ripple(circuit, block_a, block_b,
                                    circuit.const(1))
        for s0, s1 in zip(sums0, sums1):
            sums.append(circuit.gate("MUX2", carry, s0, s1))
        carry = circuit.gate("MUX2", carry, cout0, cout1)
    return sums, carry


def build_kogge_stone(circuit: Circuit, a: list[int], b: list[int],
                      cin: int) -> tuple[list[int], int]:
    """Kogge-Stone parallel-prefix adder; returns (sum bits, carry out)."""
    width = len(a)
    if len(b) != width:
        raise ValueError("operand widths differ")
    propagate = [circuit.gate("XOR2", x, y) for x, y in zip(a, b)]
    generate = [circuit.gate("AND2", x, y) for x, y in zip(a, b)]
    # Fold carry-in into bit 0's generate: g0' = g0 | (p0 & cin).
    if cin not in (circuit.const(0),):
        g0_extra = circuit.gate("AND2", propagate[0], cin)
        generate = [circuit.gate("OR2", generate[0], g0_extra)] + generate[1:]
    group_p = list(propagate)
    group_g = list(generate)
    distance = 1
    while distance < width:
        next_p = list(group_p)
        next_g = list(group_g)
        for i in range(distance, width):
            and_pg = circuit.gate("AND2", group_p[i], group_g[i - distance])
            next_g[i] = circuit.gate("OR2", group_g[i], and_pg)
            next_p[i] = circuit.gate("AND2", group_p[i],
                                     group_p[i - distance])
        group_p, group_g = next_p, next_g
        distance *= 2
    carries = [cin] + group_g[:-1]
    sums = [circuit.gate("XOR2", p, c) for p, c in zip(propagate, carries)]
    return sums, group_g[-1]


_BUILDERS = {
    "ripple": build_ripple,
    "carry-select": build_carry_select,
    "kogge-stone": build_kogge_stone,
}


def build_adder(circuit: Circuit, a: list[int], b: list[int], cin: int,
                kind: str = "carry-select") -> tuple[list[int], int]:
    """Dispatch to one of the adder topologies by name."""
    try:
        builder = _BUILDERS[kind]
    except KeyError:
        raise ValueError(
            f"unknown adder kind {kind!r}; known: {ADDER_KINDS}") from None
    return builder(circuit, a, b, cin)


def adder_circuit(width: int = 32, kind: str = "carry-select") -> Circuit:
    """Standalone add/subtract unit.

    Inputs: ``a`` (width), ``b`` (width), ``sub`` (1).  When ``sub`` is
    high, computes ``a - b`` via two's complement (b inverted, carry-in
    forced high).  Outputs: ``result`` (width), ``cout`` (1).
    """
    circuit = Circuit(f"{kind}-adder{width}")
    a = circuit.input_bus("a", width)
    b = circuit.input_bus("b", width)
    sub = circuit.input_bus("sub", 1)[0]
    b_eff = [circuit.gate("XOR2", bit, sub) for bit in b]
    sums, cout = build_adder(circuit, a, b_eff, sub, kind)
    circuit.output_bus("result", sums)
    circuit.output_bus("cout", [cout])
    return circuit
