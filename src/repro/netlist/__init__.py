"""Gate-level netlist substrate: cells, circuits, ALU blocks, calibration."""

from repro.netlist.adders import ADDER_KINDS, adder_circuit, build_adder
from repro.netlist.alu import (
    AluConfig,
    AluNetlist,
    N_ENDPOINTS,
    OUTPUT_MUX_LEVELS,
)
from repro.netlist.calibrate import (
    CalibrationError,
    DEFAULT_TARGETS_PS,
    calibrate_alu,
    calibrated_alu,
    verify_calibration,
)
from repro.netlist.circuit import (
    Circuit,
    CircuitError,
    ENGINES,
    bits_from_ints,
    ints_from_bits,
)
from repro.netlist.plan import CompiledPlan, compile_plan
from repro.netlist.gates import GATE_KINDS, arity_of, eval_gate
from repro.netlist.library import (
    CHARACTERIZED_VDDS,
    CellLibrary,
    DEFAULT_CELL_DELAYS_PS,
    VDD_REF,
)
from repro.netlist.logic_unit import logic_circuit
from repro.netlist.multiplier import multiplier_circuit
from repro.netlist.shifter import shifter_circuit
from repro.netlist.verilog import to_verilog, write_verilog

__all__ = [
    "ADDER_KINDS",
    "AluConfig",
    "AluNetlist",
    "CHARACTERIZED_VDDS",
    "CalibrationError",
    "CellLibrary",
    "Circuit",
    "CircuitError",
    "CompiledPlan",
    "DEFAULT_CELL_DELAYS_PS",
    "ENGINES",
    "DEFAULT_TARGETS_PS",
    "GATE_KINDS",
    "N_ENDPOINTS",
    "OUTPUT_MUX_LEVELS",
    "VDD_REF",
    "adder_circuit",
    "arity_of",
    "bits_from_ints",
    "build_adder",
    "calibrate_alu",
    "calibrated_alu",
    "compile_plan",
    "eval_gate",
    "ints_from_bits",
    "logic_circuit",
    "multiplier_circuit",
    "shifter_circuit",
    "to_verilog",
    "verify_calibration",
    "write_verilog",
]
