"""repro: statistical fault injection for timing-error impact evaluation.

A from-scratch Python reproduction of Constantin et al., *"Statistical
Fault Injection for Impact-Evaluation of Timing Errors on Application
Performance"* (DAC 2016): an OR1K-subset cycle-accurate instruction set
simulator, a gate-level ALU netlist with static and dynamic timing
analysis, supply-voltage-noise and power models, the paper's four
fault-injection models (A, B, B+, and the proposed statistical model C),
the four benchmark kernels, and a Monte-Carlo experiment harness that
regenerates every table and figure of the paper's evaluation.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
