"""Model B+: STA-based fault injection with supply-voltage noise.

Extends model B (paper Section 3.3): each cycle draws an independent
supply-noise value, converts it into a delay scale factor through the
fitted Vdd-delay curve, and applies the model-B period-violation test
against the *modulated* path delays.  The onset frequency of fault
injection drops below the STA limit (the worst 2-sigma droop stretches
all delays), and the FI rate near the onset is much lower than model
B's because only tail noise values trigger violations -- but the model
remains instruction-blind, so applications still hit a hard failure
threshold (Fig. 1(b), 1(c)).
"""

from __future__ import annotations

from bisect import bisect_right

import numpy as np

from repro.fi.base import FaultInjector
from repro.fi.model_b import endpoint_worst_sta
from repro.fi.streams import EffectivePeriodStream
from repro.netlist.alu import AluNetlist
from repro.netlist.library import VDD_REF
from repro.timing.noise import VoltageNoise
from repro.timing.voltage import VddDelayModel


class StaNoiseInjector(FaultInjector):
    """STA violation test under per-cycle noise-modulated delays (B+).

    Args:
        alu: calibrated ALU netlist.
        frequency_hz: simulated clock frequency.
        noise: supply-voltage noise distribution.
        vdd: operating supply voltage (also the STA corner).
        vdd_model: fitted Vdd-delay curve; derived from the ALU's STA
            over the characterized corners when omitted.
        rng: random generator for the noise stream.
        semantics: fault semantics.
    """

    model_name = "B+"

    def __init__(self, alu: AluNetlist, frequency_hz: float,
                 noise: VoltageNoise, vdd: float = VDD_REF,
                 vdd_model: VddDelayModel | None = None,
                 rng: np.random.Generator | None = None,
                 semantics: str = "flip"):
        super().__init__(semantics)
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        self.frequency_hz = frequency_hz
        self.vdd = vdd
        self.noise = noise
        rng = rng or np.random.default_rng()
        vdd_model = vdd_model or VddDelayModel.from_alu_sta(alu)
        critical = endpoint_worst_sta(alu, vdd)
        # Sort endpoints by criticality; at an effective period T_eff
        # the violated set is exactly the endpoints with critical > T_eff,
        # so the mask is a function of how many sorted entries exceed it.
        order = np.argsort(critical)
        self._sorted_critical = critical[order].tolist()
        masks = [0]
        mask = 0
        for bit in reversed(order.tolist()):
            mask |= 1 << bit
            masks.append(mask)
        self._masks_by_count = masks
        self._stream = EffectivePeriodStream(
            period_ps=1e12 / frequency_hz,
            vdd_operating=vdd,
            vdd_characterized=vdd,
            vdd_model=vdd_model,
            noise=noise,
            rng=rng)

    def fault_mask(self, mnemonic: str) -> int:
        period_eff = self._stream.next()
        sorted_critical = self._sorted_critical
        violated = len(sorted_critical) - bisect_right(
            sorted_critical, period_eff)
        return self._masks_by_count[violated]
