"""Model A: conventional fixed-probability random fault injection.

Every endpoint bit flips independently with one fixed probability per
cycle, with no link to the circuit, the operating point, or the
instruction being executed (paper Section 3.1).  This is the
single-event-upset-style baseline whose lack of physical grounding the
paper criticizes: its one parameter cannot be derived from frequency,
voltage, or noise conditions.
"""

from __future__ import annotations

import numpy as np

from repro.fi.base import FaultInjector
from repro.fi.sampling import BitSampler
from repro.netlist.alu import N_ENDPOINTS


class FixedProbabilityInjector(FaultInjector):
    """Fixed per-bit, per-cycle fault probability (model A).

    Args:
        p_bit: probability that any given endpoint bit flips in any
            given FI-eligible cycle.
        rng: random generator.
        semantics: fault semantics (see :class:`FaultInjector`).
    """

    model_name = "A"

    def __init__(self, p_bit: float, rng: np.random.Generator | None = None,
                 semantics: str = "flip"):
        super().__init__(semantics)
        if not 0.0 <= p_bit <= 1.0:
            raise ValueError(f"p_bit must be in [0, 1], got {p_bit}")
        self.p_bit = p_bit
        self._rng = rng or np.random.default_rng()
        self._sampler = BitSampler.from_probs(
            np.full(N_ENDPOINTS, p_bit))

    def fault_mask(self, mnemonic: str) -> int:
        p_any = self._sampler.p_any
        if p_any <= 0.0 or self._rng.random() >= p_any:
            return 0
        return self._sampler.sample_mask(self._rng)
