"""Fault-injection models: A (random), B (STA), B+ (STA+noise), C (statistical)."""

from repro.fi.base import FAULT_SEMANTICS, FaultInjector, NullInjector
from repro.fi.model_a import FixedProbabilityInjector
from repro.fi.model_b import StaInjector, endpoint_worst_sta
from repro.fi.model_bplus import StaNoiseInjector
from repro.fi.model_c import CORRELATION_MODES, StatisticalInjector
from repro.fi.sampling import BitSampler
from repro.fi.streams import EffectivePeriodStream

__all__ = [
    "BitSampler",
    "CORRELATION_MODES",
    "EffectivePeriodStream",
    "FAULT_SEMANTICS",
    "FaultInjector",
    "FixedProbabilityInjector",
    "NullInjector",
    "StaInjector",
    "StaNoiseInjector",
    "StatisticalInjector",
    "endpoint_worst_sta",
]
