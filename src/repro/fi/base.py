"""Fault injector interface and fault semantics.

All four timing-error models (A, B, B+, C) implement one contract: the
CPU calls ``on_alu(mnemonic, result)`` for every FI-eligible
instruction inside the benchmark's FI window, and the injector returns
the (possibly corrupted) 32-bit value that gets latched into the
EX-stage endpoint register.

Two fault semantics model what a timing violation does to an endpoint
flip-flop:

* ``flip`` -- the affected bit inverts (the conventional register-bit
  FI abstraction, and the paper's framing); default.
* ``stale`` -- the flip-flop re-latches its previous value on the
  affected bit (the late data edge missed the capture window).

The distinction is an extension knob for sensitivity studies; both
corrupt only bits reported by the model's fault mask.
"""

from __future__ import annotations

import abc

MASK32 = 0xFFFFFFFF

FAULT_SEMANTICS = ("flip", "stale")


class FaultInjector(abc.ABC):
    """Base class for all timing-error injection models.

    Attributes:
        fault_count: total corrupted bits so far in this run.
        faulty_cycles: cycles with at least one corrupted bit.
        alu_cycles: FI-eligible instructions seen in the FI window.
    """

    #: Short model tag ("A", "B", "B+", "C") for reports.
    model_name = "?"

    def __init__(self, semantics: str = "flip"):
        if semantics not in FAULT_SEMANTICS:
            raise ValueError(
                f"unknown fault semantics {semantics!r}; "
                f"expected one of {FAULT_SEMANTICS}")
        self.semantics = semantics
        self.fault_count = 0
        self.faulty_cycles = 0
        self.alu_cycles = 0
        self._last_latched = 0

    def begin_run(self) -> None:
        """Reset per-run counters (called by the CPU before execution)."""
        self.fault_count = 0
        self.faulty_cycles = 0
        self.alu_cycles = 0
        self._last_latched = 0

    @abc.abstractmethod
    def fault_mask(self, mnemonic: str) -> int:
        """Bit mask of endpoints violated this cycle (0 = no fault)."""

    def on_alu(self, mnemonic: str, result: int) -> int:
        """CPU hook: pass an EX-stage result through the fault model."""
        self.alu_cycles += 1
        mask = self.fault_mask(mnemonic)
        if mask:
            self.faulty_cycles += 1
            self.fault_count += mask.bit_count()
            if self.semantics == "flip":
                result = (result ^ mask) & MASK32
            else:
                result = ((result & ~mask)
                          | (self._last_latched & mask)) & MASK32
        self._last_latched = result
        return result


class NullInjector(FaultInjector):
    """Injector that never faults; useful for baselines and profiling."""

    model_name = "none"

    def fault_mask(self, mnemonic: str) -> int:
        return 0
