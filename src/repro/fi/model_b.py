"""Model B: static-timing-based deterministic fault injection.

Per paper Section 3.2: STA of the placed & routed netlist provides the
worst-case path delay to every endpoint at the chosen operating
condition.  Whenever an FI-eligible instruction activates the execute
stage *and* the clock period is shorter than an endpoint's worst-case
delay (plus setup), a fault is injected into that endpoint --
deterministically, every such cycle.

Because the worst path delay to each endpoint is taken over *all*
instructions (the model is not instruction aware) and actual path
excitation is ignored, the model is overly pessimistic: the FI rate
jumps as soon as the clock exceeds the STA limit, producing the cliff
behavior of the paper's Fig. 1(a).
"""

from __future__ import annotations

import numpy as np

from repro.fi.base import FaultInjector
from repro.netlist.alu import AluNetlist
from repro.netlist.library import VDD_REF


def endpoint_worst_sta(alu: AluNetlist, vdd: float) -> np.ndarray:
    """Worst-case critical period per endpoint bit [ps].

    The maximum over all functional units of the static arrival to each
    endpoint, plus the capture setup time -- the STA view model B uses.
    """
    per_unit = alu.endpoint_sta(vdd)
    worst = np.maximum.reduce(list(per_unit.values()))
    return worst + alu.library.setup(vdd)


class StaInjector(FaultInjector):
    """Deterministic STA period-violation injection (model B).

    Args:
        alu: calibrated ALU netlist.
        frequency_hz: simulated clock frequency.
        vdd: operating supply voltage (STA corner).
        semantics: fault semantics.
    """

    model_name = "B"

    def __init__(self, alu: AluNetlist, frequency_hz: float,
                 vdd: float = VDD_REF, semantics: str = "flip"):
        super().__init__(semantics)
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        self.frequency_hz = frequency_hz
        self.vdd = vdd
        period = 1e12 / frequency_hz
        critical = endpoint_worst_sta(alu, vdd)
        mask = 0
        for bit, crit in enumerate(critical):
            if crit > period:
                mask |= 1 << bit
        self._mask = mask

    @property
    def violation_mask(self) -> int:
        """The constant per-cycle endpoint violation mask."""
        return self._mask

    def fault_mask(self, mnemonic: str) -> int:
        return self._mask
