"""Exact conditional sampling of per-endpoint Bernoulli fault masks.

The statistical models decide *whether* any endpoint faults with one
uniform draw against the any-endpoint probability (the fast path --
most cycles inject nothing), and only then sample *which* endpoints
fault.  Conditioned on "at least one endpoint violates", the
independent-Bernoulli distribution is sampled exactly in two steps:

1. the index of the lowest violating endpoint follows the
   first-success distribution, precomputed as a CDF;
2. endpoints above it are independent Bernoullis with their own
   probabilities.

This keeps the expensive work proportional to actual fault cycles
instead of every simulated cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class BitSampler:
    """Conditional sampler for one fixed endpoint-probability vector.

    Attributes:
        p_bits: (n,) per-endpoint violation probabilities.
        p_any: probability that at least one endpoint violates,
            ``1 - prod(1 - p_bits)``.
        first_cdf: (n,) CDF of the lowest violating endpoint index,
            conditioned on ``p_any``.
    """

    p_bits: np.ndarray
    p_any: float
    first_cdf: np.ndarray

    @classmethod
    def from_probs(cls, p_bits: np.ndarray) -> "BitSampler":
        p_bits = np.asarray(p_bits, dtype=float)
        if p_bits.ndim != 1 or not p_bits.size:
            raise ValueError("p_bits must be a non-empty 1-D array")
        if np.any((p_bits < 0) | (p_bits > 1)):
            raise ValueError("probabilities must lie in [0, 1]")
        none_below = np.concatenate(([1.0], np.cumprod(1.0 - p_bits)[:-1]))
        first_probs = none_below * p_bits
        p_any = 1.0 - float(np.prod(1.0 - p_bits))
        if p_any > 0.0:
            first_cdf = np.cumsum(first_probs) / p_any
        else:
            first_cdf = np.ones_like(p_bits)
        return cls(p_bits=p_bits, p_any=p_any, first_cdf=first_cdf)

    def sample_mask(self, rng: np.random.Generator) -> int:
        """Sample a violation mask conditioned on at least one bit set.

        Returns a non-zero integer mask (bit i set = endpoint i
        violated).  Must not be called when ``p_any`` is zero.
        """
        if self.p_any <= 0.0:
            raise ValueError("conditional sample requested with p_any == 0")
        first = int(np.searchsorted(self.first_cdf, rng.random(),
                                    side="right"))
        first = min(first, self.p_bits.size - 1)
        mask = 1 << first
        remaining = self.p_bits.size - first - 1
        if remaining > 0:
            hits = np.flatnonzero(
                rng.random(remaining) < self.p_bits[first + 1:])
            for offset in hits:
                mask |= 1 << (first + 1 + int(offset))
        return mask
