"""Per-cycle effective-period stream under supply-voltage noise.

Models B+ and C share the same noise plumbing: each cycle draws an
independent supply-noise value, converts it through the fitted
Vdd-delay curve into a delay scale factor ``k``, and compares scaled
path delays against the clock period.  Scaling all delays by ``k`` is
equivalent to scaling the clock period by ``1/k``, so the stream hands
out *effective periods* ``T_eff = T / k`` directly.

The stream also handles static voltage offsets: when the operating
voltage differs from the characterization voltage (Fig. 7's
voltage-overscaling at fixed frequency), the same fitted curve provides
the offset's scale factor.

Values are produced in vectorized blocks; the per-cycle cost inside the
injector is one array index.
"""

from __future__ import annotations

import numpy as np

from repro.timing.noise import VoltageNoise
from repro.timing.voltage import VddDelayModel


class EffectivePeriodStream:
    """Blocked per-cycle effective clock periods under voltage noise.

    Args:
        period_ps: nominal clock period [ps] (1e12 / frequency).
        vdd_operating: supply voltage the core runs at.
        vdd_characterized: voltage of the timing data being scaled
            (STA corner for model B+, CDF characterization voltage for
            model C).
        vdd_model: fitted Vdd-delay curve.
        noise: supply-noise distribution.
        rng: random generator for the noise stream.
        block: vectorized refill size.
    """

    def __init__(self, period_ps: float, vdd_operating: float,
                 vdd_characterized: float, vdd_model: VddDelayModel,
                 noise: VoltageNoise, rng: np.random.Generator,
                 block: int = 65536):
        if period_ps <= 0:
            raise ValueError("clock period must be positive")
        if block <= 0:
            raise ValueError("block size must be positive")
        self.period_ps = period_ps
        self.vdd_operating = vdd_operating
        self.vdd_characterized = vdd_characterized
        self._vdd_model = vdd_model
        self._noise = noise
        self._rng = rng
        self._block = block
        self._constant: float | None = None
        if noise.sigma_v == 0.0:
            factor = float(vdd_model.scale_factor(
                vdd_operating, vdd_characterized))
            self._constant = period_ps / factor
        else:
            self._values = self._refill()
            self._cursor = 0

    def _refill(self) -> np.ndarray:
        droops = self._noise.sample(self._block, self._rng)
        factors = self._vdd_model.scale_factor(
            self.vdd_operating + droops, self.vdd_characterized)
        return self.period_ps / factors

    def next(self) -> float:
        """Effective period [ps] for the next cycle."""
        if self._constant is not None:
            return self._constant
        if self._cursor >= self._block:
            self._values = self._refill()
            self._cursor = 0
        value = self._values[self._cursor]
        self._cursor += 1
        return value
