"""Model C: the proposed instruction-aware statistical fault injection.

This is the paper's contribution (Section 3.4, Fig. 3).  Each cycle
with an FI-eligible instruction in the execute stage:

1. a CDF scaling factor is derived from the clock frequency and the
   per-cycle supply-voltage noise through the fitted Vdd-delay curve
   (implemented as an *effective clock period*);
2. the timing-error probabilities ``P_{E,V,I}(f)`` of all 32 endpoints
   are read from the scaled CDF matching the executing instruction and
   the characterization voltage;
3. faults are injected per endpoint with those probabilities.

Two endpoint-correlation modes are provided:

* ``independent`` (default, the paper's step 3): each endpoint draws
  its own Bernoulli with probability ``P_{E,V,I}``;
* ``joint``: a whole characterization cycle is resampled from the DTA
  statistics, preserving the correlations between endpoints that share
  logic cones (an extension of the paper's model; marginals match the
  CDFs exactly either way).

The per-cycle fast path costs one stream read, one bisect into the
period grid, and one uniform draw; the expensive conditional sampling
only runs on actual fault cycles.
"""

from __future__ import annotations

import numpy as np

from repro.fi.base import FaultInjector
from repro.fi.sampling import BitSampler
from repro.fi.streams import EffectivePeriodStream
from repro.netlist.alu import AluNetlist
from repro.timing.characterize import (
    AluCharacterization,
    CharacterizationConfig,
    get_characterization,
)
from repro.timing.noise import VoltageNoise
from repro.timing.voltage import VddDelayModel

CORRELATION_MODES = ("independent", "joint")


class StatisticalInjector(FaultInjector):
    """Instruction-aware statistical fault injection (model C).

    Args:
        characterization: per-instruction CDF tables from DTA.
        frequency_hz: simulated clock frequency.
        noise: supply-voltage noise distribution.
        vdd_operating: supply the core runs at; may differ from the
            characterization voltage (the fitted Vdd-delay curve scales
            the CDFs accordingly, e.g. for voltage overscaling).
        vdd_model: fitted Vdd-delay curve.
        rng: random generator.
        correlation: ``"independent"`` or ``"joint"`` (see module doc).
        semantics: fault semantics.
    """

    model_name = "C"

    def __init__(self, characterization: AluCharacterization,
                 frequency_hz: float, noise: VoltageNoise,
                 vdd_operating: float | None = None,
                 vdd_model: VddDelayModel | None = None,
                 rng: np.random.Generator | None = None,
                 correlation: str = "independent",
                 semantics: str = "flip"):
        super().__init__(semantics)
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        if correlation not in CORRELATION_MODES:
            raise ValueError(
                f"unknown correlation mode {correlation!r}; "
                f"expected one of {CORRELATION_MODES}")
        if vdd_model is None:
            raise ValueError(
                "a fitted VddDelayModel is required (use "
                "StatisticalInjector.for_alu for a turnkey setup)")
        self.characterization = characterization
        self.frequency_hz = frequency_hz
        self.noise = noise
        self.correlation = correlation
        self.vdd_characterized = characterization.config.vdd
        self.vdd_operating = (vdd_operating
                              if vdd_operating is not None
                              else self.vdd_characterized)
        self._rng = rng or np.random.default_rng()
        self._grids = characterization.grids
        self._cdfs = characterization.cdfs
        self._stream = EffectivePeriodStream(
            period_ps=1e12 / frequency_hz,
            vdd_operating=self.vdd_operating,
            vdd_characterized=self.vdd_characterized,
            vdd_model=vdd_model,
            noise=noise,
            rng=self._rng)
        # Lazily built conditional samplers, keyed by (mnemonic, row).
        self._samplers: dict[tuple[str, int], BitSampler] = {}

    @classmethod
    def for_alu(cls, alu: AluNetlist, frequency_hz: float,
                noise: VoltageNoise,
                vdd_operating: float | None = None,
                characterization_config: CharacterizationConfig | None = None,
                rng: np.random.Generator | None = None,
                correlation: str = "independent",
                semantics: str = "flip") -> "StatisticalInjector":
        """Build an injector from an ALU, characterizing on first use."""
        characterization = get_characterization(
            alu, characterization_config)
        return cls(
            characterization=characterization,
            frequency_hz=frequency_hz,
            noise=noise,
            vdd_operating=vdd_operating,
            vdd_model=VddDelayModel.from_alu_sta(alu),
            rng=rng,
            correlation=correlation,
            semantics=semantics)

    # -- mask generation ----------------------------------------------------

    def fault_mask(self, mnemonic: str) -> int:
        period_eff = self._stream.next()
        grid = self._grids[mnemonic]
        row = grid.row_index(period_eff)
        if row < 0:
            return 0
        if self.correlation == "independent":
            return self._independent_mask(mnemonic, grid, row)
        return self._joint_mask(mnemonic, period_eff)

    def _independent_mask(self, mnemonic: str, grid, row: int) -> int:
        sampler = self._samplers.get((mnemonic, row))
        if sampler is None:
            sampler = BitSampler.from_probs(grid.probs[row])
            self._samplers[(mnemonic, row)] = sampler
        if sampler.p_any <= 0.0 or self._rng.random() >= sampler.p_any:
            return 0
        return sampler.sample_mask(self._rng)

    def _joint_mask(self, mnemonic: str, period_eff: float) -> int:
        cdfs = self._cdfs[mnemonic]
        n = cdfs.n_cycles
        first_violating = int(np.searchsorted(
            cdfs.row_max_sorted, period_eff, side="right"))
        violating = n - first_violating
        if violating <= 0 or self._rng.random() >= violating / n:
            return 0
        index = int(self._rng.integers(first_violating, n))
        bits = np.flatnonzero(cdfs.critical_rows[index] > period_eff)
        mask = 0
        for bit in bits:
            mask |= 1 << int(bit)
        return mask
