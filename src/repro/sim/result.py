"""Execution outcome record returned by the instruction set simulator."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExecutionResult:
    """Outcome of one simulated program run.

    Attributes:
        finished: True if the program reached its exit hook
            (``l.nop NOP_EXIT``); False if aborted by a fatal condition.
        abort_reason: machine-readable reason tag when not finished
            (e.g. ``"infinite-loop"``, ``"memory-fault"``).
        cycles: total executed cycles (IPC is 1 on this core, so this
            equals retired instructions).
        kernel_cycles: cycles executed inside the FI window (the
            benchmark's kernel region).
        fault_count: number of injected faults (bits corrupted).
        faulty_cycles: kernel cycles in which at least one endpoint was
            corrupted.
        alu_cycles: kernel cycles with an FI-eligible instruction in the
            execute stage.
        reports: values reported through the ``l.nop NOP_REPORT`` hook.
        exit_code: value of r3 at the exit hook, if finished.
        class_counts: retired-instruction counts per timing class name
            (only populated when profiling is enabled).
    """

    finished: bool
    abort_reason: str | None
    cycles: int
    kernel_cycles: int
    fault_count: int
    faulty_cycles: int
    alu_cycles: int
    reports: list[int] = field(default_factory=list)
    exit_code: int | None = None
    class_counts: dict[str, int] = field(default_factory=dict)

    @property
    def fi_rate_per_kcycle(self) -> float:
        """Injected faults per 1000 kernel cycles (the paper's FI rate)."""
        if self.kernel_cycles <= 0:
            return 0.0
        return 1000.0 * self.fault_count / self.kernel_cycles
