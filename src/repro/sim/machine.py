"""Machine configuration shared by the assembler conventions and the ISS."""

from __future__ import annotations

from dataclasses import dataclass

#: Byte address where the data segment starts.  Assembly images place
#: ``.org DATA_BASE`` before their data; the loader splits the image into
#: instruction memory (below) and data memory (at or above) this address,
#: mirroring the separate I/D SRAM macros of the case-study core.
DATA_BASE = 0x10000

#: Simulator l.nop hook codes beyond the or1ksim conventions: the paper
#: performs FI only for the kernel part of each benchmark, so kernels
#: bracket their hot region with these markers.
NOP_FI_ON = 0x0010
NOP_FI_OFF = 0x0011


@dataclass(frozen=True)
class MachineConfig:
    """Static configuration of the simulated machine.

    Attributes:
        imem_base: byte address of the first instruction word.
        dmem_base: byte address of the data SRAM.
        dmem_size: data SRAM size in bytes.
        max_cycles: hard cycle budget; exceeded means the infinite-loop
            detector aborts the run.
        detect_self_jump: abort immediately on an unconditional jump to
            itself (an obvious fatal error, per the paper's ISS).
    """

    imem_base: int = 0
    dmem_base: int = DATA_BASE
    dmem_size: int = 1 << 20
    max_cycles: int = 20_000_000
    detect_self_jump: bool = True

    def with_max_cycles(self, max_cycles: int) -> "MachineConfig":
        """Copy of this config with a different cycle budget."""
        return MachineConfig(
            imem_base=self.imem_base,
            dmem_base=self.dmem_base,
            dmem_size=self.dmem_size,
            max_cycles=max_cycles,
            detect_self_jump=self.detect_self_jump,
        )
