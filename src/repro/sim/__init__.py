"""Cycle-accurate 6-stage OR1K-subset instruction set simulator."""

from repro.sim.cpu import Cpu
from repro.sim.exceptions import (
    IllegalInstruction,
    InfiniteLoop,
    MemoryFault,
    MisalignedAccess,
    PcOutOfRange,
    SimulationFault,
)
from repro.sim.machine import DATA_BASE, MachineConfig, NOP_FI_OFF, NOP_FI_ON
from repro.sim.memory import DataMemory
from repro.sim.pipeline import (
    DEPTH,
    EX_INDEX,
    STAGES,
    StageOccupancy,
    ex_cycle_of,
    occupancy_at,
    retired_at,
)
from repro.sim.result import ExecutionResult
from repro.sim.tracing import TraceEntry, Tracer

__all__ = [
    "Cpu",
    "DATA_BASE",
    "DEPTH",
    "DataMemory",
    "EX_INDEX",
    "ExecutionResult",
    "IllegalInstruction",
    "InfiniteLoop",
    "MachineConfig",
    "MemoryFault",
    "MisalignedAccess",
    "NOP_FI_OFF",
    "NOP_FI_ON",
    "PcOutOfRange",
    "STAGES",
    "SimulationFault",
    "StageOccupancy",
    "TraceEntry",
    "Tracer",
    "ex_cycle_of",
    "occupancy_at",
    "retired_at",
]
