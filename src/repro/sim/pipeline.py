"""Pipeline-stage model of the 6-stage in-order core.

The case-study core is a 6-stage single-issue pipeline sustaining one
instruction per cycle.  Because there are no stall sources in this
configuration (single-cycle SRAMs, single-cycle multiplier, delay-slot
branches), stage occupancy is a pure function of the retire index: the
instruction retired at cycle ``c`` occupied stage ``s`` at cycle
``c - (DEPTH - 1 - s_index)``.

This module makes that mapping explicit.  The fault-injection framework
conceptually operates on the EX/MEM pipeline boundary register (the 32
ALU endpoint flip-flops); :func:`ex_cycle_of` converts between retire
indices and the cycle in which a given instruction's result was latched
there, which tests use to validate the FI accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Stage names, front to back (two fetch stages, as in the case study's
#: modified OpenRISC implementation).
STAGES: tuple[str, ...] = ("IF1", "IF2", "ID", "EX", "MEM", "WB")

#: Pipeline depth.
DEPTH = len(STAGES)

#: Index of the execute stage, whose output register holds the 32 ALU
#: endpoints that are the FI targets.
EX_INDEX = STAGES.index("EX")


@dataclass(frozen=True)
class StageOccupancy:
    """Which retire-index occupies each stage at one cycle."""

    cycle: int
    #: retire index per stage, or None if the stage holds a bubble
    #: (pipeline fill at the start of execution).
    occupants: tuple[int | None, ...]

    def in_stage(self, stage: str) -> int | None:
        return self.occupants[STAGES.index(stage)]


def occupancy_at(cycle: int) -> StageOccupancy:
    """Stage occupancy at ``cycle`` for an ideal IPC-1 stream.

    The instruction with retire index ``i`` (0-based) is in stage ``s``
    (0-based from IF1) at cycle ``i + s`` once the pipeline has filled;
    equivalently stage ``s`` at cycle ``c`` holds retire index
    ``c - s`` when that is non-negative.
    """
    occupants = tuple(
        cycle - s if cycle - s >= 0 else None for s in range(DEPTH))
    return StageOccupancy(cycle=cycle, occupants=occupants)


def ex_cycle_of(retire_index: int) -> int:
    """Cycle at which instruction ``retire_index`` occupies EX."""
    if retire_index < 0:
        raise ValueError("retire index must be non-negative")
    return retire_index + EX_INDEX


def retired_at(cycle: int) -> int | None:
    """Retire index of the instruction leaving WB at ``cycle``."""
    index = cycle - (DEPTH - 1)
    return index if index >= 0 else None
