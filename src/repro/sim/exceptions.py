"""Execution-error hierarchy for the instruction set simulator.

Fault injection frequently corrupts values that later feed branches,
addresses or loop bounds.  The simulator maps every such fatal condition
onto a :class:`SimulationFault` subclass, which the Monte-Carlo runner
converts into a *did-not-finish* outcome (the paper's ``finished``
metric) instead of propagating as a Python error.
"""

from __future__ import annotations


class SimulationFault(Exception):
    """Base class for fatal conditions during simulated execution."""

    #: Short machine-readable reason tag used in aggregated results.
    reason = "fault"


class IllegalInstruction(SimulationFault):
    """The PC reached a word that does not decode to any instruction."""

    reason = "illegal-instruction"


class PcOutOfRange(SimulationFault):
    """The PC left the instruction memory image."""

    reason = "pc-out-of-range"


class MemoryFault(SimulationFault):
    """A load/store touched an address outside the data memory."""

    reason = "memory-fault"


class MisalignedAccess(SimulationFault):
    """A word/half-word access was not naturally aligned."""

    reason = "misaligned-access"


class InfiniteLoop(SimulationFault):
    """The infinite-loop detector aborted the run.

    Triggered either by the hard cycle budget or by an unconditional
    self-jump, the two "obvious fatal errors" the paper's ISS detects.
    """

    reason = "infinite-loop"
