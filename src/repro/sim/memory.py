"""Data memory model: a single-cycle big-endian SRAM macro.

The case-study core uses separate single-cycle instruction and data
SRAMs (a Harvard organization).  This module models the *data* memory;
instruction memory is the pre-decoded program image held by the CPU.

The memory is byte-addressable and big-endian, like the real OR1K.
All accesses are bounds-checked: fault-corrupted pointers that escape
the SRAM raise :class:`~repro.sim.exceptions.MemoryFault`, which the
simulator reports as a failed (non-finishing) run.
"""

from __future__ import annotations

from repro.sim.exceptions import MemoryFault, MisalignedAccess

MASK32 = 0xFFFFFFFF


class DataMemory:
    """Byte-addressable big-endian data SRAM.

    Args:
        base: lowest valid byte address (the data segment base).
        size: size in bytes; must be a multiple of 4.
    """

    def __init__(self, base: int, size: int):
        if size <= 0 or size % 4:
            raise ValueError(f"memory size must be a positive multiple "
                             f"of 4, got {size}")
        if base % 4:
            raise ValueError(f"memory base must be word aligned, got {base:#x}")
        self.base = base
        self.size = size
        self._bytes = bytearray(size)

    @property
    def limit(self) -> int:
        """One past the highest valid byte address."""
        return self.base + self.size

    def _offset(self, address: int, width: int) -> int:
        offset = address - self.base
        if offset < 0 or offset + width > self.size:
            raise MemoryFault(
                f"{width}-byte access at {address:#x} outside data memory "
                f"[{self.base:#x}, {self.limit:#x})")
        return offset

    # -- word access (the common case; kept branch-light for speed) ----

    def load_word(self, address: int) -> int:
        if address & 3:
            raise MisalignedAccess(f"word load at {address:#x}")
        off = self._offset(address, 4)
        b = self._bytes
        return (b[off] << 24) | (b[off + 1] << 16) | (b[off + 2] << 8) | b[off + 3]

    def store_word(self, address: int, value: int) -> None:
        if address & 3:
            raise MisalignedAccess(f"word store at {address:#x}")
        off = self._offset(address, 4)
        value &= MASK32
        self._bytes[off:off + 4] = value.to_bytes(4, "big")

    # -- sub-word access -------------------------------------------------

    def load_half(self, address: int) -> int:
        if address & 1:
            raise MisalignedAccess(f"half-word load at {address:#x}")
        off = self._offset(address, 2)
        return (self._bytes[off] << 8) | self._bytes[off + 1]

    def store_half(self, address: int, value: int) -> None:
        if address & 1:
            raise MisalignedAccess(f"half-word store at {address:#x}")
        off = self._offset(address, 2)
        self._bytes[off] = (value >> 8) & 0xFF
        self._bytes[off + 1] = value & 0xFF

    def load_byte(self, address: int) -> int:
        return self._bytes[self._offset(address, 1)]

    def store_byte(self, address: int, value: int) -> None:
        self._bytes[self._offset(address, 1)] = value & 0xFF

    # -- bulk helpers for loading inputs and reading results -------------

    def write_words(self, address: int, values: list[int]) -> None:
        """Store a list of 32-bit words starting at ``address``."""
        for index, value in enumerate(values):
            self.store_word(address + 4 * index, value)

    def read_words(self, address: int, count: int) -> list[int]:
        """Load ``count`` consecutive 32-bit words from ``address``."""
        return [self.load_word(address + 4 * i) for i in range(count)]

    def clear(self) -> None:
        """Zero the entire memory (fresh SRAM state between runs)."""
        self._bytes = bytearray(self.size)

    # -- snapshot/restore (the CPU-reuse fast path between MC trials) ----

    def snapshot(self) -> bytes:
        """Immutable copy of the current memory image."""
        return bytes(self._bytes)

    def restore(self, image: bytes) -> None:
        """Restore a :meth:`snapshot` image in place."""
        if len(image) != self.size:
            raise ValueError(
                f"snapshot is {len(image)} bytes for a {self.size}-byte "
                f"memory")
        self._bytes[:] = image
