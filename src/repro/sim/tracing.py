"""Execution tracing utilities for the ISS.

Tracing is an opt-in slow path: a :class:`Tracer` is passed to the CPU
as its ``trace_hook`` and records every executed instruction, optionally
with a register-file snapshot.  It is the primary debugging aid for the
hand-written benchmark kernels and for post-mortem analysis of
fault-corrupted control flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.disassembler import format_decoded
from repro.isa.encoding import Decoded


@dataclass
class TraceEntry:
    """One executed instruction."""

    index: int
    address: int
    decoded: Decoded
    regs: list[int] | None = None

    def render(self) -> str:
        text = format_decoded(self.decoded, self.address)
        return f"[{self.index:>8}] {self.address:#06x}: {text}"


@dataclass
class Tracer:
    """Records executed instructions; pass as ``Cpu(trace_hook=...)``.

    Args:
        limit: stop recording after this many entries (the run itself
            continues); None records everything.
        snapshot_regs: capture a copy of the register file per entry
            (expensive; for fine-grained debugging only).
    """

    limit: int | None = None
    snapshot_regs: bool = False
    entries: list[TraceEntry] = field(default_factory=list)
    cpu = None  # set by attach()

    def attach(self, cpu) -> "Tracer":
        """Associate with a CPU so register snapshots can be taken."""
        self.cpu = cpu
        return self

    def __call__(self, address: int, decoded: Decoded) -> None:
        if self.limit is not None and len(self.entries) >= self.limit:
            return
        regs = None
        if self.snapshot_regs and self.cpu is not None:
            regs = list(self.cpu.regs)
        self.entries.append(TraceEntry(
            index=len(self.entries), address=address, decoded=decoded,
            regs=regs))

    def render(self, last: int | None = None) -> str:
        """Render the trace (optionally only the last N entries)."""
        entries = self.entries if last is None else self.entries[-last:]
        return "\n".join(entry.render() for entry in entries)

    def mnemonic_histogram(self) -> dict[str, int]:
        """Executed-instruction counts by mnemonic."""
        histogram: dict[str, int] = {}
        for entry in self.entries:
            name = entry.decoded.mnemonic
            histogram[name] = histogram.get(name, 0) + 1
        return histogram
