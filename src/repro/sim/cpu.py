"""Cycle-accurate instruction set simulator for the OR1K-subset core.

The simulated micro-architecture mirrors the paper's case study: a
6-stage in-order pipeline that sustains one instruction per cycle,
including single-cycle 32-bit multiplies, fed by single-cycle
instruction/data SRAMs.  With IPC = 1 and no stall sources, the cycle
in which an instruction occupies the execute (EX) stage is simply its
retire index, so the simulator advances one instruction per cycle and
exposes the EX stage to the fault-injection framework at that point.

For speed, the program image is *pre-compiled* once: every instruction
word becomes a Python closure specialized on its decoded operands
(jump targets resolved to absolute indices, r0 writes elided, ...).
The hot loop then only dispatches closures and manages the branch
delay slot.

Fault injection contract: while the FI window is open (between the
``l.nop NOP_FI_ON`` / ``NOP_FI_OFF`` kernel markers) every FI-eligible
(ALU-class) instruction passes its 32-bit result through the injector's
``on_alu(mnemonic, result) -> result`` hook before write-back, modeling
timing faults captured in the EX-stage ALU endpoint flip-flops.
"""

from __future__ import annotations

from typing import Callable

from repro.isa.encoding import Decoded, EncodingError, decode
from repro.isa.instructions import NOP_EXIT, NOP_REPORT
from repro.isa.program import Program
from repro.sim.exceptions import (
    IllegalInstruction,
    InfiniteLoop,
    MemoryFault,
    MisalignedAccess,
    PcOutOfRange,
)
from repro.sim.machine import MachineConfig, NOP_FI_OFF, NOP_FI_ON
from repro.sim.memory import DataMemory
from repro.sim.result import ExecutionResult

MASK32 = 0xFFFFFFFF
_SIGN_BIT = 0x80000000


class _Exit(Exception):
    """Internal: program reached the exit hook."""


def _signed(value: int) -> int:
    """Interpret a 32-bit value as signed."""
    return value - 0x100000000 if value & _SIGN_BIT else value


class Cpu:
    """The instruction set simulator.

    Args:
        program: assembled program image (instructions below the data
            base, initial data at/above it).
        config: machine configuration.
        injector: optional fault injector with an
            ``on_alu(mnemonic, result) -> result`` hook plus
            ``begin_run()`` and fault counters (see
            :class:`repro.fi.base.FaultInjector`).
        profile: when True, count retired instructions per timing class
            (slower; used for benchmark characterization, Table 1).
    """

    def __init__(self, program: Program, config: MachineConfig | None = None,
                 injector=None, profile: bool = False, trace_hook=None):
        self.config = config or MachineConfig()
        self.program = program
        self.injector = injector
        self.profile = profile
        self.trace_hook = trace_hook
        self.regs: list[int] = [0] * 32
        self.flag = False
        self.dmem = DataMemory(self.config.dmem_base, self.config.dmem_size)
        self.reports: list[int] = []
        self.cycles = 0
        self.kernel_cycles = 0
        self._fi_window = False
        self._active_hook: Callable[[str, int], int] | None = None
        self._class_counts: dict[str, int] = {}
        self._code: list[Callable[[], int | None] | None] = []
        self._imem_words: list[int] = []
        self._load_program()
        # Snapshot the loaded data image once: reset() restores it
        # instead of re-splitting the program and re-compiling every
        # instruction closure (the Monte-Carlo trial-reuse fast path).
        self._dmem_image = self.dmem.snapshot()

    # ------------------------------------------------------------------
    # Program loading and pre-compilation
    # ------------------------------------------------------------------

    def _load_program(self) -> None:
        cfg = self.config
        program = self.program
        self._imem_words = []
        for index, word in enumerate(program.words):
            address = program.base_address + 4 * index
            if address < cfg.dmem_base:
                self._imem_words.append(word)
            else:
                self.dmem.store_word(address, word)
        self._compile_all()

    def _compile_all(self) -> None:
        self._code = []
        for index, word in enumerate(self._imem_words):
            address = self.config.imem_base + 4 * index
            try:
                decoded = decode(word)
            except EncodingError:
                self._code.append(None)
                continue
            self._code.append(self._compile(decoded, address))

    def reset(self) -> None:
        """Restore architectural state for a fresh run.

        Restores from the construction-time snapshot instead of
        re-decoding and re-compiling the program image.  All state
        containers are mutated in place -- the compiled instruction
        closures hold references to ``regs``, ``reports``, ``dmem`` and
        ``_class_counts``, so rebinding any of them would silently
        disconnect the compiled code from the architectural state.
        """
        self.regs[:] = [0] * 32
        self.flag = False
        self.reports.clear()
        self.cycles = 0
        self.kernel_cycles = 0
        self._fi_window = False
        self._active_hook = None
        self._class_counts.clear()
        self.dmem.restore(self._dmem_image)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, entry: int | str = 0,
            max_cycles: int | None = None) -> ExecutionResult:
        """Execute from ``entry`` until exit or a fatal condition.

        Args:
            entry: byte address or symbol name to start at.
            max_cycles: overrides the configured cycle budget.

        Returns:
            An :class:`ExecutionResult`; fatal conditions are reported
            through ``finished=False`` / ``abort_reason`` rather than
            raised, since fault-injected runs fail routinely.
        """
        if isinstance(entry, str):
            entry = self.program.symbol(entry)
        budget = max_cycles if max_cycles is not None else \
            self.config.max_cycles
        if self.injector is not None:
            self.injector.begin_run()
        finished = False
        abort_reason: str | None = None
        exit_code: int | None = None
        try:
            self._run_loop(entry, budget)
        except _Exit:
            finished = True
            exit_code = self.regs[3]
        except (IllegalInstruction, PcOutOfRange, MemoryFault,
                MisalignedAccess, InfiniteLoop) as fault:
            abort_reason = fault.reason
        injector = self.injector
        return ExecutionResult(
            finished=finished,
            abort_reason=abort_reason,
            cycles=self.cycles,
            kernel_cycles=self.kernel_cycles,
            fault_count=injector.fault_count if injector else 0,
            faulty_cycles=injector.faulty_cycles if injector else 0,
            alu_cycles=injector.alu_cycles if injector else 0,
            reports=list(self.reports),
            exit_code=exit_code,
            class_counts=dict(self._class_counts),
        )

    def _run_loop(self, entry: int, budget: int) -> None:
        if entry % 4:
            raise PcOutOfRange(f"entry {entry:#x} not word aligned")
        code = self._code
        size = len(code)
        pc_index = (entry - self.config.imem_base) // 4
        pending = -1
        cycles = self.cycles
        kernel_cycles = self.kernel_cycles
        try:
            while True:
                if cycles >= budget:
                    raise InfiniteLoop(
                        f"cycle budget of {budget} exhausted")
                if not 0 <= pc_index < size:
                    raise PcOutOfRange(
                        f"pc {self.config.imem_base + 4 * pc_index:#x}")
                op = code[pc_index]
                if op is None:
                    raise IllegalInstruction(
                        f"at {self.config.imem_base + 4 * pc_index:#x}")
                target = op()
                cycles += 1
                if self._fi_window:
                    kernel_cycles += 1
                if pending >= 0:
                    if target is not None:
                        raise IllegalInstruction("branch in delay slot")
                    pc_index = pending
                    pending = -1
                elif target is not None:
                    pending = target
                    pc_index += 1
                else:
                    pc_index += 1
        finally:
            self.cycles = cycles
            self.kernel_cycles = kernel_cycles

    # ------------------------------------------------------------------
    # FI window plumbing
    # ------------------------------------------------------------------

    def _fi_on(self) -> None:
        self._fi_window = True
        if self.injector is not None:
            self._active_hook = self.injector.on_alu

    def _fi_off(self) -> None:
        self._fi_window = False
        self._active_hook = None

    # ------------------------------------------------------------------
    # Instruction compilation
    # ------------------------------------------------------------------

    def _compile(self, decoded: Decoded,
                 address: int) -> Callable[[], int | None]:
        op = self._compile_body(decoded, address)
        if self.profile:
            counts = self._class_counts
            name = decoded.spec.timing_class.value
            inner = op

            def profiled():
                counts[name] = counts.get(name, 0) + 1
                return inner()
            op = profiled
        if self.trace_hook is not None:
            hook = self.trace_hook
            body = op

            def traced():
                hook(address, decoded)
                return body()
            op = traced
        return op

    def _compile_body(self, decoded: Decoded,
                      address: int) -> Callable[[], int | None]:
        spec = decoded.spec
        mnemonic = spec.mnemonic
        regs = self.regs
        dmem = self.dmem
        cpu = self
        rd, ra, rb, imm = decoded.rd, decoded.ra, decoded.rb, decoded.imm

        def write(value: int) -> None:
            if rd:
                regs[rd] = value & MASK32

        # --- ALU class: result passes through the FI hook ------------
        if spec.is_alu:
            compute = self._alu_compute(mnemonic, ra, rb, imm)
            if rd == 0:
                # Result discarded architecturally, but the instruction
                # still occupies EX and is still counted by the hook.
                def op_alu_r0():
                    hook = cpu._active_hook
                    result = compute()
                    if hook is not None:
                        hook(mnemonic, result)
                    return None
                return op_alu_r0

            def op_alu():
                hook = cpu._active_hook
                result = compute()
                if hook is not None:
                    result = hook(mnemonic, result)
                regs[rd] = result & MASK32
                return None
            return op_alu

        # --- control flow --------------------------------------------
        if mnemonic in ("l.j", "l.jal"):
            target = address + 4 * imm
            target_index = (target - self.config.imem_base) // 4
            if mnemonic == "l.j":
                if target == address and self.config.detect_self_jump:
                    def op_self_jump():
                        raise InfiniteLoop(
                            f"unconditional self-jump at {address:#x}")
                    return op_self_jump

                def op_j():
                    return target_index
                return op_j
            link = (address + 8) & MASK32

            def op_jal():
                regs[9] = link
                return target_index
            return op_jal
        if mnemonic in ("l.jr", "l.jalr"):
            imem_base = self.config.imem_base
            is_link = mnemonic == "l.jalr"
            link = (address + 8) & MASK32

            def op_jr():
                target = regs[rb]
                if target & 3:
                    raise PcOutOfRange(
                        f"jump register target {target:#x} misaligned")
                if is_link:
                    regs[9] = link
                return (target - imem_base) >> 2
            return op_jr
        if mnemonic in ("l.bf", "l.bnf"):
            target_index = (address + 4 * imm - self.config.imem_base) // 4
            wanted = mnemonic == "l.bf"

            def op_branch():
                if cpu.flag == wanted:
                    return target_index
                return None
            return op_branch
        if mnemonic == "l.nop":
            if imm == NOP_EXIT:
                def op_exit():
                    raise _Exit()
                return op_exit
            if imm == NOP_REPORT:
                reports = self.reports

                def op_report():
                    reports.append(regs[3])
                    return None
                return op_report
            if imm == NOP_FI_ON:
                def op_fi_on():
                    cpu._fi_on()
                    return None
                return op_fi_on
            if imm == NOP_FI_OFF:
                def op_fi_off():
                    cpu._fi_off()
                    return None
                return op_fi_off

            def op_nop():
                return None
            return op_nop
        if mnemonic == "l.movhi":
            value = (imm << 16) & MASK32

            def op_movhi():
                write(value)
                return None
            return op_movhi

        # --- memory ----------------------------------------------------
        if mnemonic == "l.lwz":
            def op_lwz():
                write(dmem.load_word((regs[ra] + imm) & MASK32))
                return None
            return op_lwz
        if mnemonic == "l.lhz":
            def op_lhz():
                write(dmem.load_half((regs[ra] + imm) & MASK32))
                return None
            return op_lhz
        if mnemonic == "l.lbz":
            def op_lbz():
                write(dmem.load_byte((regs[ra] + imm) & MASK32))
                return None
            return op_lbz
        if mnemonic == "l.sw":
            def op_sw():
                dmem.store_word((regs[ra] + imm) & MASK32, regs[rb])
                return None
            return op_sw
        if mnemonic == "l.sh":
            def op_sh():
                dmem.store_half((regs[ra] + imm) & MASK32, regs[rb])
                return None
            return op_sh
        if mnemonic == "l.sb":
            def op_sb():
                dmem.store_byte((regs[ra] + imm) & MASK32, regs[rb])
                return None
            return op_sb

        # --- set-flag compares ------------------------------------------
        if spec.is_compare:
            return self._compile_compare(mnemonic, ra, rb, imm)

        raise AssertionError(
            f"no compilation rule for {mnemonic}")  # pragma: no cover

    def _alu_compute(self, mnemonic: str, ra: int, rb: int,
                     imm: int) -> Callable[[], int]:
        """Build the pure computation closure for an ALU instruction."""
        regs = self.regs
        if mnemonic == "l.add":
            return lambda: (regs[ra] + regs[rb]) & MASK32
        if mnemonic == "l.addi":
            return lambda: (regs[ra] + imm) & MASK32
        if mnemonic == "l.sub":
            return lambda: (regs[ra] - regs[rb]) & MASK32
        if mnemonic == "l.mul":
            return lambda: (_signed(regs[ra]) * _signed(regs[rb])) & MASK32
        if mnemonic == "l.muli":
            return lambda: (_signed(regs[ra]) * imm) & MASK32
        if mnemonic == "l.and":
            return lambda: regs[ra] & regs[rb]
        if mnemonic == "l.andi":
            return lambda: regs[ra] & (imm & 0xFFFF)
        if mnemonic == "l.or":
            return lambda: regs[ra] | regs[rb]
        if mnemonic == "l.ori":
            return lambda: regs[ra] | (imm & 0xFFFF)
        if mnemonic == "l.xor":
            return lambda: regs[ra] ^ regs[rb]
        if mnemonic == "l.xori":
            return lambda: (regs[ra] ^ imm) & MASK32
        if mnemonic == "l.sll":
            return lambda: (regs[ra] << (regs[rb] & 31)) & MASK32
        if mnemonic == "l.slli":
            shift = imm & 31
            return lambda: (regs[ra] << shift) & MASK32
        if mnemonic == "l.srl":
            return lambda: regs[ra] >> (regs[rb] & 31)
        if mnemonic == "l.srli":
            shift = imm & 31
            return lambda: regs[ra] >> shift
        if mnemonic == "l.sra":
            return lambda: (_signed(regs[ra]) >> (regs[rb] & 31)) & MASK32
        if mnemonic == "l.srai":
            shift = imm & 31
            return lambda: (_signed(regs[ra]) >> shift) & MASK32
        raise AssertionError(
            f"no ALU rule for {mnemonic}")  # pragma: no cover

    def _compile_compare(self, mnemonic: str, ra: int, rb: int,
                         imm: int) -> Callable[[], None]:
        regs = self.regs
        cpu = self
        immediate = mnemonic.endswith("i")
        kind = mnemonic[4:-1] if immediate else mnemonic[4:]

        def operands_unsigned() -> tuple[int, int]:
            if immediate:
                return regs[ra], imm & MASK32
            return regs[ra], regs[rb]

        def operands_signed() -> tuple[int, int]:
            if immediate:
                return _signed(regs[ra]), imm
            return _signed(regs[ra]), _signed(regs[rb])

        comparators = {
            "eq": (operands_unsigned, lambda a, b: a == b),
            "ne": (operands_unsigned, lambda a, b: a != b),
            "gtu": (operands_unsigned, lambda a, b: a > b),
            "geu": (operands_unsigned, lambda a, b: a >= b),
            "ltu": (operands_unsigned, lambda a, b: a < b),
            "leu": (operands_unsigned, lambda a, b: a <= b),
            "gts": (operands_signed, lambda a, b: a > b),
            "ges": (operands_signed, lambda a, b: a >= b),
            "lts": (operands_signed, lambda a, b: a < b),
            "les": (operands_signed, lambda a, b: a <= b),
        }
        get_operands, test = comparators[kind]

        def op_compare():
            a, b = get_operands()
            cpu.flag = test(a, b)
            return None
        return op_compare
