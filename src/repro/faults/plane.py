"""Process-global, seeded, deterministic fault-injection plane.

The paper's premise is operating hardware past its guaranteed margins
and characterizing what breaks; this module applies the same idea to
the runtime itself.  Every layer that can fail in production declares
**named injection sites** (``store.object_write``,
``pool.worker_heartbeat``, ``native.compile``, ``campaign.unit_run``,
...) and asks the plane on each pass whether a fault should fire
there.  The distributed fabric adds its network surface as first-class
sites: ``fabric.http.put`` / ``fabric.http.get`` (one hit per HTTP
attempt; ``oserror`` = unreachable, ``corrupt`` = torn response body),
``fabric.lease.renew`` (a heartbeat that cannot reach the store) and
``fabric.worker.kill.w<i>`` (SIGKILL worker *i* mid-lease; the site is
per-worker because decisions are pure functions of (seed, site, hit)
-- one shared name would kill every worker at the same hit -- and
``fabric.worker.kill*`` still targets the family).  A *schedule* --
parsed from ``REPRO_FAULTS`` or the CLI ``--faults`` flag -- maps
sites to fault modes::

    REPRO_FAULTS="seed=7;store.object_write:torn@p=0.1;pool.worker_heartbeat:kill@after=3"

Grammar: rules are ``;``-separated ``site:mode@param,param`` clauses
plus an optional ``seed=N`` clause.  ``site`` may end in ``*`` for a
prefix match.  Params:

* ``p=F``       -- fire with probability F on every hit (decided by a
  hash of (seed, site, hit index): fully deterministic, independent of
  process identity or wall clock);
* ``after=N``   -- fire exactly on the N-th hit of the site;
* ``hits=A+B``  -- fire exactly on the listed hit indices (the replay
  form: :func:`schedule_from_log` pins a failed run's fired faults
  this way);
* ``times=K``   -- stop after K fires of this rule (default: 1 for
  ``after``, unlimited otherwise).

Modes are interpreted by the site that declares them (``torn`` tears a
store write, ``corrupt`` garbles a cached kernel library, ...) except
for three the plane handles uniformly: ``kill`` SIGKILLs the current
process at the site, ``raise``/any mode reaching :func:`trip` raises
:class:`InjectedFault`, and ``oserror`` is raised as a transient
:class:`OSError` by the store sites.

Every fired fault is appended to the in-process ``fired`` list, logged
as a warning, and -- when ``REPRO_FAULT_LOG`` names a file -- appended
as one JSON line, so a failing chaos run can be replayed exactly:
:func:`schedule_from_log` turns the log back into a pinned
``hits=``-schedule.

Hit counters are per process: a forked pool worker inherits the plane
object (and its counters at fork time) but counts its own hits from
there; a respawned worker re-forks from the parent and therefore sees
the same deterministic sequence again.  Replays compare fired faults
as (site, mode, hit) multisets for exactly this reason.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import time
from collections import defaultdict
from dataclasses import dataclass, field
from pathlib import Path

_LOG_ENV = "REPRO_FAULT_LOG"
_SPEC_ENV = "REPRO_FAULTS"


class InjectedFault(RuntimeError):
    """An injected fault surfaced as an exception (mode ``raise``)."""


class FaultSpecError(ValueError):
    """A fault schedule string does not parse."""


@dataclass(frozen=True)
class FaultRule:
    """One ``site:mode@params`` clause of a schedule."""

    site: str
    mode: str
    p: float | None = None
    after: int | None = None
    hits: tuple[int, ...] = ()
    times: int | None = None

    def matches(self, site: str) -> bool:
        if self.site.endswith("*"):
            return site.startswith(self.site[:-1])
        return site == self.site

    def decide(self, seed: int, site: str, hit: int) -> bool:
        """Deterministic fire decision for one hit of a site."""
        if self.hits:
            return hit in self.hits
        if self.after is not None:
            return hit == self.after
        if self.p is not None:
            return _uniform(seed, site, hit) < self.p
        return True  # unconditional: every hit fires

    def max_fires(self) -> int | None:
        if self.times is not None:
            return self.times
        if self.hits:
            return len(self.hits)
        if self.after is not None:
            return 1
        return None  # unlimited


def _uniform(seed: int, site: str, hit: int) -> float:
    """Deterministic uniform [0, 1) from (seed, site, hit)."""
    digest = hashlib.sha256(
        f"{seed}\x00{site}\x00{hit}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


def parse_schedule(spec: str) -> tuple[tuple[FaultRule, ...], int]:
    """Parse a schedule string into (rules, seed)."""
    rules: list[FaultRule] = []
    seed = 0
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        if clause.startswith("seed="):
            try:
                seed = int(clause[5:])
            except ValueError as error:
                raise FaultSpecError(f"bad seed clause {clause!r}") \
                    from error
            continue
        head, _, params = clause.partition("@")
        site, sep, mode = head.partition(":")
        if not sep or not site or not mode:
            raise FaultSpecError(
                f"bad fault clause {clause!r} (want site:mode@params)")
        kwargs: dict = {}
        for param in filter(None, params.split(",")):
            key, sep, value = param.partition("=")
            if not sep:
                raise FaultSpecError(
                    f"bad fault param {param!r} in {clause!r}")
            try:
                if key == "p":
                    kwargs["p"] = float(value)
                elif key == "after":
                    kwargs["after"] = int(value)
                elif key == "times":
                    kwargs["times"] = int(value)
                elif key == "hits":
                    kwargs["hits"] = tuple(
                        int(item) for item in value.split("+"))
                else:
                    raise FaultSpecError(
                        f"unknown fault param {key!r} in {clause!r}")
            except ValueError as error:
                raise FaultSpecError(
                    f"bad fault param {param!r} in {clause!r}") \
                    from error
        rules.append(FaultRule(site=site, mode=mode, **kwargs))
    return tuple(rules), seed


@dataclass
class FaultPlane:
    """Evaluates a schedule against per-site hit counters."""

    rules: tuple[FaultRule, ...]
    seed: int = 0
    log_path: str | None = None
    #: Fired faults of this process, in order.
    fired: list = field(default_factory=list)

    def __post_init__(self) -> None:
        self._hits: dict[str, int] = defaultdict(int)
        self._fires: dict[int, int] = defaultdict(int)

    def fire(self, site: str) -> str | None:
        """Count one hit of a site; fire and return the mode, or None.

        ``kill`` mode never returns: the process SIGKILLs itself at
        the site (after logging), which is the point.
        """
        self._hits[site] += 1
        hit = self._hits[site]
        for index, rule in enumerate(self.rules):
            if not rule.matches(site):
                continue
            cap = rule.max_fires()
            if cap is not None and self._fires[index] >= cap:
                continue
            if not rule.decide(self.seed, site, hit):
                continue
            self._fires[index] += 1
            self._record(site, rule.mode, hit)
            if rule.mode == "kill":
                os.kill(os.getpid(), signal.SIGKILL)
            return rule.mode
        return None

    def _record(self, site: str, mode: str, hit: int) -> None:
        from repro import obs
        # mono shares CLOCK_MONOTONIC with trace spans, so firings
        # order unambiguously across processes; span ties the firing
        # to the trace region it interrupted (null when not tracing).
        record = {"site": site, "mode": mode, "hit": hit,
                  "pid": os.getpid(), "unix": time.time(),
                  "mono": time.monotonic() * 1e6,
                  "span": obs.current_span_id()}
        self.fired.append(record)
        import logging
        logging.getLogger("repro.faults").warning(
            "injected fault %s:%s at hit %d", site, mode, hit)
        if self.log_path:
            line = json.dumps(record, sort_keys=True) + "\n"
            try:
                # One O_APPEND write per record: concurrent processes
                # interleave whole lines, never torn ones (short line).
                with open(self.log_path, "a") as handle:
                    handle.write(line)
            except OSError:
                pass  # the log is diagnostic, never load-bearing


# -- process-global plane ------------------------------------------------

_PLANE: FaultPlane | None = None
#: Spec string the current plane was built from (None = explicitly
#: cleared / never built); lets env changes rebuild lazily.
_PLANE_SPEC: str | None = None
_EXPLICIT = False


def configure(spec: str | None,
              log_path: str | None = None) -> FaultPlane | None:
    """Install a plane from a schedule string (None/'' clears it).

    Explicit configuration (the CLI ``--faults`` flag) wins over the
    ``REPRO_FAULTS`` environment variable until :func:`reset`.
    """
    global _PLANE, _PLANE_SPEC, _EXPLICIT
    _EXPLICIT = True
    _PLANE_SPEC = spec or None
    if not spec:
        _PLANE = None
        return None
    rules, seed = parse_schedule(spec)
    _PLANE = FaultPlane(rules=rules, seed=seed,
                        log_path=log_path
                        or os.environ.get(_LOG_ENV) or None)
    return _PLANE


def reset() -> None:
    """Drop any plane and forget explicit configuration (tests)."""
    global _PLANE, _PLANE_SPEC, _EXPLICIT
    _PLANE = None
    _PLANE_SPEC = None
    _EXPLICIT = False


def get_plane() -> FaultPlane | None:
    """The active plane, lazily (re)built from ``REPRO_FAULTS``."""
    global _PLANE, _PLANE_SPEC
    if _EXPLICIT:
        return _PLANE
    spec = os.environ.get(_SPEC_ENV) or None
    if spec != _PLANE_SPEC:
        _PLANE_SPEC = spec
        if spec is None:
            _PLANE = None
        else:
            rules, seed = parse_schedule(spec)
            _PLANE = FaultPlane(rules=rules, seed=seed,
                                log_path=os.environ.get(_LOG_ENV)
                                or None)
    return _PLANE


def active() -> bool:
    return get_plane() is not None


def fire(site: str) -> str | None:
    """Module-level :meth:`FaultPlane.fire`; no-op without a plane."""
    plane = get_plane()
    if plane is None:
        return None
    return plane.fire(site)


def trip(site: str) -> None:
    """Fire a site where *any* fault mode means "raise here".

    ``kill`` never returns from :func:`fire`; every other fired mode
    becomes an :class:`InjectedFault` carrying the site name.
    """
    mode = fire(site)
    if mode is not None:
        raise InjectedFault(f"injected {mode} fault at {site}")


# -- replay --------------------------------------------------------------

def read_log(path: str | Path) -> list[dict]:
    """Parse a fired-fault log (unparsable lines are skipped)."""
    records = []
    for line in Path(path).read_text().splitlines():
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict) and "site" in record:
            records.append(record)
    return records


def schedule_from_log(records: list[dict]) -> str:
    """Pinned ``hits=`` schedule replaying exactly the logged faults.

    Hit indices are per process and per site; replaying pins every
    (site, mode) pair to the union of the hit indices it fired at, so
    a deterministic rerun fires the same faults at the same points.
    """
    by_rule: dict[tuple[str, str], set[int]] = defaultdict(set)
    for record in records:
        by_rule[(record["site"], record["mode"])].add(int(record["hit"]))
    clauses = [
        f"{site}:{mode}@hits=" + "+".join(
            str(hit) for hit in sorted(hits))
        for (site, mode), hits in sorted(by_rule.items())
    ]
    return ";".join(clauses)
