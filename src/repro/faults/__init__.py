"""Deterministic fault injection (see :mod:`repro.faults.plane`)."""

from repro.faults.plane import (  # noqa: F401
    FaultPlane,
    FaultRule,
    FaultSpecError,
    InjectedFault,
    active,
    configure,
    fire,
    get_plane,
    parse_schedule,
    read_log,
    reset,
    schedule_from_log,
    trip,
)
