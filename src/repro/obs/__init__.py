"""Unified telemetry plane (see :mod:`repro.obs.plane`).

Every layer of the stack asks this package for :func:`span` context
managers and :func:`counter` increments; the plane is off by default
and near-free while off.  ``REPRO_TRACE=<path>`` (or the CLI
``--trace``) turns it on; ``repro trace export`` converts the merged
JSONL to Chrome ``trace_event`` JSON; ``repro stats`` renders the
aggregate tables.
"""

from repro.obs.export import (  # noqa: F401
    category_of,
    counter_totals,
    fabric_split,
    pool_split,
    read_trace,
    render_stats,
    span_aggregates,
    spans,
    thread_split,
    to_chrome,
    unit_times,
)
from repro.obs.plane import (  # noqa: F401
    adopted_parent,
    configure,
    counter,
    current_span_id,
    enabled,
    flush,
    merge_parts,
    reset,
    shutdown,
    span,
)
