"""Trace readers: merge, Chrome ``trace_event`` export, stats tables.

The on-disk trace is newline-delimited JSON (see
:mod:`repro.obs.plane`): ``span`` records with microsecond start/
duration on the shared monotonic timebase, cumulative ``ctr`` counter
snapshots, and one ``meta`` record per contributing pid.  This module
turns that into:

* :func:`to_chrome` -- a Chrome ``trace_event`` JSON object (complete
  ``"X"`` events plus process metadata and ``"C"`` counter events)
  loadable in Perfetto / ``chrome://tracing``;
* :func:`render_stats` -- an aggregate text table: top spans by total
  and self time, counter totals with store hit rate, the pool's
  queue-wait vs compute split, and the thread-shard per-thread busy
  share.

Readers are forgiving by design: unparsable lines (a record torn by a
kill) are skipped, and leftover ``.pid-*`` part files of a run whose
owner never merged (SIGKILL) are read transparently alongside the
merged file.
"""

from __future__ import annotations

import json
from collections import defaultdict
from pathlib import Path


def read_trace(path: str | Path) -> list[dict]:
    """Parse a trace file plus any unmerged per-pid part files.

    Returns every well-formed record; bad lines are skipped (the
    writer appends whole lines, but a kill can tear the last one).
    """
    base = Path(path)
    texts = []
    if base.exists():
        texts.append(base.read_text())
    for part in sorted(base.parent.glob(f"{base.name}.pid-*")):
        try:
            texts.append(part.read_text())
        except OSError:  # pragma: no cover - racing cleanup
            continue
    records = []
    for text in texts:
        for line in text.splitlines():
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and "t" in record:
                records.append(record)
    return records


def spans(records: list[dict]) -> list[dict]:
    return [r for r in records if r.get("t") == "span"]


def category_of(name: str) -> str:
    """Span category = the dotted name's first component."""
    return name.split(".", 1)[0]


def counter_totals(records: list[dict]) -> dict[str, float]:
    """Cross-process counter totals.

    Snapshots are cumulative per pid, so the latest snapshot of each
    pid wins and pids sum.
    """
    latest: dict[int, dict] = {}
    for record in records:
        if record.get("t") != "ctr":
            continue
        pid = record.get("pid", 0)
        kept = latest.get(pid)
        if kept is None or record.get("ts", 0) >= kept.get("ts", 0):
            latest[pid] = record
    totals: dict[str, float] = defaultdict(float)
    for record in latest.values():
        for name, value in record.get("counters", {}).items():
            totals[name] += value
    return dict(totals)


def _meta_by_pid(records: list[dict]) -> dict[int, dict]:
    metas = {}
    for record in records:
        if record.get("t") == "meta":
            metas.setdefault(record.get("pid", 0), record)
    return metas


def to_chrome(records: list[dict]) -> dict:
    """Convert trace records to a Chrome ``trace_event`` JSON object.

    Spans become complete (``"X"``) events; counters become one
    ``"C"`` event per pid at its last snapshot time; each pid gets a
    ``process_name`` metadata event (the parent is the pid whose
    ``meta.ppid`` is not itself a trace participant).  Timestamps are
    rebased so the trace starts at zero.
    """
    span_records = spans(records)
    t0 = min((r["ts"] for r in span_records), default=0.0)
    events = []
    metas = _meta_by_pid(records)
    pids = {r["pid"] for r in span_records} | set(metas)
    for pid in sorted(pids):
        ppid = metas.get(pid, {}).get("ppid")
        role = "worker" if ppid in pids else "parent"
        events.append({"ph": "M", "pid": pid, "tid": 0,
                       "name": "process_name",
                       "args": {"name": f"repro {role} {pid}"}})
    for record in span_records:
        event = {
            "ph": "X",
            "name": record["name"],
            "cat": category_of(record["name"]),
            "pid": record["pid"],
            "tid": record.get("tid", 0),
            "ts": record["ts"] - t0,
            "dur": record["dur"],
        }
        args = dict(record.get("a", {}))
        args["span_id"] = record.get("id")
        if "parent" in record:
            args["parent_span"] = record["parent"]
        event["args"] = args
        events.append(event)
    by_pid_ctrs: dict[int, dict] = {}
    for record in records:
        if record.get("t") != "ctr":
            continue
        pid = record.get("pid", 0)
        kept = by_pid_ctrs.get(pid)
        if kept is None or record.get("ts", 0) >= kept.get("ts", 0):
            by_pid_ctrs[pid] = record
    for pid, record in sorted(by_pid_ctrs.items()):
        for name, value in sorted(record.get("counters", {}).items()):
            events.append({"ph": "C", "pid": pid, "tid": 0,
                           "name": name,
                           "ts": max(record.get("ts", t0) - t0, 0.0),
                           "args": {"value": value}})
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def span_aggregates(records: list[dict]) -> list[dict]:
    """Per-name aggregates: count, total/self/max wall time (ms).

    Self time is a span's duration minus the durations of its direct
    children (linked by parent span id), so a wrapper like
    ``campaign.dispatch`` does not double-count the unit spans that
    ran inside it -- including children forked into other processes.
    """
    span_records = spans(records)
    child_time: dict[str, float] = defaultdict(float)
    for record in span_records:
        parent = record.get("parent")
        if parent is not None:
            child_time[parent] += record["dur"]
    rows: dict[str, dict] = {}
    for record in span_records:
        row = rows.setdefault(record["name"], {
            "name": record["name"], "count": 0, "total_ms": 0.0,
            "self_ms": 0.0, "max_ms": 0.0})
        dur_ms = record["dur"] / 1e3
        row["count"] += 1
        row["total_ms"] += dur_ms
        row["self_ms"] += max(
            record["dur"] - child_time.get(record.get("id"), 0.0),
            0.0) / 1e3
        row["max_ms"] = max(row["max_ms"], dur_ms)
    return sorted(rows.values(), key=lambda row: -row["total_ms"])


def unit_times(records: list[dict]) -> dict[str, float]:
    """Wall milliseconds per computed campaign unit label.

    A unit attempted more than once (retries) accumulates all its
    attempts -- the cost of the unit is what it actually cost.
    """
    times: dict[str, float] = defaultdict(float)
    for record in spans(records):
        if record["name"] != "campaign.unit":
            continue
        label = record.get("a", {}).get("label")
        if label:
            times[label] += record["dur"] / 1e3
    return dict(times)


def pool_split(records: list[dict]) -> dict[str, float] | None:
    """Aggregate queue-wait vs compute time over pool task spans."""
    wait = 0.0
    compute = 0.0
    n = 0
    for record in spans(records):
        if record["name"] != "pool.task":
            continue
        n += 1
        compute += record["dur"]
        wait += record.get("a", {}).get("queue_wait_us", 0.0)
    if not n:
        return None
    return {"tasks": n, "queue_wait_ms": wait / 1e3,
            "compute_ms": compute / 1e3}


def thread_split(records: list[dict]) -> dict | None:
    """Thread-shard utilization from ``threads.shard`` spans.

    Per worker thread, the busy share of the overall shard window
    (first shard start to last shard end): on a GIL build only the
    kernel portions overlap, on free-threaded CPython everything does,
    and a degenerate share distribution (one thread busy, the rest
    idle) is how an accidental serialization shows up in ``repro
    stats``.  Healed shards (serial re-runs after a fault or worker
    failure) are counted separately.  Returns None when the trace has
    no thread-shard activity.
    """
    shard_records = [r for r in spans(records)
                     if r["name"] == "threads.shard"]
    if not shard_records:
        return None
    busy_us: dict[int, float] = defaultdict(float)
    healed = 0
    t_lo = min(r["ts"] for r in shard_records)
    t_hi = max(r["ts"] + r["dur"] for r in shard_records)
    for record in shard_records:
        busy_us[record.get("tid", 0)] += record["dur"]
        if record.get("a", {}).get("healed"):
            healed += 1
    window_ms = max(t_hi - t_lo, 0.0) / 1e3
    return {
        "shards": len(shard_records),
        "threads": len(busy_us),
        "healed": healed,
        "window_ms": window_ms,
        "busy_ms": {tid: us / 1e3
                    for tid, us in sorted(busy_us.items())},
    }


def fabric_split(records: list[dict]) -> dict | None:
    """Lease-fabric aggregates: batch latency, steals, HTTP health.

    ``fabric.batch`` spans cover a held lease from acquisition to
    done-marker; stolen batches are broken out so steal latency (how
    long recovering a dead peer's work actually took) is visible next
    to first-claim latency.  Returns None when the trace has no
    fabric activity.
    """
    first_ms = steal_ms = 0.0
    first_n = steal_n = 0
    for record in spans(records):
        if record["name"] != "fabric.batch":
            continue
        if record.get("a", {}).get("stolen"):
            steal_n += 1
            steal_ms += record["dur"] / 1e3
        else:
            first_n += 1
            first_ms += record["dur"] / 1e3
    totals = counter_totals(records)
    fabric_counters = {name: value for name, value in totals.items()
                       if name.startswith("fabric.")}
    if not (first_n or steal_n or fabric_counters):
        return None
    return {
        "batches": first_n + steal_n,
        "first_claims": first_n,
        "first_claim_ms": first_ms,
        "steals": steal_n,
        "steal_ms": steal_ms,
        "queue_polls": totals.get("fabric.worker.poll", 0),
        "http_retries": totals.get("fabric.http.retry", 0),
        "spooled_writes": totals.get("fabric.http.spooled", 0),
        "workers_died": totals.get("fabric.worker.died", 0),
    }


def render_stats(records: list[dict], limit: int = 20) -> str:
    """Aggregate text report: spans, counters, pool utilization."""
    lines = []
    pids = sorted({r.get("pid") for r in records
                   if r.get("pid") is not None})
    lines.append(f"trace: {len(spans(records))} spans from "
                 f"{len(pids)} process(es) {pids}")
    rows = span_aggregates(records)
    lines.append("")
    lines.append(f"{'span':28s} {'count':>7s} {'total ms':>10s} "
                 f"{'self ms':>10s} {'max ms':>9s}")
    for row in rows[:limit]:
        lines.append(f"{row['name']:28s} {row['count']:>7d} "
                     f"{row['total_ms']:>10.2f} {row['self_ms']:>10.2f} "
                     f"{row['max_ms']:>9.2f}")
    if len(rows) > limit:
        lines.append(f"  ... {len(rows) - limit} more span name(s)")
    totals = counter_totals(records)
    if totals:
        lines.append("")
        lines.append(f"{'counter':28s} {'total':>12s}")
        for name in sorted(totals):
            value = totals[name]
            text = f"{value:,.0f}" if value == int(value) \
                else f"{value:,.2f}"
            lines.append(f"{name:28s} {text:>12s}")
        hits = totals.get("store.hit", 0)
        misses = totals.get("store.miss", 0)
        if hits or misses:
            lines.append(f"{'store hit rate':28s} "
                         f"{hits / (hits + misses):>11.1%}")
    split = pool_split(records)
    if split is not None:
        lines.append("")
        busy = split["compute_ms"] \
            / (split["compute_ms"] + split["queue_wait_ms"]) \
            if split["compute_ms"] + split["queue_wait_ms"] else 0.0
        lines.append(f"pool: {split['tasks']} task(s), "
                     f"compute {split['compute_ms']:.2f} ms, "
                     f"queue wait {split['queue_wait_ms']:.2f} ms "
                     f"(utilization {busy:.1%})")
    threads = thread_split(records)
    if threads is not None:
        lines.append("")
        window = threads["window_ms"]
        shares = ", ".join(
            f"tid {tid}: {ms:.2f} ms"
            + (f" ({ms / window:.0%})" if window else "")
            for tid, ms in threads["busy_ms"].items())
        lines.append(
            f"threads: {threads['shards']} shard(s) over "
            f"{threads['threads']} thread(s) in {window:.2f} ms "
            f"window, {threads['healed']} healed")
        lines.append(f"         busy share -- {shares}")
    fabric = fabric_split(records)
    if fabric is not None:
        lines.append("")
        lines.append(
            f"fabric: {fabric['batches']} leased batch(es) -- "
            f"{fabric['first_claims']} first-claim "
            f"({fabric['first_claim_ms']:.2f} ms), "
            f"{fabric['steals']} stolen "
            f"({fabric['steal_ms']:.2f} ms)")
        lines.append(
            f"        {fabric['queue_polls']:.0f} idle poll(s), "
            f"{fabric['http_retries']:.0f} http retries, "
            f"{fabric['spooled_writes']:.0f} spooled write(s), "
            f"{fabric['workers_died']:.0f} worker death(s)")
    return "\n".join(lines)
