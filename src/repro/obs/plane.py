"""Process-global telemetry plane: spans, counters, per-pid sinks.

The repo's performance story so far was hand-derived: one-off timers
were added, numbers were copied into the ROADMAP, and the timers were
deleted.  This module makes "where did the time go" a permanent,
queryable property of every run -- the same span/counter discipline
production simulators and serving stacks use -- while costing nearly
nothing when it is off (the common case).

Model
-----

* :func:`span` is a context manager recording one timed region as a
  JSON line (name, pid, tid, span id, parent span id, start, duration,
  free-form attributes).  Spans nest per thread; the parent id chains
  them into a tree, and forked workers inherit the parent process's
  open-span stack so their first spans link back to the dispatching
  span across the process boundary.
* :func:`counter` accumulates named monotonic counters per process;
  cumulative snapshots are emitted as JSON lines by :func:`flush`
  (instrumented loops call it at natural barriers; the process-exit
  hook calls it too).
* Sinks are **per process**: each pid appends to
  ``<trace>.pid-<pid>`` (one unbuffered ``write`` per record, so
  concurrent processes never tear lines and a SIGKILL loses at most
  the in-flight record).  The configuring (owner) process merges every
  part file into ``<trace>`` at exit; leftover parts from a killed run
  are picked up transparently by :func:`repro.obs.export.read_trace`.

Activation
----------

Off by default.  ``REPRO_TRACE=<path>`` in the environment (read once
at import; forked children inherit the live state) or
:func:`configure` (the CLI ``--trace`` flag) turns it on.  The
disabled fast path is one module-global check returning a shared
no-op -- no attribute formatting, no allocation beyond the call's
kwargs -- and is gated below 2% propagate overhead by
``make obs-smoke``.

Telemetry can never change results or exit codes: a sink that fails
to open or write logs one warning and disables the plane for the
process; every record-writing path swallows ``OSError``.

Timestamps are ``time.monotonic()`` (CLOCK_MONOTONIC: one timebase
shared by every process on the machine, so parent and worker spans
align in a merged trace); each sink opens with a ``meta`` record
anchoring that timebase to the wall clock.
"""

from __future__ import annotations

import atexit
import json
import logging
import os
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path

_LOG = logging.getLogger("repro.obs")

_TRACE_ENV = "REPRO_TRACE"

#: Module-global fast-path flag -- the only thing the disabled hot
#: path touches.
_ENABLED = False

_BASE: Path | None = None     # merged-trace path (sink base)
_OWNER_PID: int | None = None  # process that configured; it merges
_HANDLE = None                # this process's part-file handle
_LOCK = threading.Lock()      # sink + counter mutation
_COUNTERS: dict[str, float] = {}
_COUNTERS_DIRTY = False
_SPAN_SEQ = 0

_TLS = threading.local()


def _stack() -> list:
    stack = getattr(_TLS, "stack", None)
    if stack is None:
        stack = _TLS.stack = []
    return stack


def enabled() -> bool:
    """Whether the telemetry plane is recording in this process."""
    return _ENABLED


def current_span_id() -> str | None:
    """Id of the innermost open span of this thread (cross-refs).

    Used by the fault plane to stamp fired faults with the span they
    fired inside, so chaos events correlate with trace timelines.
    """
    if not _ENABLED:
        return None
    stack = _stack()
    return stack[-1] if stack else None


@contextmanager
def adopted_parent(span_id: str | None):
    """Parent this thread's next spans under another thread's span.

    Worker threads start with an empty span stack, so their spans
    would float free of the dispatching call tree; seeding the stack
    with the dispatcher's ``current_span_id`` mirrors what fork
    inheritance does for worker processes.  No-op when the plane is
    disabled or there is nothing to adopt.
    """
    if not _ENABLED or span_id is None:
        yield
        return
    stack = _stack()
    stack.append(span_id)
    try:
        yield
    finally:
        if stack and stack[-1] == span_id:
            stack.pop()


class _NullSpan:
    """Shared no-op span: what :func:`span` returns when disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


_NULL = _NullSpan()


class _Span:
    """One live timed region (returned by :func:`span` when enabled)."""

    __slots__ = ("name", "attrs", "id", "parent", "t0")

    def __init__(self, name: str, attrs: dict):
        self.name = name
        self.attrs = attrs

    def set(self, **attrs) -> "_Span":
        """Attach attributes discovered mid-span (e.g. an outcome)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        global _SPAN_SEQ
        stack = _stack()
        self.parent = stack[-1] if stack else None
        with _LOCK:
            _SPAN_SEQ += 1
            seq = _SPAN_SEQ
        self.id = f"{os.getpid()}-{seq}"
        stack.append(self.id)
        self.t0 = time.monotonic()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        t1 = time.monotonic()
        stack = _stack()
        if stack and stack[-1] == self.id:
            stack.pop()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        record = {
            "t": "span",
            "name": self.name,
            "pid": os.getpid(),
            "tid": threading.get_native_id(),
            "id": self.id,
            "ts": self.t0 * 1e6,
            "dur": (t1 - self.t0) * 1e6,
        }
        if self.parent is not None:
            record["parent"] = self.parent
        if self.attrs:
            record["a"] = self.attrs
        _write(record)
        return False


def span(name: str, **attrs):
    """Context manager timing one named region (no-op when disabled).

    Keyword arguments become the span's attributes; more can be added
    inside the block via ``.set(key=value)``.  Durations and start
    times are recorded in microseconds on the shared monotonic
    timebase.
    """
    if not _ENABLED:
        return _NULL
    return _Span(name, attrs)


def counter(name: str, value: float = 1) -> None:
    """Add to a named monotonic per-process counter (no-op off)."""
    global _COUNTERS_DIRTY
    if not _ENABLED:
        return
    with _LOCK:
        _COUNTERS[name] = _COUNTERS.get(name, 0) + value
        _COUNTERS_DIRTY = True


def flush() -> None:
    """Emit a cumulative counter snapshot record (if anything changed).

    Span records hit the sink as they close; only counters batch.
    Instrumented loops call this at natural barriers (a pool worker
    after each task batch) because forked workers exit via
    ``os._exit`` and never run this module's atexit hook.
    """
    global _COUNTERS_DIRTY
    if not _ENABLED:
        return
    with _LOCK:
        if not _COUNTERS_DIRTY:
            return
        _COUNTERS_DIRTY = False
        snapshot = dict(_COUNTERS)
    _write({"t": "ctr", "pid": os.getpid(),
            "ts": time.monotonic() * 1e6, "counters": snapshot})


# -- sink --------------------------------------------------------------


def _part_path(base: Path, pid: int) -> Path:
    return base.with_name(f"{base.name}.pid-{pid}")


def _open_sink():
    """This process's part file, opened lazily with a meta record.

    Unbuffered binary append: every record is one ``write`` syscall,
    so lines from the beat thread and the main thread never interleave
    mid-line and a kill loses at most one record.
    """
    global _HANDLE, _ENABLED
    if _HANDLE is not None:
        return _HANDLE
    assert _BASE is not None
    try:
        _HANDLE = open(_part_path(_BASE, os.getpid()), "ab", buffering=0)
        meta = {"t": "meta", "pid": os.getpid(), "ppid": os.getppid(),
                "unix": time.time(), "mono": time.monotonic() * 1e6,
                "argv": sys.argv}
        _HANDLE.write((json.dumps(meta) + "\n").encode())
    except OSError as error:
        _ENABLED = False
        _HANDLE = None
        _LOG.warning("trace sink %s unusable (%s); telemetry disabled "
                     "for this process", _BASE, error)
        return None
    return _HANDLE


def _write(record: dict) -> None:
    global _ENABLED, _HANDLE
    with _LOCK:
        handle = _open_sink()
        if handle is None:
            return
        try:
            handle.write((json.dumps(record) + "\n").encode())
        except (OSError, ValueError) as error:
            # ValueError: handle closed under us (interpreter teardown
            # or a hostile environment); same treatment as I/O errors.
            # Telemetry is diagnostic, never load-bearing: a full disk
            # or yanked mount silences the plane, not the run.
            _ENABLED = False
            try:
                handle.close()
            except OSError:
                pass
            _HANDLE = None
            _LOG.warning("trace sink write failed (%s); telemetry "
                         "disabled for this process", error)


# -- lifecycle ---------------------------------------------------------


def configure(path: str | os.PathLike | None) -> None:
    """Install (or clear, with None/'') the trace sink for this run.

    The configuring process *owns* the trace: stale outputs of a
    previous run at the same path are cleared here, and this process's
    exit hook merges every per-pid part into ``path``.  Forked workers
    inherit the enabled state and write their own parts.
    """
    global _ENABLED, _BASE, _OWNER_PID, _HANDLE, _COUNTERS, \
        _COUNTERS_DIRTY
    _close_handle()
    _COUNTERS = {}
    _COUNTERS_DIRTY = False
    if not path:
        _ENABLED = False
        _BASE = None
        _OWNER_PID = None
        return
    base = Path(path)
    try:
        base.parent.mkdir(parents=True, exist_ok=True)
        base.unlink(missing_ok=True)
        for part in base.parent.glob(f"{base.name}.pid-*"):
            part.unlink(missing_ok=True)
    except OSError as error:
        _LOG.warning("trace path %s unusable (%s); telemetry stays "
                     "off", path, error)
        _ENABLED = False
        _BASE = None
        _OWNER_PID = None
        return
    _BASE = base
    _OWNER_PID = os.getpid()
    _ENABLED = True


def _close_handle() -> None:
    global _HANDLE
    if _HANDLE is not None:
        try:
            _HANDLE.close()
        except OSError:  # pragma: no cover
            pass
        _HANDLE = None


def merge_parts(base: Path) -> Path:
    """Concatenate every ``<base>.pid-*`` part into ``<base>``.

    Idempotent and order-stable: an existing merged file is kept and
    parts are appended (pid-sorted, owner's part naturally first
    because lower pids sort first only by luck -- order does not
    matter, every record is self-describing).  Returns ``base``.
    """
    base = Path(base)
    parts = sorted(base.parent.glob(f"{base.name}.pid-*"))
    if not parts:
        return base
    with open(base, "ab") as merged:
        for part in parts:
            try:
                merged.write(part.read_bytes())
                part.unlink()
            except OSError:  # pragma: no cover - racing cleanup
                continue
    return base


def shutdown() -> None:
    """Flush counters; the owner process also merges the part files."""
    flush()
    _close_handle()
    if _BASE is not None and os.getpid() == _OWNER_PID:
        try:
            merge_parts(_BASE)
        except OSError:  # pragma: no cover - sink gone mid-merge
            pass


def reset() -> None:
    """Disable and forget all plane state (tests)."""
    global _ENABLED, _BASE, _OWNER_PID, _COUNTERS, _COUNTERS_DIRTY
    _close_handle()
    _ENABLED = False
    _BASE = None
    _OWNER_PID = None
    _COUNTERS = {}
    _COUNTERS_DIRTY = False
    _TLS.stack = []


def _after_fork_child() -> None:
    """Reset per-process sink state in a forked child.

    The child must write its own ``pid-<pid>`` part (the inherited
    handle points at the parent's) and must not re-emit counters the
    parent already accumulated.  The open-span stack is deliberately
    kept: the span live at fork time is the correct cross-process
    parent for the child's first spans.
    """
    global _HANDLE, _COUNTERS, _COUNTERS_DIRTY
    _HANDLE = None  # do not close: the fd is shared with the parent
    _COUNTERS = {}
    _COUNTERS_DIRTY = False


os.register_at_fork(after_in_child=_after_fork_child)
atexit.register(shutdown)

# Environment activation: one check at import time; forked children
# inherit the live module state instead of re-importing.
_env_path = os.environ.get(_TRACE_ENV)
if _env_path:
    configure(_env_path)
