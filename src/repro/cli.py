"""Command-line interface: regenerate any paper experiment from a shell.

Examples::

    python -m repro table1 --scale paper
    python -m repro fig5 --scale default --jobs 4
    python -m repro fig2 --scale paper --pool-workers 4 --timing-dtype float32
    python -m repro all --scale quick
    python -m repro campaign run fig5 --scale paper --jobs 8
    python -m repro campaign run all --scale paper --jobs 8 --pool-workers 8
    python -m repro campaign status fig5 --scale paper
    python -m repro cache ls
    python -m repro cache gc --max-bytes 100000000 --pin alu_characterization
    python -m repro timing-report --frequency-mhz 750
    python -m repro verilog --unit multiplier --out mul32.v
    python -m repro kernels

Experiment and campaign commands persist Monte-Carlo points and DTA
characterizations in a content-addressed result store (``REPRO_STORE``
or the XDG cache dir by default), so reruns at the same configuration
are served without re-simulating; ``--no-store`` opts out.
"""

from __future__ import annotations

import argparse
import sys

from repro import analysis, faults, native, obs, parallel
from repro.analysis import lint as lint_mod
from repro.bench.suite import BENCHMARK_NAMES, build_kernel
from repro.campaign import ALL_TARGET, CAMPAIGN_EXPERIMENTS, \
    campaign_status, run_campaign
from repro.campaign.orchestrator import stderr_log
from repro.experiments import (
    ExperimentContext,
    ablations,
    fig1,
    fig2,
    fig4,
    fig5,
    fig6,
    fig7,
    fig_sta_margin,
    table1,
    table2,
)
from repro.mc.runner import golden_cycles
from repro.netlist.calibrate import calibrated_alu
from repro.netlist.verilog import to_verilog
from repro.store import ResultStore
from repro.timing.report import timing_report

#: Experiment name -> callable(scale, seed, ctx, store, jobs) ->
#: rendered text.  The seed is forwarded to the drivers so *serial*
#: fig runs (no --jobs) and campaigns at the same --seed share store
#: entries and render identical output; --jobs runs use per-trial
#: streams, which are a different scheme cached under their own keys.
_EXPERIMENTS = {
    "table1": lambda scale, seed, ctx, store, jobs: table1.render(
        table1.run(scale, store=store)),
    "table2": lambda scale, seed, ctx, store, jobs: table2.render(),
    "fig1": lambda scale, seed, ctx, store, jobs: fig1.render(
        fig1.run(scale, seed, context=ctx, store=store, n_jobs=jobs)),
    "fig2": lambda scale, seed, ctx, store, jobs: fig2.render(
        fig2.run(scale, seed, context=ctx, store=store)),
    "fig4": lambda scale, seed, ctx, store, jobs: fig4.render(
        fig4.run(scale, seed, context=ctx, store=store)),
    "fig5": lambda scale, seed, ctx, store, jobs: fig5.render(
        fig5.run(scale, seed, context=ctx, store=store, n_jobs=jobs)),
    "fig6": lambda scale, seed, ctx, store, jobs: fig6.render(
        fig6.run(scale, seed, context=ctx, store=store, n_jobs=jobs)),
    "fig7": lambda scale, seed, ctx, store, jobs: fig7.render(
        fig7.run(scale, seed, context=ctx, store=store, n_jobs=jobs)),
    "fig-sta-margin": lambda scale, seed, ctx, store, jobs:
        fig_sta_margin.render(
            fig_sta_margin.run(scale, seed, context=ctx, store=store)),
    "ablations": lambda scale, seed, ctx, store, jobs:
        ablations.render_all(
            ablations.run_glitch_model_ablation(scale, seed,
                                                context=ctx),
            ablations.run_semantics_ablation(scale, seed, context=ctx,
                                             store=store, n_jobs=jobs),
            ablations.run_adder_topology_ablation(
                scale, seed, store=store,
                timing_dtype=ctx.timing_dtype,
                engine=ctx.dta_engine)),
}


def _add_scale(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", default="quick",
                        choices=("quick", "default", "paper"),
                        help="experiment fidelity preset")
    parser.add_argument("--seed", type=int, default=2016,
                        help="master random seed")


def _add_store(parser: argparse.ArgumentParser,
               with_jobs: bool = True) -> None:
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="result-store directory (default: "
                             "$REPRO_STORE or the user cache dir)")
    parser.add_argument("--no-store", action="store_true",
                        help="compute everything fresh; do not read or "
                             "write the result store")
    if with_jobs:
        parser.add_argument("--jobs", type=int, default=None,
                            help="worker processes (per-trial streams "
                                 "for fig commands, unit sharding for "
                                 "campaigns)")
    parser.add_argument("--pool-workers", type=int, default=None,
                        metavar="N",
                        help="persistent shared-memory pool size: "
                             "spawn N fork workers once and reuse "
                             "them for sharded propagate blocks, "
                             "pooled Monte-Carlo trials and campaign "
                             "unit shards (default: no pool)")
    parser.add_argument("--shard-threads", type=int, default=None,
                        metavar="N",
                        help="thread-shard pool size for native "
                             "engines: shard each propagate's block "
                             "axis over N in-process threads (the C "
                             "kernels release the GIL; zero pipes, "
                             "zero pickling).  Native engines then "
                             "never use the fork pool; numpy engines "
                             "still do (default: no thread pool)")
    parser.add_argument("--timing-dtype", default="float64",
                        choices=("float64", "float32"),
                        help="settle-pipeline dtype of the DTA "
                             "engine; float32 halves its memory "
                             "traffic under a relaxed-identity "
                             "contract and caches under its own "
                             "store keys")
    parser.add_argument("--engine", default="numpy",
                        choices=native.BACKENDS,
                        help="engine backend: 'native' runs the DTA "
                             "hot loop through on-demand-compiled "
                             "fused C kernels (bit-identical at "
                             "float64, same tolerance class and store "
                             "keys at float32) and falls back to "
                             "numpy when no C compiler is available "
                             "-- 'repro engines' shows why")
    parser.add_argument("--faults", default=None, metavar="SPEC",
                        help="deterministic fault-injection schedule "
                             "(same grammar as $REPRO_FAULTS, e.g. "
                             "'seed=7;store.object_write:torn@p=0.05'); "
                             "fired faults are logged to "
                             "$REPRO_FAULT_LOG for exact replay via "
                             "scripts/fault_replay.py")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="record a telemetry trace (spans + "
                             "counters, JSONL) to PATH; same as "
                             "$REPRO_TRACE.  'repro trace export' "
                             "converts it to Chrome/Perfetto JSON, "
                             "'repro stats' prints aggregates.  For "
                             "'campaign status' an existing trace is "
                             "read, not overwritten, to report "
                             "per-unit wall times")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Statistical fault injection for timing-error "
                    "impact evaluation (DAC 2016 reproduction)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    for name in list(_EXPERIMENTS) + ["all"]:
        sub = subparsers.add_parser(
            name, help=f"regenerate {name}" if name != "all"
            else "regenerate every table and figure")
        _add_scale(sub)
        _add_store(sub)

    campaign = subparsers.add_parser(
        "campaign", help="persistent, sharded, resumable figure "
                         "campaigns over the result store")
    campaign_sub = campaign.add_subparsers(dest="campaign_command",
                                           required=True)
    for action, text in (("run", "run a campaign (skips stored units)"),
                         ("resume", "resume a killed campaign"),
                         ("status", "show stored/pending units")):
        sub = campaign_sub.add_parser(action, help=text)
        sub.add_argument("experiment",
                         choices=CAMPAIGN_EXPERIMENTS + (ALL_TARGET,))
        _add_scale(sub)
        _add_store(sub, with_jobs=(action != "status"))
        sub.add_argument("--fabric", default=None, metavar="URL",
                         help="shared store service URL (from 'repro "
                              "store serve'); the campaign reads and "
                              "writes through it instead of a local "
                              "directory")
        if action != "status":
            sub.add_argument("--workers", type=int, default=None,
                             metavar="N",
                             help="distributed-fabric worker "
                                  "processes: N forked lease workers "
                                  "race for unit batches on the "
                                  "shared store, heartbeat their "
                                  "leases and steal from dead peers "
                                  "(default with --fabric: 2)")
            sub.add_argument("--max-retries", type=int, default=0,
                             metavar="N",
                             help="re-attempt units that failed this "
                                  "run up to N times (serial, with "
                                  "backoff) before reporting them as "
                                  "FAILED")

    store_cmd = subparsers.add_parser(
        "store", help="run or probe the shared store object service "
                      "(the distributed-campaign fabric's backend)")
    store_sub = store_cmd.add_subparsers(dest="store_command",
                                         required=True)
    serve_cmd = store_sub.add_parser(
        "serve", help="serve a store root over HTTP: campaign workers "
                      "on any host point --fabric at it")
    serve_cmd.add_argument("--root", default=None, metavar="DIR",
                           help="store directory to serve (default: "
                                "$REPRO_STORE or the user cache dir)")
    serve_cmd.add_argument("--host", default="127.0.0.1",
                           help="bind address (default: loopback; "
                                "bind 0.0.0.0 to serve other hosts)")
    serve_cmd.add_argument("--port", type=int, default=0,
                           help="TCP port (default 0: pick a free "
                                "port and print it)")
    ping_cmd = store_sub.add_parser(
        "ping", help="probe a store service: health, round-trip "
                     "latency, degraded/spool state")
    ping_cmd.add_argument("url", help="service URL, e.g. "
                                      "http://127.0.0.1:8321")
    ping_cmd.add_argument("--strict", action="store_true",
                          help="exit nonzero when the service is "
                               "unreachable or this client is "
                               "degraded (unflushed local spool) -- "
                               "for scripts that need a healthy "
                               "fabric, like 'repro engines --strict'")

    cache = subparsers.add_parser(
        "cache", help="inspect or clean the result store")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    ls = cache_sub.add_parser("ls", help="list stored artifacts")
    ls.add_argument("--store", default=None, metavar="DIR")
    gc = cache_sub.add_parser(
        "gc", help="drop corrupted, stale-schema and abandoned-temp "
                   "entries (--all wipes everything, --kind K wipes "
                   "one artifact kind, --max-bytes N additionally "
                   "evicts oldest live entries down to the cap)")
    gc.add_argument("--store", default=None, metavar="DIR")
    gc.add_argument("--all", action="store_true",
                    help="remove every entry, not just dead ones")
    gc.add_argument("--kind", default=None,
                    help="remove every entry of this artifact kind")
    gc.add_argument("--max-bytes", type=int, default=None, metavar="N",
                    help="after the dead-data pass, evict oldest "
                         "entries (by creation time) until the live "
                         "store fits N bytes")
    gc.add_argument("--pin", action="append", default=None,
                    metavar="KIND",
                    help="artifact kinds the --max-bytes pass evicts "
                         "last (repeatable; default: "
                         "alu_characterization, whose tables cost a "
                         "full DTA sweep to recompute; 'none' "
                         "disables pinning).  The cap stays hard: "
                         "pinned entries still go, oldest first, "
                         "when they alone exceed it")

    trace = subparsers.add_parser(
        "trace", help="work with recorded telemetry traces")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    export = trace_sub.add_parser(
        "export", help="convert a trace to Chrome trace_event JSON "
                       "(load in Perfetto or chrome://tracing)")
    export.add_argument("trace", help="trace file recorded by --trace "
                                      "or $REPRO_TRACE")
    export.add_argument("--out", default=None, metavar="FILE",
                        help="output file (default: <trace>.json; "
                             "'-' writes to stdout)")

    stats = subparsers.add_parser(
        "stats", help="aggregate a telemetry trace: top spans by "
                      "total/self time, counter totals, store hit "
                      "rate, pool utilization")
    stats.add_argument("trace", help="trace file recorded by --trace "
                                     "or $REPRO_TRACE")
    stats.add_argument("--limit", type=int, default=20,
                       help="span rows to list (by total time)")

    report = subparsers.add_parser(
        "timing-report", help="STA endpoint-slack report of the ALU")
    report.add_argument("--frequency-mhz", type=float, default=707.1)
    report.add_argument("--vdd", type=float, default=0.7)
    report.add_argument("--limit", type=int, default=10,
                        help="endpoints to list (worst first)")

    sta = subparsers.add_parser(
        "sta", help="static min/max arrival analysis of a functional "
                    "unit: envelope bounds, endpoint slack, top-K "
                    "critical paths (exit 1 on negative slack)")
    sta.add_argument("unit", choices=("adder", "multiplier", "shifter",
                                      "logic"))
    sta.add_argument("--clock-ps", type=float, default=None,
                     metavar="PS",
                     help="clock period to compute slack against "
                          "(default: the ALU's worst-case STA sign-off "
                          "period at --vdd)")
    sta.add_argument("--paths", type=int, default=3, metavar="K",
                     help="critical paths to extract per output bus "
                          "(gate-by-gate; 0 disables)")
    sta.add_argument("--vdd", type=float, default=0.7,
                     help="supply voltage of the delay corner")
    sta.add_argument("--json", action="store_true",
                     help="emit the machine-readable report body "
                          "(the persisted sta_report schema)")

    lint = subparsers.add_parser(
        "lint", help="structural netlist diagnostics: combinational "
                     "loops, floating inputs, undriven/multiply-driven "
                     "nets, dead gates, fanout histogram (exit 1 on "
                     "findings)")
    lint.add_argument("unit", choices=("adder", "multiplier", "shifter",
                                       "logic", "broken-fixture"),
                      help="functional unit to lint ('broken-fixture' "
                           "is the deliberately malformed self-test "
                           "netlist)")
    lint.add_argument("--json", action="store_true",
                      help="emit machine-readable findings")

    verilog = subparsers.add_parser(
        "verilog", help="export a functional unit as structural Verilog")
    verilog.add_argument("--unit", default="adder",
                         choices=("adder", "multiplier", "shifter",
                                  "logic"))
    verilog.add_argument("--out", default=None,
                         help="output file (stdout when omitted)")

    kernels = subparsers.add_parser(
        "kernels", help="list benchmark kernels and their cycle counts")
    kernels.add_argument("--scale", default="paper",
                         choices=("quick", "paper"))

    engines = subparsers.add_parser(
        "engines", help="list circuit engines with availability "
                        "(compiler probe, kernel cache, source hash) "
                        "-- makes native fallback visible")
    engines.add_argument("--strict", action="store_true",
                         help="exit nonzero when the native backend "
                              "is unavailable or has degraded to "
                              "numpy after a runtime failure -- for "
                              "scripts that require the requested "
                              "engine rather than a silent fallback")
    return parser


def _resolve_store(args) -> ResultStore | None:
    if getattr(args, "no_store", False):
        return None
    if getattr(args, "fabric", None):
        return ResultStore.remote(args.fabric)
    if getattr(args, "store", None):
        return ResultStore(args.store)
    return ResultStore.default()


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)

    if getattr(args, "faults", None):
        # Before any store/pool/native work: forked workers inherit
        # the configured plane, so one schedule governs the process
        # tree.
        faults.configure(args.faults)

    # Commands that *read* a trace must never configure (and thereby
    # clear) it: `campaign status` reports from it, `trace`/`stats`
    # take the path as a positional that shares the `trace` dest.
    reads_trace = args.command in ("trace", "stats") \
        or (args.command == "campaign"
            and getattr(args, "campaign_command", None) == "status")
    if getattr(args, "trace", None) and not reads_trace:
        # Same reasoning as faults: configure before workers fork so
        # the whole tree records into one trace.  `campaign status`
        # *reads* an existing trace (configure would clear it).
        obs.configure(args.trace)

    if getattr(args, "pool_workers", None):
        parallel.configure_pool(args.pool_workers)
    if getattr(args, "shard_threads", None):
        # Thread shards serve native engines only; forked campaign/DTA
        # workers rebuild a same-width pool on first use (threads do
        # not survive fork), so one flag governs the process tree.
        parallel.configure_thread_pool(args.shard_threads)
    timing_dtype = getattr(args, "timing_dtype", "float64")
    engine = getattr(args, "engine", None)
    if engine is not None:
        # The process-global default: forked campaign/pool workers and
        # every config-implied engine resolution inherit it.
        native.set_backend(engine)
        if engine == "native" and not native.native_available():
            print(f"--engine native unavailable "
                  f"({native.unavailable_reason()}); falling back to "
                  f"the numpy engines -- see 'repro engines'",
                  file=sys.stderr)

    if args.command in _EXPERIMENTS or args.command == "all":
        store = _resolve_store(args)
        ctx = ExperimentContext.create(args.scale, args.seed, store=store,
                                       timing_dtype=timing_dtype,
                                       engine=engine)
        names = (list(_EXPERIMENTS) if args.command == "all"
                 else [args.command])
        for name in names:
            if len(names) > 1:
                print(f"\n{'=' * 72}\n{name} (scale: {args.scale})\n"
                      f"{'=' * 72}")
            print(_EXPERIMENTS[name](args.scale, args.seed, ctx, store,
                                     args.jobs))
        return 0

    if args.command == "campaign":
        store = _resolve_store(args)
        if store is None:
            print("campaigns need the result store (drop --no-store)",
                  file=sys.stderr)
            return 2
        if args.campaign_command == "status":
            status = campaign_status(args.experiment, args.scale,
                                     args.seed, store, log=stderr_log,
                                     timing_dtype=timing_dtype,
                                     engine=engine)
            print(status.summary())
            for label in status.failed:
                print(f"  FAILED  {label}")
            for label in status.pending:
                print(f"  pending {label}")
            times = {}
            if getattr(args, "trace", None):
                times = obs.unit_times(obs.read_trace(args.trace))
            if times:
                print(f"{'wall ms':>10s} unit")
                for label, ms in sorted(times.items(),
                                        key=lambda item: -item[1]):
                    print(f"{ms:>10.1f} {label}")
                print(f"{sum(times.values()):>10.1f} total "
                      f"({len(times)} traced unit(s))")
            else:
                print("unit wall time: - (no trace; run the campaign "
                      "with --trace and pass it here)")
            return 0
        fabric_workers = args.workers
        if fabric_workers is None and getattr(args, "fabric", None):
            fabric_workers = 2
        report = run_campaign(args.experiment, args.scale, args.seed,
                              store=store, jobs=args.jobs or 1,
                              log=stderr_log,
                              timing_dtype=timing_dtype,
                              engine=engine,
                              max_retries=args.max_retries,
                              fabric_workers=fabric_workers)
        print(report.summary(), file=sys.stderr)
        print(report.rendered)
        return 1 if report.failed else 0

    if args.command == "store":
        from repro.fabric import HttpBackend, serve
        from repro.store import default_root
        if args.store_command == "serve":
            root = args.root or str(default_root())
            service = serve(root, host=args.host, port=args.port)
            host, port = service.server_address
            # Machine-parseable: scripts launching a service on port 0
            # read the chosen port from this line.
            print(f"serving {root} on http://{host}:{port}",
                  flush=True)
            try:
                service.serve_forever()
            except KeyboardInterrupt:
                pass
            finally:
                service.server_close()
            return 0
        if args.store_command == "ping":
            ping = HttpBackend(args.url).ping()
            degraded = not ping.get("ok") or ping.get("degraded")
            state = "DEGRADED" if degraded else "healthy"
            print(f"{args.url}: {state}")
            for field in ("backend", "root", "objects", "latency_ms",
                          "spooled", "error"):
                if field in ping:
                    print(f"  {field:12s} {ping[field]}")
            return 1 if args.strict and degraded else 0

    if args.command == "cache":
        store = _resolve_store(args)
        if args.cache_command == "ls":
            entries = store.ls()
            total = sum(entry.n_bytes for entry in entries)
            print(f"{'hash':12s} {'kind':22s} {'experiment':10s} "
                  f"{'bytes':>10s} label")
            for entry in entries:
                print(f"{entry.sha256[:12]:12s} {entry.kind:22s} "
                      f"{entry.experiment:10s} {entry.n_bytes:>10d} "
                      f"{entry.label}")
            print(f"{len(entries)} entries, {total} bytes "
                  f"({store.root})")
            return 0
        if args.cache_command == "gc":
            kinds = (args.kind,) if args.kind else None
            pins = tuple(args.pin) if args.pin is not None \
                else ("alu_characterization",)
            if "none" in pins:
                pins = ()
            removed, freed = store.gc(
                remove_all=args.all or kinds is not None, kinds=kinds,
                max_bytes=args.max_bytes, pin_kinds=pins)
            print(f"removed {removed} entries, freed {freed} bytes "
                  f"({store.root})")
            return 0

    if args.command == "trace":
        records = obs.read_trace(args.trace)
        if not records:
            print(f"no trace records at {args.trace}", file=sys.stderr)
            return 2
        import json
        text = json.dumps(obs.to_chrome(records))
        out = args.out or f"{args.trace}.json"
        if out == "-":
            print(text)
        else:
            with open(out, "w") as handle:
                handle.write(text)
            print(f"wrote {out} ({len(obs.spans(records))} spans; "
                  f"load in Perfetto or chrome://tracing)")
        return 0

    if args.command == "stats":
        records = obs.read_trace(args.trace)
        if not records:
            print(f"no trace records at {args.trace}", file=sys.stderr)
            return 2
        print(obs.render_stats(records, limit=args.limit))
        return 0

    if args.command == "timing-report":
        alu = calibrated_alu()
        report = timing_report(alu, args.frequency_mhz * 1e6, args.vdd)
        print(report.render(limit=args.limit))
        return 0

    if args.command == "sta":
        import json
        alu = calibrated_alu()
        circuit = alu.units[args.unit]
        delays = circuit.gate_delays(alu.library, args.vdd,
                                     alu.unit_scales[args.unit])
        clock_ps = args.clock_ps if args.clock_ps is not None \
            else alu.worst_sta_period_ps(args.vdd)
        report = analysis.build_report(
            circuit, delays,
            input_arrival_ps=alu.library.clk_to_q(args.vdd),
            overhead_ps=alu.mux_delay_ps(args.vdd)
            + alu.library.setup(args.vdd),
            clock_ps=clock_ps, k_paths=args.paths)
        if args.json:
            print(json.dumps(report.to_json(), indent=2, sort_keys=True))
        else:
            print(report.render())
        slack = report.min_slack_ps
        return 1 if slack is not None and slack < 0.0 else 0

    if args.command == "lint":
        if args.unit == "broken-fixture":
            report = lint_mod.lint_netlist(lint_mod.broken_fixture())
        else:
            alu = calibrated_alu()
            report = lint_mod.lint_circuit(alu.units[args.unit])
        print(report.render_json() if args.json else report.render())
        return 0 if report.ok else 1

    if args.command == "verilog":
        alu = calibrated_alu()
        text = to_verilog(alu.units[args.unit])
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(text)
            print(f"wrote {args.out}")
        else:
            print(text)
        return 0

    if args.command == "engines":
        print(f"{'engine':16s} {'dtype':8s} status")
        print(f"{'reference':16s} {'float64':8s} available "
              f"(per-gate python loop, the executable spec)")
        print(f"{'compiled':16s} {'float64':8s} available "
              f"(numpy SoA plan, bit-identical to reference)")
        print(f"{'compiled-f32':16s} {'float32':8s} available "
              f"(numpy SoA plan, relaxed-identity contract)")
        degraded = native.runtime_failure()
        strict_fail = False
        for name, dtype in sorted(native.NATIVE_ENGINES.items()):
            status = native.native_status(dtype)
            if status["available"] and degraded is not None:
                strict_fail = True
                print(f"{name:16s} {dtype:8s} DEGRADED to numpy: "
                      f"{degraded}")
                print(f"{'':16s} {'':8s}   cache dir "
                      f"{status['cache_dir']} (restart clears the "
                      f"degradation latch)")
            elif status["available"]:
                cached = "cached" if status["cached"] else "not built yet"
                print(f"{name:16s} {dtype:8s} available "
                      f"({status['compiler_version']})")
                print(f"{'':16s} {'':8s}   library {status['library']} "
                      f"[{cached}]")
                print(f"{'':16s} {'':8s}   source hash "
                      f"{status['source_hash'][:16]}")
            else:
                strict_fail = True
                print(f"{name:16s} {dtype:8s} UNAVAILABLE: "
                      f"{status['reason']}")
                print(f"{'':16s} {'':8s}   cache dir "
                      f"{status['cache_dir']} (numpy engines serve "
                      f"this dtype instead)")
        # Thread-shard substrate: always available (stdlib threads);
        # what varies per build is whether Python code overlaps too.
        tpool = parallel.get_thread_pool()
        configured = f"configured, {tpool.workers} worker(s)" \
            if tpool is not None else "off (--shard-threads N)"
        print(f"{'thread-shards':16s} {'':8s} available: native "
              f"engines shard over in-process threads [{configured}]")
        if parallel.free_threaded():
            print(f"{'':16s} {'':8s}   free-threaded CPython "
                  f"(Py_GIL_DISABLED): python around the kernels "
                  f"overlaps too")
        else:
            print(f"{'':16s} {'':8s}   GIL build: only the C kernel "
                  f"portions overlap (they release the GIL)")
        if analysis.bounds_check_enabled():
            print(f"{'oracle':16s} {'':8s} ACTIVE: every propagate "
                  f"checked against the static STA envelope "
                  f"(REPRO_CHECK_BOUNDS)")
        else:
            print(f"{'oracle':16s} {'':8s} off (set "
                  f"REPRO_CHECK_BOUNDS=1 to assert every propagate "
                  f"against the static STA envelope)")
        if args.strict and strict_fail:
            print("strict: native backend not fully available",
                  file=sys.stderr)
            return 2
        return 0

    if args.command == "kernels":
        print(f"{'benchmark':16s} {'size':16s} {'cycles':>9s} "
              f"{'output metric'}")
        for name in BENCHMARK_NAMES:
            kernel = build_kernel(name, args.scale)
            cycles = golden_cycles(kernel)
            size = ", ".join(f"{k}={v}" for k, v in kernel.params.items()
                             if k != "seed")
            print(f"{name:16s} {size:16s} {cycles:>9d} "
                  f"{kernel.metric_name}")
        return 0

    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":
    sys.exit(main())
