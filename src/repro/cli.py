"""Command-line interface: regenerate any paper experiment from a shell.

Examples::

    python -m repro table1 --scale paper
    python -m repro fig5 --scale default
    python -m repro all --scale quick
    python -m repro timing-report --frequency-mhz 750
    python -m repro verilog --unit multiplier --out mul32.v
    python -m repro kernels
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.suite import BENCHMARK_NAMES, build_kernel
from repro.experiments import (
    ExperimentContext,
    ablations,
    fig1,
    fig2,
    fig4,
    fig5,
    fig6,
    fig7,
    table1,
    table2,
)
from repro.mc.runner import golden_cycles
from repro.netlist.calibrate import calibrated_alu
from repro.netlist.verilog import to_verilog
from repro.timing.report import timing_report

#: Experiment name -> callable(scale, context) -> rendered text.
_EXPERIMENTS = {
    "table1": lambda scale, ctx: table1.render(table1.run(scale)),
    "table2": lambda scale, ctx: table2.render(),
    "fig1": lambda scale, ctx: fig1.render(fig1.run(scale, context=ctx)),
    "fig2": lambda scale, ctx: fig2.render(fig2.run(scale, context=ctx)),
    "fig4": lambda scale, ctx: fig4.render(fig4.run(scale, context=ctx)),
    "fig5": lambda scale, ctx: fig5.render(fig5.run(scale, context=ctx)),
    "fig6": lambda scale, ctx: fig6.render(fig6.run(scale, context=ctx)),
    "fig7": lambda scale, ctx: fig7.render(fig7.run(scale, context=ctx)),
    "ablations": lambda scale, ctx: ablations.render_all(
        ablations.run_glitch_model_ablation(scale, context=ctx),
        ablations.run_semantics_ablation(scale, context=ctx),
        ablations.run_adder_topology_ablation(scale)),
}


def _add_scale(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", default="quick",
                        choices=("quick", "default", "paper"),
                        help="experiment fidelity preset")
    parser.add_argument("--seed", type=int, default=2016,
                        help="master random seed")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Statistical fault injection for timing-error "
                    "impact evaluation (DAC 2016 reproduction)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    for name in list(_EXPERIMENTS) + ["all"]:
        sub = subparsers.add_parser(
            name, help=f"regenerate {name}" if name != "all"
            else "regenerate every table and figure")
        _add_scale(sub)

    report = subparsers.add_parser(
        "timing-report", help="STA endpoint-slack report of the ALU")
    report.add_argument("--frequency-mhz", type=float, default=707.1)
    report.add_argument("--vdd", type=float, default=0.7)
    report.add_argument("--limit", type=int, default=10,
                        help="endpoints to list (worst first)")

    verilog = subparsers.add_parser(
        "verilog", help="export a functional unit as structural Verilog")
    verilog.add_argument("--unit", default="adder",
                         choices=("adder", "multiplier", "shifter",
                                  "logic"))
    verilog.add_argument("--out", default=None,
                         help="output file (stdout when omitted)")

    kernels = subparsers.add_parser(
        "kernels", help="list benchmark kernels and their cycle counts")
    kernels.add_argument("--scale", default="paper",
                         choices=("quick", "paper"))
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)

    if args.command in _EXPERIMENTS or args.command == "all":
        ctx = ExperimentContext.create(args.scale, args.seed)
        names = (list(_EXPERIMENTS) if args.command == "all"
                 else [args.command])
        for name in names:
            if len(names) > 1:
                print(f"\n{'=' * 72}\n{name} (scale: {args.scale})\n"
                      f"{'=' * 72}")
            print(_EXPERIMENTS[name](args.scale, ctx))
        return 0

    if args.command == "timing-report":
        alu = calibrated_alu()
        report = timing_report(alu, args.frequency_mhz * 1e6, args.vdd)
        print(report.render(limit=args.limit))
        return 0

    if args.command == "verilog":
        alu = calibrated_alu()
        text = to_verilog(alu.units[args.unit])
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(text)
            print(f"wrote {args.out}")
        else:
            print(text)
        return 0

    if args.command == "kernels":
        print(f"{'benchmark':16s} {'size':16s} {'cycles':>9s} "
              f"{'output metric'}")
        for name in BENCHMARK_NAMES:
            kernel = build_kernel(name, args.scale)
            cycles = golden_cycles(kernel)
            size = ", ".join(f"{k}={v}" for k, v in kernel.params.items()
                             if k != "seed")
            print(f"{name:16s} {size:16s} {cycles:>9d} "
                  f"{kernel.metric_name}")
        return 0

    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":
    sys.exit(main())
