"""Experiment scaling presets.

The paper's evaluation uses >= 100 Monte-Carlo trials per data point on
kernels of up to ~1 M cycles.  That is feasible but slow in a pure
Python ISS, so every experiment driver accepts a :class:`Scale`:

* ``quick`` -- smoke-test scale for CI and pytest-benchmark runs;
* ``default`` -- enough trials/points for the paper's qualitative
  shapes to be statistically visible (minutes per figure);
* ``paper`` -- the paper's problem sizes and trial counts (hours).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Scale:
    """Knobs that trade fidelity for runtime.

    Attributes:
        name: preset name.
        trials: Monte-Carlo trials per data point.
        freq_points: frequencies per sweep.
        kernel_scale: benchmark problem size ("quick" or "paper").
        char_cycles: DTA characterization cycles per instruction.
        fig4_samples: operand samples for the instruction study.
        voltage_points: voltages per Fig. 7 sweep.
    """

    name: str
    trials: int
    freq_points: int
    kernel_scale: str
    char_cycles: int
    fig4_samples: int
    voltage_points: int


QUICK = Scale(name="quick", trials=10, freq_points=7,
              kernel_scale="quick", char_cycles=256, fig4_samples=512,
              voltage_points=7)
DEFAULT = Scale(name="default", trials=30, freq_points=11,
                kernel_scale="quick", char_cycles=512, fig4_samples=2048,
                voltage_points=9)
PAPER = Scale(name="paper", trials=200, freq_points=23,
              kernel_scale="paper", char_cycles=512, fig4_samples=8192,
              voltage_points=13)

_PRESETS = {scale.name: scale for scale in (QUICK, DEFAULT, PAPER)}


def get_scale(name_or_scale: str | Scale) -> Scale:
    """Resolve a preset name (or pass a custom Scale through)."""
    if isinstance(name_or_scale, Scale):
        return name_or_scale
    try:
        return _PRESETS[name_or_scale]
    except KeyError:
        raise KeyError(f"unknown scale {name_or_scale!r}; "
                       f"known: {sorted(_PRESETS)}") from None
