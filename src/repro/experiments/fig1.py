"""Fig. 1: FI rate and program behavior under models B and B+.

Reproduces the paper's illustration of STA-based fault injection on the
median benchmark: model B exhibits a cliff right at the STA limit (the
FI rate jumps to hundreds of faults per kCycle within a fraction of a
MHz, and the finish/correct probabilities collapse from 100 % to 0 %
with no usable transition region), while model B+ moves the cliff to
lower frequencies as the noise sigma grows -- the onset then has a low
FI rate, but the application behavior remains a hard threshold.

Sub-figures: (a) model B, sigma = 0; (b) model B+, sigma = 10 mV;
(c) model B+, sigma = 25 mV.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench.suite import build_kernel
from repro.experiments.context import ExperimentContext, NOMINAL_VDD
from repro.experiments.scale import Scale, get_scale
from repro.fi.model_b import StaInjector
from repro.fi.model_bplus import StaNoiseInjector
from repro.mc.results import McPoint
from repro.mc.sweep import FrequencySweep, sweep_units
from repro.mc.units import PointUnit, resolve_units
from repro.timing.characterize import alu_fingerprint

#: Noise sigmas of the three sub-figures [V] (0 = model B's cliff).
SUB_FIGURE_SIGMAS = (0.0, 0.010, 0.025)

#: Benchmark of the illustration.
BENCHMARK = "median"


@dataclass
class Fig1Result:
    """One sub-figure: a narrow sweep around the model's onset."""

    sigma_v: float
    model: str
    onset_hz: float
    sweep: FrequencySweep

    def rows(self) -> list[dict]:
        return self.sweep.rows()


def _onset_grid(onset_hz: float, points: int) -> list[float]:
    """Narrow grid straddling the onset, like the paper's 5 MHz span."""
    return list(np.linspace(onset_hz - 2e6, onset_hz + 3.5e6, points))


def _sub_figures(ctx: ExperimentContext) -> list[tuple]:
    """(sigma, model name, onset, sweep-level factory) per sub-figure.

    The factories are sweep-level (called as ``factory(f, rng)``);
    building them needs only STA and the fitted Vdd curve, so planning
    fig1 units never runs DTA.
    """
    subs = []
    for sigma in SUB_FIGURE_SIGMAS:
        onset = ctx.bplus_onset_hz(NOMINAL_VDD, sigma)
        noise = ctx.noise(sigma)
        if sigma == 0.0:
            def factory(f, rng):
                return StaInjector(ctx.alu, f, NOMINAL_VDD)
            model = "B"
        else:
            def factory(f, rng, noise=noise):
                return StaNoiseInjector(ctx.alu, f, noise, NOMINAL_VDD,
                                        vdd_model=ctx.vdd_model, rng=rng)
            model = "B+"
        subs.append((sigma, model, onset, factory))
    return subs


def point_units(ctx: ExperimentContext, seed: int = 2016,
                n_jobs: int | None = None) -> list[PointUnit]:
    """Decompose the three sub-figures into per-frequency MC units.

    Unit order is sub-figure major, ascending frequency minor,
    matching :func:`assemble`; keys and computations are exactly those
    :func:`run` has always produced, so campaign-resolved and
    driver-resolved figures share store entries byte for byte.
    """
    kernel = build_kernel(BENCHMARK, ctx.scale.kernel_scale)
    units: list[PointUnit] = []
    for sigma, model, onset, factory in _sub_figures(ctx):
        units.extend(sweep_units(
            kernel, factory,
            frequencies_hz=_onset_grid(onset, ctx.scale.freq_points),
            n_trials=ctx.scale.trials,
            seed=seed,
            n_jobs=n_jobs,
            experiment="fig1",
            scale=ctx.scale,
            condition={"model": model, "sigma_v": sigma,
                       "vdd": NOMINAL_VDD,
                       "alu": alu_fingerprint(ctx.alu)}))
    return units


def assemble(ctx: ExperimentContext,
             points: list[McPoint]) -> list[Fig1Result]:
    """Group resolved points back into the three sub-figure sweeps."""
    sta_limit = ctx.sta_limit_hz(NOMINAL_VDD)
    results = []
    offset = 0
    for sigma, model, onset, _ in _sub_figures(ctx):
        grid = sorted(_onset_grid(onset, ctx.scale.freq_points))
        sweep = FrequencySweep(
            kernel_name=BENCHMARK,
            frequencies_hz=grid,
            points=points[offset:offset + len(grid)],
            sta_limit_hz=sta_limit,
            config={"model": model, "sigma_v": sigma,
                    "vdd": NOMINAL_VDD})
        offset += len(grid)
        results.append(Fig1Result(sigma_v=sigma, model=model,
                                  onset_hz=onset, sweep=sweep))
    return results


def run(scale: str | Scale = "default", seed: int = 2016,
        context: ExperimentContext | None = None,
        store=None, n_jobs: int | None = None) -> list[Fig1Result]:
    """Run the three sub-figures on the median benchmark."""
    scale = get_scale(scale)
    ctx = context or ExperimentContext.create(scale, seed, store=store)
    if store is None:
        store = ctx.store
    units = point_units(ctx, seed=seed, n_jobs=n_jobs)
    points, _, _ = resolve_units(units, store)
    return assemble(ctx, points)


def render(results: list[Fig1Result]) -> str:
    """Human-readable summary of the three sub-figures."""
    lines = []
    for result in results:
        lines.append(
            f"--- model {result.model}, sigma = {result.sigma_v * 1e3:.0f} mV"
            f" (onset {result.onset_hz / 1e6:.1f} MHz) ---")
        lines.append(f"{'f [MHz]':>9s} {'FI/kCyc':>9s} {'finished':>9s} "
                     f"{'correct':>9s}")
        for row in result.rows():
            lines.append(
                f"{row['frequency_mhz']:9.2f} "
                f"{row['fi_rate_per_kcycle']:9.2f} "
                f"{row['p_finished']:9.1%} {row['p_correct']:9.1%}")
    return "\n".join(lines)
