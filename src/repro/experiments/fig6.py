"""Fig. 6: benchmark comparison under model C at 0.7 V, sigma = 10 mV.

Sweeps the four remaining benchmarks (8/16-bit matrix multiplication,
k-means, Dijkstra) through their transition regions under the proposed
statistical model, and contrasts them with the single hard failure
threshold that model B+ predicts for *all* benchmarks alike.

The paper's qualitative findings that must hold here:

* 8- and 16-bit matrix multiplication behave alike, with the MSE about
  a constant factor apart (different operand/result ranges), and the
  8-bit variant keeps fully-correct runs deeper into the noisy region;
* k-means sees a much lower FI rate than matrix multiplication at the
  same frequency (far fewer multiplications) yet degrades visibly in
  quality while still finishing;
* Dijkstra has a very narrow transition: a few percent beyond its PoFF
  the application fails completely while the FI rate is still low;
* model B+'s threshold sits below every model-C transition, where it
  would predict total failure for all of them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench.suite import build_kernel
from repro.experiments.context import ExperimentContext, NOMINAL_VDD
from repro.experiments.fig5 import model_c_onset_hz
from repro.experiments.scale import Scale, get_scale
from repro.fi.model_c import StatisticalInjector
from repro.mc.results import McPoint
from repro.mc.sweep import FrequencySweep, sweep_units
from repro.mc.units import PointUnit, resolve_units

#: Benchmarks of the figure (median is covered by Fig. 5).
FIG6_BENCHMARKS = ("mat_mult_8bit", "mat_mult_16bit", "kmeans", "dijkstra")

#: Noise level of the figure.
SIGMA_V = 0.010


@dataclass
class Fig6Result:
    benchmark: str
    sweep: FrequencySweep
    sta_limit_hz: float
    bplus_threshold_hz: float

    @property
    def poff_hz(self) -> float | None:
        return self.sweep.poff_hz()

    @property
    def poff_gain(self) -> float | None:
        return self.sweep.poff_gain_over_sta()

    def error_series(self) -> list[float]:
        """Benchmark-native error metric across the sweep."""
        return self.sweep.metric_series("mean_error")


def _grid(ctx: ExperimentContext, sigma_v: float) -> list[float]:
    """Shared frequency grid covering every benchmark's transition."""
    onset = model_c_onset_hz(ctx, NOMINAL_VDD, sigma_v)
    return list(np.linspace(0.97 * onset,
                            1.35 * ctx.sta_limit_hz(NOMINAL_VDD),
                            ctx.scale.freq_points))


def point_units(ctx: ExperimentContext, seed: int = 2016,
                benchmarks: tuple[str, ...] = FIG6_BENCHMARKS,
                sigma_v: float = SIGMA_V,
                n_jobs: int | None = None) -> list[PointUnit]:
    """Per-frequency Monte-Carlo units, grouped by benchmark."""
    characterization = ctx.characterization(NOMINAL_VDD)
    noise = ctx.noise(sigma_v)
    grid = _grid(ctx, sigma_v)
    units: list[PointUnit] = []
    for salt, name in enumerate(benchmarks):
        kernel = build_kernel(name, ctx.scale.kernel_scale)

        def factory(f, rng):
            return StatisticalInjector(
                characterization, f, noise,
                vdd_operating=NOMINAL_VDD,
                vdd_model=ctx.vdd_model, rng=rng)

        units.extend(sweep_units(
            kernel, factory,
            frequencies_hz=grid,
            n_trials=ctx.scale.trials,
            seed=seed + 6151 * salt,
            n_jobs=n_jobs,
            experiment="fig6",
            scale=ctx.scale,
            condition={"vdd": NOMINAL_VDD, "sigma_v": sigma_v,
                       "model": "C",
                       **ctx.char_fingerprint(NOMINAL_VDD)}))
    return units


def assemble(ctx: ExperimentContext, points: list[McPoint],
             benchmarks: tuple[str, ...] = FIG6_BENCHMARKS,
             sigma_v: float = SIGMA_V) -> list[Fig6Result]:
    """Group resolved points back into per-benchmark sweeps."""
    sta_limit = ctx.sta_limit_hz(NOMINAL_VDD)
    bplus_threshold = ctx.bplus_onset_hz(NOMINAL_VDD, sigma_v)
    grid = sorted(_grid(ctx, sigma_v))
    results = []
    for index, name in enumerate(benchmarks):
        sweep = FrequencySweep(
            kernel_name=name,
            frequencies_hz=grid,
            points=points[index * len(grid):(index + 1) * len(grid)],
            sta_limit_hz=sta_limit,
            config={"vdd": NOMINAL_VDD, "sigma_v": sigma_v,
                    "model": "C"})
        results.append(Fig6Result(
            benchmark=name,
            sweep=sweep,
            sta_limit_hz=sta_limit,
            bplus_threshold_hz=bplus_threshold))
    return results


def run(scale: str | Scale = "default", seed: int = 2016,
        context: ExperimentContext | None = None,
        benchmarks: tuple[str, ...] = FIG6_BENCHMARKS,
        sigma_v: float = SIGMA_V,
        store=None, n_jobs: int | None = None) -> list[Fig6Result]:
    """Sweep every benchmark at 0.7 V with sigma = 10 mV."""
    scale = get_scale(scale)
    ctx = context or ExperimentContext.create(scale, seed, store=store)
    if store is None:
        store = ctx.store
    units = point_units(ctx, seed=seed, benchmarks=benchmarks,
                        sigma_v=sigma_v, n_jobs=n_jobs)
    points, _, _ = resolve_units(units, store)
    return assemble(ctx, points, benchmarks=benchmarks, sigma_v=sigma_v)


def render(results: list[Fig6Result]) -> str:
    """Human-readable summary per benchmark."""
    lines = []
    for result in results:
        gain = result.poff_gain
        gain_text = f"{gain:+.1%}" if gain is not None else "beyond sweep"
        lines.append(
            f"--- {result.benchmark}  (B+ threshold "
            f"{result.bplus_threshold_hz / 1e6:.0f} MHz, PoFF gain "
            f"{gain_text}) ---")
        lines.append(f"{'f [MHz]':>9s} {'finished':>9s} {'correct':>9s} "
                     f"{'FI/kCyc':>9s} {'error':>12s}")
        for row in result.sweep.rows():
            lines.append(
                f"{row['frequency_mhz']:9.1f} {row['p_finished']:9.1%} "
                f"{row['p_correct']:9.1%} "
                f"{row['fi_rate_per_kcycle']:9.2f} "
                f"{row['mean_error']:12.4g}")
    return "\n".join(lines)
