"""STA-bound-vs-DTA-distribution margin: the paper's core argument.

Static timing analysis signs a design off at the *worst possible*
arrival; dynamic timing analysis observes what the workload actually
exercises.  The gap between the two is the timing margin the paper's
better-than-worst-case operation harvests.  This driver renders that
gap directly: per functional unit, the static bound from the
:mod:`repro.analysis.sta` envelope (persisted as an ``sta_report``
store artifact) against quantiles of the DTA critical-period
distribution from the standard characterization.

Soundness makes the figure double as a system-level oracle check: the
static bound must upper-bound *every* observed DTA critical period --
a negative margin here means an engine bug, not a tight design.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.sta import StaReport, build_report
from repro.experiments.context import NOMINAL_VDD, ExperimentContext
from repro.experiments.scale import Scale, get_scale
from repro.mc.units import WorkUnit, resolve_units, work_unit_key
from repro.timing.characterize import alu_fingerprint

#: Representative mnemonic whose DTA distribution is compared against
#: each unit's static bound.
UNIT_MNEMONICS = (
    ("adder", "l.add"),
    ("multiplier", "l.mul"),
    ("shifter", "l.sll"),
    ("logic", "l.and"),
)

#: Critical paths persisted per unit report.
K_PATHS = 3

#: DTA distribution quantiles rendered against the bound.
QUANTILES = (0.50, 0.95, 1.00)

#: Width of the rendered margin bars, in characters.
_BAR = 44


@dataclass
class UnitMargin:
    """One unit's static bound against its DTA critical periods."""

    unit: str
    mnemonic: str
    report: StaReport
    #: Critical-period quantiles [ps] at :data:`QUANTILES`, plus min.
    dta_min_ps: float
    dta_quantiles_ps: tuple[float, ...]

    @property
    def sta_period_ps(self) -> float:
        """The static sign-off bound (worst arrival + capture)."""
        return self.report.min_period_ps

    @property
    def margin_ps(self) -> float:
        """Bound minus worst observed period; negative = engine bug."""
        return self.sta_period_ps - self.dta_quantiles_ps[-1]


@dataclass
class FigStaMarginResult:
    vdd: float
    clock_ps: float
    rows: list[UnitMargin]

    @property
    def sound(self) -> bool:
        """Every DTA observation inside its static bound."""
        return all(row.margin_ps >= 0.0 for row in self.rows)


def sta_report_units(ctx: ExperimentContext, seed: int,
                     vdd: float, clock_ps: float) -> list[WorkUnit]:
    """One ``sta_report`` work unit per functional unit.

    The static pass is cheap, but persisting reports makes them
    first-class campaign artifacts: reloadable bit-identically,
    listable via ``repro cache ls``, and keyed on the ALU fingerprint
    so netlist or library changes invalidate them.
    """
    alu = ctx.alu
    units: list[WorkUnit] = []
    for name, _ in UNIT_MNEMONICS:
        def compute(name: str = name) -> StaReport:
            circuit = alu.units[name]
            delays = circuit.gate_delays(alu.library, vdd,
                                         alu.unit_scales[name])
            return build_report(
                circuit, delays,
                input_arrival_ps=alu.library.clk_to_q(vdd),
                overhead_ps=alu.mux_delay_ps(vdd)
                + alu.library.setup(vdd),
                clock_ps=clock_ps, k_paths=K_PATHS)

        units.append(WorkUnit(
            label=f"sta:{name}@{vdd:.2f}V",
            key=work_unit_key(
                "sta_report", "fig_sta_margin", ctx.scale, seed,
                {"unit": name, "vdd": float(vdd),
                 "clock_ps": float(clock_ps), "k_paths": K_PATHS,
                 "alu": alu_fingerprint(alu)},
                stream="sta"),
            compute=compute))
    return units


def run(scale: str | Scale = "default", seed: int = 2016,
        context: ExperimentContext | None = None, store=None,
        vdd: float = NOMINAL_VDD) -> FigStaMarginResult:
    """Build per-unit STA reports and pair them with DTA quantiles."""
    scale = get_scale(scale)
    ctx = context or ExperimentContext.create(scale, seed, store=store)
    if store is None:
        store = ctx.store
    clock_ps = ctx.alu.worst_sta_period_ps(vdd)
    reports, _, _ = resolve_units(
        sta_report_units(ctx, seed, vdd, clock_ps), store)
    characterization = ctx.characterization(vdd)
    rows: list[UnitMargin] = []
    for (name, mnemonic), report in zip(UNIT_MNEMONICS, reports):
        periods = characterization.cdfs[mnemonic].row_max_sorted
        quantiles = tuple(
            float(periods[min(int(q * (periods.size - 1)),
                              periods.size - 1)])
            for q in QUANTILES)
        rows.append(UnitMargin(
            unit=name, mnemonic=mnemonic, report=report,
            dta_min_ps=float(periods[0]),
            dta_quantiles_ps=quantiles))
    return FigStaMarginResult(vdd=vdd, clock_ps=clock_ps, rows=rows)


def render(result: FigStaMarginResult) -> str:
    """Tabulate and bar-chart the per-unit STA-vs-DTA margin."""
    lines = [
        f"STA bound vs DTA distribution @ {result.vdd:.2f} V  "
        f"(sign-off period {result.clock_ps:.1f} ps)",
        f"{'unit':12s} {'instr':8s} {'STA ps':>9s} {'DTA p50':>9s} "
        f"{'DTA p95':>9s} {'DTA max':>9s} {'margin':>8s} {'harvest':>8s}",
    ]
    for row in result.rows:
        p50, p95, p100 = row.dta_quantiles_ps
        harvest = 1.0 - p100 / row.sta_period_ps
        lines.append(
            f"{row.unit:12s} {row.mnemonic:8s} "
            f"{row.sta_period_ps:>9.1f} {p50:>9.1f} {p95:>9.1f} "
            f"{p100:>9.1f} {row.margin_ps:>8.1f} {harvest:>7.1%}")
    lines.append("")
    lines.append(f"  distribution inside the static bound "
                 f"(|min ... p50 ... max| = bound):")
    for row in result.rows:
        span = row.sta_period_ps
        marks = sorted(
            (max(0, min(_BAR - 1, int(value / span * _BAR))), symbol)
            for value, symbol in (
                (row.dta_min_ps, "."),
                (row.dta_quantiles_ps[0], "o"),
                (row.dta_quantiles_ps[-1], "#")))
        bar = [" "] * _BAR
        for position, symbol in marks:
            bar[position] = symbol
        lines.append(f"  {row.unit:12s} |{''.join(bar)}|")
    verdict = "sound: every DTA observation <= its static bound" \
        if result.sound else \
        "UNSOUND: a DTA critical period exceeds the static bound " \
        "-- engine bug"
    lines.append("")
    lines.append(f"  {verdict}")
    return "\n".join(lines)
