"""Table 2: overview of the timing-error models and their features.

The feature matrix is structural (it describes the models, not a
measurement), but it is generated from the implementation so the table
stays true to the code: each row is derived from the corresponding
injector class.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fi.model_a import FixedProbabilityInjector
from repro.fi.model_b import StaInjector
from repro.fi.model_bplus import StaNoiseInjector
from repro.fi.model_c import StatisticalInjector


@dataclass(frozen=True)
class Table2Row:
    """Feature row of one fault-injection model."""

    model: str
    technique: str
    timing_data: str
    multi_vdd: bool
    vdd_noise: bool
    gate_level_aware: str
    instruction_aware: bool
    injector_class: str

    def as_dict(self) -> dict:
        return {
            "model": self.model,
            "fault injection technique": self.technique,
            "timing data": self.timing_data,
            "multi-Vdd": "yes" if self.multi_vdd else "no",
            "Vdd noise": "yes" if self.vdd_noise else "no",
            "gate-level aware": self.gate_level_aware,
            "instruction aware": "yes" if self.instruction_aware else "no",
            "injector": self.injector_class,
        }


def rows() -> list[Table2Row]:
    """The model feature matrix (paper Table 2)."""
    return [
        Table2Row(
            model=FixedProbabilityInjector.model_name,
            technique="fixed probability",
            timing_data="none",
            multi_vdd=False,
            vdd_noise=False,
            gate_level_aware="no",
            instruction_aware=False,
            injector_class=FixedProbabilityInjector.__name__,
        ),
        Table2Row(
            model=StaInjector.model_name,
            technique="fixed period violation",
            timing_data="STA",
            multi_vdd=True,
            vdd_noise=False,
            gate_level_aware="partially",
            instruction_aware=False,
            injector_class=StaInjector.__name__,
        ),
        Table2Row(
            model=StaNoiseInjector.model_name,
            technique="modulated period violation",
            timing_data="STA",
            multi_vdd=True,
            vdd_noise=True,
            gate_level_aware="partially",
            instruction_aware=False,
            injector_class=StaNoiseInjector.__name__,
        ),
        Table2Row(
            model=StatisticalInjector.model_name,
            technique="probabilistic period violation (using CDFs)",
            timing_data="DTA",
            multi_vdd=True,
            vdd_noise=True,
            gate_level_aware="yes",
            instruction_aware=True,
            injector_class=StatisticalInjector.__name__,
        ),
    ]


def render(table: list[Table2Row] | None = None) -> str:
    """Human-readable feature matrix."""
    table = table if table is not None else rows()
    header = (f"{'model':6s} {'technique':44s} {'timing':7s} "
              f"{'mVdd':>5s} {'noise':>6s} {'gate':>10s} {'instr':>6s}")
    lines = [header, "-" * len(header)]
    for row in table:
        lines.append(
            f"{row.model:6s} {row.technique:44s} {row.timing_data:7s} "
            f"{'yes' if row.multi_vdd else 'no':>5s} "
            f"{'yes' if row.vdd_noise else 'no':>6s} "
            f"{row.gate_level_aware:>10s} "
            f"{'yes' if row.instruction_aware else 'no':>6s}")
    return "\n".join(lines)
