"""Ablation studies for the reproduction's own design choices.

Three knobs of this implementation do not exist in the paper (which
had real silicon) and deserve quantified justification:

* **glitch model** -- the DTA engine's event semantics.  The default
  ``sensitized`` model propagates glitch activity through statically
  sensitized gates; the optimistic ``value-change`` variant tracks only
  settled-value toggles.  The ablation measures how much apparent
  frequency-over-scaling headroom the optimistic model invents.

* **fault semantics** -- what a timing violation does to the endpoint
  flip-flop: ``flip`` (invert the bit) versus ``stale`` (re-latch the
  previous value).  The ablation compares fault rates and output error
  on a data-path benchmark.

* **adder topology** -- carry-select (default) versus ripple-carry and
  Kogge-Stone.  The topology shapes the per-bit arrival profile and
  therefore how strongly the add PoFF depends on operand bit-width
  (the paper's Fig. 4 spread).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import native
from repro.bench.suite import build_kernel
from repro.fi.model_c import StatisticalInjector
from repro.mc.results import McPoint
from repro.mc.runner import run_point
from repro.mc.units import PointUnit, mc_point_key, resolve_units, \
    stream_scheme, work_unit_key
from repro.netlist.adders import ADDER_KINDS
from repro.netlist.alu import AluConfig, AluNetlist
from repro.netlist.calibrate import calibrate_alu
from repro.timing.characterize import CharacterizationConfig
from repro.timing.dta import run_dta
from repro.experiments.context import ExperimentContext, NOMINAL_VDD
from repro.experiments.scale import Scale, get_scale


@dataclass
class GlitchModelAblation:
    """Instruction PoFFs under both DTA event models."""

    poff_sensitized_hz: dict[str, float]
    poff_value_change_hz: dict[str, float]

    def headroom_inflation(self, mnemonic: str) -> float:
        """How much extra over-scaling headroom the optimistic model
        claims for one instruction (>= 0)."""
        return (self.poff_value_change_hz[mnemonic]
                / self.poff_sensitized_hz[mnemonic]) - 1.0


def run_glitch_model_ablation(scale: str | Scale = "default",
                              seed: int = 2016,
                              context: ExperimentContext | None = None) -> \
        GlitchModelAblation:
    """Characterize both glitch models and compare instruction PoFFs."""
    scale = get_scale(scale)
    ctx = context or ExperimentContext.create(scale, seed)
    poffs = {}
    for model in ("sensitized", "value-change"):
        # Through the context: glitch-model characterizations land in
        # the attached result store like the default ones.
        characterization = ctx.characterized(CharacterizationConfig(
            vdd=NOMINAL_VDD,
            n_cycles_per_instr=scale.char_cycles,
            seed=seed,
            glitch_model=model))
        poffs[model] = {
            mnemonic: characterization.poff_frequency_hz(mnemonic)
            for mnemonic in characterization.mnemonics
        }
    return GlitchModelAblation(
        poff_sensitized_hz=poffs["sensitized"],
        poff_value_change_hz=poffs["value-change"])


@dataclass
class SemanticsAblation:
    """Matmul outcomes under flip vs stale fault semantics."""

    frequency_hz: float
    summary_flip: dict[str, float]
    summary_stale: dict[str, float]


def semantics_point_units(ctx: ExperimentContext, seed: int = 2016,
                          frequency_hz: float = 730e6,
                          sigma_v: float = 0.010,
                          n_jobs: int | None = None) -> list[PointUnit]:
    """One Monte-Carlo unit per fault-semantics variant (flip, stale)."""
    characterization = ctx.characterization(NOMINAL_VDD)
    kernel = build_kernel("mat_mult_8bit", ctx.scale.kernel_scale)
    noise = ctx.noise(sigma_v)
    stream = stream_scheme(n_jobs)
    units = []
    for semantics in ("flip", "stale"):
        def compute(semantics=semantics):
            return run_point(
                kernel,
                lambda rng, semantics=semantics: StatisticalInjector(
                    characterization, frequency_hz, noise,
                    vdd_model=ctx.vdd_model, rng=rng,
                    semantics=semantics),
                n_trials=ctx.scale.trials, seed=seed, n_jobs=n_jobs)

        units.append(PointUnit(
            label=f"ablations:semantics/{semantics}",
            key=mc_point_key(
                "ablations", ctx.scale, seed, stream, kernel,
                ctx.scale.trials,
                {"study": "semantics", "semantics": semantics,
                 "sigma_v": sigma_v, "model": "C",
                 "frequency_hz": float(frequency_hz),
                 **ctx.char_fingerprint(NOMINAL_VDD)}),
            compute=compute))
    return units


def assemble_semantics(points: list[McPoint],
                       frequency_hz: float = 730e6) -> SemanticsAblation:
    """Fold the (flip, stale) points into the ablation summary."""
    return SemanticsAblation(
        frequency_hz=frequency_hz,
        summary_flip=points[0].summary(),
        summary_stale=points[1].summary())


def run_semantics_ablation(scale: str | Scale = "default",
                           seed: int = 2016,
                           context: ExperimentContext | None = None,
                           frequency_hz: float = 730e6,
                           sigma_v: float = 0.010,
                           store=None,
                           n_jobs: int | None = None) -> SemanticsAblation:
    """Compare fault semantics on the 8-bit matmul benchmark."""
    scale = get_scale(scale)
    ctx = context or ExperimentContext.create(scale, seed, store=store)
    if store is None:
        store = ctx.store
    units = semantics_point_units(ctx, seed=seed,
                                  frequency_hz=frequency_hz,
                                  sigma_v=sigma_v, n_jobs=n_jobs)
    points, _, _ = resolve_units(units, store)
    return assemble_semantics(points, frequency_hz=frequency_hz)


#: Schema version of the AdderTopologyAblation JSON representation;
#: bump on any incompatible change (store entries key on it).
ADDER_ABLATION_SCHEMA = 1

#: Per-topology seed stride: every topology derives its own operand
#: stream as ``seed + ADDER_SEED_STRIDE * index``, so topology units
#: are independent of the order in which they compute.
ADDER_SEED_STRIDE = 32452843


@dataclass
class AdderTopologyAblation:
    """Bit-width-dependent add PoFFs per adder topology.

    Doubles as the per-topology store artifact (kind
    ``adder_ablation``): a unit's result carries one topology's entry,
    :func:`assemble_adders` merges them into the full study.
    """

    #: topology -> (poff with 15-bit operands, poff with 32-bit operands)
    poffs_hz: dict[str, tuple[float, float]]

    def width_spread(self, kind: str) -> float:
        """PoFF(16-bit) / PoFF(32-bit): the paper's Fig. 4 spread
        (877/746 = 1.18 on the case-study silicon)."""
        narrow, wide = self.poffs_hz[kind]
        return narrow / wide

    # -- persistence -----------------------------------------------------

    def to_json(self) -> dict:
        """Lossless JSON body (floats round-trip exactly)."""
        return {
            "schema": ADDER_ABLATION_SCHEMA,
            "poffs_hz": {kind: [float(narrow), float(wide)]
                         for kind, (narrow, wide)
                         in self.poffs_hz.items()},
        }

    @classmethod
    def from_json(cls, payload: dict) -> "AdderTopologyAblation":
        """Inverse of :meth:`to_json` (exact round-trip)."""
        if payload.get("schema") != ADDER_ABLATION_SCHEMA:
            raise ValueError(
                f"AdderTopologyAblation schema mismatch: stored "
                f"{payload.get('schema')}, current "
                f"{ADDER_ABLATION_SCHEMA}")
        return cls(poffs_hz={
            kind: (narrow, wide)
            for kind, (narrow, wide) in payload["poffs_hz"].items()})


def _adder_study_fingerprint() -> dict:
    """Deterministic inputs of one topology's PoFF measurement.

    The topology ALUs are built fresh from the default cell library
    and calibrated to the default unit timing targets, so those two --
    not any pre-built ALU instance -- identify the hardware model in
    the cache key.
    """
    from repro.netlist.calibrate import DEFAULT_TARGETS_PS
    from repro.netlist.library import CellLibrary
    library = CellLibrary()
    return {
        "targets_ps": dict(DEFAULT_TARGETS_PS),
        "library": [library.vth, library.alpha, library.clk_to_q_ps,
                    library.setup_ps,
                    sorted(library.cell_delays_ps.items())],
    }


def _compute_adder_poffs(kind: str, n_samples: int, seed: int,
                         engine: str = "compiled") -> tuple[float, float]:
    """Measure one topology's (16-bit, 32-bit) add PoFFs."""
    alu = AluNetlist(AluConfig(adder_kind=kind))
    calibrate_alu(alu)
    rng = np.random.default_rng(seed)
    results = []
    for bits in (15, 32):
        operands = tuple(
            rng.integers(0, 1 << bits, n_samples + 1, dtype=np.uint64)
            for _ in range(2))
        dta = run_dta(alu, "l.add", n_samples, vdd=NOMINAL_VDD,
                      seed=seed, operands=operands, engine=engine)
        results.append(1e12 / float(dta.critical_ps.max()))
    return (results[0], results[1])


def adder_topology_units(scale: str | Scale, seed: int = 2016,
                         timing_dtype: str = "float64",
                         engine: str | None = None) -> list[PointUnit]:
    """One work unit per adder topology (planning runs no DTA).

    ``timing_dtype="float32"`` runs the per-topology DTA on the f32
    settle pipeline and keys the units separately (the f64 default
    adds no key field, so historical entries keep serving).
    ``engine`` overrides the dtype-implied circuit engine (e.g. the
    native backend); it never enters the unit keys.
    """
    scale = get_scale(scale)
    fingerprint = _adder_study_fingerprint()
    engine = engine or native.engine_for(timing_dtype)
    dtype_fields = {} if timing_dtype == "float64" \
        else {"timing_dtype": timing_dtype}
    units = []
    for index, kind in enumerate(ADDER_KINDS):
        def compute(kind=kind, index=index):
            return AdderTopologyAblation(poffs_hz={
                kind: _compute_adder_poffs(
                    kind, scale.fig4_samples,
                    seed + ADDER_SEED_STRIDE * index, engine=engine)})

        units.append(PointUnit(
            label=f"ablations:adder/{kind}",
            key=work_unit_key(
                "adder_ablation", "ablations", scale, seed,
                {"study": "adder_topology", "adder_kind": kind,
                 "topology_index": index,
                 "operand_bits": [15, 32], "vdd": NOMINAL_VDD,
                 "n_samples": scale.fig4_samples,
                 "glitch_model": "sensitized", **fingerprint,
                 **dtype_fields}),
            compute=compute))
    return units


def assemble_adders(parts: list[AdderTopologyAblation]) \
        -> AdderTopologyAblation:
    """Merge per-topology units into the full study."""
    merged: dict[str, tuple[float, float]] = {}
    for part in parts:
        merged.update(part.poffs_hz)
    return AdderTopologyAblation(poffs_hz=merged)


def run_adder_topology_ablation(scale: str | Scale = "default",
                                seed: int = 2016, store=None,
                                timing_dtype: str = "float64",
                                engine: str | None = None) \
        -> AdderTopologyAblation:
    """Measure the 16-vs-32-bit add PoFF spread for each topology.

    Each topology gets its own ALU, calibrated to identical unit timing
    targets, so only the *structure* (the arrival-time profile across
    endpoint bits) differs.  With a ``store``, previously measured
    topologies reload exactly and the rerun performs zero DTA work.
    """
    units = adder_topology_units(scale, seed=seed,
                                 timing_dtype=timing_dtype,
                                 engine=engine)
    parts, _, _ = resolve_units(units, store)
    return assemble_adders(parts)


def render_all(glitch: GlitchModelAblation, semantics: SemanticsAblation,
               adders: AdderTopologyAblation) -> str:
    """Human-readable ablation report."""
    lines = ["--- glitch model: PoFF inflation of the optimistic model ---"]
    for mnemonic in ("l.mul", "l.add", "l.sll"):
        lines.append(
            f"  {mnemonic:7s} sensitized "
            f"{glitch.poff_sensitized_hz[mnemonic] / 1e6:7.1f} MHz   "
            f"value-change "
            f"{glitch.poff_value_change_hz[mnemonic] / 1e6:7.1f} MHz   "
            f"(+{glitch.headroom_inflation(mnemonic):.0%})")
    lines.append(f"--- fault semantics @ "
                 f"{semantics.frequency_hz / 1e6:.0f} MHz (matmul 8-bit) ---")
    for name, summary in (("flip", semantics.summary_flip),
                          ("stale", semantics.summary_stale)):
        lines.append(
            f"  {name:5s} correct {summary['p_correct']:5.1%}  "
            f"FI/kCyc {summary['fi_rate_per_kcycle']:8.2f}  "
            f"MSE {summary['mean_error']:.3g}")
    lines.append("--- adder topology: add PoFF (16-bit / 32-bit ops) ---")
    for kind, (narrow, wide) in adders.poffs_hz.items():
        lines.append(
            f"  {kind:13s} {narrow / 1e6:7.1f} / {wide / 1e6:7.1f} MHz   "
            f"spread x{adders.width_spread(kind):.2f}")
    return "\n".join(lines)
