"""Experiment drivers regenerating every table and figure of the paper."""

from repro.experiments import ablations, fig1, fig2, fig4, fig5, fig6, fig7
from repro.experiments import fig_sta_margin, table1, table2
from repro.experiments.context import (
    ExperimentContext,
    NOISE_SIGMAS,
    NOMINAL_VDD,
)
from repro.experiments.scale import DEFAULT, PAPER, QUICK, Scale, get_scale

__all__ = [
    "DEFAULT",
    "ExperimentContext",
    "NOISE_SIGMAS",
    "NOMINAL_VDD",
    "PAPER",
    "QUICK",
    "Scale",
    "ablations",
    "fig1",
    "fig2",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig_sta_margin",
    "get_scale",
    "table1",
    "table2",
]
