"""Fig. 5: median benchmark under model C across Vdd and noise levels.

Six sub-figures -- supply voltages {0.7 V, 0.8 V} x noise sigmas
{0, 10, 25 mV} -- each showing the four application metrics of the
proposed statistical model over clock frequency, with the point of
first failure (PoFF) and its gain over the STA limit.

The paper's qualitative findings that must hold here:

* the PoFF sits *above* the STA limit for low noise (frequency
  over-scaling gain) and the gain shrinks as sigma grows, vanishing
  around sigma = 25 mV;
* more noise shifts all transitions to lower frequencies and smooths
  them; a higher supply voltage sharpens them;
* once the finish probability collapses, the output error of the
  remaining successful runs saturates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench.suite import build_kernel
from repro.experiments.context import (
    ExperimentContext,
    NOISE_SIGMAS,
)
from repro.experiments.scale import Scale, get_scale
from repro.fi.model_c import StatisticalInjector
from repro.mc.results import McPoint
from repro.mc.sweep import FrequencySweep, sweep_units
from repro.mc.units import PointUnit, resolve_units

#: Supply voltages of the six sub-figures.
PLOT_VDDS = (0.7, 0.8)


@dataclass
class Fig5Config:
    """One sub-figure's operating condition."""

    vdd: float
    sigma_v: float

    @property
    def label(self) -> str:
        return f"Vdd={self.vdd:.1f}V sigma={self.sigma_v * 1e3:.0f}mV"


@dataclass
class Fig5Result:
    config: Fig5Config
    sweep: FrequencySweep
    sta_limit_hz: float

    @property
    def poff_hz(self) -> float | None:
        return self.sweep.poff_hz()

    @property
    def poff_gain(self) -> float | None:
        return self.sweep.poff_gain_over_sta()


def model_c_onset_hz(ctx: ExperimentContext, vdd: float,
                     sigma_v: float) -> float:
    """First frequency at which model C can inject any fault.

    The largest DTA critical period over all instructions, stretched by
    the worst-case clipped droop, bounds the onset from below.
    """
    characterization = ctx.characterization(vdd)
    max_critical = max(
        float(cdfs.row_max_sorted[-1])
        for cdfs in characterization.cdfs.values())
    droop = ctx.noise(sigma_v).max_droop_v
    factor = float(ctx.vdd_model.scale_factor(vdd - droop, vdd))
    return 1e12 / (max_critical * factor)


def transition_grid(ctx: ExperimentContext, vdd: float, sigma_v: float,
                    points: int) -> list[float]:
    """Frequency grid covering the transition region of one condition."""
    onset = model_c_onset_hz(ctx, vdd, sigma_v)
    top = 1.30 * ctx.sta_limit_hz(vdd)
    return list(np.linspace(0.97 * onset, max(top, 1.05 * onset), points))


def conditions() -> list[Fig5Config]:
    """The six (Vdd, sigma) sub-figure conditions, in figure order."""
    return [Fig5Config(vdd=vdd, sigma_v=sigma)
            for vdd in PLOT_VDDS for sigma in NOISE_SIGMAS]


def point_units(ctx: ExperimentContext, seed: int = 2016,
                benchmark: str = "median",
                n_jobs: int | None = None) -> list[PointUnit]:
    """Decompose the figure into per-frequency Monte-Carlo units.

    Units are ordered by condition then ascending frequency, matching
    :func:`assemble`'s grouping.  Building them forces the per-voltage
    characterizations (needed for the transition grids), so campaign
    workers fork with the expensive substrate already in place.
    """
    kernel = build_kernel(benchmark, ctx.scale.kernel_scale)
    units: list[PointUnit] = []
    for config in conditions():
        characterization = ctx.characterization(config.vdd)
        noise = ctx.noise(config.sigma_v)

        def factory(f, rng, characterization=characterization,
                    noise=noise, vdd=config.vdd):
            return StatisticalInjector(
                characterization, f, noise,
                vdd_operating=vdd,
                vdd_model=ctx.vdd_model, rng=rng)

        units.extend(sweep_units(
            kernel, factory,
            frequencies_hz=transition_grid(
                ctx, config.vdd, config.sigma_v, ctx.scale.freq_points),
            n_trials=ctx.scale.trials,
            seed=seed,
            n_jobs=n_jobs,
            experiment="fig5",
            scale=ctx.scale,
            condition={"vdd": config.vdd, "sigma_v": config.sigma_v,
                       "model": "C",
                       **ctx.char_fingerprint(config.vdd)}))
    return units


def assemble(ctx: ExperimentContext, points: list[McPoint],
             benchmark: str = "median") -> list[Fig5Result]:
    """Group resolved points back into the six sub-figure sweeps."""
    results = []
    offset = 0
    for config in conditions():
        grid = sorted(transition_grid(
            ctx, config.vdd, config.sigma_v, ctx.scale.freq_points))
        sweep = FrequencySweep(
            kernel_name=benchmark,
            frequencies_hz=grid,
            points=points[offset:offset + len(grid)],
            sta_limit_hz=ctx.sta_limit_hz(config.vdd),
            config={"vdd": config.vdd, "sigma_v": config.sigma_v,
                    "model": "C"})
        offset += len(grid)
        results.append(Fig5Result(
            config=config,
            sweep=sweep,
            sta_limit_hz=ctx.sta_limit_hz(config.vdd)))
    return results


def run(scale: str | Scale = "default", seed: int = 2016,
        context: ExperimentContext | None = None,
        benchmark: str = "median",
        store=None, n_jobs: int | None = None) -> list[Fig5Result]:
    """Run all six sub-figures.

    ``store`` serves already-computed points without re-simulating and
    persists fresh ones; ``n_jobs`` switches every point to per-trial
    child-seed streams executed over that many fork workers.
    """
    scale = get_scale(scale)
    ctx = context or ExperimentContext.create(scale, seed, store=store)
    if store is None:
        store = ctx.store
    units = point_units(ctx, seed=seed, benchmark=benchmark,
                        n_jobs=n_jobs)
    points, _, _ = resolve_units(units, store)
    return assemble(ctx, points, benchmark=benchmark)


def render(results: list[Fig5Result]) -> str:
    """Human-readable summary per sub-figure."""
    lines = []
    for result in results:
        gain = result.poff_gain
        gain_text = f"{gain:+.1%}" if gain is not None else "beyond sweep"
        lines.append(
            f"--- {result.config.label}  STA "
            f"{result.sta_limit_hz / 1e6:.0f} MHz, PoFF gain {gain_text} ---")
        lines.append(f"{'f [MHz]':>9s} {'finished':>9s} {'correct':>9s} "
                     f"{'FI/kCyc':>9s} {'rel.err':>8s}")
        for row in result.sweep.rows():
            lines.append(
                f"{row['frequency_mhz']:9.1f} {row['p_finished']:9.1%} "
                f"{row['p_correct']:9.1%} "
                f"{row['fi_rate_per_kcycle']:9.2f} "
                f"{row['mean_relative_error']:8.1%}")
    return "\n".join(lines)
