"""Table 1: benchmark properties.

Regenerates the paper's benchmark-overview table from measurement: the
compute/control character is derived from the retired instruction mix
(profiled on the ISS), the cycle counts are measured fault-free, and
the size/metric columns come from the kernel definitions.

Each benchmark's profiled row is one **work unit** (store kind
``table1_row``): rows persist in the result store and ride the
campaign rails, so ``repro campaign run all`` covers the table and a
warm ``repro table1`` rerun profiles nothing.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.bench.suite import BENCHMARK_NAMES, build_kernel
from repro.experiments.scale import Scale, get_scale
from repro.mc.units import WorkUnit, resolve_units, work_unit_key
from repro.sim.cpu import Cpu
from repro.sim.machine import MachineConfig

#: Schema version of the Table1Row JSON representation.
TABLE1_ROW_SCHEMA = 1

#: The table's historical benchmark-input seed.  It is a *kernel data*
#: seed, not a Monte-Carlo master seed, so it stays fixed across
#: campaign seeds -- `repro table1` and every campaign share entries.
TABLE1_SEED = 42


def _rating(fraction: float, thresholds: tuple[float, float]) -> str:
    """Map a fraction to the paper's -, +, ++ rating scale."""
    low, high = thresholds
    if fraction >= high:
        return "++"
    if fraction >= low:
        return "+"
    return "-"


@dataclass
class Table1Row:
    """One benchmark's measured properties."""

    name: str
    size: str
    cycles: int
    kernel_cycles: int
    compute_fraction: float
    control_fraction: float
    compute_rating: str
    control_rating: str
    error_metric: str

    def as_dict(self) -> dict:
        return {
            "benchmark": self.name,
            "size": self.size,
            "cycles": self.cycles,
            "kernel_cycles": self.kernel_cycles,
            "compute": self.compute_rating,
            "control": self.control_rating,
            "compute_fraction": round(self.compute_fraction, 3),
            "control_fraction": round(self.control_fraction, 3),
            "output_error": self.error_metric,
        }

    # -- persistence -----------------------------------------------------

    def to_json(self) -> dict:
        """Lossless JSON body (schema ``TABLE1_ROW_SCHEMA``)."""
        return {
            "schema": TABLE1_ROW_SCHEMA,
            "name": self.name,
            "size": self.size,
            "cycles": int(self.cycles),
            "kernel_cycles": int(self.kernel_cycles),
            "compute_fraction": float(self.compute_fraction),
            "control_fraction": float(self.control_fraction),
            "compute_rating": self.compute_rating,
            "control_rating": self.control_rating,
            "error_metric": self.error_metric,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "Table1Row":
        """Inverse of :meth:`to_json` (exact round-trip)."""
        if payload.get("schema") != TABLE1_ROW_SCHEMA:
            raise ValueError(
                f"Table1Row schema mismatch: stored "
                f"{payload.get('schema')}, current {TABLE1_ROW_SCHEMA}")
        return cls(
            name=payload["name"],
            size=payload["size"],
            cycles=payload["cycles"],
            kernel_cycles=payload["kernel_cycles"],
            compute_fraction=payload["compute_fraction"],
            control_fraction=payload["control_fraction"],
            compute_rating=payload["compute_rating"],
            control_rating=payload["control_rating"],
            error_metric=payload["error_metric"],
        )


_SIZE_LABELS = {
    "median": lambda p: f"{p['size']} values",
    "mat_mult_8bit": lambda p: f"{p['size']}x{p['size']} matr.",
    "mat_mult_16bit": lambda p: f"{p['size']}x{p['size']} matr.",
    "kmeans": lambda p: f"{p['points']} points (2D)",
    "dijkstra": lambda p: f"{p['nodes']} nodes",
}

#: Instruction classes counted as "compute" (multiplier-weighted data
#: path) vs "control" for the rating columns.
_COMPUTE_CLASSES = ("multiplier",)
_CONTROL_CLASSES = ("control", "compare")


def _profile_row(name: str, scale: Scale, seed: int) -> Table1Row:
    """Measure one benchmark's row on the profiling ISS."""
    kernel = build_kernel(name, scale.kernel_scale, seed)
    cpu = Cpu(kernel.program, config=MachineConfig(), profile=True)
    result = cpu.run(kernel.entry)
    if not result.finished:
        raise RuntimeError(f"{name} did not finish fault-free")
    counts = result.class_counts
    total = sum(counts.values()) or 1
    compute = sum(counts.get(c, 0) for c in _COMPUTE_CLASSES) / total
    control = sum(counts.get(c, 0) for c in _CONTROL_CLASSES) / total
    return Table1Row(
        name=name,
        size=_SIZE_LABELS[name](kernel.params),
        cycles=result.cycles,
        kernel_cycles=result.kernel_cycles,
        compute_fraction=compute,
        control_fraction=control,
        compute_rating=_rating(compute, (0.015, 0.08)),
        control_rating=_rating(control, (0.25, 0.40)),
        error_metric=kernel.metric_name,
    )


def row_units(scale: str | Scale = "default",
              seed: int = TABLE1_SEED) -> list[WorkUnit]:
    """One work unit per benchmark row, in table order.

    The key carries the kernel-input seed and the profiled machine
    configuration fingerprint (the defaults the profiling CPU runs
    with), so a machine-model change invalidates persisted rows.
    """
    scale = get_scale(scale)
    units = []
    for name in BENCHMARK_NAMES:
        def compute(name=name, scale=scale, seed=seed):
            return _profile_row(name, scale, seed)

        units.append(WorkUnit(
            label=f"table1:{name}",
            key=work_unit_key(
                "table1_row", "table1", scale, seed,
                {"benchmark": name,
                 "machine": asdict(MachineConfig())},
                stream="iss-profile"),
            compute=compute))
    return units


def run(scale: str | Scale = "default", seed: int = TABLE1_SEED,
        store=None) -> list[Table1Row]:
    """Measure Table 1 for every benchmark.

    Args:
        scale: ``paper`` scale measures the paper's problem sizes;
            other presets use the scaled-down kernels.
        seed: benchmark input seed.
        store: optional result store; profiled rows persist there and
            a warm rerun profiles nothing.
    """
    rows, _, _ = resolve_units(row_units(scale, seed), store)
    return rows


def render(rows: list[Table1Row]) -> str:
    """Human-readable table."""
    header = (f"{'benchmark':16s} {'size':16s} {'cycles':>9s} "
              f"{'compute':>8s} {'control':>8s}  output error")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.name:16s} {row.size:16s} {row.cycles:>9d} "
            f"{row.compute_rating:>8s} {row.control_rating:>8s}  "
            f"{row.error_metric}")
    return "\n".join(lines)
