"""Fig. 2: DTA-extracted timing-error probability CDFs.

Reproduces the cumulative distribution functions of the dynamic
timing-error probability over clock frequency, for the multiplication
and addition instructions, two endpoint bits (a low- and a
high-significance one) and two supply voltages.

The paper's qualitative findings that must hold here:

* ``l.mul`` starts failing at lower frequencies than ``l.add``;
* higher-significance bits fail earlier than low bits;
* a higher supply voltage shifts every CDF to the right.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.context import ExperimentContext
from repro.experiments.scale import Scale, get_scale

#: Endpoint bits plotted by the paper.
PLOT_BITS = (3, 24)

#: Supply voltages plotted by the paper.
PLOT_VDDS = (0.7, 0.8)

#: Frequency axis of the paper's plot [Hz].
FREQ_AXIS = (800e6, 2000e6)


@dataclass
class CdfCurve:
    """One CDF curve: error probability versus frequency."""

    mnemonic: str
    bit: int
    vdd: float
    frequencies_hz: np.ndarray
    probabilities: np.ndarray

    def first_failure_hz(self) -> float | None:
        """Lowest plotted frequency with non-zero error probability."""
        nonzero = np.flatnonzero(self.probabilities > 0)
        if nonzero.size == 0:
            return None
        return float(self.frequencies_hz[nonzero[0]])


@dataclass
class Fig2Result:
    curves: list[CdfCurve]

    def curve(self, mnemonic: str, bit: int, vdd: float) -> CdfCurve:
        for candidate in self.curves:
            if (candidate.mnemonic == mnemonic and candidate.bit == bit
                    and candidate.vdd == vdd):
                return candidate
        raise KeyError(f"no curve for {mnemonic} bit {bit} @ {vdd} V")


def run(scale: str | Scale = "default", seed: int = 2016,
        context: ExperimentContext | None = None,
        mnemonics: tuple[str, ...] = ("l.mul", "l.add"),
        points: int = 241) -> Fig2Result:
    """Extract the Fig. 2 CDF curves from DTA characterizations."""
    scale = get_scale(scale)
    ctx = context or ExperimentContext.create(scale, seed)
    frequencies = np.linspace(FREQ_AXIS[0], FREQ_AXIS[1], points)
    curves = []
    for vdd in PLOT_VDDS:
        characterization = ctx.characterization(vdd)
        for mnemonic in mnemonics:
            cdfs = characterization.cdfs[mnemonic]
            probs = np.stack([
                cdfs.error_probs(1e12 / f) for f in frequencies])
            for bit in PLOT_BITS:
                curves.append(CdfCurve(
                    mnemonic=mnemonic,
                    bit=bit,
                    vdd=vdd,
                    frequencies_hz=frequencies,
                    probabilities=probs[:, bit],
                ))
    return Fig2Result(curves=curves)


def render(result: Fig2Result) -> str:
    """Summarize each curve by onset and selected probabilities."""
    lines = [f"{'instr':8s} {'bit':>4s} {'Vdd':>5s} {'onset MHz':>10s} "
             f"{'P@1.0GHz':>9s} {'P@1.4GHz':>9s} {'P@1.8GHz':>9s}"]
    for curve in result.curves:
        onset = curve.first_failure_hz()
        samples = []
        for f_hz in (1.0e9, 1.4e9, 1.8e9):
            index = int(np.argmin(np.abs(curve.frequencies_hz - f_hz)))
            samples.append(curve.probabilities[index])
        lines.append(
            f"{curve.mnemonic:8s} {curve.bit:>4d} {curve.vdd:>5.2f} "
            f"{(onset or 0) / 1e6:>10.0f} "
            f"{samples[0]:>9.3f} {samples[1]:>9.3f} {samples[2]:>9.3f}")
    return "\n".join(lines)
