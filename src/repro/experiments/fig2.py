"""Fig. 2: DTA-extracted timing-error probability CDFs.

Reproduces the cumulative distribution functions of the dynamic
timing-error probability over clock frequency, for the multiplication
and addition instructions, two endpoint bits (a low- and a
high-significance one) and two supply voltages.

The paper's qualitative findings that must hold here:

* ``l.mul`` starts failing at lower frequencies than ``l.add``;
* higher-significance bits fail earlier than low bits;
* a higher supply voltage shifts every CDF to the right.

The figure is pure DTA work: each curve is fully determined by one
characterization and the plotted frequency axis.  Curves are therefore
**work units** (see :mod:`repro.mc.units`) persisted in the result
store under the ``fig2_curve`` kind, so a warm rerun -- or a campaign
worker -- reloads them bit-identically instead of re-running DTA.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.context import ExperimentContext
from repro.experiments.scale import Scale, get_scale
from repro.mc.units import WorkUnit, resolve_units, work_unit_key

#: Endpoint bits plotted by the paper.
PLOT_BITS = (3, 24)

#: Supply voltages plotted by the paper.
PLOT_VDDS = (0.7, 0.8)

#: Frequency axis of the paper's plot [Hz].
FREQ_AXIS = (800e6, 2000e6)

#: Schema version of the CdfCurve JSON representation; bump on any
#: incompatible change (store entries key on it).
FIG2_CURVE_SCHEMA = 1


@dataclass
class CdfCurve:
    """One CDF curve: error probability versus frequency."""

    mnemonic: str
    bit: int
    vdd: float
    frequencies_hz: np.ndarray
    probabilities: np.ndarray

    def first_failure_hz(self) -> float | None:
        """Lowest plotted frequency with non-zero error probability."""
        nonzero = np.flatnonzero(self.probabilities > 0)
        if nonzero.size == 0:
            return None
        return float(self.frequencies_hz[nonzero[0]])

    # -- persistence -----------------------------------------------------

    def to_json(self) -> dict:
        """Lossless JSON body (schema ``FIG2_CURVE_SCHEMA``)."""
        from repro.store.serialize import encode
        return {
            "schema": FIG2_CURVE_SCHEMA,
            "mnemonic": self.mnemonic,
            "bit": int(self.bit),
            "vdd": float(self.vdd),
            "frequencies_hz": encode(np.asarray(self.frequencies_hz)),
            "probabilities": encode(np.asarray(self.probabilities)),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "CdfCurve":
        """Inverse of :meth:`to_json` (exact numpy round-trip)."""
        from repro.store.serialize import decode
        if payload.get("schema") != FIG2_CURVE_SCHEMA:
            raise ValueError(
                f"CdfCurve schema mismatch: stored "
                f"{payload.get('schema')}, current {FIG2_CURVE_SCHEMA}")
        return cls(
            mnemonic=payload["mnemonic"],
            bit=payload["bit"],
            vdd=payload["vdd"],
            frequencies_hz=decode(payload["frequencies_hz"]),
            probabilities=decode(payload["probabilities"]),
        )


@dataclass
class Fig2Result:
    curves: list[CdfCurve]

    def curve(self, mnemonic: str, bit: int, vdd: float) -> CdfCurve:
        for candidate in self.curves:
            if (candidate.mnemonic == mnemonic and candidate.bit == bit
                    and candidate.vdd == vdd):
                return candidate
        raise KeyError(f"no curve for {mnemonic} bit {bit} @ {vdd} V")


def prepare(ctx: ExperimentContext) -> None:
    """Force the per-voltage characterizations (store-served when
    present) before sharding units over workers, so they fork with the
    expensive substrate in place and never race to re-characterize."""
    for vdd in PLOT_VDDS:
        ctx.characterization(vdd)


def curve_units(ctx: ExperimentContext, seed: int = 2016,
                mnemonics: tuple[str, ...] = ("l.mul", "l.add"),
                points: int = 241) -> list[WorkUnit]:
    """Decompose the figure into one work unit per CDF curve.

    Units are ordered (vdd, mnemonic, bit) exactly like the historical
    ``run`` loop, so unit-resolved results are bit-identical to it.
    Planning is cheap -- the frequency grid is static -- and the
    characterizations load lazily inside the compute closures (cached
    per context), so a fully warm rerun touches neither DTA nor the
    characterization tables; callers about to fan units out over
    workers call :func:`prepare` first.
    """
    frequencies = np.linspace(FREQ_AXIS[0], FREQ_AXIS[1], points)
    prob_stacks: dict[tuple[float, str], np.ndarray] = {}

    def stack_for(vdd: float, mnemonic: str) -> np.ndarray:
        # All PLOT_BITS curves of one (vdd, mnemonic) slice the same
        # (n_frequencies, 32) stack; memoize it so a cold resolve
        # evaluates each CDF grid once, not once per bit.
        found = prob_stacks.get((vdd, mnemonic))
        if found is None:
            cdfs = ctx.characterization(vdd).cdfs[mnemonic]
            found = np.stack([
                cdfs.error_probs(1e12 / f) for f in frequencies])
            prob_stacks[(vdd, mnemonic)] = found
        return found

    units: list[WorkUnit] = []
    for vdd in PLOT_VDDS:
        for mnemonic in mnemonics:
            for bit in PLOT_BITS:
                def compute(mnemonic=mnemonic, bit=bit, vdd=vdd):
                    return CdfCurve(
                        mnemonic=mnemonic,
                        bit=bit,
                        vdd=vdd,
                        frequencies_hz=frequencies,
                        probabilities=stack_for(vdd, mnemonic)[:, bit],
                    )

                units.append(WorkUnit(
                    label=f"fig2:{mnemonic}/bit{bit}@{vdd:.2f}V",
                    key=work_unit_key(
                        "fig2_curve", "fig2", ctx.scale, seed,
                        {"mnemonic": mnemonic, "bit": bit,
                         "vdd": float(vdd), "points": points,
                         "freq_axis": [float(f) for f in FREQ_AXIS],
                         **ctx.char_fingerprint(vdd)}),
                    compute=compute))
    return units


def assemble(curves: list[CdfCurve]) -> Fig2Result:
    """Fold resolved curve units (in unit order) into the result."""
    return Fig2Result(curves=list(curves))


def run(scale: str | Scale = "default", seed: int = 2016,
        context: ExperimentContext | None = None,
        mnemonics: tuple[str, ...] = ("l.mul", "l.add"),
        points: int = 241, store=None) -> Fig2Result:
    """Extract the Fig. 2 CDF curves from DTA characterizations.

    With a ``store`` (or a store-attached context), previously
    computed curves are reloaded bit-identically and the rerun
    performs zero DTA work.
    """
    scale = get_scale(scale)
    ctx = context or ExperimentContext.create(scale, seed, store=store)
    if store is None:
        store = ctx.store
    units = curve_units(ctx, seed=seed, mnemonics=mnemonics,
                        points=points)
    curves, _, _ = resolve_units(units, store)
    return assemble(curves)


def render(result: Fig2Result) -> str:
    """Summarize each curve by onset and selected probabilities.

    A curve that never fails on the plotted axis renders its onset as
    ``-`` (distinguishable from a real 0 MHz onset).
    """
    lines = [f"{'instr':8s} {'bit':>4s} {'Vdd':>5s} {'onset MHz':>10s} "
             f"{'P@1.0GHz':>9s} {'P@1.4GHz':>9s} {'P@1.8GHz':>9s}"]
    for curve in result.curves:
        onset = curve.first_failure_hz()
        samples = []
        for f_hz in (1.0e9, 1.4e9, 1.8e9):
            index = int(np.argmin(np.abs(curve.frequencies_hz - f_hz)))
            samples.append(curve.probabilities[index])
        onset_text = f"{onset / 1e6:.0f}" if onset is not None else "-"
        lines.append(
            f"{curve.mnemonic:8s} {curve.bit:>4d} {curve.vdd:>5.2f} "
            f"{onset_text:>10s} "
            f"{samples[0]:>9.3f} {samples[1]:>9.3f} {samples[2]:>9.3f}")
    return "\n".join(lines)
