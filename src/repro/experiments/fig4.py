"""Fig. 4: MSE versus frequency for individual arithmetic instructions.

Reproduces the instruction-characterization study (paper Section 4.1):
addition with 16-bit and with 32-bit operand ranges, and multiplication
with 16-bit operand ranges (32-bit results), all with uniformly random
operands at 0.7 V and sigma = 10 mV supply noise.

Implementation: the DTA engine provides, per characterization cycle,
the exact endpoint arrival times *and* the correct result value.  For
each swept frequency every cycle draws its own noise value; endpoints
whose scaled critical period exceeds the clock period flip, and the MSE
between the corrupted and correct result streams is reported.

The paper's qualitative findings that must hold here: the points of
first calculation failure are ordered mul < add-32 < add-16 in
frequency, and the MSE rises with frequency and saturates near the
operand-width-determined maximum about 15 % beyond the PoFF.

Each instruction variant is one **work unit** (see
:mod:`repro.mc.units`): its curve is fully determined by the ALU
timing model, the variant's derived seed and the sweep parameters, and
persists in the result store under the ``fig4_curve`` kind.  Every
variant owns an independent random stream (derived from the master
seed and the variant index), so units are order-independent and can be
sharded across campaign workers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.context import ExperimentContext, NOMINAL_VDD
from repro.experiments.scale import Scale, get_scale
from repro.mc.units import WorkUnit, resolve_units, work_unit_key
from repro.timing.characterize import alu_fingerprint
from repro.timing.dta import run_dta
from repro.timing.noise import VoltageNoise

#: Instruction variants of the study: (label, mnemonic, operand bits,
#: signed operands).  Addition with a 16-bit value range uses 15-bit
#: unsigned operands so the result also stays within 16 bits (the
#: paper: "operands with a 16-bit value range and a 16-bit result");
#: multiplication covers a *signed* 16-bit value range, whose sign
#: extension excites the full multiplier array (32-bit result).
VARIANTS = (
    ("l.add 16-bit", "l.add", 15, False),
    ("l.add 32-bit", "l.add", 32, False),
    ("l.mul 32-bit", "l.mul", 16, True),
)

#: Default noise level of the study.
SIGMA_V = 0.010

#: Frequency axis of the paper's plot [Hz].
FREQ_AXIS = (650e6, 1250e6)

#: Schema version of the InstructionMseCurve JSON representation; bump
#: on any incompatible change (store entries key on it).
FIG4_CURVE_SCHEMA = 1

#: Per-variant seed stride: every variant derives its own master seed
#: as ``seed + 4 + FIG4_SEED_STRIDE * index`` (the ``+ 4`` is the
#: study's historical RNG salt), so variant curves are independent of
#: the order in which they compute.
FIG4_SEED_STRIDE = 15485863


@dataclass
class InstructionMseCurve:
    """MSE-vs-frequency curve of one instruction variant."""

    label: str
    mnemonic: str
    operand_bits: int
    frequencies_hz: np.ndarray
    mse: np.ndarray

    def poff_hz(self) -> float | None:
        """Lowest swept frequency with MSE > 0."""
        nonzero = np.flatnonzero(self.mse > 0)
        if nonzero.size == 0:
            return None
        return float(self.frequencies_hz[nonzero[0]])

    # -- persistence -----------------------------------------------------

    def to_json(self) -> dict:
        """Lossless JSON body (schema ``FIG4_CURVE_SCHEMA``)."""
        from repro.store.serialize import encode
        return {
            "schema": FIG4_CURVE_SCHEMA,
            "label": self.label,
            "mnemonic": self.mnemonic,
            "operand_bits": int(self.operand_bits),
            "frequencies_hz": encode(np.asarray(self.frequencies_hz)),
            "mse": encode(np.asarray(self.mse)),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "InstructionMseCurve":
        """Inverse of :meth:`to_json` (exact numpy round-trip)."""
        from repro.store.serialize import decode
        if payload.get("schema") != FIG4_CURVE_SCHEMA:
            raise ValueError(
                f"InstructionMseCurve schema mismatch: stored "
                f"{payload.get('schema')}, current {FIG4_CURVE_SCHEMA}")
        return cls(
            label=payload["label"],
            mnemonic=payload["mnemonic"],
            operand_bits=payload["operand_bits"],
            frequencies_hz=decode(payload["frequencies_hz"]),
            mse=decode(payload["mse"]),
        )


@dataclass
class Fig4Result:
    curves: list[InstructionMseCurve]
    vdd: float
    sigma_v: float

    def curve(self, label: str) -> InstructionMseCurve:
        for candidate in self.curves:
            if candidate.label == label:
                return candidate
        raise KeyError(f"no curve labelled {label!r}")


def _wrap_sq_error(corrupted: np.ndarray, correct: np.ndarray) -> np.ndarray:
    diff = (corrupted - correct) & np.uint64(0xFFFFFFFF)
    wrapped = np.minimum(diff, np.uint64(1 << 32) - diff)
    return wrapped.astype(np.float64) ** 2


def _variant_rng(seed: int, index: int) -> np.random.Generator:
    """Independent random stream of one instruction variant.

    Each variant derives its own stream from the master seed and its
    variant index, so a variant's curve does not depend on which other
    variants ran before it -- the property that lets campaign workers
    compute variants in any order or in parallel.
    """
    return np.random.default_rng(seed + 4 + FIG4_SEED_STRIDE * index)


def _compute_curve(ctx: ExperimentContext, index: int, seed: int,
                   sigma_v: float, points: int) -> InstructionMseCurve:
    """Run the DTA + noise-corruption sweep of one variant."""
    label, mnemonic, bits, signed = VARIANTS[index]
    frequencies = np.linspace(FREQ_AXIS[0], FREQ_AXIS[1], points)
    noise = VoltageNoise(sigma_v)
    rng = _variant_rng(seed, index)
    n_samples = ctx.scale.fig4_samples
    if signed:
        low, high = -(1 << (bits - 1)), 1 << (bits - 1)
        operands = tuple(
            (rng.integers(low, high, n_samples + 1, dtype=np.int64)
             & 0xFFFFFFFF).astype(np.uint64)
            for _ in range(2))
    else:
        operands = tuple(
            rng.integers(0, 1 << bits, n_samples + 1, dtype=np.uint64)
            for _ in range(2))
    dta = run_dta(ctx.alu, mnemonic, n_samples, vdd=NOMINAL_VDD,
                  seed=seed, operands=operands, engine=ctx.dta_engine)
    critical = dta.critical_ps  # (n, 32)
    correct = dta.values.astype(np.uint64)
    bit_weights = (np.uint64(1) << np.arange(32, dtype=np.uint64))
    mse = np.empty_like(frequencies)
    for fi, frequency in enumerate(frequencies):
        period = 1e12 / frequency
        droops = noise.sample(n_samples, rng)
        factors = np.asarray(ctx.vdd_model.scale_factor(
            NOMINAL_VDD + droops, NOMINAL_VDD))
        violated = critical * factors[:, None] > period
        masks = (violated * bit_weights[None, :]).sum(
            axis=1, dtype=np.uint64)
        corrupted = correct ^ masks
        mse[fi] = _wrap_sq_error(corrupted, correct).mean()
    return InstructionMseCurve(
        label=label, mnemonic=mnemonic, operand_bits=bits,
        frequencies_hz=frequencies, mse=mse)


def curve_units(ctx: ExperimentContext, seed: int = 2016,
                sigma_v: float = SIGMA_V,
                points: int | None = None) -> list[WorkUnit]:
    """Decompose the study into one work unit per instruction variant.

    Planning is cheap (no DTA runs until a unit computes); the cache
    key carries the ALU timing-model fingerprint, the variant's sweep
    parameters and the sample count, so hardware-model or scale
    changes invalidate persisted curves instead of serving stale ones.
    """
    points = points or max(ctx.scale.freq_points * 4, 25)
    units: list[WorkUnit] = []
    for index, (label, mnemonic, bits, signed) in enumerate(VARIANTS):
        def compute(index=index):
            return _compute_curve(ctx, index, seed, sigma_v, points)

        units.append(WorkUnit(
            label=f"fig4:{label}",
            key=work_unit_key(
                "fig4_curve", "fig4", ctx.scale, seed,
                {"variant": label, "mnemonic": mnemonic,
                 "operand_bits": bits, "signed": signed,
                 "variant_index": index,
                 "vdd": NOMINAL_VDD, "sigma_v": float(sigma_v),
                 "points": points,
                 "freq_axis": [float(f) for f in FREQ_AXIS],
                 "n_samples": ctx.scale.fig4_samples,
                 "glitch_model": "sensitized",
                 "alu": alu_fingerprint(ctx.alu),
                 **ctx.dtype_key_fields()}),
            compute=compute))
    return units


def assemble(curves: list[InstructionMseCurve],
             sigma_v: float = SIGMA_V) -> Fig4Result:
    """Fold resolved curve units (in unit order) into the result."""
    return Fig4Result(curves=list(curves), vdd=NOMINAL_VDD,
                      sigma_v=sigma_v)


def run(scale: str | Scale = "default", seed: int = 2016,
        context: ExperimentContext | None = None,
        sigma_v: float = SIGMA_V, points: int | None = None,
        store=None) -> Fig4Result:
    """Run the instruction MSE study.

    With a ``store`` (or a store-attached context), previously
    computed curves are reloaded bit-identically and the rerun
    performs zero DTA work.
    """
    scale = get_scale(scale)
    ctx = context or ExperimentContext.create(scale, seed, store=store)
    if store is None:
        store = ctx.store
    units = curve_units(ctx, seed=seed, sigma_v=sigma_v, points=points)
    curves, _, _ = resolve_units(units, store)
    return assemble(curves, sigma_v=sigma_v)


def render(result: Fig4Result) -> str:
    """Human-readable PoFF summary plus MSE samples."""
    lines = [f"Fig.4 @ {result.vdd} V, sigma = {result.sigma_v * 1e3:.0f} mV"]
    for curve in result.curves:
        poff = curve.poff_hz()
        peak = curve.mse.max()
        poff_text = (f"{poff / 1e6:7.1f} MHz" if poff is not None
                     else f"{'-':>7s} MHz")
        lines.append(
            f"  {curve.label:14s} PoFF = "
            f"{poff_text}   saturation MSE = {peak:.3e}")
    return "\n".join(lines)
