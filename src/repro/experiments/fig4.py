"""Fig. 4: MSE versus frequency for individual arithmetic instructions.

Reproduces the instruction-characterization study (paper Section 4.1):
addition with 16-bit and with 32-bit operand ranges, and multiplication
with 16-bit operand ranges (32-bit results), all with uniformly random
operands at 0.7 V and sigma = 10 mV supply noise.

Implementation: the DTA engine provides, per characterization cycle,
the exact endpoint arrival times *and* the correct result value.  For
each swept frequency every cycle draws its own noise value; endpoints
whose scaled critical period exceeds the clock period flip, and the MSE
between the corrupted and correct result streams is reported.

The paper's qualitative findings that must hold here: the points of
first calculation failure are ordered mul < add-32 < add-16 in
frequency, and the MSE rises with frequency and saturates near the
operand-width-determined maximum about 15 % beyond the PoFF.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.context import ExperimentContext, NOMINAL_VDD
from repro.experiments.scale import Scale, get_scale
from repro.timing.dta import run_dta
from repro.timing.noise import VoltageNoise

#: Instruction variants of the study: (label, mnemonic, operand bits,
#: signed operands).  Addition with a 16-bit value range uses 15-bit
#: unsigned operands so the result also stays within 16 bits (the
#: paper: "operands with a 16-bit value range and a 16-bit result");
#: multiplication covers a *signed* 16-bit value range, whose sign
#: extension excites the full multiplier array (32-bit result).
VARIANTS = (
    ("l.add 16-bit", "l.add", 15, False),
    ("l.add 32-bit", "l.add", 32, False),
    ("l.mul 32-bit", "l.mul", 16, True),
)

#: Default noise level of the study.
SIGMA_V = 0.010

#: Frequency axis of the paper's plot [Hz].
FREQ_AXIS = (650e6, 1250e6)


@dataclass
class InstructionMseCurve:
    """MSE-vs-frequency curve of one instruction variant."""

    label: str
    mnemonic: str
    operand_bits: int
    frequencies_hz: np.ndarray
    mse: np.ndarray

    def poff_hz(self) -> float | None:
        """Lowest swept frequency with MSE > 0."""
        nonzero = np.flatnonzero(self.mse > 0)
        if nonzero.size == 0:
            return None
        return float(self.frequencies_hz[nonzero[0]])


@dataclass
class Fig4Result:
    curves: list[InstructionMseCurve]
    vdd: float
    sigma_v: float

    def curve(self, label: str) -> InstructionMseCurve:
        for candidate in self.curves:
            if candidate.label == label:
                return candidate
        raise KeyError(f"no curve labelled {label!r}")


def _wrap_sq_error(corrupted: np.ndarray, correct: np.ndarray) -> np.ndarray:
    diff = (corrupted - correct) & np.uint64(0xFFFFFFFF)
    wrapped = np.minimum(diff, np.uint64(1 << 32) - diff)
    return wrapped.astype(np.float64) ** 2


def run(scale: str | Scale = "default", seed: int = 2016,
        context: ExperimentContext | None = None,
        sigma_v: float = SIGMA_V, points: int | None = None) -> Fig4Result:
    """Run the instruction MSE study."""
    scale = get_scale(scale)
    ctx = context or ExperimentContext.create(scale, seed)
    points = points or max(scale.freq_points * 4, 25)
    frequencies = np.linspace(FREQ_AXIS[0], FREQ_AXIS[1], points)
    noise = VoltageNoise(sigma_v)
    rng = ctx.rng(salt=4)
    n_samples = scale.fig4_samples
    curves = []
    for label, mnemonic, bits, signed in VARIANTS:
        if signed:
            low, high = -(1 << (bits - 1)), 1 << (bits - 1)
            operands = tuple(
                (rng.integers(low, high, n_samples + 1, dtype=np.int64)
                 & 0xFFFFFFFF).astype(np.uint64)
                for _ in range(2))
        else:
            operands = tuple(
                rng.integers(0, 1 << bits, n_samples + 1, dtype=np.uint64)
                for _ in range(2))
        dta = run_dta(ctx.alu, mnemonic, n_samples, vdd=NOMINAL_VDD,
                      seed=seed, operands=operands)
        critical = dta.critical_ps  # (n, 32)
        correct = dta.values.astype(np.uint64)
        bit_weights = (np.uint64(1) << np.arange(32, dtype=np.uint64))
        mse = np.empty_like(frequencies)
        for index, frequency in enumerate(frequencies):
            period = 1e12 / frequency
            droops = noise.sample(n_samples, rng)
            factors = np.asarray(ctx.vdd_model.scale_factor(
                NOMINAL_VDD + droops, NOMINAL_VDD))
            violated = critical * factors[:, None] > period
            masks = (violated * bit_weights[None, :]).sum(
                axis=1, dtype=np.uint64)
            corrupted = correct ^ masks
            mse[index] = _wrap_sq_error(corrupted, correct).mean()
        curves.append(InstructionMseCurve(
            label=label, mnemonic=mnemonic, operand_bits=bits,
            frequencies_hz=frequencies, mse=mse))
    return Fig4Result(curves=curves, vdd=NOMINAL_VDD, sigma_v=sigma_v)


def render(result: Fig4Result) -> str:
    """Human-readable PoFF summary plus MSE samples."""
    lines = [f"Fig.4 @ {result.vdd} V, sigma = {result.sigma_v * 1e3:.0f} mV"]
    for curve in result.curves:
        poff = curve.poff_hz()
        peak = curve.mse.max()
        lines.append(
            f"  {curve.label:14s} PoFF = "
            f"{(poff or 0) / 1e6:7.1f} MHz   saturation MSE = {peak:.3e}")
    return "\n".join(lines)
