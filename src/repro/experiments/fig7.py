"""Fig. 7: output error versus core power under voltage overscaling.

The system runs the median benchmark at the fixed nominal frequency
(the 707 MHz STA limit at 0.7 V) while the supply voltage is scaled
*below* 0.7 V.  Model C (CDFs characterized at 0.7 V, scaled through
the fitted Vdd-delay curve) provides the quality metric; the quadratic
power model converts each voltage into normalized core power.

The paper's qualitative findings that must hold here:

* without noise there is a voltage-reduction window with ~0 % error
  (the PoFF sits below 0.7 V), yielding real power savings;
* at sigma = 10 mV the error/power curve follows the no-noise one with
  slightly higher power for equal quality;
* at sigma = 25 mV the error rises much earlier -- only marginal
  savings remain at reasonable quality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench.suite import build_kernel
from repro.experiments.context import (
    ExperimentContext,
    NOISE_SIGMAS,
    NOMINAL_VDD,
)
from repro.experiments.scale import Scale, get_scale
from repro.fi.model_c import StatisticalInjector
from repro.mc.results import McPoint
from repro.mc.runner import run_point
from repro.mc.units import PointUnit, mc_point_key, resolve_units, \
    stream_scheme
from repro.power.model import CorePowerModel

#: Swept supply-voltage range [V] (below the nominal 0.7 V).
VDD_RANGE = (0.64, 0.70)


@dataclass
class Fig7Point:
    """One (sigma, vdd) configuration."""

    sigma_v: float
    vdd: float
    normalized_power: float
    point: McPoint

    @property
    def relative_error(self) -> float:
        """Average relative error of finished runs (1.0 if none finish)."""
        if self.point.p_finished == 0.0:
            return 1.0
        return self.point.mean_relative_error_of_finished


@dataclass
class Fig7Curve:
    sigma_v: float
    points: list[Fig7Point]

    def poff_vdd(self) -> float | None:
        """Lowest swept voltage that is still fully correct."""
        correct = [p.vdd for p in self.points if p.point.p_correct == 1.0]
        return min(correct) if correct else None

    def power_at_poff(self) -> float | None:
        poff = self.poff_vdd()
        if poff is None:
            return None
        for point in self.points:
            if point.vdd == poff:
                return point.normalized_power
        return None


@dataclass
class Fig7Result:
    curves: list[Fig7Curve]
    frequency_hz: float

    def curve(self, sigma_v: float) -> Fig7Curve:
        for candidate in self.curves:
            if candidate.sigma_v == sigma_v:
                return candidate
        raise KeyError(f"no curve for sigma {sigma_v}")


def _voltages(ctx: ExperimentContext) -> np.ndarray:
    return np.linspace(VDD_RANGE[0], VDD_RANGE[1],
                       ctx.scale.voltage_points)


def point_units(ctx: ExperimentContext, seed: int = 2016,
                benchmark: str = "median",
                n_jobs: int | None = None) -> list[PointUnit]:
    """One Monte-Carlo unit per (sigma, Vdd) configuration."""
    kernel = build_kernel(benchmark, ctx.scale.kernel_scale)
    characterization = ctx.characterization(NOMINAL_VDD)
    frequency = ctx.sta_limit_hz(NOMINAL_VDD)
    stream = stream_scheme(n_jobs)
    units: list[PointUnit] = []
    for sigma in NOISE_SIGMAS:
        noise = ctx.noise(sigma)
        for index, vdd in enumerate(_voltages(ctx)):
            point_seed = seed + 31 * index + int(sigma * 1e6)

            def compute(vdd=vdd, noise=noise, point_seed=point_seed):
                def factory(rng):
                    return StatisticalInjector(
                        characterization, frequency, noise,
                        vdd_operating=float(vdd),
                        vdd_model=ctx.vdd_model, rng=rng)
                return run_point(
                    kernel, factory,
                    n_trials=ctx.scale.trials,
                    seed=point_seed,
                    label=f"{kernel.name}@{vdd:.3f}V",
                    n_jobs=n_jobs)

            units.append(PointUnit(
                label=f"fig7:{kernel.name}@{vdd:.3f}V/"
                      f"{sigma * 1e3:.0f}mV",
                key=mc_point_key(
                    "fig7", ctx.scale, point_seed, stream, kernel,
                    ctx.scale.trials,
                    {"vdd": float(vdd), "sigma_v": sigma, "model": "C",
                     "frequency_hz": float(frequency),
                     **ctx.char_fingerprint(NOMINAL_VDD)}),
                compute=compute))
    return units


def assemble(ctx: ExperimentContext, points: list[McPoint],
             benchmark: str = "median") -> Fig7Result:
    """Group resolved points back into per-sigma error/power curves."""
    frequency = ctx.sta_limit_hz(NOMINAL_VDD)
    power_model = CorePowerModel()
    voltages = _voltages(ctx)
    curves = []
    offset = 0
    for sigma in NOISE_SIGMAS:
        curve_points = []
        for vdd in voltages:
            curve_points.append(Fig7Point(
                sigma_v=sigma,
                vdd=float(vdd),
                normalized_power=power_model.normalized_power(
                    float(vdd), frequency / 1e6, NOMINAL_VDD,
                    frequency / 1e6),
                point=points[offset]))
            offset += 1
        curves.append(Fig7Curve(sigma_v=sigma, points=curve_points))
    return Fig7Result(curves=curves, frequency_hz=frequency)


def run(scale: str | Scale = "default", seed: int = 2016,
        context: ExperimentContext | None = None,
        benchmark: str = "median",
        store=None, n_jobs: int | None = None) -> Fig7Result:
    """Run the voltage-overscaling trade-off study."""
    scale = get_scale(scale)
    ctx = context or ExperimentContext.create(scale, seed, store=store)
    if store is None:
        store = ctx.store
    units = point_units(ctx, seed=seed, benchmark=benchmark,
                        n_jobs=n_jobs)
    points, _, _ = resolve_units(units, store)
    return assemble(ctx, points, benchmark=benchmark)


def render(result: Fig7Result) -> str:
    """Human-readable error/power rows per noise level."""
    lines = [f"Fig.7 @ fixed {result.frequency_hz / 1e6:.0f} MHz"]
    for curve in result.curves:
        poff = curve.poff_vdd()
        power = curve.power_at_poff()
        poff_text = (f"PoFF {poff:.3f} V at {power:.2f}x power"
                     if poff is not None else "PoFF outside sweep")
        lines.append(f"--- sigma = {curve.sigma_v * 1e3:.0f} mV "
                     f"({poff_text}) ---")
        lines.append(f"{'Vdd [V]':>8s} {'power':>7s} {'finished':>9s} "
                     f"{'correct':>9s} {'rel.err':>8s}")
        for point in curve.points:
            lines.append(
                f"{point.vdd:8.3f} {point.normalized_power:7.3f} "
                f"{point.point.p_finished:9.1%} "
                f"{point.point.p_correct:9.1%} "
                f"{point.relative_error:8.1%}")
    return "\n".join(lines)
