"""Shared experiment context: the hardware model and its timing views.

Every experiment needs the same expensive substrate -- the calibrated
ALU netlist, its fitted Vdd-delay curve, and per-voltage DTA
characterizations.  :class:`ExperimentContext` builds them lazily and
caches them, so a sequence of experiments (or one pytest session)
characterizes each condition only once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.netlist.alu import AluNetlist
from repro.netlist.calibrate import calibrated_alu
from repro.timing.characterize import (
    AluCharacterization,
    CharacterizationConfig,
    get_characterization,
)
from repro.timing.noise import VoltageNoise
from repro.timing.voltage import VddDelayModel
from repro.experiments.scale import Scale, get_scale

#: The case study's nominal operating voltage [V].
NOMINAL_VDD = 0.7

#: Noise sigmas studied throughout the paper [V].
NOISE_SIGMAS = (0.0, 0.010, 0.025)


@dataclass
class ExperimentContext:
    """Lazily-built shared hardware model for the experiment drivers."""

    scale: Scale
    seed: int = 2016
    _alu: AluNetlist | None = None
    _vdd_model: VddDelayModel | None = None
    _characterizations: dict[float, AluCharacterization] = \
        field(default_factory=dict)

    @classmethod
    def create(cls, scale: str | Scale = "default",
               seed: int = 2016) -> "ExperimentContext":
        return cls(scale=get_scale(scale), seed=seed)

    @property
    def alu(self) -> AluNetlist:
        if self._alu is None:
            self._alu = calibrated_alu()
        return self._alu

    @property
    def vdd_model(self) -> VddDelayModel:
        if self._vdd_model is None:
            self._vdd_model = VddDelayModel.from_alu_sta(self.alu)
        return self._vdd_model

    def characterization(self, vdd: float = NOMINAL_VDD) -> \
            AluCharacterization:
        """Per-instruction CDF tables at one supply voltage (cached)."""
        found = self._characterizations.get(vdd)
        if found is None:
            found = get_characterization(self.alu, CharacterizationConfig(
                vdd=vdd,
                n_cycles_per_instr=self.scale.char_cycles,
                seed=self.seed))
            self._characterizations[vdd] = found
        return found

    def sta_limit_hz(self, vdd: float = NOMINAL_VDD) -> float:
        return self.alu.sta_limit_hz(vdd)

    def noise(self, sigma_v: float) -> VoltageNoise:
        return VoltageNoise(sigma_v)

    def bplus_onset_hz(self, vdd: float, sigma_v: float) -> float:
        """First frequency at which model B+ can inject a fault.

        The worst STA critical period stretched by the worst-case
        (clipped 2-sigma) droop defines the model-B+ onset; with zero
        noise this equals the STA limit (model B's cliff).
        """
        worst = self.alu.worst_sta_period_ps(vdd)
        factor = float(self.vdd_model.scale_factor(
            vdd - VoltageNoise(sigma_v).max_droop_v, vdd))
        return 1e12 / (worst * factor)

    def rng(self, salt: int = 0) -> np.random.Generator:
        return np.random.default_rng(self.seed + salt)
