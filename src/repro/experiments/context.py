"""Shared experiment context: the hardware model and its timing views.

Every experiment needs the same expensive substrate -- the calibrated
ALU netlist, its fitted Vdd-delay curve, and per-voltage DTA
characterizations.  :class:`ExperimentContext` builds them lazily and
caches them, so a sequence of experiments (or one pytest session)
characterizes each condition only once.

With a :class:`~repro.store.ResultStore` attached, characterizations
additionally persist on disk keyed by (ALU identity, characterization
config, schema version): they are computed once per operating
condition *across invocations and worker processes* and reloaded
bit-identically everywhere else.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import native
from repro.netlist.alu import AluNetlist
from repro.netlist.calibrate import calibrated_alu
from repro.timing.characterize import (
    AluCharacterization,
    CharacterizationConfig,
    alu_fingerprint,
    characterization_key,
    config_key_fields,
    get_characterization,
)
from repro.timing.noise import VoltageNoise
from repro.timing.voltage import VddDelayModel
from repro.experiments.scale import Scale, get_scale

#: The case study's nominal operating voltage [V].
NOMINAL_VDD = 0.7

#: Noise sigmas studied throughout the paper [V].
NOISE_SIGMAS = (0.0, 0.010, 0.025)


@dataclass
class ExperimentContext:
    """Lazily-built shared hardware model for the experiment drivers.

    ``store`` (optional) persists characterizations across processes;
    Monte-Carlo points are persisted by the drivers themselves.
    """

    scale: Scale
    seed: int = 2016
    store: object | None = None
    #: Settle-pipeline dtype of every DTA run this context drives
    #: ("float64" = bit-exact, "float32" = relaxed-identity, cached
    #: under distinct store keys).
    timing_dtype: str = "float64"
    #: Engine backend preference ("numpy", "native", or None for the
    #: process-global default set by the CLI's ``--engine``).  Never
    #: part of any cache key: native f64 is bit-identical to numpy
    #: f64, and native f32 shares the f32 tolerance class, so results
    #: are interchangeable across backends.
    engine: str | None = None
    _alu: AluNetlist | None = None
    _vdd_model: VddDelayModel | None = None
    _characterizations: dict[CharacterizationConfig,
                             AluCharacterization] = \
        field(default_factory=dict)

    @classmethod
    def create(cls, scale: str | Scale = "default",
               seed: int = 2016, store=None,
               timing_dtype: str = "float64",
               engine: str | None = None) -> "ExperimentContext":
        if timing_dtype not in ("float64", "float32"):
            raise ValueError(
                f"timing_dtype must be float64 or float32, "
                f"got {timing_dtype!r}")
        if engine is not None and engine not in native.BACKENDS:
            raise ValueError(
                f"engine must be one of {native.BACKENDS} (or None for "
                f"the process default), got {engine!r}")
        return cls(scale=get_scale(scale), seed=seed, store=store,
                   timing_dtype=timing_dtype, engine=engine)

    @property
    def dta_engine(self) -> str:
        """Circuit engine for the DTA this context drives.

        Resolves the dtype and the backend preference (context-level,
        else process-global) to a concrete engine name; a ``native``
        preference silently falls back to the numpy engine when no
        compiler is available (``repro engines`` shows why).
        """
        return native.engine_for(self.timing_dtype, self.engine)

    def dtype_key_fields(self) -> dict:
        """Extra cache-key fields for dtype-sensitive DTA artifacts.

        Empty at the bit-exact float64 default, so historical keys
        stay valid; float32 results key separately.
        """
        if self.timing_dtype == "float64":
            return {}
        return {"timing_dtype": self.timing_dtype}

    @property
    def alu(self) -> AluNetlist:
        if self._alu is None:
            self._alu = calibrated_alu()
        return self._alu

    @property
    def vdd_model(self) -> VddDelayModel:
        if self._vdd_model is None:
            self._vdd_model = VddDelayModel.from_alu_sta(self.alu)
        return self._vdd_model

    def char_config(self, vdd: float = NOMINAL_VDD,
                    glitch_model: str = "sensitized") -> \
            CharacterizationConfig:
        """Characterization config implied by this context's scale/seed."""
        return CharacterizationConfig(
            vdd=vdd,
            n_cycles_per_instr=self.scale.char_cycles,
            seed=self.seed,
            glitch_model=glitch_model,
            timing_dtype=self.timing_dtype)

    def char_fingerprint(self, vdd: float = NOMINAL_VDD,
                         glitch_model: str = "sensitized") -> dict:
        """Cache-key fields identifying the hardware model a point was
        simulated against (merged into MC point keys): the full
        characterization config *and* the ALU timing-model identity,
        so netlist or cell-library changes invalidate persisted points
        instead of silently serving stale figures."""
        return {
            "characterization": config_key_fields(self.char_config(
                vdd, glitch_model)),
            "alu": alu_fingerprint(self.alu),
        }

    def characterization(self, vdd: float = NOMINAL_VDD) -> \
            AluCharacterization:
        """Per-instruction CDF tables at one supply voltage (cached)."""
        return self.characterized(self.char_config(vdd))

    def characterized(self, config: CharacterizationConfig) -> \
            AluCharacterization:
        """Characterization for an explicit config.

        Lookup order: in-memory cache, then the attached result store
        (bit-identical reload), then a fresh DTA run -- whose tables
        are persisted to the store for every later invocation and
        worker process.
        """
        found = self._characterizations.get(config)
        if found is None and self.store is not None:
            found = self.store.get(characterization_key(self.alu, config))
        if found is None:
            # Resolve the engine from the *config's* dtype (with this
            # context's backend preference), not from the context's:
            # an explicit config may carry a different timing dtype
            # (e.g. the glitch-model ablation characterizes at the
            # float64 default inside a float32 context), and its
            # results are keyed by that dtype -- running them on the
            # other pipeline would file tolerance-level data under a
            # bit-exact key.
            found = get_characterization(
                self.alu, config,
                engine=native.engine_for(config.timing_dtype,
                                         self.engine))
            if self.store is not None:
                self.store.put(
                    characterization_key(self.alu, config), found,
                    label=f"char@{config.vdd:.2f}V/"
                          f"{config.glitch_model}")
        self._characterizations[config] = found
        return found

    def sta_limit_hz(self, vdd: float = NOMINAL_VDD) -> float:
        return self.alu.sta_limit_hz(vdd)

    def noise(self, sigma_v: float) -> VoltageNoise:
        return VoltageNoise(sigma_v)

    def bplus_onset_hz(self, vdd: float, sigma_v: float) -> float:
        """First frequency at which model B+ can inject a fault.

        The worst STA critical period stretched by the worst-case
        (clipped 2-sigma) droop defines the model-B+ onset; with zero
        noise this equals the STA limit (model B's cliff).
        """
        worst = self.alu.worst_sta_period_ps(vdd)
        factor = float(self.vdd_model.scale_factor(
            vdd - VoltageNoise(sigma_v).max_droop_v, vdd))
        return 1e12 / (worst * factor)

    def rng(self, salt: int = 0) -> np.random.Generator:
        return np.random.default_rng(self.seed + salt)
