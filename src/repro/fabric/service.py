"""Stdlib HTTP object service: one store root shared by N clients.

``repro store serve --root R --port P`` runs this server; campaign
workers point :class:`repro.fabric.remote.HttpBackend` at it.  The
protocol is deliberately tiny -- five verbs over the backend
primitives, JSON only where a structure is needed:

=======  =====================  ========================================
Verb     Path                   Semantics
=======  =====================  ========================================
GET      ``/ping``              health JSON (object count, root)
GET      ``/o/<name>``          blob bytes; ``X-Repro-Sha256`` header
                                carries the body checksum; 404 absent
PUT      ``/o/<name>``          atomic write; ``X-Repro-Sha256``
                                verified when sent (400 mismatch);
                                ``X-Repro-If-Absent: 1`` makes it a
                                conditional PUT -- **409 Conflict**
                                tells exactly one loser of a race the
                                blob already existed
DELETE   ``/o/<name>``          remove; 404 when absent
GET      ``/list?prefix=P``     JSON array of {name, size, mtime}
POST     ``/q/<name>``          quarantine the blob (body = reason)
=======  =====================  ========================================

All writes go through :class:`repro.store.backend.FsBackend` on the
server side, so they are exactly as atomic and durable as local-store
writes -- the conditional PUT is an ``os.link`` under the hood, which
is what makes the lease ledger's steal arbitration race-free even with
many service *processes* sharing one root.

The server is a ``ThreadingHTTPServer``: each request gets a thread,
and the backend primitives are single-syscall-atomic, so no extra
locking is needed.
"""

from __future__ import annotations

import hashlib
import json
import logging
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, unquote, urlparse

from repro.store.backend import FsBackend

_LOG = logging.getLogger("repro.fabric")

SHA_HEADER = "X-Repro-Sha256"
IF_ABSENT_HEADER = "X-Repro-If-Absent"


class StoreService(ThreadingHTTPServer):
    """HTTP server bound to an :class:`FsBackend` store root."""

    daemon_threads = True

    def __init__(self, root, address=("127.0.0.1", 0)):
        self.backend = FsBackend(root)
        super().__init__(address, _Handler)


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-store/1"
    # Keep-alive matters: a campaign worker issues thousands of small
    # requests; HTTP/1.1 reuses the connection (every response below
    # carries an exact Content-Length).
    protocol_version = "HTTP/1.1"

    # -- plumbing --------------------------------------------------------

    def log_message(self, fmt, *args):  # quiet by default
        _LOG.debug("%s " + fmt, self.address_string(), *args)

    def _send(self, status: int, body: bytes = b"",
              content_type: str = "application/octet-stream",
              headers: dict | None = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for key, value in (headers or {}).items():
            self.send_header(key, value)
        self.end_headers()
        if body:
            self.wfile.write(body)

    def _send_json(self, status: int, payload) -> None:
        self._send(status, json.dumps(payload).encode(),
                   content_type="application/json")

    def _object_name(self, prefix: str) -> str | None:
        path = unquote(urlparse(self.path).path)
        if not path.startswith(prefix):
            return None
        return path[len(prefix):]

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length", "0"))
        return self.rfile.read(length) if length else b""

    @property
    def _backend(self) -> FsBackend:
        return self.server.backend

    # -- verbs -----------------------------------------------------------

    def do_GET(self):
        parsed = urlparse(self.path)
        if parsed.path == "/ping":
            self._send_json(200, self._backend.ping())
            return
        if parsed.path == "/list":
            prefix = parse_qs(parsed.query).get("prefix", [""])[0]
            stats = [{"name": stat.name, "size": stat.size,
                      "mtime": stat.mtime}
                     for stat in self._backend.list(prefix)]
            self._send_json(200, stats)
            return
        name = self._object_name("/o/")
        if name is None:
            self._send_json(404, {"error": "unknown route"})
            return
        try:
            data = self._backend.read(name)
        except ValueError as error:
            self._send_json(400, {"error": str(error)})
            return
        if data is None:
            self._send_json(404, {"error": "absent"})
            return
        self._send(200, data, headers={
            SHA_HEADER: hashlib.sha256(data).hexdigest()})

    def do_PUT(self):
        name = self._object_name("/o/")
        if name is None:
            self._send_json(404, {"error": "unknown route"})
            return
        data = self._read_body()
        claimed = self.headers.get(SHA_HEADER)
        if claimed is not None \
                and hashlib.sha256(data).hexdigest() != claimed:
            # The body was torn in transit: refuse it so the client's
            # retry (same checksum, fresh bytes) can land cleanly.
            self._send_json(400, {"error": "body checksum mismatch"})
            return
        if_absent = self.headers.get(IF_ABSENT_HEADER) == "1"
        try:
            wrote = self._backend.write(name, data,
                                        if_absent=if_absent)
        except ValueError as error:
            self._send_json(400, {"error": str(error)})
            return
        except OSError as error:  # disk full etc. -> client retries
            self._send_json(500, {"error": str(error)})
            return
        if not wrote:
            self._send_json(409, {"error": "exists"})
            return
        self._send_json(201, {"ok": True})

    def do_DELETE(self):
        name = self._object_name("/o/")
        if name is None:
            self._send_json(404, {"error": "unknown route"})
            return
        try:
            existed = self._backend.delete(name)
        except ValueError as error:
            self._send_json(400, {"error": str(error)})
            return
        self._send_json(200 if existed else 404, {"ok": existed})

    def do_POST(self):
        name = self._object_name("/q/")
        if name is None:
            self._send_json(404, {"error": "unknown route"})
            return
        reason = self._read_body().decode("utf-8", "replace")
        try:
            moved = self._backend.quarantine(name, reason)
        except ValueError as error:
            self._send_json(400, {"error": str(error)})
            return
        if moved:
            _LOG.warning("quarantined %s: %s", name, reason)
        self._send_json(200 if moved else 404, {"ok": moved})


def serve(root, host: str = "127.0.0.1",
          port: int = 0) -> StoreService:
    """Bind a store service (not yet serving; caller runs the loop).

    ``port=0`` picks a free port -- read the real one from
    ``service.server_address`` (the CLI prints it so scripts can
    parse; the smoke test relies on this).
    """
    return StoreService(root, (host, port))
